"""Figure 1 — workload imbalance of naive per-processor adaptive integration.

The paper's motivating figure: assign 16 processors to a uniform partition
of the integration space and watch two of them (the ones whose cells
contain the integrand's peak) perform far deeper sub-division than the
rest.  We reproduce it with a 2-D sharp Gaussian partitioned 4×4 over 16
"processors", each running an independent budget-capped sequential Cuhre.

Writes ``results/fig1_imbalance.csv``.
"""

import csv

import numpy as np

import harness as hz
from repro.diagnostics.imbalance import partition_imbalance
from repro.integrands.base import Integrand


def _peak_2d() -> Integrand:
    def fn(x):
        # peak centred inside cell [0.5,0.75]x[0.5,0.75] of the 4x4 grid so
        # one processor owns it outright
        return np.exp(-400.0 * ((x[:, 0] - 0.63) ** 2 + (x[:, 1] - 0.62) ** 2))

    return Integrand(fn=fn, ndim=2, name="2D peak", flops_per_eval=30.0)


def _run():
    return partition_imbalance(
        _peak_2d(), ndim=2, splits_per_axis=4, rel_tol=1e-8,
        max_eval_per_processor=500_000,
    )


def test_fig1_workload_imbalance(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)

    body = [
        [f"P{i}", int(s), int(e)]
        for i, (s, e) in enumerate(zip(report.subdivisions, report.nevals))
    ]
    hz.print_table(
        "Fig. 1: per-processor workload under a uniform 4x4 partition",
        ["processor", "subdivisions", "evaluations"],
        body,
        paper_note="processors owning the peak region sub-divide far deeper "
        "than the rest; static assignment wastes most of the machine",
    )
    print(
        f"imbalance (max/mean) = {report.max_over_mean:.1f}, "
        f"parallel efficiency = {report.parallel_efficiency:.1%}"
    )

    hz.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (hz.RESULTS_DIR / "fig1_imbalance.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["processor", "subdivisions", "nevals"])
        w.writerows(body)

    # --- shape assertions -------------------------------------------------
    # the peak sits inside a single cell of the 4x4 grid: that processor
    # dominates, efficiency is poor
    assert report.max_over_mean > 3.0
    assert report.parallel_efficiency < 0.4
    # most processors do near-minimal work
    lazy = np.sum(report.subdivisions <= np.median(report.subdivisions))
    assert lazy >= report.n_processors // 2
