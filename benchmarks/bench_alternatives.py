"""§2 background claims, measured: rule-cost growth and alternative methods.

Two quantitative claims from the paper's background section get benches:

* **§2.1 rule cost** — "For an n-dimensional region, [Genz–Malik] rules
  require 2^n + Θ(n³) function evaluations whereas the Gauss-Kronrod
  method requires 15^n": print both counts per dimension.
* **§1/§2 method comparison** — deterministic cubature "consistently
  outperforms" Monte Carlo methods at moderate dimension, and sparse grids
  lack the error estimates/local adaptivity the applications need: run
  PAGANI, VEGAS and Smolyak on the 4-D sharp Gaussian at matched budgets
  and compare true errors.

Writes ``results/alternatives.csv``.
"""

import csv

import harness as hz
from repro.baselines.vegas import VegasConfig, VegasIntegrator
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.cubature.gauss_kronrod import point_count as gk_count
from repro.cubature.rules import point_count as gm_count
from repro.integrands.paper import f4_gaussian
from repro.sparse_grids import SmolyakConfig, SmolyakIntegrator


def _run_comparison():
    integrand = f4_gaussian(4)
    results = {}
    results["pagani"] = PaganiIntegrator(
        PaganiConfig(rel_tol=1e-5), device=hz.bench_device()
    ).integrate(integrand, 4)
    results["vegas"] = VegasIntegrator(
        VegasConfig(rel_tol=1e-5, max_eval=results["pagani"].neval)
    ).integrate(integrand, 4)
    results["smolyak"] = SmolyakIntegrator(
        SmolyakConfig(rel_tol=1e-5, max_level=10, max_points=results["pagani"].neval)
    ).integrate(integrand, 4)
    return integrand, results


def test_rule_cost_growth(benchmark):
    rows = benchmark.pedantic(
        lambda: [(n, gm_count(n), gk_count(n) if n <= 6 else 15**n)
                 for n in range(2, 11)],
        rounds=1, iterations=1,
    )
    body = [[n, gm, gk, f"{gk / gm:.1f}x"] for n, gm, gk in rows]
    hz.print_table(
        "§2.1: evaluations per region — Genz–Malik vs tensor Gauss–Kronrod",
        ["ndim", "Genz–Malik", "GK 15^n", "ratio"],
        body,
        paper_note="GM: 2^n + Θ(n³); GK: 15^n — the reason Cuhre/PAGANI "
        "use the Genz–Malik family",
    )
    for n, gm, gk in rows:
        assert gk > gm
    # the gap must be superexponential in n
    assert rows[-1][2] / rows[-1][1] > 1e6


def test_alternative_methods_comparison(benchmark):
    integrand, results = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)

    body = []
    errs = {}
    for name, res in results.items():
        err = abs(res.estimate - integrand.reference) / integrand.reference
        errs[name] = err
        body.append(
            [name, "yes" if res.converged else f"DNF({res.status.value})",
             res.neval, hz.fmt_e(err)]
        )
    hz.print_table(
        "§1/§2: PAGANI vs VEGAS vs Smolyak on 4D f4 (matched budgets)",
        ["method", "converged", "evals", "true rel err"],
        body,
        paper_note="deterministic adaptive cubature beats MC at moderate "
        "dimension; sparse grids lack local adaptivity on peaks",
    )

    hz.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (hz.RESULTS_DIR / "alternatives.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["method", "converged", "status", "neval", "true_rel_err"])
        for name, res in results.items():
            w.writerow([name, int(res.converged), res.status.value,
                        res.neval, errs[name]])

    assert results["pagani"].converged
    assert errs["pagani"] < errs["vegas"]
    assert errs["pagani"] < errs["smolyak"]
