"""Figure 4 — true relative error vs user-specified digits of precision.

Paper's observations reproduced here:

* PAGANI and Cuhre generally land below the tolerance line (true error <=
  requested), i.e. their claimed convergence is honest;
* the two-phase method fails to integrate 5D f4 and 6D f6 beyond modest
  digit counts because poor load-balancing exhausts its allocated memory
  (on our memory-scaled device the failure digit shifts down
  proportionally — the *ordering* two_phase < pagani is the reproduced
  shape);
* 8D f7 is comparatively easy and all parallel methods track each other.

Writes ``results/fig4_accuracy.csv``.
"""


import harness as hz


def _fig4_rows():
    rows = hz.main_sweep()
    hz.write_csv(rows, "fig4_accuracy.csv")
    return rows


def test_fig4_accuracy(benchmark):
    rows = benchmark.pedantic(_fig4_rows, rounds=1, iterations=1)

    body = []
    for r in rows:
        tol = 10.0**-r.digits
        flag = ""
        if not r.converged:
            flag = f"DNF({r.status})"
        elif r.true_rel_error > tol:
            flag = "above-line"
        body.append(
            [
                r.integrand, r.method, r.digits,
                hz.fmt_e(tol), hz.fmt_e(r.true_rel_error), flag,
            ]
        )
    hz.print_table(
        "Fig. 4: true relative error vs requested digits",
        ["integrand", "method", "digits", "tolerance", "true rel err", "note"],
        body,
        paper_note=(
            "two-phase fails 5D f4 / 6D f6 beyond ~5 digits (memory); "
            "PAGANI matches or exceeds every method's attainable digits"
        ),
    )

    # --- shape assertions -------------------------------------------------
    for name in ("5D f4", "6D f6", "8D f7"):
        p = hz.max_converged_digits(rows, name, "pagani")
        t = hz.max_converged_digits(rows, name, "two_phase")
        assert p >= t, f"{name}: PAGANI ({p}) must reach >= two-phase ({t}) digits"

    # converged PAGANI points are honest: true error within ~3x tolerance
    for r in rows:
        if r.method == "pagani" and r.converged:
            assert r.true_rel_error <= 10.0 ** (-r.digits) * 3.0, (
                f"{r.integrand}@{r.digits}: claimed convergence but true "
                f"rel err {r.true_rel_error:.2e}"
            )

    # two-phase shows its signature memory failure somewhere in the sweep
    failures = [
        r for r in rows
        if r.method == "two_phase" and r.status == "memory_exhausted"
    ]
    assert failures, "expected two-phase memory exhaustion on the hard cases"
