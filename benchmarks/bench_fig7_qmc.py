"""Figure 7 — PAGANI speedup over the quasi-Monte Carlo integrator.

Paper's shapes:

* PAGANI is orders of magnitude faster than QMC on the deterministic-
  friendly integrands (peaks, corner peaks, kinks in moderate dimension);
* the exception is the oscillatory 8D f1, where relative-error filtering
  must be disabled (§3.5.1) and QMC reaches *more* digits than PAGANI —
  QMC wins attainable precision there.

Quick mode runs a 3-integrand subset; ``REPRO_BENCH_FULL=1`` runs all
eight series of the figure.  Writes ``results/fig7_qmc.csv``.
"""

import harness as hz


def _fig7_rows():
    rows = hz.qmc_sweep()
    hz.write_csv(rows, "fig7_qmc.csv")
    return rows


def test_fig7_qmc_speedup(benchmark):
    rows = benchmark.pedantic(_fig7_rows, rounds=1, iterations=1)

    body = []
    speedups = {}
    for name in hz.qmc_integrands():
        pag = {r.digits: r for r in hz.select(rows, name, "pagani")}
        qmc = {r.digits: r for r in hz.select(rows, name, "qmc")}
        for digits in sorted(pag):
            p, q = pag[digits], qmc.get(digits)
            if q is None:
                continue
            if p.converged and q.converged:
                s = q.sim_ms / p.sim_ms
                speedups.setdefault(name, []).append(s)
                body.append([name, digits, f"{s:.1f}x", ""])
            elif p.converged:
                body.append([name, digits, "-", "only-PAGANI"])
            elif q.converged:
                body.append([name, digits, "-", "only-QMC"])
            else:
                body.append([name, digits, "-", "neither"])
    hz.print_table(
        "Fig. 7: PAGANI speedup over QMC (simulated time)",
        ["integrand", "digits", "speedup", "note"],
        body,
        paper_note="orders of magnitude over QMC except 8D f1, where "
        "oscillation disables rel-err filtering and QMC attains more digits",
    )

    # --- shape assertions -------------------------------------------------
    # The paper's orders-of-magnitude gaps appear at high digits where
    # QMC's ~N^-1 convergence dies.  At quick-mode digits the signal is the
    # *trend*: speedup grows with digits, and at the top of each range
    # either PAGANI wins outright or is the only method converging.
    for name, ss in speedups.items():
        if "f1" in name:
            continue
        assert ss[-1] >= ss[0], f"{name}: speedup should grow with digits"
        top = hz.digits_for(name)[-1]
        p = [r for r in hz.select(rows, name, "pagani") if r.digits == top]
        q = [r for r in hz.select(rows, name, "qmc") if r.digits == top]
        pagani_wins_top = p and p[0].converged and (
            not (q and q[0].converged) or q[0].sim_ms > p[0].sim_ms
        )
        assert pagani_wins_top, f"{name}: PAGANI must win at {top} digits"

    # the oscillatory case, paper shape: QMC attains at least as many
    # digits as PAGANI on f1.  At laptop scale 8D f1 (|I| ~ 1e-5) defeats
    # both methods' scaled budgets (both DNF — recorded as the documented
    # deviation in EXPERIMENTS.md); the inequality still must not invert.
    p_dig = hz.max_converged_digits(rows, "8D f1", "pagani")
    q_dig = hz.max_converged_digits(rows, "8D f1", "qmc")
    assert q_dig >= p_dig, (
        f"8D f1: QMC should reach >= PAGANI digits (qmc={q_dig}, pagani={p_dig})"
    )
    # PAGANI on 8D f1 must NOT claim convergence (filtering off, memory
    # bound): an honest DNF, not a false positive
    for r in hz.select(rows, "8D f1", "pagani"):
        assert not r.converged
    # the 5-D oscillatory member converges honestly for both methods
    for method in ("pagani", "qmc"):
        for r in hz.select(rows, "5D f1", method):
            if r.converged:
                assert r.true_rel_error <= 3.0 * 10.0**-r.digits
