"""Design-choice ablations called out in DESIGN.md.

Not a paper figure, but the knobs the paper's design discussion motivates:

* **error model** — cascade (default) vs two_rule vs the paper-verbatim
  four_difference: cost/robustness trade-off of the error estimator;
* **two-level refinement** — on/off (the paper credits it with avoiding
  overestimation; the two-phase method's phase I famously skips it);
* **initial-split alignment** — f6's cut planes lie on tenths, so d=10 is
  straddle-free while d=4 must chase the discontinuity geometrically;
* **relative-error margin** — the commitment-safety margin this
  implementation adds (see classify.py).

Writes ``results/ablations.csv``.
"""

import csv

import harness as hz
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.integrands.paper import f4_gaussian, f6_discontinuous


def _run(cfg, integrand):
    res = PaganiIntegrator(cfg, device=hz.bench_device()).integrate(
        integrand, integrand.ndim
    )
    true_rel = abs(res.estimate - integrand.reference) / abs(integrand.reference)
    return res, true_rel


def _ablation_rows():
    rows = []
    g = f4_gaussian(5)

    for model in ("cascade", "two_rule", "four_difference"):
        res, true_rel = _run(
            PaganiConfig(rel_tol=1e-4, error_model=model, max_iterations=30), g
        )
        rows.append(("error_model", model, res.converged, res.status.value,
                     true_rel, res.nregions, res.sim_seconds * 1e3))

    for two_level in (True, False):
        res, true_rel = _run(
            PaganiConfig(rel_tol=1e-5, two_level=two_level, max_iterations=30), g
        )
        rows.append(("two_level", str(two_level), res.converged,
                     res.status.value, true_rel, res.nregions,
                     res.sim_seconds * 1e3))

    f6 = f6_discontinuous(6)
    for d in (4, 10):
        res, true_rel = _run(
            PaganiConfig(rel_tol=1e-3, initial_splits=d, max_iterations=25), f6
        )
        rows.append(("f6_initial_splits", f"d={d}", res.converged,
                     res.status.value, true_rel, res.nregions,
                     res.sim_seconds * 1e3))

    for margin in (1.0, 0.5, 0.25):
        res, true_rel = _run(
            PaganiConfig(rel_tol=1e-5, relerr_margin=margin, max_iterations=30), g
        )
        rows.append(("relerr_margin", str(margin), res.converged,
                     res.status.value, true_rel, res.nregions,
                     res.sim_seconds * 1e3))
    return rows


def test_ablations(benchmark):
    rows = benchmark.pedantic(_ablation_rows, rounds=1, iterations=1)

    body = [
        [knob, value, "yes" if conv else f"DNF({status})",
         hz.fmt_e(true_rel), nreg, f"{ms:.3g}"]
        for knob, value, conv, status, true_rel, nreg, ms in rows
    ]
    hz.print_table(
        "Design ablations",
        ["knob", "value", "converged", "true rel err", "regions", "sim ms"],
        body,
    )

    hz.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (hz.RESULTS_DIR / "ablations.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["knob", "value", "converged", "status", "true_rel_error",
                    "nregions", "sim_ms"])
        w.writerows(rows)

    by = {(k, v): (c, s, t, n, ms) for k, v, c, s, t, n, ms in rows}

    # every error model converges on the Gaussian; four_difference is the
    # most expensive (most conservative), cascade no cheaper than two_rule
    for model in ("cascade", "two_rule", "four_difference"):
        assert by[("error_model", model)][0], model
    assert (
        by[("error_model", "four_difference")][3]
        >= by[("error_model", "two_rule")][3]
    )

    # alignment ablation: d=10 converges f6 where d=4 fails (or needs far
    # more regions)
    aligned = by[("f6_initial_splits", "d=10")]
    misaligned = by[("f6_initial_splits", "d=4")]
    assert aligned[0], "aligned split must converge f6 at 3 digits"
    assert (not misaligned[0]) or misaligned[3] > aligned[3]

    # margins: all converge; tighter margins never reduce the region count
    for margin in ("1.0", "0.5", "0.25"):
        assert by[("relerr_margin", margin)][0]
