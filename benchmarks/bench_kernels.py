"""Wall-clock microbenchmarks of the computational kernels.

Unlike the figure reproductions (which report deterministic *simulated*
time), these time the actual Python/NumPy implementations with
pytest-benchmark — the vectorised evaluate sweep is the reproduction's real
"GPU kernel", and its host throughput is what bounds every experiment's
wall time.  Also contrasts the batched sweep against per-region evaluation
(the vectorisation win the HPC guides prescribe) and times the classification
and split kernels.
"""

import numpy as np
import pytest

from repro.core.classify import rel_err_classify, threshold_classify
from repro.core.regions import RegionStore
from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule
from repro.integrands.paper import f4_gaussian, f7_box11

BATCH = 4096


def _regions(ndim, m, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.2, 0.8, size=(m, ndim))
    halfw = rng.uniform(0.01, 0.05, size=(m, ndim))
    return centers, halfw


@pytest.mark.parametrize("ndim", [5, 8])
def test_evaluate_batch_throughput(benchmark, ndim):
    """Regions/second of the batched evaluate sweep."""
    rule = get_rule(ndim)
    integrand = f4_gaussian(ndim)
    centers, halfw = _regions(ndim, BATCH)
    result = benchmark(
        lambda: evaluate_regions(rule, centers, halfw, integrand)
    )
    assert result.estimate.shape == (BATCH,)


def test_evaluate_single_region_overhead(benchmark):
    """Per-region cost when batching is NOT used (the anti-pattern)."""
    ndim = 5
    rule = get_rule(ndim)
    integrand = f4_gaussian(ndim)
    centers, halfw = _regions(ndim, 1)
    benchmark(lambda: evaluate_regions(rule, centers, halfw, integrand))


def test_integrand_evaluation_throughput(benchmark):
    """Raw integrand throughput (points/second) for the 8D box integrand."""
    integrand = f7_box11(8)
    pts = np.random.default_rng(1).random((200_000, 8))
    benchmark(lambda: integrand(pts))


def test_classify_kernel(benchmark):
    rng = np.random.default_rng(2)
    v = rng.normal(size=500_000)
    e = np.abs(rng.normal(size=500_000)) * 1e-6
    benchmark(lambda: rel_err_classify(v, e, 1e-6))


def test_threshold_search_kernel(benchmark):
    rng = np.random.default_rng(3)
    e = rng.lognormal(mean=-10, sigma=3, size=500_000)
    active = np.ones(e.size, dtype=bool)
    e_tot = float(e.sum())
    benchmark(
        lambda: threshold_classify(active, e, 1.0, e_tot, 1e-4)
    )


def test_split_kernel(benchmark):
    def setup():
        store = RegionStore.uniform_split(np.array([[0.0, 1.0]] * 5), 8)
        store.estimate = np.zeros(store.size)
        store.split_axis = np.random.default_rng(4).integers(0, 5, store.size)
        return (store,), {}

    benchmark.pedantic(lambda s: s.split(), setup=setup, rounds=20)


def test_filter_kernel(benchmark):
    def setup():
        store = RegionStore.uniform_split(np.array([[0.0, 1.0]] * 5), 8)
        store.estimate = np.zeros(store.size)
        store.error = np.zeros(store.size)
        keep = np.random.default_rng(5).random(store.size) < 0.5
        return (store, keep), {}

    benchmark.pedantic(lambda s, k: s.filter(k), setup=setup, rounds=20)
