"""Figure 5 — execution time vs digits for PAGANI, two-phase and Cuhre.

Times are the deterministic simulated device/CPU seconds from the cost
models (see DESIGN.md): the GPU methods are charged per kernel launch with
an occupancy-dependent throughput, Cuhre per sequential region evaluation.
The reproduced shapes:

* the parallel methods are orders of magnitude faster than Cuhre once the
  integrand needs serious subdivision, and the gap widens with digits;
* PAGANI and two-phase are comparable at low precision (phase II barely
  runs), with PAGANI ahead where phase II dominates;
* series end early (DNF) exactly where Fig. 4 showed failures.

Reuses the Fig. 4 sweep (the paper's figures share runs the same way).
Writes ``results/fig5_time.csv``.
"""

import harness as hz


def _fig5_rows():
    rows = hz.main_sweep()
    hz.write_csv(rows, "fig5_time.csv")
    return rows


def test_fig5_time(benchmark):
    rows = benchmark.pedantic(_fig5_rows, rounds=1, iterations=1)

    body = []
    for name in hz.sweep_integrands():
        for digits in hz.digits_for(name):
            row = [name, digits]
            for method in ("pagani", "two_phase", "cuhre"):
                match = [
                    r for r in hz.select(rows, name, method) if r.digits == digits
                ]
                if match and match[0].converged:
                    row.append(f"{match[0].sim_ms:.3g}")
                elif match:
                    row.append(f"DNF({match[0].sim_ms:.3g})")
                else:
                    row.append("-")
            body.append(row)
    hz.print_table(
        "Fig. 5: simulated execution time (ms) vs digits",
        ["integrand", "digits", "pagani", "two_phase", "cuhre"],
        body,
        paper_note="parallel methods orders of magnitude below Cuhre on "
        "challenging integrands; gap grows with precision",
    )

    # --- shape assertions -------------------------------------------------
    for name in hz.sweep_integrands():
        pag = {r.digits: r for r in hz.select(rows, name, "pagani")}
        cu = {r.digits: r for r in hz.select(rows, name, "cuhre")}
        shared = [
            d for d in pag
            if d in cu and pag[d].converged and cu[d].converged
        ]
        if not shared:
            continue
        top = max(shared)
        # at the highest shared precision the GPU method wins, by a growing
        # factor
        assert pag[top].sim_ms < cu[top].sim_ms, name
        if len(shared) >= 2:
            lo = min(shared)
            ratio_lo = cu[lo].sim_ms / pag[lo].sim_ms
            ratio_hi = cu[top].sim_ms / pag[top].sim_ms
            assert ratio_hi >= 0.5 * ratio_lo, (
                f"{name}: speedup should not collapse with precision "
                f"({ratio_lo:.1f}x -> {ratio_hi:.1f}x)"
            )

    # PAGANI times grow monotonically-ish with digits (more work for more
    # precision)
    for name in hz.sweep_integrands():
        series = sorted(hz.select(rows, name, "pagani"), key=lambda r: r.digits)
        conv = [r for r in series if r.converged]
        for a, b in zip(conv, conv[1:]):
            assert b.sim_ms >= 0.5 * a.sim_ms, name
