"""Shared infrastructure for the figure-reproduction benchmarks.

Every figure in the paper's evaluation section has a ``bench_figN_*.py``
module that regenerates the corresponding series.  This module provides:

* quick/full mode switching (``REPRO_BENCH_FULL=1`` extends the digit
  sweeps toward the paper's ranges; the default quick mode keeps the whole
  suite laptop-friendly),
* a sweep runner executing (integrand × method × digits) grids with the
  scaled virtual device, cached across benchmark modules (Figs. 4, 5, 6
  and 9 are different projections of the same sweep — the paper's own
  figures share runs the same way),
* result rows, CSV artifact writing into ``benchmarks/results/``, and
  aligned text tables printed with a paper-vs-measured header,
* the execution-backend benchmark: the Fig. 5/6 PAGANI workloads run once
  per available array backend (numpy / threaded / cupy), emitting the
  machine-readable ``results/BENCH_backends.json`` perf-regression
  baseline.  Run it directly::

      PYTHONPATH=src python benchmarks/harness.py            # all backends
      PYTHONPATH=src python benchmarks/harness.py --smoke    # CI-sized

Times reported for GPU methods are the *simulated* device seconds (so the
series are deterministic and hardware independent); Cuhre is charged to the
CPU cost model.  Wall-clock timing of the underlying Python kernels is
measured separately by pytest-benchmark in ``bench_kernels.py``.
"""

from __future__ import annotations

import csv
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines.cuhre import CuhreConfig, CuhreIntegrator
from repro.baselines.qmc import QmcConfig, QmcIntegrator
from repro.baselines.two_phase import TwoPhaseConfig, TwoPhaseIntegrator
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.core.result import IntegrationResult
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.base import Integrand
from repro.integrands.paper import (
    f1_oscillatory,
    f3_corner_peak,
    f4_gaussian,
    f5_c0,
    f6_discontinuous,
    f7_box11,
    f8_box15,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: device memory for the GPU methods in benchmarks.  The paper's V100 has
#: 16 GiB; Python wall-clock cannot reach the region counts 16 GiB admits,
#: so the benches run a memory-scaled V100 — every memory-driven phenomenon
#: (two-phase failure digits, PAGANI threshold filtering) appears at
#: proportionally lower digit counts with the *ordering* preserved.
BENCH_DEVICE_MB = 192


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


def bench_device() -> VirtualDevice:
    return VirtualDevice(DeviceSpec.scaled(mem_mb=BENCH_DEVICE_MB))


# ---------------------------------------------------------------------------
# Integrand catalogue for the sweeps
# ---------------------------------------------------------------------------
def sweep_integrands() -> Dict[str, Integrand]:
    """The three integrand/dimension combos the paper's Figs. 4, 5, 9 use."""
    f6 = f6_discontinuous(6)
    return {
        "5D f4": f4_gaussian(5),
        "6D f6": f6,
        "8D f7": f7_box11(8),
    }


def speedup_integrands() -> Dict[str, Integrand]:
    """Fig. 6 combos."""
    return {
        "5D f5": f5_c0(5),
        "6D f6": f6_discontinuous(6),
        "8D f7": f7_box11(8),
    }


def qmc_integrands() -> Dict[str, Integrand]:
    """Fig. 7 combos (quick subset; full mode adds the rest).

    5D f1 is an addition to the paper's set: at laptop scale the 8D f1
    integral (|I| ~ 1e-5) is beyond both methods' scaled budgets, so the
    5-D member demonstrates the oscillatory/filtering-off behaviour while
    8D f1 documents the double-DNF (see EXPERIMENTS.md).
    """
    base = {
        "3D f3": f3_corner_peak(3),
        "5D f5": f5_c0(5),
        "5D f1": f1_oscillatory(5),
        "8D f1": f1_oscillatory(8),
    }
    if full_mode():
        base.update(
            {
                "6D f6": f6_discontinuous(6),
                "8D f3": f3_corner_peak(8),
                "8D f5": f5_c0(8),
                "8D f7": f7_box11(8),
                "8D f8": f8_box15(8),
            }
        )
    return base


#: per-integrand digit ranges (quick / full).  The paper sweeps 3..10-11 on
#: a 16 GiB V100 + C implementations; the quick ranges keep wall time sane
#: while preserving every qualitative transition the figures show.
QUICK_DIGITS = {
    "5D f4": [3, 4, 5],
    "6D f6": [3, 4],
    "8D f7": [3, 4],
    "5D f5": [3, 4, 5],
    "3D f3": [3, 4, 5, 6],
    "5D f1": [3, 4, 5],
    "8D f1": [3, 4],
    "8D f3": [3, 4],
    "8D f5": [3, 4],
    "8D f8": [3, 4],
}
FULL_DIGITS = {
    "5D f1": [3, 4, 5, 6],
    "5D f4": [3, 4, 5, 6, 7],
    "6D f6": [3, 4, 5, 6, 7],
    "8D f7": [3, 4, 5, 6],
    "5D f5": [3, 4, 5, 6],
    "3D f3": [3, 4, 5, 6, 7, 8],
    "8D f1": [3, 4, 5],
    "8D f3": [3, 4, 5],
    "8D f5": [3, 4, 5],
    "8D f8": [3, 4, 5],
}

#: f6's cut planes sit on multiples of 0.1, so a 10-per-axis initial split
#: makes every region boundary-aligned (no cell ever straddles the
#: discontinuity).  The paper does not state its initial split; alignment
#: is the only regime in which its reported 10+ digit convergence on f6 is
#: reachable at all (see EXPERIMENTS.md).
INITIAL_SPLITS = {"6D f6": 10}

#: Cuhre evaluation budget in quick mode (paper: 1e9; DNF is reported the
#: same way the paper reports non-converging runs).
CUHRE_QUICK_MAX_EVAL = 8_000_000
CUHRE_FULL_MAX_EVAL = 100_000_000


def digits_for(name: str) -> List[int]:
    table = FULL_DIGITS if full_mode() else QUICK_DIGITS
    return table.get(name, [3, 4, 5])


# ---------------------------------------------------------------------------
# Sweep rows
# ---------------------------------------------------------------------------
@dataclass
class SweepRow:
    integrand: str
    method: str
    digits: int
    converged: bool
    status: str
    estimate: float
    errorest: float
    true_rel_error: float
    sim_ms: float
    nregions: int
    neval: int


def _run_method(
    method: str, integrand: Integrand, tau_rel: float, initial_splits: Optional[int]
) -> IntegrationResult:
    filtering = integrand.sign_definite
    if method == "pagani":
        cfg = PaganiConfig(
            rel_tol=tau_rel,
            relerr_filtering=filtering,
            max_iterations=35,
        )
        if initial_splits is not None:
            cfg.initial_splits = initial_splits
        return PaganiIntegrator(cfg, device=bench_device()).integrate(
            integrand, integrand.ndim
        )
    if method == "two_phase":
        cfg = TwoPhaseConfig(
            rel_tol=tau_rel,
            relerr_filtering=filtering,
            max_phase1_iterations=35,
        )
        if initial_splits is not None:
            cfg.initial_splits = initial_splits
        return TwoPhaseIntegrator(cfg, device=bench_device()).integrate(
            integrand, integrand.ndim
        )
    if method == "cuhre":
        budget = CUHRE_FULL_MAX_EVAL if full_mode() else CUHRE_QUICK_MAX_EVAL
        cfg = CuhreConfig(rel_tol=tau_rel, max_eval=budget)
        return CuhreIntegrator(cfg).integrate(integrand, integrand.ndim)
    if method == "qmc":
        budget = 500_000_000 if full_mode() else 40_000_000
        cfg = QmcConfig(rel_tol=tau_rel, max_eval=budget)
        return QmcIntegrator(cfg, device=bench_device()).integrate(
            integrand, integrand.ndim
        )
    raise ValueError(method)


def run_sweep(
    integrands: Dict[str, Integrand],
    methods: Sequence[str],
    digits_override: Optional[Dict[str, List[int]]] = None,
) -> List[SweepRow]:
    rows: List[SweepRow] = []
    for name, integrand in integrands.items():
        digit_list = (digits_override or {}).get(name) or digits_for(name)
        splits = INITIAL_SPLITS.get(name)
        for digits in digit_list:
            tau = 10.0**-digits
            for method in methods:
                res = _run_method(method, integrand, tau, splits)
                true_rel = (
                    abs(res.estimate - integrand.reference)
                    / abs(integrand.reference)
                    if integrand.reference
                    else float("nan")
                )
                rows.append(
                    SweepRow(
                        integrand=name,
                        method=method,
                        digits=digits,
                        converged=res.converged,
                        status=res.status.value,
                        estimate=res.estimate,
                        errorest=res.errorest,
                        true_rel_error=true_rel,
                        sim_ms=res.sim_seconds * 1e3,
                        nregions=res.nregions,
                        neval=res.neval,
                    )
                )
    return rows


# ---------------------------------------------------------------------------
# Cross-module sweep cache (Figs. 4/5/6/9 share runs)
#
# Two layers: an in-process dict (one pytest invocation runs every bench
# module in a single process) and a JSON file under results/ keyed by the
# sweep configuration, so iterating on bench code does not recompute the
# multi-minute sweeps.  Delete results/sweep_cache_*.json to force a rerun.
# ---------------------------------------------------------------------------
_SWEEP_CACHE: Dict[str, List[SweepRow]] = {}


def _cache_path(key: str) -> Path:
    mode = "full" if full_mode() else "quick"
    return RESULTS_DIR / f"sweep_cache_{key}_{mode}_{BENCH_DEVICE_MB}mb.json"


def _load_cached(key: str) -> Optional[List[SweepRow]]:
    import json

    path = _cache_path(key)
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return [SweepRow(**row) for row in data]


def _store_cached(key: str, rows: List[SweepRow]) -> None:
    import dataclasses
    import json

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    _cache_path(key).write_text(
        json.dumps([dataclasses.asdict(r) for r in rows])
    )


def _cached_sweep(key: str, compute) -> List[SweepRow]:
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    rows = _load_cached(key)
    if rows is None:
        rows = compute()
        _store_cached(key, rows)
    _SWEEP_CACHE[key] = rows
    return rows


def main_sweep() -> List[SweepRow]:
    """The Fig. 4/5/9 sweep: 3 integrands × {pagani, two_phase, cuhre}."""
    return _cached_sweep(
        "main",
        lambda: run_sweep(sweep_integrands(), ("pagani", "two_phase", "cuhre")),
    )


def speedup_sweep() -> List[SweepRow]:
    """The Fig. 6 sweep.  6D f6 and 8D f7 overlap with the main sweep, so
    those rows are reused (the paper's figures share runs the same way) and
    only 5D f5 is computed fresh."""

    def compute() -> List[SweepRow]:
        main_rows = main_sweep()
        shared = {"6D f6", "8D f7"}
        fresh = {
            k: v for k, v in speedup_integrands().items() if k not in shared
        }
        rows = [r for r in main_rows if r.integrand in shared]
        rows += run_sweep(fresh, ("pagani", "two_phase", "cuhre"))
        return rows

    return _cached_sweep("speedup", compute)


def qmc_sweep() -> List[SweepRow]:
    """The Fig. 7 sweep: PAGANI vs QMC."""
    return _cached_sweep(
        "qmc_v2", lambda: run_sweep(qmc_integrands(), ("pagani", "qmc"))
    )


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
def write_csv(rows: Iterable[SweepRow], filename: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / filename
    rows = list(rows)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "integrand", "method", "digits", "converged", "status",
                "estimate", "errorest", "true_rel_error", "sim_ms",
                "nregions", "neval",
            ]
        )
        for r in rows:
            writer.writerow(
                [
                    r.integrand, r.method, r.digits, int(r.converged),
                    r.status, f"{r.estimate:.15g}", f"{r.errorest:.6g}",
                    f"{r.true_rel_error:.6g}", f"{r.sim_ms:.6g}",
                    r.nregions, r.neval,
                ]
            )
    return path


def print_table(title: str, header: Sequence[str], body: Sequence[Sequence[str]],
                paper_note: str = "") -> None:
    print(f"\n=== {title} ===")
    if paper_note:
        print(f"paper: {paper_note}")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in body)) if body else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in body:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def select(rows: Iterable[SweepRow], integrand: str, method: str) -> List[SweepRow]:
    return [r for r in rows if r.integrand == integrand and r.method == method]


def max_converged_digits(rows: Iterable[SweepRow], integrand: str, method: str) -> int:
    """Highest digit count at which the method both converged and was
    truthful (true error within 3x of the tolerance)."""
    best = 0
    for r in select(rows, integrand, method):
        if r.converged and (
            math.isnan(r.true_rel_error)
            or r.true_rel_error <= 3.0 * 10.0**-r.digits
        ):
            best = max(best, r.digits)
    return best


def fmt_e(x: float) -> str:
    return f"{x:.2e}" if np.isfinite(x) else "-"


# ---------------------------------------------------------------------------
# Execution-backend benchmark (BENCH_backends.json)
#
# The fig5/fig6 PAGANI workloads, run once per array backend.  Simulated
# time is backend-invariant (the virtual device charges the same kernels);
# the interesting columns are wall-clock seconds — the first real-hardware
# perf baseline — and the estimate/errorest agreement against the numpy
# reference, which the conformance tests also enforce.
# ---------------------------------------------------------------------------
BACKEND_BENCH_FILE = "BENCH_backends.json"


def backend_bench_workloads(smoke: bool = False) -> Dict[str, tuple]:
    """``{name: (integrand, digit_list)}`` for the backend benchmark.

    The default set is the union of the Fig. 5 and Fig. 6 integrands with
    their quick/full digit ranges; ``--smoke`` shrinks it to one tiny
    workload for CI.
    """
    from repro.integrands.catalog import named_integrand

    # Members resolve through the catalogue (display name "5D f4" is the
    # spec "5D-f4"), so each carries its canonical `spec` — the identity
    # the process backend ships to worker processes.  The integrands are
    # the same objects the fig5/fig6 sweeps build; the catalogue is just
    # the canonical constructor.
    if smoke:
        names = ["3D f4"]
        digits = {"3D f4": [3]}
    else:
        names = list({**sweep_integrands(), **speedup_integrands()})
        digits = {name: digits_for(name) for name in names}
    return {
        name: (named_integrand(name.replace(" ", "-")), digits[name])
        for name in names
    }


def run_backend_bench(
    backends: Optional[Sequence[str]] = None, smoke: bool = False
) -> dict:
    """Run the PAGANI workloads once per backend; return the JSON payload."""
    import platform
    import sys as _sys

    from repro.backends import (
        BackendUnavailableError,
        available_backends,
        get_backend,
    )

    if backends is None:
        backends = available_backends()
    workloads = backend_bench_workloads(smoke=smoke)

    per_backend: Dict[str, List[dict]] = {}
    skipped: List[str] = []
    for spec in backends:
        try:
            get_backend(spec)
        except BackendUnavailableError as exc:
            print(f"skipping backend {spec!r}: {exc}", file=_sys.stderr)
            skipped.append(spec)
            continue
        rows: List[dict] = []
        for name, (integrand, digit_list) in workloads.items():
            splits = INITIAL_SPLITS.get(name)
            for digits in digit_list:
                cfg = PaganiConfig(
                    rel_tol=10.0**-digits,
                    relerr_filtering=integrand.sign_definite,
                    max_iterations=35,
                    backend=spec,
                )
                if splits is not None:
                    cfg.initial_splits = splits
                res = PaganiIntegrator(cfg, device=bench_device()).integrate(
                    integrand, integrand.ndim
                )
                rows.append(
                    {
                        "integrand": name,
                        "digits": digits,
                        "converged": res.converged,
                        "status": res.status.value,
                        "estimate": res.estimate,
                        "errorest": res.errorest,
                        "wall_seconds": res.wall_seconds,
                        "sim_seconds": res.sim_seconds,
                        "neval": res.neval,
                        "nregions": res.nregions,
                    }
                )
        per_backend[spec] = rows

    # Agreement flags against the numpy reference rows.  Host backends
    # (numpy/threaded) share the array library and must be bit-identical;
    # accelerator backends (cupy) reduce in a different order and are held
    # to machine-precision agreement, matching the conformance suite.
    ref = {(r["integrand"], r["digits"]): r for r in per_backend.get("numpy", [])}
    for spec, rows in per_backend.items():
        exact = spec == "numpy" or spec.startswith(("threaded", "process"))
        for r in rows:
            base = ref.get((r["integrand"], r["digits"]))
            if base is None:
                r["matches_numpy"] = False
            elif exact:
                r["matches_numpy"] = (
                    r["estimate"] == base["estimate"]
                    and r["errorest"] == base["errorest"]
                )
            else:
                r["matches_numpy"] = math.isclose(
                    r["estimate"], base["estimate"], rel_tol=1e-12, abs_tol=0.0
                ) and math.isclose(
                    r["errorest"], base["errorest"], rel_tol=1e-9,
                    abs_tol=1e-300,
                )

    return {
        "schema": 1,
        "suite": "pagani-backend-bench",
        "mode": "smoke" if smoke else ("full" if full_mode() else "quick"),
        "device_mb": BENCH_DEVICE_MB,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "skipped_backends": skipped,
        "backends": per_backend,
    }


def _write_bench_json(data: dict, out: Optional[Path], default_name: str) -> Path:
    """Write a benchmark payload as pretty JSON; return the path."""
    import json

    path = Path(out) if out is not None else RESULTS_DIR / default_name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def write_backend_bench(data: dict, out: Optional[Path] = None) -> Path:
    """Write the backend-benchmark payload as pretty JSON; return the path."""
    return _write_bench_json(data, out, BACKEND_BENCH_FILE)


def print_backend_bench(data: dict) -> None:
    """Aligned wall-time table with per-backend speedup over numpy."""
    backends = sorted(data["backends"])
    if not backends:
        print("no backends ran")
        return
    ref_rows = {
        (r["integrand"], r["digits"]): r
        for r in data["backends"].get("numpy", [])
    }
    keys: List[tuple] = []
    for spec in backends:
        for r in data["backends"][spec]:
            k = (r["integrand"], r["digits"])
            if k not in keys:
                keys.append(k)
    body = []
    for name, digits in keys:
        row = [name, digits]
        for spec in backends:
            match = [
                r for r in data["backends"][spec]
                if r["integrand"] == name and r["digits"] == digits
            ]
            if not match:
                row.append("-")
                continue
            r = match[0]
            cell = f"{r['wall_seconds'] * 1e3:.0f}ms"
            base = ref_rows.get((name, digits))
            if base is not None and spec != "numpy" and r["wall_seconds"] > 0:
                cell += f" ({base['wall_seconds'] / r['wall_seconds']:.2f}x)"
            if not r["converged"]:
                cell += " DNF"
            row.append(cell)
        body.append(row)
    print_table(
        f"Backend benchmark ({data['mode']} mode) — wall time, speedup vs numpy",
        ["integrand", "digits"] + backends,
        body,
    )


# ---------------------------------------------------------------------------
# Batched-execution benchmark (BENCH_batch.json)
#
# The batched multi-integrand layer (repro.batch) claims that interleaving
# many PAGANI runs over one shared backend beats running them back-to-back.
# This benchmark measures exactly that: the full six-family Genz suite at
# several dimensionalities, integrated once sequentially (a loop of
# integrate() calls) and once through integrate_many(), per backend.  The
# recorded speedup is the batched-vs-sequential wall-clock throughput
# ratio; on the numpy backend the per-member results are additionally
# checked bit-identical across the two modes.
# ---------------------------------------------------------------------------
BATCH_BENCH_FILE = "BENCH_batch.json"

#: tolerance/iteration budget for the batch workload; coarse enough that
#: every member converges at laptop scale, fine enough that the evaluate
#: sweep dominates wall time.
BATCH_REL_TOL = 1e-4
BATCH_MAX_ITERATIONS = 30


def batch_bench_members(smoke: bool = False) -> List[Integrand]:
    """The batch workload: all six Genz families × several dimensions."""
    from repro.integrands.genz import GenzFamily, make_genz

    dims = (2, 3) if smoke else (2, 3, 5, 6)
    families = (
        [GenzFamily.GAUSSIAN, GenzFamily.PRODUCT_PEAK]
        if smoke
        else list(GenzFamily)
    )
    return [
        make_genz(fam, ndim, seed=seed)
        for seed, (fam, ndim) in enumerate(
            (f, d) for f in families for d in dims
        )
    ]


def run_batch_bench(
    backends: Optional[Sequence[str]] = None, smoke: bool = False
) -> dict:
    """Time sequential vs batched execution per backend; return the payload."""
    import math as _math
    import platform
    import sys as _sys
    import time as _time

    from repro.api import integrate, integrate_many
    from repro.backends import (
        BackendUnavailableError,
        available_backends,
        get_backend,
    )
    from repro.cubature.rules import get_rule

    if backends is None:
        backends = available_backends()
    members = batch_bench_members(smoke=smoke)
    for f in members:  # warm the host-side rule cache so neither mode pays it
        get_rule(f.ndim)

    per_backend: Dict[str, dict] = {}
    skipped: List[str] = []
    for spec in backends:
        try:
            bk = get_backend(spec)
        except BackendUnavailableError as exc:
            print(f"skipping backend {spec!r}: {exc}", file=_sys.stderr)
            skipped.append(spec)
            continue

        t0 = _time.perf_counter()
        seq = [
            integrate(
                f, f.ndim, rel_tol=BATCH_REL_TOL, backend=bk,
                max_iterations=BATCH_MAX_ITERATIONS,
            )
            for f in members
        ]
        t_seq = _time.perf_counter() - t0

        t0 = _time.perf_counter()
        bat, stats = integrate_many(
            members, rel_tol=BATCH_REL_TOL, backend=bk,
            max_iterations=BATCH_MAX_ITERATIONS, return_stats=True,
        )
        t_bat = _time.perf_counter() - t0

        # Agreement contract: numpy batched must reproduce sequential bits
        # exactly; parallel backends run a different fused chunk grain and
        # are held to the cupy-style machine-precision contract.
        rows: List[dict] = []
        for f, rs, rb in zip(members, seq, bat):
            if bk.name == "numpy":
                matches = (
                    rs.estimate == rb.estimate
                    and rs.errorest == rb.errorest
                    and rs.iterations == rb.iterations
                )
            else:
                matches = _math.isclose(
                    rs.estimate, rb.estimate, rel_tol=1e-12, abs_tol=0.0
                ) and _math.isclose(
                    rs.errorest, rb.errorest, rel_tol=1e-9, abs_tol=1e-300
                )
            rows.append(
                {
                    "integrand": f.name,
                    "ndim": f.ndim,
                    "status": rb.status.value,
                    "converged": rb.converged,
                    "estimate": rb.estimate,
                    "errorest": rb.errorest,
                    "iterations": rb.iterations,
                    "sequential_wall_seconds": rs.wall_seconds,
                    "matches_sequential": matches,
                }
            )
        per_backend[spec] = {
            "sequential_seconds": t_seq,
            "batched_seconds": t_bat,
            "speedup": t_seq / t_bat if t_bat > 0 else float("inf"),
            "rounds": stats.rounds,
            "fused_chunks": stats.chunks_submitted,
            "members": rows,
        }

    return {
        "schema": 1,
        "suite": "pagani-batch-bench",
        "mode": "smoke" if smoke else "full",
        "rel_tol": BATCH_REL_TOL,
        "n_members": len(members),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "skipped_backends": skipped,
        "backends": per_backend,
    }


def write_batch_bench(data: dict, out: Optional[Path] = None) -> Path:
    """Write the batch-benchmark payload as pretty JSON; return the path."""
    return _write_bench_json(data, out, BATCH_BENCH_FILE)


def print_batch_bench(data: dict) -> None:
    body = []
    for spec in sorted(data["backends"]):
        d = data["backends"][spec]
        n_ok = sum(r["converged"] for r in d["members"])
        n_match = sum(r["matches_sequential"] for r in d["members"])
        body.append(
            [
                spec,
                f"{d['sequential_seconds']:.2f}s",
                f"{d['batched_seconds']:.2f}s",
                f"{d['speedup']:.2f}x",
                f"{n_ok}/{len(d['members'])}",
                f"{n_match}/{len(d['members'])}",
            ]
        )
    print_table(
        f"Batched vs sequential ({data['mode']}, {data['n_members']} Genz "
        f"members, rel_tol={data['rel_tol']:g})",
        ["backend", "sequential", "batched", "speedup", "converged", "agree"],
        body,
    )


# ---------------------------------------------------------------------------
# Service benchmark (BENCH_service.json)
#
# The integration service (repro.service) claims three things worth
# regression-gating: (1) a duplicate-heavy job mix is served ~K× faster
# with the result cache on (K = duplicate factor) because hits replay the
# cached IntegrationResult instead of recomputing; (2) those replays are
# bit-identical to cold fresh runs on the numpy backend; (3) under
# contention, completion order follows job priority (the weighted
# rotation).  This benchmark measures all three on the fig5/fig6 paper
# workloads (6D f6 is excluded: without the aligned initial split it is a
# documented memory-exhaustion case, not a serving workload).
# ---------------------------------------------------------------------------
SERVICE_BENCH_FILE = "BENCH_service.json"

#: duplicate factor of the job mix — every unique job appears this many
#: times, so a perfect cache turns K runs into 1 run + (K-1) replays.
SERVICE_DUPLICATE_FACTOR = 8
SERVICE_SMOKE_DUPLICATE_FACTOR = 3
SERVICE_MAX_CONCURRENT = 4


def service_bench_jobs(smoke: bool = False) -> List[dict]:
    """The unique jobs of the duplicate-heavy mix (jobs-file shape)."""
    if smoke:
        combos = [("3D-f4", 3, 2), ("3D-f3", 3, 1)]
    else:
        combos = [
            ("5D-f4", 3, 3),
            ("5D-f4", 4, 2),
            ("5D-f5", 3, 3),
            ("5D-f5", 4, 1),
            ("8D-f7", 3, 2),
        ]
    return [
        {
            "integrand": spec,
            "rel_tol": 10.0 ** -digits,
            "priority": priority,
            "label": f"{spec} d{digits}",
            "max_iterations": 35,
        }
        for spec, digits, priority in combos
    ]


def _run_service_mix(
    jobs: List[dict], cache: bool, waves: int = 1, shards: int = 1
) -> tuple:
    """Run the mix through a fresh service ``waves`` times.

    Returns ``(per_wave_handles, per_wave_walls, stats)``.  Wave 1 on a
    cache-enabled service exercises misses + in-flight coalescing; later
    waves are pure warm-cache replays.
    """
    import time as _time

    from repro.api import serve_jobs
    from repro.service import IntegrationService

    service = IntegrationService(
        max_concurrent=SERVICE_MAX_CONCURRENT, backend="numpy", cache=cache,
        shards=shards,
    )
    per_wave_handles, per_wave_walls = [], []
    try:
        for _ in range(waves):
            t0 = _time.perf_counter()
            per_wave_handles.append(serve_jobs(jobs, service=service))
            per_wave_walls.append(_time.perf_counter() - t0)
        stats = service.stats()
    finally:
        service.shutdown(wait=True)
    return per_wave_handles, per_wave_walls, stats


def run_service_bench(smoke: bool = False, shards: int = 1) -> dict:
    """Measure cache-hit speedup, bit-identity and priority order.

    ``shards`` serves every pass with that many worker rotations pulling
    from the shared queue/cache (the committed artifact uses 1; the
    sharded lane exists to evidence that the caching/priority claims are
    shard-count independent).
    """
    import platform
    import time as _time

    from repro.api import integrate
    from repro.integrands.catalog import named_integrand
    from repro.service import IntegrationService

    unique = service_bench_jobs(smoke=smoke)
    k = SERVICE_SMOKE_DUPLICATE_FACTOR if smoke else SERVICE_DUPLICATE_FACTOR
    # Interleave the copies (A B C A B C ...) so duplicates arrive while
    # their twin may still be in flight — exercising both cache hits and
    # in-flight coalescing, like real duplicate traffic would.
    mix = [dict(job) for _ in range(k) for job in unique]

    # Cold reference runs: plain integrate() calls, the bit-identity anchor.
    references = {}
    for job in unique:
        f = named_integrand(job["integrand"])
        references[job["label"]] = integrate(
            f, f.ndim, rel_tol=job["rel_tol"],
            max_iterations=job["max_iterations"],
        )

    (nocache_handles,), (nocache_wall,), nocache_stats = _run_service_mix(
        mix, cache=False, shards=shards
    )
    cached_waves, cached_walls, cached_stats = _run_service_mix(
        mix, cache=True, waves=2, shards=shards
    )
    cached_handles, replay_handles = cached_waves
    cached_wall, replay_wall = cached_walls

    def mismatches_vs_reference(handles) -> List[str]:
        bad = []
        for h in handles:
            ref = references[h.spec.label]
            res = h.result(timeout=0)
            if not (
                res.estimate == ref.estimate
                and res.errorest == ref.errorest
                and res.iterations == ref.iterations
                and res.neval == ref.neval
            ):
                bad.append(h.spec.label)
        return sorted(set(bad))

    cache_info = cached_stats["cache"]
    served_without_run = cache_info["hits"] + cached_stats["coalesced"]
    payload_runs = {
        "no_cache": {
            "wall_seconds": nocache_wall,
            "jobs_per_second": len(mix) / nocache_wall,
            "rounds": nocache_stats["rounds"],
        },
        # Wave 1: duplicates arrive while their twin is in flight —
        # served by misses + coalescing.  Wave 2 resubmits the whole mix
        # against the warm cache — every job is a pure LRU replay.
        "with_cache": {
            "wall_seconds": cached_wall,
            "jobs_per_second": len(mix) / cached_wall,
            "rounds": cached_stats["rounds"],
            "cache": cache_info,
            "coalesced": cached_stats["coalesced"],
            "served_without_recompute": served_without_run,
        },
        "warm_replay": {
            "wall_seconds": replay_wall,
            "jobs_per_second": len(mix) / replay_wall,
            "all_cache_hits": all(h.cache_hit for h in replay_handles),
        },
    }

    # Priority-order evidence: equal-work jobs, all live at once — the
    # weighted rotation must complete them in priority order.
    prio_spec, prio_digits = ("3D-f4", 3) if smoke else ("5D-f4", 4)
    priorities = [1, 2, 4, 8]
    service = IntegrationService(
        max_concurrent=len(priorities), backend="numpy", cache=False
    )
    try:
        prio_handles = {
            p: service.submit(
                prio_spec, rel_tol=10.0 ** -prio_digits, priority=p,
                max_iterations=35, label=f"prio{p}",
            )
            for p in priorities
        }
        service.wait_all()
    finally:
        service.shutdown(wait=True)
    completion_order = [
        p for p, h in sorted(
            prio_handles.items(), key=lambda kv: kv[1].stats.completion_index
        )
    ]

    return {
        "schema": 2,
        "suite": "pagani-service-bench",
        "mode": "smoke" if smoke else ("full" if full_mode() else "quick"),
        "generated_by": "PYTHONPATH=src python benchmarks/harness.py --service",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "backend": "numpy",
        "max_concurrent": SERVICE_MAX_CONCURRENT,
        "shards": shards,
        "duplicate_factor": k,
        "unique_jobs": unique,
        "n_jobs": len(mix),
        "runs": payload_runs,
        "cache_speedup": nocache_wall / cached_wall if cached_wall > 0 else float("inf"),
        "warm_replay_speedup": (
            nocache_wall / replay_wall if replay_wall > 0 else float("inf")
        ),
        "bit_identity": {
            "no_cache_mismatches": mismatches_vs_reference(nocache_handles),
            "with_cache_mismatches": mismatches_vs_reference(cached_handles),
            "warm_replay_mismatches": mismatches_vs_reference(replay_handles),
        },
        "priority_order": {
            "job": f"{prio_spec} d{prio_digits}",
            "priorities_submitted": priorities,
            "completion_order": completion_order,
            "in_priority_order": completion_order
            == sorted(priorities, reverse=True),
        },
    }


def write_service_bench(data: dict, out: Optional[Path] = None) -> Path:
    """Write the service-benchmark payload as pretty JSON; return the path."""
    return _write_bench_json(data, out, SERVICE_BENCH_FILE)


def print_service_bench(data: dict) -> None:
    runs = data["runs"]
    body = [
        [
            "no_cache",
            f"{runs['no_cache']['wall_seconds']:.2f}s",
            f"{runs['no_cache']['jobs_per_second']:.2f}",
            "-", "-",
        ],
        [
            "with_cache",
            f"{runs['with_cache']['wall_seconds']:.2f}s",
            f"{runs['with_cache']['jobs_per_second']:.2f}",
            f"{runs['with_cache']['cache']['hits']}"
            f"+{runs['with_cache']['coalesced']}c",
            f"{data['cache_speedup']:.2f}x",
        ],
        [
            "warm_replay",
            f"{runs['warm_replay']['wall_seconds']:.2f}s",
            f"{runs['warm_replay']['jobs_per_second']:.2f}",
            "all",
            f"{data['warm_replay_speedup']:.0f}x",
        ],
    ]
    print_table(
        f"Service benchmark ({data['mode']}, {data['n_jobs']} jobs = "
        f"{len(data['unique_jobs'])} unique x{data['duplicate_factor']}, "
        f"max_concurrent={data['max_concurrent']})",
        ["pass", "wall", "jobs/s", "hits", "speedup"],
        body,
    )
    prio = data["priority_order"]
    print(
        f"priority completion order: {prio['completion_order']} "
        f"({'OK' if prio['in_priority_order'] else 'OUT OF ORDER'})"
    )
    bad = sorted(
        set(
            data["bit_identity"]["no_cache_mismatches"]
            + data["bit_identity"]["with_cache_mismatches"]
            + data["bit_identity"]["warm_replay_mismatches"]
        )
    )
    print(
        "bit-identity vs cold integrate(): "
        + ("OK" if not bad else f"MISMATCH {bad}")
    )


# ---------------------------------------------------------------------------
# HTTP service benchmark (BENCH_http.json)
#
# The HTTP front end (repro.service.http) + durable store
# (repro.service.store) claim: a duplicate-heavy traffic trace served
# over HTTP hits the content-addressed cache, and after a full server
# restart the *durable* tier keeps serving those duplicates bit-for-bit
# — no recomputation, no numeric drift across the process boundary.
# The benchmark drives three waves of the same duplicate-heavy trace
# through real HTTP requests:
#
#   cold          a fresh server + empty cache dir: uniques compute,
#                 duplicates coalesce/hit the LRU;
#   warm          same server, trace replayed: pure LRU replays;
#   restart_warm  the server is STOPPED and a new one started on the
#                 same cache dir (empty LRU): replays come from SQLite.
#
# Every result is checked bit-for-bit (float.hex fields over the wire)
# against cold plain integrate() runs.
# ---------------------------------------------------------------------------
HTTP_BENCH_FILE = "BENCH_http.json"

#: smoke trace: 2 unique jobs x this = 10 requests/wave, 20 over the
#: cold+warm waves the CI lane replays against one server instance.
HTTP_SMOKE_DUPLICATE_FACTOR = 5

#: claims gated by --http (and by the committed-artifact test)
HTTP_BENCH_MIN_WARM_HIT_RATE = 0.5
HTTP_BENCH_MIN_RESTART_HIT_RATE = 0.9


def _http_json(method: str, url: str, body: Optional[dict] = None) -> tuple:
    """One JSON request against the bench server; (status, payload)."""
    import json
    import urllib.error
    import urllib.request

    req = urllib.request.Request(
        url, method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _run_http_wave(server, mix: List[dict], references: dict) -> dict:
    """POST the whole trace, poll every result, verify bit-identity."""
    import time as _time

    from repro.service.store import result_to_payload

    t0 = _time.perf_counter()
    job_ids = []
    for job in mix:
        code, body = _http_json("POST", server.url + "/v1/jobs", job)
        if code != 202:
            raise RuntimeError(f"POST /v1/jobs -> {code}: {body}")
        job_ids.append(body["job_id"])
    results = []
    for jid in job_ids:
        while True:
            code, body = _http_json(
                "GET", f"{server.url}/v1/jobs/{jid}/result"
            )
            if code == 200:
                results.append(body)
                break
            if code != 409:
                raise RuntimeError(f"job {jid}: result -> {code}: {body}")
            _time.sleep(0.02)
    wall = _time.perf_counter() - t0

    mismatches = []
    for job, res in zip(mix, results):
        ref_hex = result_to_payload(references[job["label"]])
        got_hex = res["result_hex"]
        if not (
            got_hex["estimate"] == ref_hex["estimate"]
            and got_hex["errorest"] == ref_hex["errorest"]
            and got_hex["iterations"] == ref_hex["iterations"]
            and got_hex["neval"] == ref_hex["neval"]
        ):
            mismatches.append(job["label"])
    hits = sum(1 for r in results if r["cache_hit"])
    return {
        "wall_seconds": wall,
        "jobs_per_second": len(mix) / wall if wall > 0 else float("inf"),
        "requests": len(mix),
        "cache_hits": hits,
        "cache_hit_fraction": hits / len(mix),
        "fresh_runs": len(mix) - hits,
        "all_converged": all(r["result"]["converged"] for r in results),
        "replay_mismatches": sorted(set(mismatches)),
    }


def run_http_bench(smoke: bool = False) -> dict:
    """Drive the cold/warm/restart-warm HTTP traffic-trace benchmark."""
    import platform
    import shutil
    import tempfile

    from repro.api import integrate, serve_http
    from repro.integrands.catalog import named_integrand

    unique = service_bench_jobs(smoke=smoke)
    k = HTTP_SMOKE_DUPLICATE_FACTOR if smoke else SERVICE_DUPLICATE_FACTOR
    # Interleaved duplicates (A B A B ...): the cold wave exercises both
    # in-flight coalescing and LRU hits, like real duplicate traffic.
    mix = [dict(job) for _ in range(k) for job in unique]

    references = {}
    for job in unique:
        f = named_integrand(job["integrand"])
        references[job["label"]] = integrate(
            f, f.ndim, rel_tol=job["rel_tol"],
            max_iterations=job["max_iterations"],
        )

    cache_dir = tempfile.mkdtemp(prefix="pagani-http-bench-")
    server_kwargs = dict(
        host="127.0.0.1", port=0, max_concurrent=SERVICE_MAX_CONCURRENT,
        backend="numpy", cache_dir=cache_dir,
        max_queued=len(mix) + 8,
    )
    try:
        server = serve_http(**server_kwargs)
        try:
            cold = _run_http_wave(server, mix, references)
            warm = _run_http_wave(server, mix, references)
            _, first_metrics = _http_json("GET", server.url + "/metrics")
        finally:
            server.close()

        # Restart: a brand-new process-equivalent — fresh service, fresh
        # LRU — pointed at the same cache dir.  Replays must now come
        # from the durable SQLite tier.
        server = serve_http(**server_kwargs)
        try:
            restart_warm = _run_http_wave(server, mix, references)
            _, restart_metrics = _http_json("GET", server.url + "/metrics")
        finally:
            server.close()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    cache_stats = restart_metrics["service"]["cache"]
    restart_warm["durable_hits"] = cache_stats["durable_hits"]
    restart_warm["durable_entries"] = cache_stats["durable"]["entries"]

    return {
        "schema": 1,
        "suite": "pagani-http-bench",
        "mode": "smoke" if smoke else ("full" if full_mode() else "quick"),
        "generated_by": "PYTHONPATH=src python benchmarks/harness.py --http",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "backend": "numpy",
        "max_concurrent": SERVICE_MAX_CONCURRENT,
        "duplicate_factor": k,
        "unique_jobs": unique,
        "n_jobs_per_wave": len(mix),
        "waves": {
            "cold": cold,
            "warm": warm,
            "restart_warm": restart_warm,
        },
        "first_server_metrics": {
            "http": first_metrics["http"],
            "cache": first_metrics["service"]["cache"],
            "coalesced": first_metrics["service"]["coalesced"],
        },
        "warm_speedup": (
            cold["wall_seconds"] / warm["wall_seconds"]
            if warm["wall_seconds"] > 0 else float("inf")
        ),
        "restart_warm_speedup": (
            cold["wall_seconds"] / restart_warm["wall_seconds"]
            if restart_warm["wall_seconds"] > 0 else float("inf")
        ),
        "expectation": {
            "min_warm_hit_rate": HTTP_BENCH_MIN_WARM_HIT_RATE,
            "min_restart_hit_rate": HTTP_BENCH_MIN_RESTART_HIT_RATE,
        },
    }


def http_bench_problems(data: dict) -> List[str]:
    """The claims the --http run (and CI) must uphold; [] when clean."""
    problems = []
    waves = data["waves"]
    for name, wave in waves.items():
        if not wave["all_converged"]:
            problems.append(f"{name} wave had non-converged jobs (DNF)")
        if wave["replay_mismatches"]:
            problems.append(
                f"{name} wave disagrees with cold integrate(): "
                f"{wave['replay_mismatches']}"
            )
    exp = data["expectation"]
    if waves["warm"]["cache_hit_fraction"] < exp["min_warm_hit_rate"]:
        problems.append(
            f"warm wave hit rate {waves['warm']['cache_hit_fraction']:.2f} "
            f"below {exp['min_warm_hit_rate']:.2f}"
        )
    restart = waves["restart_warm"]
    if restart["cache_hit_fraction"] < exp["min_restart_hit_rate"]:
        problems.append(
            f"restart-warm hit rate {restart['cache_hit_fraction']:.2f} "
            f"below {exp['min_restart_hit_rate']:.2f} — the durable store "
            "did not survive the restart"
        )
    if restart["durable_hits"] < len(data["unique_jobs"]):
        problems.append(
            f"only {restart['durable_hits']} durable hits after restart "
            f"(expected >= {len(data['unique_jobs'])} — one per unique job)"
        )
    return problems


def write_http_bench(data: dict, out: Optional[Path] = None) -> Path:
    """Write the HTTP-benchmark payload as pretty JSON; return the path."""
    return _write_bench_json(data, out, HTTP_BENCH_FILE)


def print_http_bench(data: dict) -> None:
    waves = data["waves"]
    body = []
    for name in ("cold", "warm", "restart_warm"):
        w = waves[name]
        body.append([
            name,
            f"{w['wall_seconds']:.2f}s",
            f"{w['jobs_per_second']:.2f}",
            f"{w['cache_hit_fraction']:.0%}",
            str(w["fresh_runs"]),
            "OK" if not w["replay_mismatches"] else "MISMATCH",
        ])
    print_table(
        f"HTTP service benchmark ({data['mode']}, "
        f"{data['n_jobs_per_wave']} jobs/wave = "
        f"{len(data['unique_jobs'])} unique x{data['duplicate_factor']})",
        ["wave", "wall", "jobs/s", "hit rate", "fresh", "bits"],
        body,
    )
    restart = waves["restart_warm"]
    print(
        f"restart-warm wave: {restart['durable_hits']} durable-store hits, "
        f"{restart['durable_entries']} entries on disk, "
        f"{data['restart_warm_speedup']:.0f}x vs cold"
    )


# ---------------------------------------------------------------------------
# Process-backend benchmark (BENCH_process.json)
#
# The process backend (repro.backends.process) claims real multi-core
# scaling on the fig5/fig6 multi-integrand workload: many PAGANI runs
# batched through integrate_many, their fused evaluate chunks executed by
# a pool of worker processes with no GIL in the way.  This benchmark
# times that workload once per host backend (numpy / threaded / process)
# and records the speedup over the numpy reference, plus the two
# numerics contracts: plain integrate() on the process backend is
# bit-identical to numpy (same chunk decomposition, conformance-suite
# contract), and the batched results agree with sequential numpy runs to
# machine precision (the fused-grain contract threaded already has).
#
# The headline >=3x-over-numpy expectation only applies on hosts with
# >= PROCESS_BENCH_MIN_CORES cores — the artifact records the host core
# count, and the regression test gates on it (a 1-core container can
# regenerate the artifact honestly; a multi-core runner must show the
# speedup).
# ---------------------------------------------------------------------------
PROCESS_BENCH_FILE = "BENCH_process.json"

#: the speedup expectation is only enforced at or above this core count
PROCESS_BENCH_MIN_CORES = 4
PROCESS_BENCH_MIN_SPEEDUP = 3.0

PROCESS_REL_TOL = 1e-4
PROCESS_MAX_ITERATIONS = 35


def process_bench_members(smoke: bool = False) -> List[Integrand]:
    """The fig5/fig6 multi-integrand workload, by catalogue spec.

    Members carry their catalogue specs, so the process backend ships
    every chunk to the worker pool.  (6D f6 is excluded for the same
    reason the service bench excludes it: without the aligned initial
    split it is a documented memory-exhaustion case, not a throughput
    workload.)
    """
    from repro.integrands.catalog import named_integrand

    specs = ["3d-f4"] * 2 if smoke else ["5d-f4", "5d-f5", "8d-f7"] * 3
    return [named_integrand(spec) for spec in specs]


def run_process_bench(
    backends: Optional[Sequence[str]] = None, smoke: bool = False
) -> dict:
    """Time the multi-integrand workload per backend; return the payload."""
    import math as _math
    import platform
    import sys as _sys
    import time as _time

    from repro.api import integrate, integrate_many
    from repro.backends import BackendUnavailableError, get_backend
    from repro.cubature.rules import get_rule

    if backends is None:
        backends = ["numpy", "threaded", "process"]
    members = process_bench_members(smoke=smoke)
    for f in members:  # warm the host-side rule cache so no mode pays it
        get_rule(f.ndim)

    # Sequential numpy reference runs: the agreement anchor for every
    # backend's batched results.
    references = [
        integrate(
            f, f.ndim, rel_tol=PROCESS_REL_TOL,
            max_iterations=PROCESS_MAX_ITERATIONS,
        )
        for f in members
    ]

    per_backend: Dict[str, dict] = {}
    skipped: List[str] = []
    for spec in backends:
        try:
            bk = get_backend(spec)
        except BackendUnavailableError as exc:
            print(f"skipping backend {spec!r}: {exc}", file=_sys.stderr)
            skipped.append(spec)
            continue

        t0 = _time.perf_counter()
        results = integrate_many(
            members, rel_tol=PROCESS_REL_TOL, backend=bk,
            max_iterations=PROCESS_MAX_ITERATIONS,
        )
        wall = _time.perf_counter() - t0

        rows: List[dict] = []
        for f, ref, res in zip(members, references, results):
            if bk.name == "numpy":
                # reference chunk decomposition => bit-identical
                matches = (
                    res.estimate == ref.estimate
                    and res.errorest == ref.errorest
                )
            else:
                # fused chunk grain => machine-precision contract
                matches = _math.isclose(
                    res.estimate, ref.estimate, rel_tol=1e-12, abs_tol=0.0
                ) and _math.isclose(
                    res.errorest, ref.errorest, rel_tol=1e-9, abs_tol=1e-300
                )
            rows.append(
                {
                    "integrand": f.spec,
                    "status": res.status.value,
                    "converged": res.converged,
                    "estimate": res.estimate,
                    "errorest": res.errorest,
                    "iterations": res.iterations,
                    "matches_numpy": matches,
                }
            )
        per_backend[spec] = {
            "wall_seconds": wall,
            "all_match": all(r["matches_numpy"] for r in rows),
            "members": rows,
        }

    numpy_wall = per_backend.get("numpy", {}).get("wall_seconds")
    for spec, d in per_backend.items():
        d["speedup_vs_numpy"] = (
            numpy_wall / d["wall_seconds"]
            if numpy_wall and d["wall_seconds"] > 0
            else None
        )

    # The conformance-suite contract, re-evidenced in the artifact: a
    # plain integrate() on the process backend (reference chunk
    # decomposition) reproduces the numpy bits exactly.
    plain_bit_identical = None
    if "process" in per_backend:
        probe = members[0]
        plain = integrate(
            probe, probe.ndim, rel_tol=PROCESS_REL_TOL,
            max_iterations=PROCESS_MAX_ITERATIONS, backend="process",
        )
        plain_bit_identical = (
            plain.estimate == references[0].estimate
            and plain.errorest == references[0].errorest
        )

    cpus = os.cpu_count() or 1
    return {
        "schema": 1,
        "suite": "pagani-process-bench",
        "mode": "smoke" if smoke else ("full" if full_mode() else "quick"),
        "generated_by": "PYTHONPATH=src python benchmarks/harness.py --process",
        "rel_tol": PROCESS_REL_TOL,
        "max_iterations": PROCESS_MAX_ITERATIONS,
        "workload": [f.spec for f in members],
        "n_members": len(members),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": cpus,
        },
        "skipped_backends": skipped,
        "backends": per_backend,
        "plain_integrate_bit_identical": plain_bit_identical,
        "expectation": {
            "min_speedup_vs_numpy": PROCESS_BENCH_MIN_SPEEDUP,
            "min_cores": PROCESS_BENCH_MIN_CORES,
            "enforced_on_this_host": cpus >= PROCESS_BENCH_MIN_CORES,
        },
    }


def write_process_bench(data: dict, out: Optional[Path] = None) -> Path:
    """Write the process-benchmark payload as pretty JSON; return the path."""
    return _write_bench_json(data, out, PROCESS_BENCH_FILE)


def print_process_bench(data: dict) -> None:
    body = []
    for spec in sorted(data["backends"]):
        d = data["backends"][spec]
        n_ok = sum(r["converged"] for r in d["members"])
        speedup = d["speedup_vs_numpy"]
        body.append(
            [
                spec,
                f"{d['wall_seconds']:.2f}s",
                f"{speedup:.2f}x" if speedup else "-",
                f"{n_ok}/{len(d['members'])}",
                "yes" if d["all_match"] else "NO",
            ]
        )
    print_table(
        f"Process-backend benchmark ({data['mode']}, "
        f"{data['n_members']} members, rel_tol={data['rel_tol']:g}, "
        f"{data['host']['cpus']} cores)",
        ["backend", "wall", "vs numpy", "converged", "agree"],
        body,
    )
    exp = data["expectation"]
    if exp["enforced_on_this_host"]:
        got = (data["backends"].get("process") or {}).get("speedup_vs_numpy")
        verdict = (
            "OK" if got is not None and got >= exp["min_speedup_vs_numpy"]
            else "BELOW EXPECTATION"
        )
        print(f"speedup expectation (>= {exp['min_speedup_vs_numpy']}x on "
              f">= {exp['min_cores']} cores): {verdict}")
    else:
        print(f"host has {data['host']['cpus']} core(s) < "
              f"{exp['min_cores']}: speedup expectation not enforced")


# ---------------------------------------------------------------------------
# Adaptive-routing benchmark (--routing): BENCH_routing.json.
#
# Two traffic shapes bound the policy from both sides: a *tiny-job
# trace* (where a pinned pool pays dispatch per job and numpy should
# win) and the *fig5/fig6 fused sweep* (where the pool should win on a
# multi-core host).  On each, "auto" must land within
# ROUTING_AUTO_MAX_RATIO of the best fixed backend — the router's whole
# value is not having to know which shape is coming.
#
# The same artifact times the process backend's two IPC transports
# (shared-memory arenas vs per-chunk pickling) at a fixed width; the
# shm-at-least-as-fast expectation is enforced on >=
# ROUTING_IPC_MIN_CORES cores (a 1-core container records the
# measurement honestly but cannot demonstrate pool-side gains).
# ---------------------------------------------------------------------------
ROUTING_BENCH_FILE = "BENCH_routing.json"

#: auto wall clock may exceed the best fixed backend by at most this
#: factor (smoke runs relax it: CI runner timing noise on sub-second
#: traces is larger than the margin under test)
ROUTING_AUTO_MAX_RATIO = 1.10
ROUTING_AUTO_MAX_RATIO_SMOKE = 1.50

ROUTING_IPC_MIN_CORES = 4
ROUTING_TINY_REL_TOL = 1e-3


def routing_tiny_trace(smoke: bool = False) -> List[Integrand]:
    """Small-job traffic: the shape that punishes a pinned pool."""
    from repro.integrands.catalog import named_integrand

    specs = (
        ["3d-f4"] * 3
        if smoke
        else ["2d-f4", "3d-f4", "3d-f3", "2d-f2", "3d-f2"] * 2
    )
    return [named_integrand(spec) for spec in specs]


def _routing_backend_close(bk) -> None:
    close = getattr(bk, "close", None)
    if callable(close):
        close()


def _time_tiny_trace(members, backend) -> dict:
    """Sequential integrate() per member on one pinned backend instance."""
    import time as _time

    from repro.api import integrate

    t0 = _time.perf_counter()
    results = [
        integrate(f, f.ndim, rel_tol=ROUTING_TINY_REL_TOL, backend=backend)
        for f in members
    ]
    wall = _time.perf_counter() - t0
    return {
        "wall_seconds": wall,
        "converged_all": all(r.converged for r in results),
        "results": results,
    }


def _time_fused_sweep(members, backend) -> dict:
    """One integrate_many() batch on one backend."""
    import time as _time

    from repro.api import integrate_many

    t0 = _time.perf_counter()
    results = integrate_many(
        members, rel_tol=PROCESS_REL_TOL, backend=backend,
        max_iterations=PROCESS_MAX_ITERATIONS,
    )
    wall = _time.perf_counter() - t0
    return {
        "wall_seconds": wall,
        "converged_all": all(r.converged for r in results),
        "results": results,
    }


def _routing_scenario(members, timer, fixed_specs) -> dict:
    """Time fixed backends and "auto" on one traffic shape."""
    import math as _math
    import sys as _sys

    from repro.backends import BackendUnavailableError, get_backend

    fixed: Dict[str, dict] = {}
    reference = None
    for spec in fixed_specs:
        try:
            bk = get_backend(spec)
        except BackendUnavailableError as exc:
            print(f"skipping backend {spec!r}: {exc}", file=_sys.stderr)
            continue
        try:
            run = timer(members, bk)
        finally:
            _routing_backend_close(bk)
        if spec == "numpy":
            reference = run["results"]
        fixed[spec] = {
            "wall_seconds": run["wall_seconds"],
            "converged_all": run["converged_all"],
        }

    auto_run = timer(members, "auto")
    agree = None
    if reference is not None:
        agree = all(
            _math.isclose(a.estimate, r.estimate, rel_tol=1e-12, abs_tol=0.0)
            and _math.isclose(
                a.errorest, r.errorest, rel_tol=1e-9, abs_tol=1e-300
            )
            for a, r in zip(auto_run["results"], reference)
        )
    best_fixed = min(fixed, key=lambda s: fixed[s]["wall_seconds"])
    ratio = auto_run["wall_seconds"] / fixed[best_fixed]["wall_seconds"]
    return {
        "workload": [f.spec for f in members],
        "fixed": fixed,
        "auto": {
            "wall_seconds": auto_run["wall_seconds"],
            "converged_all": auto_run["converged_all"],
            "agrees_with_numpy": agree,
        },
        "best_fixed": best_fixed,
        "auto_vs_best_ratio": ratio,
    }


def _routing_ipc_compare(members, width: int) -> dict:
    """shm vs per-chunk pickle transport at one real pool width."""
    from repro.backends.process import (
        ProcessNumpyBackend,
        process_pool_available,
        shared_memory_available,
    )

    if not process_pool_available():
        return {"available": False, "reason": "no process pool on this host"}
    if not shared_memory_available():
        return {"available": False, "reason": "no shared memory on this host"}
    out: Dict[str, object] = {"available": True, "width": width}
    for ipc in ("shm", "pickle"):
        bk = ProcessNumpyBackend(num_workers=width, ipc=ipc)
        try:
            run = _time_fused_sweep(members, bk)
        finally:
            bk.close()
        neval = sum(r.neval for r in run["results"])
        out[ipc] = {
            "wall_seconds": run["wall_seconds"],
            "converged_all": run["converged_all"],
            "neval": neval,
            "s_per_meval": run["wall_seconds"] / (neval / 1e6),
        }
    out["shm_speedup_vs_pickle"] = (
        out["pickle"]["s_per_meval"] / out["shm"]["s_per_meval"]
    )
    return out


def run_routing_bench(smoke: bool = False) -> dict:
    """Benchmark the auto routing policy and the shm IPC transport."""
    import platform

    from repro.backends.process import process_pool_available
    from repro.backends.routing import shared_router
    from repro.cubature.rules import get_rule

    tiny = routing_tiny_trace(smoke=smoke)
    sweep = process_bench_members(smoke=smoke)
    for f in tiny + sweep:
        get_rule(f.ndim)

    fixed_specs = ["numpy", "threaded"]
    if process_pool_available():
        fixed_specs.append("process")

    scenarios = {
        "tiny_trace": _routing_scenario(tiny, _time_tiny_trace, fixed_specs),
        "fused_sweep": _routing_scenario(sweep, _time_fused_sweep, fixed_specs),
    }
    cpus = os.cpu_count() or 1
    ipc = _routing_ipc_compare(sweep, width=max(2, cpus))

    max_ratio = ROUTING_AUTO_MAX_RATIO_SMOKE if smoke else ROUTING_AUTO_MAX_RATIO
    return {
        "schema": 1,
        "suite": "pagani-routing-bench",
        "mode": "smoke" if smoke else ("full" if full_mode() else "quick"),
        "generated_by": "PYTHONPATH=src python benchmarks/harness.py --routing",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": cpus,
        },
        "router": shared_router().stats(),
        "scenarios": scenarios,
        "ipc": ipc,
        "expectation": {
            "auto_max_ratio_vs_best_fixed": max_ratio,
            "ipc_min_cores": ROUTING_IPC_MIN_CORES,
            "ipc_enforced_on_this_host": (
                bool(ipc.get("available")) and cpus >= ROUTING_IPC_MIN_CORES
            ),
        },
    }


def routing_bench_problems(data: dict) -> List[str]:
    """Hard-failure list for --routing (shared with the CI gate)."""
    problems: List[str] = []
    max_ratio = data["expectation"]["auto_max_ratio_vs_best_fixed"]
    for name, sc in data["scenarios"].items():
        if not sc["auto"]["converged_all"]:
            problems.append(f"{name}: auto run did not converge")
        if sc["auto"]["agrees_with_numpy"] is False:
            problems.append(f"{name}: auto results disagree with numpy")
        for spec, d in sc["fixed"].items():
            if not d["converged_all"]:
                problems.append(f"{name}/{spec}: fixed run did not converge")
        if sc["auto_vs_best_ratio"] > max_ratio:
            problems.append(
                f"{name}: auto {sc['auto']['wall_seconds']:.3f}s is "
                f"{sc['auto_vs_best_ratio']:.2f}x the best fixed backend "
                f"({sc['best_fixed']}), above the {max_ratio}x bound"
            )
    ipc = data["ipc"]
    if ipc.get("available"):
        for t in ("shm", "pickle"):
            if not ipc[t]["converged_all"]:
                problems.append(f"ipc/{t}: run did not converge")
        if (
            data["expectation"]["ipc_enforced_on_this_host"]
            and ipc["shm_speedup_vs_pickle"] < 1.0
        ):
            problems.append(
                f"shm transport is slower than pickle "
                f"({ipc['shm_speedup_vs_pickle']:.2f}x) on a "
                f"{data['host']['cpus']}-core host"
            )
    return problems


def write_routing_bench(data: dict, out: Optional[Path] = None) -> Path:
    """Write the routing-benchmark payload as pretty JSON; return the path."""
    return _write_bench_json(data, out, ROUTING_BENCH_FILE)


def print_routing_bench(data: dict) -> None:
    body = []
    for name, sc in data["scenarios"].items():
        for spec in sorted(sc["fixed"]):
            d = sc["fixed"][spec]
            body.append([
                name, spec, f"{d['wall_seconds']:.3f}s", "-",
                "yes" if d["converged_all"] else "NO",
            ])
        body.append([
            name, "auto", f"{sc['auto']['wall_seconds']:.3f}s",
            f"{sc['auto_vs_best_ratio']:.2f}x vs {sc['best_fixed']}",
            "yes" if sc["auto"]["converged_all"] else "NO",
        ])
    print_table(
        f"Adaptive-routing benchmark ({data['mode']}, "
        f"{data['host']['cpus']} cores)",
        ["scenario", "backend", "wall", "auto ratio", "converged"],
        body,
    )
    ipc = data["ipc"]
    if ipc.get("available"):
        print(
            f"process IPC at width {ipc['width']}: "
            f"shm {ipc['shm']['s_per_meval']:.4f} s/Meval vs pickle "
            f"{ipc['pickle']['s_per_meval']:.4f} s/Meval "
            f"({ipc['shm_speedup_vs_pickle']:.2f}x)"
        )
    else:
        print(f"process IPC comparison skipped: {ipc.get('reason')}")
    exp = data["expectation"]
    if not exp["ipc_enforced_on_this_host"]:
        print(
            f"host has {data['host']['cpus']} core(s) < "
            f"{exp['ipc_min_cores']}: shm-vs-pickle expectation not enforced"
        )


# ---------------------------------------------------------------------------
# Compiled-kernel benchmark (--kernels): BENCH_kernels.json.
#
# The compiled lane (repro.backends.compiled) claims that fusing the
# per-chunk sweep arithmetic into one parallel nogil Numba kernel beats
# the BLAS/ufunc reference on the fig5/fig6 6D workload.  This benchmark
# times that workload once per lane (numpy reference vs numba) and
# records wall-clock s/Meval, the speedup, and the machine-precision
# agreement between the two (the conformance suite's ULP contract,
# re-evidenced in the artifact).
#
# The >= KERNELS_BENCH_MIN_SPEEDUP expectation only applies on hosts
# with >= KERNELS_BENCH_MIN_CORES cores AND numba installed: the
# artifact records both facts, and the regression gate honours
# ``expectation.enforced_on_this_host`` — a 1-core or numba-less
# container regenerates the artifact honestly without failing.
# ---------------------------------------------------------------------------
KERNELS_BENCH_FILE = "BENCH_kernels.json"

#: the speedup expectation is only enforced at or above this core count
KERNELS_BENCH_MIN_CORES = 4
KERNELS_BENCH_MIN_SPEEDUP = 1.5

KERNELS_MAX_ITERATIONS = 35


def kernels_bench_workloads(smoke: bool = False) -> Dict[str, tuple]:
    """``{name: (integrand, digit_list)}`` for the kernel-lane benchmark.

    The fig5/fig6 6D workload (f6 with the boundary-aligned initial
    split) plus the fig6 5D member — high point counts per region, where
    the fused kernel's single memory pass pays off.  ``--smoke`` shrinks
    it to one tiny workload for CI.
    """
    if smoke:
        return {"3D f4": (f4_gaussian(3), [3])}
    return {
        "6D f6": (f6_discontinuous(6), digits_for("6D f6")),
        "5D f5": (f5_c0(5), digits_for("5D f5")),
    }


def run_kernels_bench(smoke: bool = False) -> dict:
    """Time the workload on the numpy and numba lanes; return the payload."""
    import math as _math
    import platform
    import sys as _sys
    import time as _time

    from repro.backends import BackendUnavailableError, get_backend

    workloads = kernels_bench_workloads(smoke=smoke)

    lanes = ["numpy", "numba"]
    per_lane: Dict[str, List[dict]] = {}
    skipped: List[str] = []
    jit_warmup_seconds = None
    for spec in lanes:
        try:
            bk = get_backend(spec)
        except BackendUnavailableError as exc:
            print(f"skipping lane {spec!r}: {exc}", file=_sys.stderr)
            skipped.append(spec)
            continue
        if spec == "numba":
            # Pay the one-time JIT compile outside the timed runs (it is
            # cached per process) and record what it cost.
            t0 = _time.perf_counter()
            warm_cfg = PaganiConfig(
                rel_tol=1e-3, max_iterations=2, backend=bk
            )
            PaganiIntegrator(warm_cfg).integrate(f4_gaussian(3), 3)
            jit_warmup_seconds = _time.perf_counter() - t0
        rows: List[dict] = []
        for name, (integrand, digit_list) in workloads.items():
            splits = INITIAL_SPLITS.get(name)
            for digits in digit_list:
                cfg = PaganiConfig(
                    rel_tol=10.0**-digits,
                    relerr_filtering=integrand.sign_definite,
                    max_iterations=KERNELS_MAX_ITERATIONS,
                    backend=bk,
                )
                if splits is not None:
                    cfg.initial_splits = splits
                res = PaganiIntegrator(cfg, device=bench_device()).integrate(
                    integrand, integrand.ndim
                )
                rows.append(
                    {
                        "integrand": name,
                        "digits": digits,
                        "converged": res.converged,
                        "status": res.status.value,
                        "estimate": res.estimate,
                        "errorest": res.errorest,
                        "wall_seconds": res.wall_seconds,
                        "neval": res.neval,
                        "s_per_meval": (
                            res.wall_seconds / (res.neval / 1e6)
                            if res.neval else None
                        ),
                    }
                )
        per_lane[spec] = rows

    # ULP agreement + per-row speedup vs the numpy lane.
    ref = {(r["integrand"], r["digits"]): r for r in per_lane.get("numpy", [])}
    for spec, rows in per_lane.items():
        for r in rows:
            base = ref.get((r["integrand"], r["digits"]))
            if base is None:
                r["matches_numpy"] = spec == "numpy"
                r["speedup_vs_numpy"] = None
                continue
            if spec == "numpy":
                r["matches_numpy"] = True
            else:
                r["matches_numpy"] = _math.isclose(
                    r["estimate"], base["estimate"], rel_tol=1e-12, abs_tol=0.0
                ) and _math.isclose(
                    r["errorest"], base["errorest"], rel_tol=1e-9,
                    abs_tol=1e-300,
                )
            r["speedup_vs_numpy"] = (
                base["wall_seconds"] / r["wall_seconds"]
                if r["wall_seconds"] > 0 else None
            )

    def _median_speedup(rows: List[dict]) -> Optional[float]:
        vals = sorted(
            r["speedup_vs_numpy"] for r in rows
            if r["speedup_vs_numpy"] is not None
        )
        return vals[len(vals) // 2] if vals else None

    cpus = os.cpu_count() or 1
    numba_ran = "numba" in per_lane
    return {
        "schema": 1,
        "suite": "pagani-kernels-bench",
        "mode": "smoke" if smoke else ("full" if full_mode() else "quick"),
        "generated_by": "PYTHONPATH=src python benchmarks/harness.py --kernels",
        "device_mb": BENCH_DEVICE_MB,
        "max_iterations": KERNELS_MAX_ITERATIONS,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": cpus,
        },
        "jit_warmup_seconds": jit_warmup_seconds,
        "skipped_lanes": skipped,
        "lanes": per_lane,
        "numba_median_speedup_vs_numpy": (
            _median_speedup(per_lane["numba"]) if numba_ran else None
        ),
        "expectation": {
            "min_speedup_vs_numpy": KERNELS_BENCH_MIN_SPEEDUP,
            "min_cores": KERNELS_BENCH_MIN_CORES,
            "enforced_on_this_host": (
                numba_ran and cpus >= KERNELS_BENCH_MIN_CORES
            ),
        },
    }


def kernels_bench_problems(data: dict) -> List[str]:
    """Hard-failure list for --kernels (shared with the CI gate)."""
    problems: List[str] = []
    for spec, rows in data["lanes"].items():
        for r in rows:
            if not r["converged"]:
                problems.append(
                    f"{spec}/{r['integrand']} d{r['digits']}: DNF"
                )
            if not r["matches_numpy"]:
                problems.append(
                    f"{spec}/{r['integrand']} d{r['digits']}: disagrees "
                    "with the numpy lane beyond the ULP contract"
                )
    exp = data["expectation"]
    if exp["enforced_on_this_host"]:
        got = data["numba_median_speedup_vs_numpy"]
        if got is None or got < exp["min_speedup_vs_numpy"]:
            problems.append(
                f"numba median speedup "
                f"{'-' if got is None else f'{got:.2f}x'} below the "
                f"{exp['min_speedup_vs_numpy']}x expectation on a "
                f"{data['host']['cpus']}-core host"
            )
    return problems


def write_kernels_bench(data: dict, out: Optional[Path] = None) -> Path:
    """Write the kernel-benchmark payload as pretty JSON; return the path."""
    return _write_bench_json(data, out, KERNELS_BENCH_FILE)


def print_kernels_bench(data: dict) -> None:
    body = []
    for spec in sorted(data["lanes"]):
        for r in data["lanes"][spec]:
            speedup = r["speedup_vs_numpy"]
            body.append(
                [
                    spec,
                    r["integrand"],
                    r["digits"],
                    f"{r['wall_seconds'] * 1e3:.0f}ms",
                    f"{r['s_per_meval']:.4f}" if r["s_per_meval"] else "-",
                    f"{speedup:.2f}x" if speedup and spec != "numpy" else "-",
                    "yes" if r["matches_numpy"] else "NO",
                ]
            )
    print_table(
        f"Compiled-kernel benchmark ({data['mode']} mode, "
        f"{data['host']['cpus']} cores)",
        ["lane", "integrand", "digits", "wall", "s/Meval", "vs numpy",
         "agree"],
        body,
    )
    if data["jit_warmup_seconds"] is not None:
        print(f"one-time JIT warm-up: {data['jit_warmup_seconds']:.2f}s "
              "(excluded from the timed rows)")
    exp = data["expectation"]
    if exp["enforced_on_this_host"]:
        got = data["numba_median_speedup_vs_numpy"]
        verdict = (
            "OK" if got is not None and got >= exp["min_speedup_vs_numpy"]
            else "BELOW EXPECTATION"
        )
        print(f"speedup expectation (>= {exp['min_speedup_vs_numpy']}x on "
              f">= {exp['min_cores']} cores): {verdict}")
    elif "numba" in data["skipped_lanes"]:
        print("numba unavailable on this host: speedup expectation "
              "recorded but not enforced")
    else:
        print(f"host has {data['host']['cpus']} core(s) < "
              f"{exp['min_cores']}: speedup expectation not enforced")


# ---------------------------------------------------------------------------
# Workload-scenarios benchmark (--scenarios): BENCH_scenarios.json.
#
# The opened workload space end-to-end: transform-spec integrands (one
# per family), a fused parameter sweep, and a baseline-escalation run
# whose PAGANI attempt is deliberately watchdogged into failure.  The
# artifact is primarily a *correctness* record — every row carries its
# status and, for the escalation row, the full stage provenance; the
# gate asserts the honesty contract (an escalated run is never
# relabelled as native converged PAGANI) rather than wall clock.
# ---------------------------------------------------------------------------
SCENARIOS_BENCH_FILE = "BENCH_scenarios.json"

#: transform rows: one canonical spec per family
SCENARIO_TRANSFORMS = (
    "semi_infinite(3D-f4, scale=2.0)",
    "infinite(2D-genz-gaussian, scale=1.5)",
    "gaussian_measure(2D-f4, mean=0.5, sigma=0.8)",
)

SCENARIO_SWEEP = "sweep:gaussian_measure(2D-f4, sigma=0.5;0.8;1.0)"

#: escalation scenario: watchdog=1 forces the PAGANI attempt to fail so
#: the ladder runs; the rung tolerance is reachable by two_phase
SCENARIO_ESCALATION = {
    "spec": "3D-f4",
    "rel_tol": 1e-6,
    "escalation": "two_phase>qmc;watchdog=1",
}

SCENARIOS_REL_TOL = 1e-4


def run_scenarios_bench(smoke: bool = False) -> dict:
    """Run the transform / sweep / escalation scenarios on numpy."""
    import platform
    import time as _time

    from repro.api import integrate, integrate_sweep
    from repro.integrands.catalog import named_integrand

    transforms = []
    specs = SCENARIO_TRANSFORMS[:1] if smoke else SCENARIO_TRANSFORMS
    for spec in specs:
        f = named_integrand(spec)
        t0 = _time.perf_counter()
        res = integrate(f, f.ndim, rel_tol=SCENARIOS_REL_TOL, backend="numpy")
        transforms.append({
            "spec": spec,
            "canonical_spec": f.spec,
            "rel_tol": SCENARIOS_REL_TOL,
            "estimate": res.estimate,
            "estimate_hex": float(res.estimate).hex(),
            "errorest": res.errorest,
            "neval": res.neval,
            "status": res.status.value,
            "converged": res.converged,
            "wall_seconds": _time.perf_counter() - t0,
        })

    t0 = _time.perf_counter()
    pairs = integrate_sweep(SCENARIO_SWEEP, rel_tol=SCENARIOS_REL_TOL)
    sweep = {
        "spec": SCENARIO_SWEEP,
        "rel_tol": SCENARIOS_REL_TOL,
        "members": [
            {
                "spec": member_spec,
                "estimate": res.estimate,
                "estimate_hex": float(res.estimate).hex(),
                "errorest": res.errorest,
                "status": res.status.value,
                "converged": res.converged,
            }
            for member_spec, res in pairs
        ],
        "wall_seconds": _time.perf_counter() - t0,
    }

    esc_cfg = SCENARIO_ESCALATION
    f = named_integrand(esc_cfg["spec"])
    t0 = _time.perf_counter()
    res = integrate(
        f, f.ndim, rel_tol=esc_cfg["rel_tol"],
        escalation=esc_cfg["escalation"],
    )
    escalation = {
        "spec": esc_cfg["spec"],
        "rel_tol": esc_cfg["rel_tol"],
        "policy": esc_cfg["escalation"],
        "escalated": res.escalated,
        "final_method": res.method,
        "final_status": res.status.value,
        "converged": res.converged,
        "estimate": res.estimate,
        "estimate_hex": float(res.estimate).hex(),
        "errorest": res.errorest,
        "stages": [
            {
                "method": s.method,
                "status": s.status.value,
                "neval": s.neval,
                "error": s.error,
            }
            for s in (res.escalation or [])
        ],
        "wall_seconds": _time.perf_counter() - t0,
    }

    return {
        "schema": 1,
        "suite": "pagani-scenarios-bench",
        "mode": "smoke" if smoke else ("full" if full_mode() else "quick"),
        "generated_by": (
            "PYTHONPATH=src python benchmarks/harness.py --scenarios"
        ),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
        },
        "transforms": transforms,
        "sweep": sweep,
        "escalation": escalation,
    }


def scenarios_bench_problems(data: dict) -> List[str]:
    """Hard-failure list for --scenarios (shared with the CI gate)."""
    problems: List[str] = []
    for row in data["transforms"]:
        if not row["converged"]:
            problems.append(f"transform {row['spec']}: DNF ({row['status']})")
        if not row.get("canonical_spec"):
            problems.append(
                f"transform {row['spec']}: integrand lost its canonical "
                "spec (uncacheable, unshippable)"
            )
    for member in data["sweep"]["members"]:
        if not member["converged"]:
            problems.append(
                f"sweep member {member['spec']}: DNF ({member['status']})"
            )
    esc = data["escalation"]
    if not esc["escalated"]:
        problems.append(
            "escalation scenario did not escalate — the watchdog failed "
            "to trip the PAGANI attempt"
        )
    stages = esc["stages"]
    if not stages or stages[0]["method"] != "pagani":
        problems.append("escalation history does not start with pagani")
    # the honesty contract: the final result must carry the rung's own
    # method, never be relabelled as a converged native PAGANI run
    if esc["escalated"] and esc["final_method"] == "pagani" and esc["converged"]:
        problems.append(
            "escalated result relabelled as converged native PAGANI"
        )
    if stages and stages[-1]["status"] != esc["final_status"]:
        problems.append(
            "final stage status disagrees with the result status"
        )
    return problems


def write_scenarios_bench(data: dict, out: Optional[Path] = None) -> Path:
    """Write the scenarios payload as pretty JSON; return the path."""
    return _write_bench_json(data, out, SCENARIOS_BENCH_FILE)


def print_scenarios_bench(data: dict) -> None:
    body = []
    for row in data["transforms"]:
        body.append([
            "transform", row["spec"], row["status"],
            f"{row['estimate']:.6g}", f"{row['wall_seconds']:.3f}s",
        ])
    for member in data["sweep"]["members"]:
        body.append([
            "sweep", member["spec"], member["status"],
            f"{member['estimate']:.6g}", "-",
        ])
    esc = data["escalation"]
    ladder = "->".join(s["method"] for s in esc["stages"])
    body.append([
        "escalation", f"{esc['spec']} [{ladder}]", esc["final_status"],
        f"{esc['estimate']:.6g}", f"{esc['wall_seconds']:.3f}s",
    ])
    print_table(
        f"Workload-scenarios benchmark ({data['mode']})",
        ["kind", "spec", "status", "estimate", "wall"],
        body,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry: run the backend benchmark and write BENCH_backends.json."""
    import argparse
    import sys

    from repro.errors import ConfigurationError

    ap = argparse.ArgumentParser(
        description="Run the fig5/fig6 PAGANI workloads per execution "
        "backend and write the BENCH_backends.json perf baseline, or (with "
        "--batch) the batched-vs-sequential throughput benchmark writing "
        "BENCH_batch.json, or (with --service) the integration-service "
        "benchmark writing BENCH_service.json."
    )
    ap.add_argument(
        "--backends", default=None,
        help="comma-separated backend specs (default: all available)",
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="one tiny workload only (CI smoke run)",
    )
    ap.add_argument(
        "--batch", action="store_true",
        help="run the batched-execution benchmark instead "
        f"(writes results/{BATCH_BENCH_FILE})",
    )
    ap.add_argument(
        "--service", action="store_true",
        help="run the integration-service benchmark instead: cache-hit "
        "speedup on a duplicate-heavy mix, bit-identity vs cold runs, "
        f"priority-order evidence (writes results/{SERVICE_BENCH_FILE})",
    )
    ap.add_argument(
        "--shards", type=int, default=1,
        help="worker rotations for the --service benchmark (default 1)",
    )
    ap.add_argument(
        "--process", action="store_true",
        help="run the process-backend benchmark instead: the fig5/fig6 "
        "multi-integrand workload per host backend, speedup vs numpy "
        f"(writes results/{PROCESS_BENCH_FILE})",
    )
    ap.add_argument(
        "--http", action="store_true",
        help="run the HTTP traffic-trace benchmark instead: cold / warm / "
        "restart-warm waves of a duplicate-heavy trace over real HTTP, "
        "durable-store replay bit-identity "
        f"(writes results/{HTTP_BENCH_FILE})",
    )
    ap.add_argument(
        "--routing", action="store_true",
        help="run the adaptive-routing benchmark instead: auto vs fixed "
        "backends on a tiny-job trace and the fig5/fig6 fused sweep, plus "
        "the shm-vs-pickle process IPC comparison "
        f"(writes results/{ROUTING_BENCH_FILE})",
    )
    ap.add_argument(
        "--kernels", action="store_true",
        help="run the compiled-kernel benchmark instead: the fig5/fig6 6D "
        "workload on the numpy vs numba lanes, s/Meval and speedup "
        f"(writes results/{KERNELS_BENCH_FILE})",
    )
    ap.add_argument(
        "--scenarios", action="store_true",
        help="run the workload-scenarios benchmark instead: transform-spec "
        "integrands, a fused parameter sweep, and a baseline-escalation "
        "run with full stage provenance "
        f"(writes results/{SCENARIOS_BENCH_FILE})",
    )
    ap.add_argument(
        "--out", default=None,
        help="output path (default: results/"
        f"{BACKEND_BENCH_FILE}, {BATCH_BENCH_FILE} or {SERVICE_BENCH_FILE})",
    )
    args = ap.parse_args(argv)

    if sum((args.batch, args.service, args.process, args.http,
            args.routing, args.kernels, args.scenarios)) > 1:
        print("error: pick one of --batch / --service / --process / --http "
              "/ --routing / --kernels / --scenarios",
              file=sys.stderr)
        return 2
    backends = args.backends.split(",") if args.backends else None
    if args.scenarios:
        data = run_scenarios_bench(smoke=args.smoke)
        path = write_scenarios_bench(data, out=args.out)
        print_scenarios_bench(data)
        print(f"\nwrote {path}")
        problems = scenarios_bench_problems(data)
        for problem in problems:
            print(f"WARNING: {problem}")
        return 1 if problems else 0
    if args.kernels:
        data = run_kernels_bench(smoke=args.smoke)
        if not data["lanes"]:
            print("error: no lane could run; nothing written", file=sys.stderr)
            return 2
        path = write_kernels_bench(data, out=args.out)
        print_kernels_bench(data)
        print(f"\nwrote {path}")
        problems = kernels_bench_problems(data)
        for problem in problems:
            print(f"WARNING: {problem}")
        return 1 if problems else 0
    if args.routing:
        data = run_routing_bench(smoke=args.smoke)
        path = write_routing_bench(data, out=args.out)
        print_routing_bench(data)
        print(f"\nwrote {path}")
        problems = routing_bench_problems(data)
        for problem in problems:
            print(f"WARNING: {problem}")
        return 1 if problems else 0
    if args.http:
        data = run_http_bench(smoke=args.smoke)
        path = write_http_bench(data, out=args.out)
        print_http_bench(data)
        print(f"\nwrote {path}")
        problems = http_bench_problems(data)
        for problem in problems:
            print(f"WARNING: {problem}")
        return 1 if problems else 0
    if args.process:
        data = run_process_bench(backends=backends, smoke=args.smoke)
        path = write_process_bench(data, out=args.out)
        print_process_bench(data)
        print(f"\nwrote {path}")
        problems = []
        for spec, d in data["backends"].items():
            if not d["all_match"]:
                problems.append(f"{spec}: results disagree with the numpy "
                                "sequential reference")
            for r in d["members"]:
                if not r["converged"]:
                    problems.append(f"{spec}/{r['integrand']}: DNF")
        if data.get("plain_integrate_bit_identical") is False:
            problems.append(
                "plain integrate() on the process backend is not "
                "bit-identical to numpy"
            )
        exp = data["expectation"]
        if exp["enforced_on_this_host"]:
            got = (data["backends"].get("process") or {}).get("speedup_vs_numpy")
            if got is None or got < exp["min_speedup_vs_numpy"]:
                problems.append(
                    f"process speedup {got if got is None else f'{got:.2f}x'} "
                    f"below the {exp['min_speedup_vs_numpy']}x expectation on "
                    f"a {data['host']['cpus']}-core host"
                )
        for problem in problems:
            print(f"WARNING: {problem}")
        return 1 if problems else 0
    if args.service:
        data = run_service_bench(smoke=args.smoke, shards=args.shards)
        path = write_service_bench(data, out=args.out)
        print_service_bench(data)
        print(f"\nwrote {path}")
        problems = []
        bad_bits = (
            data["bit_identity"]["no_cache_mismatches"]
            + data["bit_identity"]["with_cache_mismatches"]
            + data["bit_identity"]["warm_replay_mismatches"]
        )
        if bad_bits:
            problems.append(f"results disagree with cold runs: {sorted(set(bad_bits))}")
        if not data["priority_order"]["in_priority_order"]:
            problems.append(
                "completion order "
                f"{data['priority_order']['completion_order']} is not "
                "priority order"
            )
        for problem in problems:
            print(f"WARNING: {problem}")
        return 1 if problems else 0
    if args.batch:
        def run():
            return run_batch_bench(backends=backends, smoke=args.smoke)

        def mismatches(data):
            return [
                (spec, r["integrand"])
                for spec, d in data["backends"].items()
                for r in d["members"]
                if not r["matches_sequential"]
            ]

        writer, printer = write_batch_bench, print_batch_bench
        disagrees_with = "their sequential runs"
    else:
        def run():
            return run_backend_bench(backends=backends, smoke=args.smoke)

        def mismatches(data):
            return [
                (spec, r["integrand"], r["digits"])
                for spec, rows in data["backends"].items()
                for r in rows
                if not r["matches_numpy"] and "numpy" in data["backends"]
            ]

        writer, printer = write_backend_bench, print_backend_bench
        disagrees_with = "the numpy reference"

    try:
        data = run()
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not data["backends"]:
        # Don't clobber a good committed baseline with an empty payload.
        print("error: no requested backend could run; nothing written",
              file=sys.stderr)
        return 2
    path = writer(data, out=args.out)
    printer(data)
    print(f"\nwrote {path}")
    bad = mismatches(data)
    if bad:
        print(f"WARNING: {len(bad)} rows disagree with {disagrees_with}: {bad}")
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
