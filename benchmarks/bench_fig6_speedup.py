"""Figure 6 — PAGANI speedup over Cuhre (left) and over two-phase (right).

Paper's shapes: speedup over Cuhre starts ~15x at low digits and climbs
into the thousands as precision grows; speedup over two-phase is modest
(up to ~15x) and the interesting signal is the squares — digit levels only
PAGANI satisfies.  Here a "square" prints as ``only-PAGANI``.

Writes ``results/fig6_speedup.csv``.
"""


import harness as hz


def _fig6_rows():
    rows = hz.speedup_sweep()
    hz.write_csv(rows, "fig6_speedup.csv")
    return rows


def test_fig6_speedup(benchmark):
    rows = benchmark.pedantic(_fig6_rows, rounds=1, iterations=1)

    body = []
    speedups_cuhre = {}
    for name in hz.speedup_integrands():
        pag = {r.digits: r for r in hz.select(rows, name, "pagani")}
        for other in ("cuhre", "two_phase"):
            oth = {r.digits: r for r in hz.select(rows, name, other)}
            for digits in sorted(pag):
                p, o = pag[digits], oth.get(digits)
                if o is None or not p.converged:
                    continue
                if not o.converged:
                    body.append([name, other, digits, "-", "only-PAGANI"])
                    continue
                s = o.sim_ms / p.sim_ms
                if other == "cuhre":
                    speedups_cuhre.setdefault(name, []).append((digits, s))
                body.append([name, other, digits, f"{s:.1f}x", ""])
    hz.print_table(
        "Fig. 6: PAGANI speedup over baselines (simulated time)",
        ["integrand", "baseline", "digits", "speedup", "note"],
        body,
        paper_note="~15x..1000x over Cuhre growing with digits; 1-15x over "
        "two-phase; squares = only PAGANI converges",
    )

    # --- shape assertions -------------------------------------------------
    # speedup over Cuhre is large and grows with digits where both converge
    for name, series in speedups_cuhre.items():
        series.sort()
        assert series[-1][1] > 3.0, f"{name}: expected clear speedup over Cuhre"
        if len(series) >= 2:
            assert series[-1][1] >= series[0][1] * 0.5, name

    # at least one only-PAGANI point must appear (the paper's squares)
    assert any(r[4] == "only-PAGANI" for r in body), (
        "expected digit levels only PAGANI satisfies"
    )
