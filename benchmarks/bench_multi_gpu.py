"""§4.4 — multi-GPU execution (the paper's future work, implemented).

The paper proposes extending memory by distributing partitions of the
integration space across GPUs, with redistribution at the start.  This
bench quantifies both claims of §4.4 on the simulated fleet:

* **robustness**: a tolerance that memory-exhausts one device converges on
  a fleet (total memory scales with device count);
* **residual load imbalance**: static partitioning leaves devices with
  unequal adaptive work — reported as makespan over mean device time.

Writes ``results/multi_gpu.csv``.
"""

import csv

import numpy as np

import harness as hz
from repro.core import MultiGpuPagani, PaganiConfig
from repro.gpu.device import DeviceSpec
from repro.integrands.base import Integrand


def _multi_peak(ndim: int = 4, c: float = 900.0) -> Integrand:
    """Four separated sharp Gaussians: work that a static partition CAN
    distribute (each peak refines independently)."""
    from math import erf, pi, sqrt

    centers = np.array(
        [[0.2] * ndim, [0.8] * ndim,
         [0.2, 0.8] * (ndim // 2), [0.8, 0.2] * (ndim // 2)]
    )

    def fn(x):
        out = np.zeros(x.shape[0])
        for mu in centers:
            out += np.exp(-c * np.sum((x - mu[None, :]) ** 2, axis=1))
        return out

    ref = 0.0
    for mu in centers:
        v = 1.0
        for m in mu:
            v *= sqrt(pi / c) / 2 * (erf(sqrt(c) * (1 - m)) + erf(sqrt(c) * m))
        ref += v
    return Integrand(fn=fn, ndim=ndim, name="4-peak", reference=ref,
                     flops_per_eval=120.0)


def _run():
    integrand = _multi_peak()
    spec = DeviceSpec.scaled(mem_mb=8, name="fleet-node")
    rows = []
    for n_devices in (1, 2, 4, 8):
        runner = MultiGpuPagani(
            n_devices=n_devices,
            config=PaganiConfig(rel_tol=1e-8, max_iterations=30),
            device_spec=spec,
        )
        res = runner.integrate(integrand, integrand.ndim, seed_splits=4)
        rep = runner.last_report
        rows.append(
            (n_devices, res.converged, res.status.value,
             res.sim_seconds * 1e3, rep.imbalance,
             abs(res.estimate - integrand.reference) / integrand.reference)
        )
    return rows


def test_multi_gpu_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    body = [
        [n, "yes" if conv else f"DNF({status})", f"{ms:.3g}",
         f"{imb:.2f}", hz.fmt_e(err)]
        for n, conv, status, ms, imb, err in rows
    ]
    hz.print_table(
        "§4.4: multi-GPU fleet scaling (4-peak integrand, 8 MB nodes)",
        ["devices", "converged", "makespan ms", "imbalance", "true rel err"],
        body,
        paper_note="fleet memory extends attainable precision; static "
        "partitioning leaves residual imbalance",
    )

    hz.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (hz.RESULTS_DIR / "multi_gpu.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["devices", "converged", "status", "makespan_ms",
                    "imbalance", "true_rel_error"])
        w.writerows(rows)

    by_n = {r[0]: r for r in rows}
    # robustness: the largest fleet converges
    assert by_n[8][1], "8-device fleet must converge"
    # a converged fleet is honest
    for n, conv, _, _, _, err in rows:
        if conv:
            assert err < 1e-6
