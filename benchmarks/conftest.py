"""Benchmark-suite configuration.

Adds the ``benchmarks`` directory to ``sys.path`` so the bench modules can
import the shared ``harness`` module regardless of invocation directory.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
