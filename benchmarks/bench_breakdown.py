"""§4.3.2 — per-kernel performance breakdown of a PAGANI run.

The paper reports, for production-scale workloads:

* >90 % of execution time in the ``evaluate`` kernel;
* filtering + sub-division consistently costlier than post-processing and
  classification (memory allocation and copy kernels);
* threshold classification nearly free (a handful of reductions/scans).

We reproduce the breakdown from the virtual device's per-kernel accounting
on an 8-D run (the high-dimensional regime where each region costs 401
integrand evaluations and the evaluate kernel dominates).

Writes ``results/breakdown.csv``.
"""

import csv

import harness as hz
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.diagnostics.breakdown import kernel_breakdown
from repro.integrands.paper import f7_box11


def _run():
    integrand = f7_box11(8)
    digits = 5 if hz.full_mode() else 4
    integ = PaganiIntegrator(
        PaganiConfig(rel_tol=10.0**-digits, max_iterations=30),
        device=hz.bench_device(),
    )
    res = integ.integrate(integrand, 8)
    return res, kernel_breakdown(integ.device)


def test_breakdown(benchmark):
    res, shares = benchmark.pedantic(_run, rounds=1, iterations=1)

    body = [
        [s.category, f"{s.seconds * 1e3:.4g}", f"{100 * s.share:.1f}%", s.launches]
        for s in shares
    ]
    hz.print_table(
        "§4.3.2: simulated per-category kernel time (8D f7)",
        ["category", "ms", "share", "launches"],
        body,
        paper_note=">90% in evaluate; filter+split > post-processing > "
        "threshold classification",
    )

    hz.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (hz.RESULTS_DIR / "breakdown.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["category", "seconds", "share", "launches"])
        for s in shares:
            w.writerow([s.category, s.seconds, s.share, s.launches])

    # --- shape assertions -------------------------------------------------
    by_cat = {s.category: s for s in shares}
    assert shares[0].category == "evaluate"
    assert by_cat["evaluate"].share > 0.75, (
        f"evaluate share {by_cat['evaluate'].share:.1%}; the paper reports >90% "
        "at production scale"
    )
    if "filter+split" in by_cat and "post-processing" in by_cat:
        assert by_cat["filter+split"].seconds >= 0.2 * by_cat["post-processing"].seconds
    assert res.converged
