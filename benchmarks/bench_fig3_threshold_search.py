"""Figure 3 — the threshold-search trace on a five-dimensional Gaussian.

The paper's figure shows Algorithm 3 probing thresholds between the
min/max error estimates: the initial (average) threshold removes a large
fraction of regions but commits several times the error budget; the search
walks the threshold down until both the memory requirement (>50 % removed)
and the accuracy requirement (committed error within P_max of the budget)
hold.

This bench runs PAGANI on the 5-D Gaussian (the paper's example) on a
memory-tight device so Threshold-Classify fires, then prints every probe:
threshold value, % of regions removed, % of error budget consumed —
the same three annotations as the paper's figure.

Writes ``results/fig3_threshold_trace.csv``.
"""

import csv

import harness as hz
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.paper import f4_gaussian


def _run_with_trace():
    integrand = f4_gaussian(5)
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=24, name="fig3"))
    integ = PaganiIntegrator(
        PaganiConfig(rel_tol=1e-6, max_iterations=30), device=dev
    )
    res = integ.integrate(integrand, 5)
    return res, integ.threshold_traces


def test_fig3_threshold_search(benchmark):
    res, traces = benchmark.pedantic(_run_with_trace, rounds=1, iterations=1)

    assert traces, "threshold classification must have been invoked"
    # show the first successful search, like the paper's figure
    trace = next((t for t in traces if t.success), traces[0])

    body = []
    for i, p in enumerate(trace.probes):
        body.append(
            [
                i,
                f"{p.threshold:.3e}",
                f"{100 * p.frac_removed:.0f}%",
                f"{100 * p.frac_error_budget:.0f}%",
                "accepted" if p.accepted else "",
            ]
        )
    hz.print_table(
        "Fig. 3: threshold search probes (5D Gaussian)",
        ["probe", "threshold", "% regions removed", "% error budget", ""],
        body,
        paper_note="starts at the average error estimate (removes ~80% but "
        "~488% of budget), walks down to a threshold satisfying both "
        "requirements",
    )
    print(
        f"search range: min={trace.min_error:.3e} max={trace.max_error:.3e} "
        f"budget={trace.error_budget:.3e} direction changes="
        f"{trace.direction_changes} final P_max={trace.final_pmax:.2f}"
    )

    hz.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (hz.RESULTS_DIR / "fig3_threshold_trace.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["probe", "threshold", "frac_removed", "frac_budget", "accepted"])
        for i, p in enumerate(trace.probes):
            w.writerow([i, p.threshold, p.frac_removed, p.frac_error_budget,
                        int(p.accepted)])

    # --- shape assertions -------------------------------------------------
    # the initial probe is the average of the active error estimates and
    # lies within [min, max]
    assert trace.min_error <= trace.initial_threshold <= trace.max_error
    if trace.success:
        final = trace.probes[-1]
        assert final.frac_removed > 0.5  # memory requirement
        assert final.frac_error_budget <= trace.final_pmax + 1e-12
    # run still completes with a usable estimate
    assert res.estimate > 0
