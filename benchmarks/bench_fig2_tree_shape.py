"""Figure 2 — sub-region tree shapes of Cuhre, two-phase, and PAGANI.

The paper's schematic contrasts three trees after seven "iterations":
Cuhre's is narrow and deep (one leaf extended per step), the breadth-first
methods are wide and shallow, and PAGANI prunes finished branches more
aggressively (the yellow nodes: threshold-classified).  We reproduce it
quantitatively: iteration-capped runs of all three methods on a common
integrand, reporting regions evaluated per tree depth.

Writes ``results/fig2_tree_shape.csv``.
"""

import csv
import heapq

import numpy as np

import harness as hz
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.baselines.two_phase import TwoPhaseConfig, TwoPhaseIntegrator
from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule
from repro.diagnostics.tree import cuhre_tree_shape, tree_shape_from_trace
from repro.integrands.base import Integrand

ITERATIONS = 7


def _integrand() -> Integrand:
    def fn(x):
        return np.exp(-50.0 * np.sum((x - 0.4) ** 2, axis=1))

    return Integrand(fn=fn, ndim=3, name="3D offset gaussian", flops_per_eval=40.0)


def _depth_instrumented_cuhre(f, pops: int):
    """Sequential Cuhre recording the tree depth of every region."""
    rule = get_rule(f.ndim)
    c0 = np.full((1, f.ndim), 0.5)
    h0 = np.full((1, f.ndim), 0.5)
    ev = evaluate_regions(rule, c0, h0, f)
    heap = [(-ev.error[0], 0, (c0[0], h0[0], int(ev.split_axis[0]), 0))]
    depths = [0]
    seq = 1
    for _ in range(pops):
        if not heap:
            break
        _, _, (c, h, axis, depth) = heapq.heappop(heap)
        nh = h.copy()
        nh[axis] *= 0.5
        cc = np.stack([c, c])
        cc[0, axis] -= nh[axis]
        cc[1, axis] += nh[axis]
        hh = np.stack([nh, nh])
        ev = evaluate_regions(rule, cc, hh, f)
        for i in range(2):
            depths.append(depth + 1)
            heapq.heappush(
                heap,
                (-ev.error[i], seq, (cc[i], hh[i], int(ev.split_axis[i]), depth + 1)),
            )
            seq += 1
    return cuhre_tree_shape(depths)


def _run_all():
    f = _integrand()
    pag = PaganiIntegrator(
        PaganiConfig(rel_tol=1e-12, max_iterations=ITERATIONS, initial_splits=2),
        device=hz.bench_device(),
    ).integrate(f, f.ndim)
    two = TwoPhaseIntegrator(
        TwoPhaseConfig(
            rel_tol=1e-12, max_phase1_iterations=ITERATIONS, initial_splits=2,
        ),
        device=hz.bench_device(),
    ).integrate(f, f.ndim)
    # give Cuhre the same number of evaluated regions as PAGANI's first
    # levels would total at depth 7 in its narrow regime
    cu_shape = _depth_instrumented_cuhre(f, pops=2**ITERATIONS)
    return tree_shape_from_trace(pag), tree_shape_from_trace(two), cu_shape


def test_fig2_tree_shapes(benchmark):
    pag, two, cu = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    body = []
    for shape in (pag, two, cu):
        for depth, width in enumerate(shape.level_widths):
            fin = shape.finished_per_level[depth]
            body.append([shape.method, depth, width, fin])
    hz.print_table(
        "Fig. 2: regions evaluated per tree level after "
        f"{ITERATIONS} iterations",
        ["method", "level", "width", "finished"],
        body,
        paper_note="Cuhre: narrow+deep; breadth-first methods: wide+shallow "
        "with finished nodes pruned along the way",
    )

    hz.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (hz.RESULTS_DIR / "fig2_tree_shape.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["method", "level", "width", "finished"])
        w.writerows(body)

    # --- shape assertions -------------------------------------------------
    # breadth-first trees are wider than Cuhre's at max width...
    assert pag.max_width > cu.max_width
    assert two.max_width > cu.max_width
    # ...while Cuhre's tree is deeper than the iteration-capped PAGANI's
    assert cu.depth > pag.depth
    # PAGANI levels roughly double until filtering bites
    widths = pag.level_widths
    assert widths[1] <= 2 * widths[0]
