"""Figure 8 — PAGANI with and without the filtering mechanisms.

Three configurations, as in the paper:

* **PAGANI** — both Algorithm 3 triggers armed (estimate-converged and
  memory-pressure);
* **Mem-exhaustion** — threshold classification only when memory is about
  to run out;
* **No filtering** — Algorithm 3 disabled entirely (relative-error
  filtering stays on: the paper's "No filtering" series still discards
  τ_rel-satisfied regions, it drops only the heuristic search).

Paper's shapes: full filtering is fastest at high digits (convergence-
triggered filtering focuses compute on contributing regions early); the
no-filtering variant exhausts memory on the Gaussian workloads — "on 8D
f4, PAGANI without any heuristic filtering cannot converge even at 3
digits of precision".

Writes ``results/fig8_filtering.csv``.
"""

import csv

import harness as hz
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.paper import f4_gaussian, f5_c0

MODES = {
    "PAGANI": dict(threshold_on_convergence=True, threshold_on_memory=True),
    "Mem-exhaustion": dict(threshold_on_convergence=False, threshold_on_memory=True),
    "No filtering": dict(threshold_on_convergence=False, threshold_on_memory=False),
}

#: the 8-D Gaussian needs ~1e7-1e8 regions on the paper's V100; at Python
#: scale we shrink its device further so the filtering-vs-no-filtering
#: contrast plays out in seconds (the phenomena are memory-relative)
CASE_DEVICE_MB = {"8D f4": 48, "8D f5": 48}


def _cases():
    cases = {"5D f4": (f4_gaussian(5), [3, 4, 5]), "8D f4": (f4_gaussian(8), [3])}
    if hz.full_mode():
        cases["5D f4"] = (f4_gaussian(5), [3, 4, 5, 6, 7])
        cases["8D f4"] = (f4_gaussian(8), [3, 4])
        cases["8D f5"] = (f5_c0(8), [3, 4])
    return cases


def _fig8_rows():
    rows = []
    for name, (integrand, digit_list) in _cases().items():
        for digits in digit_list:
            for mode, knobs in MODES.items():
                cfg = PaganiConfig(
                    rel_tol=10.0**-digits, max_iterations=30, **knobs
                )
                mb = CASE_DEVICE_MB.get(name)
                device = (
                    VirtualDevice(DeviceSpec.scaled(mem_mb=mb))
                    if mb
                    else hz.bench_device()
                )
                res = PaganiIntegrator(cfg, device=device).integrate(
                    integrand, integrand.ndim
                )
                rows.append(
                    (name, digits, mode, res.converged, res.status.value,
                     res.sim_seconds * 1e3, res.nregions)
                )
    hz.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (hz.RESULTS_DIR / "fig8_filtering.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["integrand", "digits", "mode", "converged", "status",
                    "sim_ms", "nregions"])
        w.writerows(rows)
    return rows


def test_fig8_filtering_modes(benchmark):
    rows = benchmark.pedantic(_fig8_rows, rounds=1, iterations=1)

    body = [
        [name, digits, mode, "yes" if conv else f"DNF({status})",
         f"{ms:.3g}", nreg]
        for name, digits, mode, conv, status, ms, nreg in rows
    ]
    hz.print_table(
        "Fig. 8: PAGANI filtering ablation",
        ["integrand", "digits", "mode", "converged", "sim ms", "regions"],
        body,
        paper_note="full filtering fastest at high digits; no-filtering "
        "cannot converge on 8D f4 even at 3 digits (memory)",
    )

    # --- shape assertions -------------------------------------------------
    by_key = {(n, d, m): (c, s, ms, nr) for n, d, m, c, s, ms, nr in rows}

    # the paper's headline: 8D f4 at 3 digits fails without filtering...
    conv, status, *_ = by_key[("8D f4", 3, "No filtering")]
    assert not conv and status == "memory_exhausted"
    # ...and succeeds with full filtering
    conv, *_ = by_key[("8D f4", 3, "PAGANI")]
    assert conv

    # full filtering must attain at least the digits of every other mode
    for name, (integrand, digit_list) in _cases().items():
        for digits in digit_list:
            full_conv = by_key[(name, digits, "PAGANI")][0]
            for mode in ("Mem-exhaustion", "No filtering"):
                other_conv = by_key[(name, digits, mode)][0]
                assert full_conv or not other_conv, (name, digits, mode)
