"""Figure 9 — number of generated sub-regions per method.

Region counts are hardware-independent, which makes this the cleanest
like-for-like comparison with the paper:

* PAGANI's breadth-first expansion generates more regions than Cuhre's
  priority queue at equal digits (the paper: sometimes 100x) — the
  trade-off its throughput wins back;
* two-phase tracks PAGANI while phase I dominates, then freezes when it
  fails;
* counts grow steeply with requested digits for all methods.

Reuses the Fig. 4 sweep.  Writes ``results/fig9_regions.csv``.
"""

import harness as hz


def _fig9_rows():
    rows = hz.main_sweep()
    hz.write_csv(rows, "fig9_regions.csv")
    return rows


def test_fig9_regions(benchmark):
    rows = benchmark.pedantic(_fig9_rows, rounds=1, iterations=1)

    body = []
    for name in hz.sweep_integrands():
        for digits in hz.digits_for(name):
            row = [name, digits]
            for method in ("pagani", "two_phase", "cuhre"):
                match = [
                    r for r in hz.select(rows, name, method) if r.digits == digits
                ]
                if match:
                    suffix = "" if match[0].converged else "*"
                    row.append(f"{match[0].nregions}{suffix}")
                else:
                    row.append("-")
            body.append(row)
    hz.print_table(
        "Fig. 9: generated sub-regions (* = did not converge)",
        ["integrand", "digits", "pagani", "two_phase", "cuhre"],
        body,
        paper_note="PAGANI generates the most regions (breadth-first), "
        "Cuhre the fewest; counts explode with digits",
    )

    # --- shape assertions -------------------------------------------------
    for name in hz.sweep_integrands():
        pag = sorted(hz.select(rows, name, "pagani"), key=lambda r: r.digits)
        conv = [r for r in pag if r.converged]
        # counts non-decreasing with digits
        for a, b in zip(conv, conv[1:]):
            assert b.nregions >= a.nregions, name
        # PAGANI >= Cuhre region count at equal converged digits
        cu = {r.digits: r for r in hz.select(rows, name, "cuhre")}
        for r in conv:
            o = cu.get(r.digits)
            if o is not None and o.converged:
                assert r.nregions >= 0.3 * o.nregions, (
                    f"{name}@{r.digits}: breadth-first should not generate "
                    "dramatically fewer regions than the priority queue"
                )
