"""Adaptive routing: decision table, refinement, and conformance.

The router may only choose *where* bits are computed, never *which*
bits: every routed outcome must be bit-identical to naming the resolved
backend directly.  The decision tests inject availability so they run
the same everywhere (CI single-core included).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import integrate, integrate_many
from repro.backends.routing import (
    AUTO_SPEC,
    FALLBACK_BATCH_GAIN,
    FALLBACK_S_PER_MEVAL,
    BackendRouter,
    first_sweep_evals,
    is_auto,
    load_batch_gains,
    load_priors,
    shared_router,
)
from repro.integrands.catalog import named_integrand


def router(**kw):
    """A fully injected router: no host probing, deterministic priors."""
    kw.setdefault("priors", dict(FALLBACK_S_PER_MEVAL))
    kw.setdefault("batch_gains", dict(FALLBACK_BATCH_GAIN))
    kw.setdefault("process", True)
    kw.setdefault("process_width", 8)
    kw.setdefault("cupy", False)
    return BackendRouter(**kw)


# ---------------------------------------------------------------------------
# Priors and the job score
# ---------------------------------------------------------------------------
def test_load_priors_prefers_committed_bench_else_fallback(tmp_path):
    committed = load_priors()
    assert set(FALLBACK_S_PER_MEVAL) <= set(committed)
    assert all(v > 0 for v in committed.values())
    missing = load_priors(tmp_path / "nope.json")
    assert missing == FALLBACK_S_PER_MEVAL


def test_load_priors_skips_dnf_rows(tmp_path):
    import json

    payload = {"backends": {"numpy": [
        # a DNF row with a pathological rate must not poison the prior
        {"converged": False, "neval": 100, "wall_seconds": 50.0},
        {"converged": True, "neval": 2_000_000, "wall_seconds": 1.0},
    ]}}
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    assert load_priors(path)["numpy"] == pytest.approx(0.5)


def test_first_sweep_evals_grows_with_dimension():
    evals = [first_sweep_evals(d) for d in (2, 3, 5, 8)]
    assert all(b > a for a, b in zip(evals, evals[1:]))
    assert evals[0] > 0


def test_is_auto():
    assert is_auto("auto") and is_auto(AUTO_SPEC)
    assert not is_auto("numpy") and not is_auto(None) and not is_auto(3)


# ---------------------------------------------------------------------------
# Decision table
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "ndim, kw, expected",
    [
        # tiny sweep: pool/device dispatch overhead dominates
        (2, dict(), "numpy"),
        (3, dict(), "numpy"),
        # huge sweep: ideal-speedup pool wins despite its overhead
        (8, dict(), "process:8"),
        (8, dict(process_width=4), "process:4"),
        # no usable pool (or width 1): the reference backend carries it
        (8, dict(process=False), "numpy"),
        (8, dict(process_width=1), "numpy"),
        # a present device takes saturating sweeps
        (8, dict(cupy=True), "cupy"),
        # ...but not tiny ones (occupancy collapse)
        (2, dict(cupy=True), "numpy"),
    ],
)
def test_decision_table(ndim, kw, expected):
    decision = router(**kw).decide(ndim=ndim)
    assert decision.backend == expected
    assert not decision.forced
    assert decision.evals == first_sweep_evals(ndim)
    assert decision.backend in decision.predicted_seconds


def test_override_short_circuits_scoring():
    decision = router().decide(ndim=8, override="threaded:2")
    assert decision.backend == "threaded:2"
    assert decision.forced
    assert decision.predicted_seconds == {}
    # "auto" as an override means "no override": the policy runs.
    assert router().decide(ndim=8, override="auto").backend == "process:8"


def test_decide_batch_prices_summed_work():
    r = router()
    # Each 3D member alone is too small for the pool...
    assert r.decide(ndim=3).backend == "numpy"
    # ...but forty of them fused into one batch saturate it.
    assert r.decide_batch([3] * 40).backend == "process:8"


def test_batch_context_prefers_process_grain_even_serially():
    """On a 1-wide host the process backend still wins *batch* traffic:
    no pool is built (serial guard), but its fused chunk grain beats
    numpy's reference decomposition — the measured BENCH_batch gain."""
    r = router(process_width=1)
    # Plain (solo-integrate) context: no pool, no grain edge -> numpy.
    assert r.decide(ndim=8, context="plain").backend == "numpy"
    # Batch context: the grain gain pays for itself on a big sweep...
    assert r.decide_batch([8]).backend == "process:1"
    # ...but not on a tiny one (dispatch overhead dominates).
    assert r.decide_batch([3]).backend == "numpy"


def test_load_batch_gains_committed_else_fallback(tmp_path):
    committed = load_batch_gains()
    assert committed["numpy"] == pytest.approx(1.0)
    assert committed["process"] > 1.0  # the grain gain is real
    assert load_batch_gains(tmp_path / "nope.json") == FALLBACK_BATCH_GAIN


def test_decide_batch_rejects_unknown_context():
    with pytest.raises(ValueError):
        router().decide_batch([3], context="cluster")


def test_observation_refines_decisions():
    r = router()
    assert r.decide(ndim=8).backend == "process:8"
    # Report the pool crawling (heavy oversubscription, say): the EWMA
    # belief update must flip the big-job decision back to numpy.
    for _ in range(20):
        r.observe("process:8", neval=1_000_000, seconds=10.0)
    assert r.decide(ndim=8).backend == "numpy"
    stats = r.stats()
    assert stats["observations"] == 20
    assert stats["observed_s_per_meval"]["process"] > 1.0
    assert stats["decisions"] == {"process": 1, "numpy": 1}


def test_bad_observations_are_ignored():
    r = router()
    r.observe("numpy", neval=0, seconds=1.0)
    r.observe("numpy", neval=100, seconds=0.0)
    assert r.stats()["observations"] == 0


def test_autotune_probes_real_pool_widths(monkeypatch):
    """With a usable multi-worker host the autotune probe times real
    pools and adopts the fastest width (one candidate here, so the
    outcome is deterministic)."""
    from repro.backends import routing as routing_mod
    from repro.backends.process import process_pool_available

    if not process_pool_available():
        pytest.skip("no process pool on this host")
    monkeypatch.setattr(routing_mod, "resolve_workers", lambda n=None: 2)
    r = router()
    assert r.autotune_width(probe_rel_tol=1e-2) == 2
    assert r.process_width == 2
    assert set(r.autotune_report) == {"2"}
    assert r.autotune_report["2"] > 0
    assert r.stats()["autotuned"] is True
    # probe timings are width-selection evidence only, never EWMA input
    assert r.stats()["observations"] == 0


def test_autotune_without_pool_pins_width_one():
    r = router(process=False)
    assert r.autotune_width() == 1
    assert r.process_width == 1
    assert r.stats()["candidates"] == ["numpy"]
    assert r.stats()["autotuned"] is True


def test_decisions_are_thread_safe():
    import threading

    r = router()
    errors = []

    def spin():
        try:
            for _ in range(200):
                r.decide(ndim=3)
                r.observe("numpy", 1000, 1e-4)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=spin) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert r.stats()["decisions"]["numpy"] == 800


# ---------------------------------------------------------------------------
# Conformance: routing never changes the numbers
# ---------------------------------------------------------------------------
def test_routed_integrate_bit_identical_to_resolved_backend():
    f = named_integrand("3D-f4")
    ref = integrate(f, 3, rel_tol=1e-4)
    routed = integrate(f, 3, rel_tol=1e-4, backend="auto")
    assert routed.estimate == ref.estimate
    assert routed.errorest == ref.errorest
    assert routed.neval == ref.neval


def test_routed_integrate_many_bit_identical():
    members = [named_integrand("3D-f4"), named_integrand("3D-f3")]
    ref = integrate_many(members, rel_tol=1e-3)
    routed = integrate_many(members, rel_tol=1e-3, backend="auto")
    for a, b in zip(ref, routed):
        assert a.estimate == b.estimate
        assert a.errorest == b.errorest


def test_shared_router_is_singleton_and_learns():
    r = shared_router()
    assert r is shared_router()
    before = r.stats()["observations"]
    integrate(named_integrand("3D-f4"), 3, rel_tol=1e-3, backend="auto")
    assert r.stats()["observations"] == before + 1


# ---------------------------------------------------------------------------
# Service-level routing: resolved fingerprints, per-job overrides
# ---------------------------------------------------------------------------
def test_service_auto_resolves_backend_and_fingerprint():
    from repro.core.pagani import PaganiConfig
    from repro.service import IntegrationService, JobSpec, job_fingerprint

    service = IntegrationService(backend="auto", routing_autotune=False)
    try:
        assert service.stats()["backend"] == "auto"
        assert "routing" in service.stats()
        handle = service.submit_spec(JobSpec("3D-f4", rel_tol=1e-3))
        handle.wait()
        res = handle.result()
    finally:
        service.shutdown(wait=True)
    ref = integrate(named_integrand("3D-f4"), 3, rel_tol=1e-3)
    assert res.estimate == ref.estimate

    # The fingerprint names the *resolved* backend, never "auto": a
    # tiny 3D job routes to numpy on every host this test runs on.
    from repro.backends import get_backend

    bk = get_backend("numpy")
    expected = job_fingerprint(
        integrand_id="3d-f4",
        ndim=3,
        bounds=np.array([(0.0, 1.0)] * 3),
        rel_tol=1e-3,
        abs_tol=1e-20,
        backend="numpy",
        chunk_budget=PaganiConfig.resolve_chunk_budget(bk, None),
        max_iterations=None,
        relerr_filtering=True,
    )
    assert handle.stats.fingerprint == expected


def test_service_per_job_override_beats_routing():
    from repro.service import IntegrationService, JobSpec

    service = IntegrationService(backend="auto", routing_autotune=False)
    try:
        pinned = service.submit_spec(
            JobSpec("3D-f4", rel_tol=1e-3, backend="numpy")
        )
        routed = service.submit_spec(JobSpec("3D-f4", rel_tol=1e-3))
        pinned.wait()
        routed.wait()
        # Same resolved backend -> same fingerprint -> same bits.
        assert pinned.stats.fingerprint == routed.stats.fingerprint
        assert pinned.result().estimate == routed.result().estimate
    finally:
        service.shutdown(wait=True)


def test_jobspec_backend_field_round_trips_and_validates():
    from repro.errors import ConfigurationError
    from repro.service import JobSpec

    spec = JobSpec("3D-f4", backend="process:2")
    assert JobSpec.from_dict(spec.to_dict()).backend == "process:2"
    with pytest.raises(ConfigurationError):
        JobSpec("3D-f4", backend=123).validate()
