"""Compiled kernel lane: spec parsing, probe gating and ULP conformance.

The heavy end-to-end agreement battery lives in ``test_backends.py``
(the ``numba``/``numba:2`` entries of ``ALL_BACKEND_SPECS``); this file
covers the lane's own contracts — the single spec parser, the cached
availability probe and its fallback behaviour, and the fused kernel's
machine-precision agreement with the reference chunk arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BackendSpec,
    BackendUnavailableError,
    available_backends,
    backend_spec_help,
    get_backend,
    new_backend,
    numba_available,
    resolve_backend,
)
from repro.backends import compiled
from repro.backends.routing import BackendRouter
from repro.errors import ConfigurationError

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed on this host"
)


# ---------------------------------------------------------------------------
# resolve_backend / BackendSpec: the one authoritative spec parser
# ---------------------------------------------------------------------------
def test_resolve_backend_parses_plain_and_width_specs():
    assert resolve_backend("numpy") == BackendSpec("numpy")
    assert resolve_backend("numba") == BackendSpec("numba")
    assert resolve_backend("numba:3") == BackendSpec("numba", 3)
    assert resolve_backend("process:8") == BackendSpec("process", 8)
    assert resolve_backend("auto") == BackendSpec("auto")


def test_resolve_backend_none_is_the_reference_backend():
    assert resolve_backend(None) == BackendSpec("numpy")


def test_resolve_backend_instance_and_spec_passthrough():
    bk = get_backend("numpy")
    assert resolve_backend(bk) == BackendSpec("numpy")
    parsed = BackendSpec("threaded", 4)
    assert resolve_backend(parsed) is parsed


def test_backend_spec_roundtrips_to_canonical_string():
    assert BackendSpec("numpy").spec == "numpy"
    assert BackendSpec("numba", 2).spec == "numba:2"
    assert resolve_backend(BackendSpec("process", 4).spec) == BackendSpec(
        "process", 4
    )


@pytest.mark.parametrize("bad", ["numba:x", "process:", "threaded:2.5"])
def test_resolve_backend_rejects_malformed_width(bad):
    with pytest.raises(ConfigurationError, match="bad worker count"):
        resolve_backend(bad)


def test_resolve_backend_rejects_non_specs():
    with pytest.raises(ConfigurationError, match="name or ArrayBackend"):
        resolve_backend(3.5)


def test_backend_spec_help_lists_registry_with_width_syntax():
    text = backend_spec_help()
    assert "numba[:N]" in text
    assert "process[:N]" in text
    assert "numpy" in text
    assert "cupy" in text


# ---------------------------------------------------------------------------
# Probe gating: a host without numba degrades loudly and completely
# ---------------------------------------------------------------------------
def test_unavailable_probe_blocks_construction(monkeypatch):
    monkeypatch.setattr(
        compiled, "_NUMBA_PROBE", (False, "ImportError: forced off")
    )
    with pytest.raises(BackendUnavailableError, match="forced off"):
        new_backend("numba")
    with pytest.raises(BackendUnavailableError):
        new_backend("numba:2")
    assert "numba" not in available_backends()


def test_unavailable_probe_removes_router_candidate(monkeypatch):
    monkeypatch.setattr(
        compiled, "_NUMBA_PROBE", (False, "ImportError: forced off")
    )
    router = BackendRouter(process=False, cupy=False)
    assert router._candidates() == ["numpy"]


def test_forced_probe_advertises_router_candidate():
    router = BackendRouter(process=False, cupy=False, numba=True)
    assert "numba" in router._candidates()
    decision = router.decide(6)
    assert "numba" in decision.predicted_seconds


# ---------------------------------------------------------------------------
# Fused-kernel conformance (runs only where numba is installed, e.g. CI)
# ---------------------------------------------------------------------------
@needs_numba
def test_numba_spec_parses_width():
    assert get_backend("numba:3").num_threads == 3


@needs_numba
@pytest.mark.parametrize("model", ["two_rule", "four_difference", "cascade"])
def test_fused_chunk_matches_reference_to_ulp(model, rng):
    from repro.cubature.evaluation import compute_chunk
    from repro.cubature.rules import RULE_CACHE, get_rule

    ndim = 5
    rule = get_rule(ndim)
    bk = get_backend("numba:2")
    dr = RULE_CACHE.device_rule(rule, bk)
    m = 53
    c = rng.random((m, ndim)) * 0.8 + 0.1
    h = np.full((m, ndim), 0.05)

    def f(x):
        return np.exp(-np.sum(x**2, axis=1))

    ref_est, ref_err, ref_ax = compute_chunk(
        get_backend("numpy"), dr, f, c, h, model
    )
    est, err, ax = bk.fused_compute_chunk(dr, f, c, h, model)
    np.testing.assert_allclose(est, ref_est, rtol=1e-13)
    np.testing.assert_allclose(err, ref_err, rtol=1e-12, atol=1e-300)
    np.testing.assert_array_equal(ax, ref_ax)


@needs_numba
def test_numba_end_to_end_matches_numpy_to_ulp():
    from repro.api import integrate
    from repro.integrands.genz import GenzFamily, make_genz

    f = make_genz(GenzFamily.GAUSSIAN, 4, seed=11)
    ref = integrate(f, 4, rel_tol=1e-4, backend="numpy")
    got = integrate(f, 4, rel_tol=1e-4, backend="numba")
    assert got.estimate == pytest.approx(ref.estimate, rel=1e-12)
    assert got.errorest == pytest.approx(ref.errorest, rel=1e-9)
    assert got.neval == ref.neval
