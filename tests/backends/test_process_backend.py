"""Process-backend specifics beyond the shared conformance battery.

The generic suite in ``test_backends.py`` already holds ``process`` /
``process:2`` to the bit-identity contract on closure integrands (which
exercise the serial in-process fallback).  This module exercises what is
unique to the process backend: the *remote* chunk path (picklable chunk
specs evaluated in worker processes), worker failure semantics, pool
lifecycle, and the graceful fallback for unshippable integrands.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import integrate, integrate_many
from repro.backends import (
    BackendUnavailableError,
    ProcessNumpyBackend,
    WorkerCrashError,
    get_backend,
)
from repro.batch import BatchMemberError
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.cubature.evaluation import evaluate_regions, shippable_integrand
from repro.cubature.rules import get_rule
from repro.integrands.catalog import named_integrand


def _process_backend(workers: int = 2) -> ProcessNumpyBackend:
    try:
        bk = ProcessNumpyBackend(num_workers=workers)
    except BackendUnavailableError as exc:  # pragma: no cover - sandbox
        pytest.skip(f"process backend unavailable: {exc}")
    return bk


# ---------------------------------------------------------------------------
# Shippability
# ---------------------------------------------------------------------------
def test_named_integrands_ship_by_spec():
    f = named_integrand("5D-f4")
    kind, value = shippable_integrand(f)
    assert (kind, value) == ("spec", "5d-f4")


def test_module_level_callables_ship_by_pickle():
    kind, _ = shippable_integrand(_sum_integrand)
    assert kind == "pickle"


def test_closures_are_not_shippable():
    coeff = np.arange(3.0)
    assert shippable_integrand(lambda x: x @ coeff) is None


# ---------------------------------------------------------------------------
# Remote-path bit-identity
# ---------------------------------------------------------------------------
def test_remote_chunks_bit_identical_to_numpy(rng):
    """Chunks computed in worker processes stitch to the exact numpy bits."""
    f = named_integrand("3D-f4")
    ndim = f.ndim
    rule = get_rule(ndim)
    m = 64
    centers = rng.random((m, ndim)) * 0.8 + 0.1
    halfw = np.full((m, ndim), 0.05)
    budget = rule.npoints * ndim * 4 * 8  # force ~16 chunks
    ref = evaluate_regions(
        rule, centers, halfw, f, error_model="cascade", chunk_budget=budget
    )
    bk = _process_backend(2)
    try:
        got, tasks = evaluate_regions(
            rule, centers, halfw, f, error_model="cascade",
            chunk_budget=budget, backend=bk, defer=True,
        )
        assert sum(t.remote_spec is not None for t in tasks) == len(tasks)
        bk.run_chunks(tasks)
    finally:
        bk.close()
    np.testing.assert_array_equal(got.estimate, ref.estimate)
    np.testing.assert_array_equal(got.error, ref.error)
    np.testing.assert_array_equal(got.split_axis, ref.split_axis)


def test_end_to_end_integrate_bit_identical_via_remote_path():
    """Force many shipped chunks per sweep and compare full runs."""
    f = named_integrand("3D-f4")
    results = {}
    for spec in ("numpy", "process:2"):
        cfg = PaganiConfig(
            rel_tol=1e-4, max_iterations=12, backend=spec,
            chunk_budget=200_000,  # same (small) decomposition for both
        )
        results[spec] = PaganiIntegrator(cfg).integrate(f, f.ndim)
    ref, got = results["numpy"], results["process:2"]
    assert got.estimate == ref.estimate
    assert got.errorest == ref.errorest
    assert got.iterations == ref.iterations
    get_backend("process:2").close()


def test_unshippable_integrand_falls_back_and_matches(gaussian3):
    """A closure integrand cannot ship; results must still match numpy."""
    ref = integrate(gaussian3, 3, rel_tol=1e-4)
    got = integrate(gaussian3, 3, rel_tol=1e-4, backend="process:2")
    assert got.estimate == ref.estimate
    assert got.errorest == ref.errorest


# ---------------------------------------------------------------------------
# Failure semantics
# ---------------------------------------------------------------------------
def _sum_integrand(x):
    return np.sum(x, axis=1)


def _raising_integrand(x):
    raise ValueError("integrand exploded in a worker")


def _crashing_integrand(x):
    os._exit(13)  # kill the worker process outright, no exception


_raising_integrand.ndim = 3
_crashing_integrand.ndim = 3


def _deferred_tasks(bk, integrand):
    """Small multi-chunk sweep on ``bk`` with every chunk shipped."""
    rule = get_rule(3)
    m = 16
    centers = np.full((m, 3), 0.5)
    halfw = np.full((m, 3), 0.1)
    budget = rule.npoints * 3 * 4  # 4 regions per chunk -> 4 chunks
    _, tasks = evaluate_regions(
        rule, centers, halfw, integrand, chunk_budget=budget,
        backend=bk, defer=True,
    )
    assert len(tasks) == 4
    assert all(t.remote_spec is not None for t in tasks)
    return tasks


def test_worker_exception_propagates_like_serial():
    bk = _process_backend(2)
    try:
        with pytest.raises(ValueError, match="exploded in a worker"):
            bk.run_chunks(_deferred_tasks(bk, _raising_integrand))
    finally:
        bk.close()


def test_worker_crash_isolated_and_pool_recovers():
    """A dying worker surfaces WorkerCrashError and does not poison the
    backend: the next submission rebuilds the pool and succeeds."""
    bk = _process_backend(2)
    try:
        with pytest.raises(WorkerCrashError):
            bk.run_chunks(_deferred_tasks(bk, _crashing_integrand))
        assert bk._pool is None  # broken pool was discarded
        f = named_integrand("3D-f4")
        ref = integrate(f, 3, rel_tol=1e-3)
        got = integrate(f, 3, rel_tol=1e-3, backend=bk)
        assert got.estimate == ref.estimate
    finally:
        bk.close()


def test_batch_isolates_failing_member_on_process_backend():
    """One raising member is abandoned; the healthy members complete."""
    bk = _process_backend(2)
    try:
        members = [named_integrand("3D-f4"), _raising_integrand,
                   named_integrand("3D-f3")]
        results = integrate_many(
            members, ndim=3, rel_tol=1e-3, backend=bk,
            on_member_error="skip",
        )
    finally:
        bk.close()
    assert results[1] is None
    assert results[0] is not None and results[0].converged
    assert results[2] is not None and results[2].converged


def test_batch_raise_mode_chains_worker_exception():
    bk = _process_backend(2)
    try:
        with pytest.raises(BatchMemberError) as err:
            integrate_many(
                [named_integrand("3D-f4"), _raising_integrand], ndim=3,
                rel_tol=1e-3, backend=bk,
            )
        assert isinstance(err.value.__cause__, ValueError)
    finally:
        bk.close()


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------
def test_close_is_idempotent_and_pool_rebuilds():
    bk = _process_backend(2)
    f = named_integrand("3D-f4")
    r1 = integrate(f, 3, rel_tol=1e-3, backend=bk)
    bk.close()
    bk.close()  # idempotent
    assert bk._pool is None
    r2 = integrate(f, 3, rel_tol=1e-3, backend=bk)  # lazily rebuilt
    assert r2.estimate == r1.estimate
    bk.close()


def test_width_one_pool_runs_serially():
    bk = _process_backend(1)
    try:
        tasks = _deferred_tasks(bk, named_integrand("3D-f4"))
        bk.run_chunks(tasks)
        assert bk._pool is None  # never built a pool
    finally:
        bk.close()
