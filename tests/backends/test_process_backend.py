"""Process-backend specifics beyond the shared conformance battery.

The generic suite in ``test_backends.py`` already holds ``process`` /
``process:2`` to the bit-identity contract on closure integrands (which
exercise the serial in-process fallback).  This module exercises what is
unique to the process backend: the *remote* chunk path (picklable chunk
specs evaluated in worker processes), worker failure semantics, pool
lifecycle, and the graceful fallback for unshippable integrands.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import integrate, integrate_many
from repro.backends import (
    BackendUnavailableError,
    ProcessNumpyBackend,
    WorkerCrashError,
    get_backend,
)
from repro.batch import BatchMemberError
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.cubature.evaluation import evaluate_regions, shippable_integrand
from repro.cubature.rules import get_rule
from repro.integrands.catalog import named_integrand


def _process_backend(workers: int = 2) -> ProcessNumpyBackend:
    try:
        bk = ProcessNumpyBackend(num_workers=workers)
    except BackendUnavailableError as exc:  # pragma: no cover - sandbox
        pytest.skip(f"process backend unavailable: {exc}")
    return bk


# ---------------------------------------------------------------------------
# Shippability
# ---------------------------------------------------------------------------
def test_named_integrands_ship_by_spec():
    f = named_integrand("5D-f4")
    kind, value = shippable_integrand(f)
    assert (kind, value) == ("spec", "5d-f4")


def test_module_level_callables_ship_by_pickle():
    kind, _ = shippable_integrand(_sum_integrand)
    assert kind == "pickle"


def test_closures_are_not_shippable():
    coeff = np.arange(3.0)
    assert shippable_integrand(lambda x: x @ coeff) is None


# ---------------------------------------------------------------------------
# Remote-path bit-identity
# ---------------------------------------------------------------------------
def test_remote_chunks_bit_identical_to_numpy(rng):
    """Chunks computed in worker processes stitch to the exact numpy bits."""
    f = named_integrand("3D-f4")
    ndim = f.ndim
    rule = get_rule(ndim)
    m = 64
    centers = rng.random((m, ndim)) * 0.8 + 0.1
    halfw = np.full((m, ndim), 0.05)
    budget = rule.npoints * ndim * 4 * 8  # force ~16 chunks
    ref = evaluate_regions(
        rule, centers, halfw, f, error_model="cascade", chunk_budget=budget
    )
    bk = _process_backend(2)
    try:
        got, tasks = evaluate_regions(
            rule, centers, halfw, f, error_model="cascade",
            chunk_budget=budget, backend=bk, defer=True,
        )
        assert sum(t.remote_spec is not None for t in tasks) == len(tasks)
        bk.run_chunks(tasks)
    finally:
        bk.close()
    np.testing.assert_array_equal(got.estimate, ref.estimate)
    np.testing.assert_array_equal(got.error, ref.error)
    np.testing.assert_array_equal(got.split_axis, ref.split_axis)


def test_end_to_end_integrate_bit_identical_via_remote_path():
    """Force many shipped chunks per sweep and compare full runs."""
    f = named_integrand("3D-f4")
    results = {}
    for spec in ("numpy", "process:2"):
        cfg = PaganiConfig(
            rel_tol=1e-4, max_iterations=12, backend=spec,
            chunk_budget=200_000,  # same (small) decomposition for both
        )
        results[spec] = PaganiIntegrator(cfg).integrate(f, f.ndim)
    ref, got = results["numpy"], results["process:2"]
    assert got.estimate == ref.estimate
    assert got.errorest == ref.errorest
    assert got.iterations == ref.iterations
    get_backend("process:2").close()


def test_unshippable_integrand_falls_back_and_matches(gaussian3):
    """A closure integrand cannot ship; results must still match numpy."""
    ref = integrate(gaussian3, 3, rel_tol=1e-4)
    got = integrate(gaussian3, 3, rel_tol=1e-4, backend="process:2")
    assert got.estimate == ref.estimate
    assert got.errorest == ref.errorest


# ---------------------------------------------------------------------------
# Failure semantics
# ---------------------------------------------------------------------------
def _sum_integrand(x):
    return np.sum(x, axis=1)


def _raising_integrand(x):
    raise ValueError("integrand exploded in a worker")


def _crashing_integrand(x):
    os._exit(13)  # kill the worker process outright, no exception


_raising_integrand.ndim = 3
_crashing_integrand.ndim = 3


def _deferred_tasks(bk, integrand):
    """Small multi-chunk sweep on ``bk`` with every chunk shipped."""
    rule = get_rule(3)
    m = 16
    centers = np.full((m, 3), 0.5)
    halfw = np.full((m, 3), 0.1)
    budget = rule.npoints * 3 * 4  # 4 regions per chunk -> 4 chunks
    _, tasks = evaluate_regions(
        rule, centers, halfw, integrand, chunk_budget=budget,
        backend=bk, defer=True,
    )
    assert len(tasks) == 4
    assert all(t.remote_spec is not None for t in tasks)
    return tasks


def test_worker_exception_propagates_like_serial():
    bk = _process_backend(2)
    try:
        with pytest.raises(ValueError, match="exploded in a worker"):
            bk.run_chunks(_deferred_tasks(bk, _raising_integrand))
    finally:
        bk.close()


def test_worker_crash_isolated_and_pool_recovers():
    """A dying worker surfaces WorkerCrashError and does not poison the
    backend: the next submission rebuilds the pool and succeeds."""
    bk = _process_backend(2)
    try:
        with pytest.raises(WorkerCrashError):
            bk.run_chunks(_deferred_tasks(bk, _crashing_integrand))
        assert bk._pool is None  # broken pool was discarded
        f = named_integrand("3D-f4")
        ref = integrate(f, 3, rel_tol=1e-3)
        got = integrate(f, 3, rel_tol=1e-3, backend=bk)
        assert got.estimate == ref.estimate
    finally:
        bk.close()


def test_batch_isolates_failing_member_on_process_backend():
    """One raising member is abandoned; the healthy members complete."""
    bk = _process_backend(2)
    try:
        members = [named_integrand("3D-f4"), _raising_integrand,
                   named_integrand("3D-f3")]
        results = integrate_many(
            members, ndim=3, rel_tol=1e-3, backend=bk,
            on_member_error="skip",
        )
    finally:
        bk.close()
    assert results[1] is None
    assert results[0] is not None and results[0].converged
    assert results[2] is not None and results[2].converged


def test_batch_raise_mode_chains_worker_exception():
    bk = _process_backend(2)
    try:
        with pytest.raises(BatchMemberError) as err:
            integrate_many(
                [named_integrand("3D-f4"), _raising_integrand], ndim=3,
                rel_tol=1e-3, backend=bk,
            )
        assert isinstance(err.value.__cause__, ValueError)
    finally:
        bk.close()


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------
def test_close_is_idempotent_and_pool_rebuilds():
    bk = _process_backend(2)
    f = named_integrand("3D-f4")
    r1 = integrate(f, 3, rel_tol=1e-3, backend=bk)
    bk.close()
    bk.close()  # idempotent
    assert bk._pool is None
    r2 = integrate(f, 3, rel_tol=1e-3, backend=bk)  # lazily rebuilt
    assert r2.estimate == r1.estimate
    bk.close()


def test_width_one_pool_runs_serially():
    bk = _process_backend(1)
    try:
        tasks = _deferred_tasks(bk, named_integrand("3D-f4"))
        bk.run_chunks(tasks)
        assert bk._pool is None  # never built a pool
    finally:
        bk.close()


# ---------------------------------------------------------------------------
# Availability probe: real primitive, cached verdict, surfaced reason
# ---------------------------------------------------------------------------
def test_pool_probe_caches_verdict_and_surfaces_reason(monkeypatch):
    import multiprocessing

    import repro.backends.process as proc

    class _NoSemContext:
        def Lock(self):
            raise OSError("Function not implemented (sandbox says no)")

    monkeypatch.setattr(proc, "_POOL_PROBE", None)
    monkeypatch.setattr(
        multiprocessing, "get_context", lambda *a, **kw: _NoSemContext()
    )
    try:
        assert proc.process_pool_available() is False
        with pytest.raises(BackendUnavailableError) as excinfo:
            ProcessNumpyBackend(num_workers=2)
        # The real failure reason reaches the caller, not a generic shrug.
        assert "OSError" in str(excinfo.value)
        assert "sandbox says no" in str(excinfo.value)
        # Verdict is cached: a second call must not re-probe.
        monkeypatch.setattr(
            multiprocessing, "get_context",
            lambda *a, **kw: (_ for _ in ()).throw(AssertionError("re-probed")),
        )
        assert proc.process_pool_available() is False
    finally:
        proc._POOL_PROBE = None  # let later tests re-probe the real host


def test_pool_probe_positive_on_this_host():
    import repro.backends.process as proc

    proc._POOL_PROBE = None
    try:
        assert proc.process_pool_available() in (True, False)
        cached = proc._POOL_PROBE
        assert cached is not None
        assert proc.process_pool_available() == cached[0]
    finally:
        proc._POOL_PROBE = None


def test_rejects_unknown_ipc_transport():
    from repro.backends.process import process_pool_available

    if not process_pool_available():
        pytest.skip("no process pool on this host")
    with pytest.raises(ValueError):
        ProcessNumpyBackend(num_workers=2, ipc="carrier-pigeon")


# ---------------------------------------------------------------------------
# Shared-memory IPC: bit-identity vs the pickle transport and numpy
# ---------------------------------------------------------------------------
def test_shm_and_pickle_transports_bit_identical():
    from repro.backends.process import shared_memory_available

    if not shared_memory_available():
        pytest.skip("no shared memory on this host")
    f = named_integrand("3D-f4")  # ships by spec: the remote path runs
    results = {}
    for ipc in ("shm", "pickle"):
        bk = _process_backend(2)
        bk.ipc = ipc
        try:
            cfg = PaganiConfig(rel_tol=1e-4, backend=bk, chunk_budget=40_000)
            results[ipc] = PaganiIntegrator(cfg).integrate(f, 3)
        finally:
            bk.close()
    ref = integrate(f, 3, rel_tol=1e-4)
    for ipc, res in results.items():
        assert res.estimate == ref.estimate, ipc
        assert res.errorest == ref.errorest, ipc
        assert res.neval == ref.neval, ipc


def test_shm_probe_failure_degrades_transport_to_pickle(monkeypatch):
    """A host that cannot create segments reports shm unavailable and
    the backend silently degrades to the pickle transport."""
    import multiprocessing.shared_memory as sm

    import repro.backends.process as proc

    def _no_shm(*args, **kwargs):
        raise OSError("no /dev/shm on this host")

    monkeypatch.setattr(proc, "_SHM_PROBE", None)
    monkeypatch.setattr(sm, "SharedMemory", _no_shm)
    assert proc.shared_memory_available() is False
    bk = _process_backend(2)
    try:
        assert bk.ipc == "shm"
        assert bk.effective_ipc == "pickle"
    finally:
        bk.close()


# ---------------------------------------------------------------------------
# Worker-side internals, exercised in-process.  The functions pool
# workers run are plain module functions; calling them here pins the
# remote half of the bit-identity argument deterministically, without a
# pool (and its scheduling noise) in the loop.
# ---------------------------------------------------------------------------
def test_worker_chunk_paths_match_direct_compute(rng):
    import repro.backends.process as proc
    from repro.cubature.evaluation import compute_chunk
    from repro.cubature.rules import RULE_CACHE

    mc, ndim = 6, 3
    centers = rng.random((mc, ndim)) * 0.5 + 0.25
    halfw = np.full((mc, ndim), 0.05)
    f = named_integrand("3D-f4")
    bk = proc._worker_backend()
    assert bk is proc._worker_backend()  # built once per process
    dr = RULE_CACHE.device_rule(get_rule(ndim), bk)
    ref = compute_chunk(bk, dr, f, centers, halfw, "two_rule")

    # Pickle transport: the whole chunk spec crosses as one payload.
    got = proc._eval_chunk_in_worker({
        "integrand": ("spec", "3d-f4"), "ndim": ndim,
        "error_model": "two_rule", "centers": centers, "halfwidths": halfw,
    })
    for a, b in zip(got, ref):
        np.testing.assert_array_equal(a, b)

    # Shm transport: inputs read from the input arena, results written
    # into the output arena slot — and they must be the same bits.
    in_arena, out_arena = proc._ShmArena(), proc._ShmArena()
    count = mc * ndim
    in_arena.ensure(2 * count * 8)
    out_arena.ensure(mc * 24)
    in_name, out_name = in_arena.name, out_arena.name
    try:
        np.frombuffer(
            in_arena.shm.buf, np.float64, count, 0
        ).reshape(mc, ndim)[:] = centers
        np.frombuffer(
            in_arena.shm.buf, np.float64, count, count * 8
        ).reshape(mc, ndim)[:] = halfw
        proc._eval_chunk_shm(
            (in_name, out_name, 0, 0, mc, ndim, "two_rule",
             ("spec", "3d-f4"))
        )
        est = np.frombuffer(out_arena.shm.buf, np.float64, mc, 0).copy()
        err = np.frombuffer(
            out_arena.shm.buf, np.float64, mc, mc * 8
        ).copy()
        axis = np.frombuffer(
            out_arena.shm.buf, np.int64, mc, mc * 16
        ).copy()
        np.testing.assert_array_equal(est, ref[0])
        np.testing.assert_array_equal(err, ref[1])
        np.testing.assert_array_equal(axis, ref[2])
    finally:
        for name in (in_name, out_name):
            seg = proc._worker_segments.pop(name, None)
            if seg is not None:
                try:
                    seg.close()
                except BufferError:
                    pass
        in_arena.release()
        out_arena.release()


def test_worker_integrand_refs_content_addressed(monkeypatch):
    import hashlib
    import pickle
    from multiprocessing import shared_memory

    import repro.backends.process as proc

    blob = pickle.dumps(_sum_integrand)
    digest = hashlib.sha256(blob).hexdigest()

    monkeypatch.setattr(proc, "_worker_integrands", {})
    by_spec = proc._resolve_worker_integrand(("spec", "3d-f4"))
    assert by_spec is proc._resolve_worker_integrand(("spec", "3d-f4"))

    by_pickle = proc._resolve_worker_integrand(("pickle", blob))
    assert by_pickle(np.ones((2, 3))).tolist() == [3.0, 3.0]

    # A shm ref whose digest already arrived inline is served from the
    # cache: no attach happens (the segment name is deliberately bogus).
    same = proc._resolve_worker_integrand(
        ("shm", ("no-such-segment", len(blob), digest))
    )
    assert same is by_pickle

    # A cold worker attaches the segment and unpickles from it.
    seg = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
    seg.buf[: len(blob)] = blob
    try:
        monkeypatch.setattr(proc, "_worker_integrands", {})
        fresh = proc._resolve_worker_integrand(
            ("shm", (seg.name, len(blob), digest))
        )
        assert fresh(np.ones((2, 3))).tolist() == [3.0, 3.0]
    finally:
        attached = proc._worker_segments.pop(seg.name, None)
        if attached is not None:
            try:
                attached.close()
            except BufferError:
                pass
        proc._release_shm(seg)


def test_worker_segment_cache_evicts_at_cap(monkeypatch):
    from collections import OrderedDict
    from multiprocessing import shared_memory

    import repro.backends.process as proc

    monkeypatch.setattr(proc, "_worker_segments", OrderedDict())
    monkeypatch.setattr(proc, "_WORKER_SEGMENT_CAP", 2)
    segs = [shared_memory.SharedMemory(create=True, size=64)
            for _ in range(3)]
    try:
        proc._worker_attach_shm(segs[0].name)
        proc._worker_attach_shm(segs[1].name)
        proc._worker_attach_shm(segs[0].name)  # refresh -> LRU is segs[1]
        proc._worker_attach_shm(segs[2].name)  # evicts segs[1]'s mapping
        assert set(proc._worker_segments) == {segs[0].name, segs[2].name}
    finally:
        for seg in list(proc._worker_segments.values()):
            try:
                seg.close()
            except BufferError:
                pass
        proc._worker_segments.clear()
        for seg in segs:
            proc._release_shm(seg)


def test_parent_integrand_blocks_are_lru_capped(monkeypatch):
    import repro.backends.process as proc

    monkeypatch.setattr(proc, "_INTEGRAND_SHM_CAP", 1)
    bk = _process_backend(2)
    try:
        # spec refs pass through untouched — nothing to stage
        assert bk._ship_integrand(("spec", "3d-f4")) == ("spec", "3d-f4")
        ref_a = bk._ship_integrand(("pickle", b"a" * 16))
        ref_b = bk._ship_integrand(("pickle", b"b" * 16))  # evicts a's block
        assert ref_a[0] == ref_b[0] == "shm"
        assert len(bk._integrand_shms) == 1
        # the surviving blob dedupes onto its existing segment
        assert bk._ship_integrand(("pickle", b"b" * 16)) == ref_b
    finally:
        bk.close()
    assert not bk._integrand_shms


def test_submit_race_with_closed_pool_surfaces_crash_error():
    """close() racing a submission must not hang or corrupt the backend:
    the dead pool is discarded and WorkerCrashError surfaces."""
    bk = _process_backend(2)
    try:
        tasks = _deferred_tasks(bk, named_integrand("3D-f4"))
        bk._ensure_pool().shutdown(wait=True)  # pool dies under run_chunks
        with pytest.raises(WorkerCrashError, match="unusable"):
            bk.run_chunks(tasks)
        assert bk._pool is None
    finally:
        bk.close()


def test_parallel_path_overlaps_unshippable_chunks():
    """Local (unshippable) chunks run in the parent while shipped chunks
    are in flight — and a failing local chunk propagates like a serial
    thunk."""
    bk = _process_backend(2)
    f = named_integrand("3D-f4")
    ran = []

    class _LocalTask:
        remote_spec = None

        def __call__(self):
            ran.append(True)

    class _FailingTask:
        remote_spec = None

        def __call__(self):
            raise ValueError("local chunk exploded")

    try:
        bk.run_chunks(list(_deferred_tasks(bk, f)) + [_LocalTask()])
        assert ran == [True]
        with pytest.raises(ValueError, match="local chunk exploded"):
            bk.run_chunks(list(_deferred_tasks(bk, f)) + [_FailingTask()])
    finally:
        bk.close()


def test_shm_arena_reuse_and_clean_close():
    from repro.backends.process import shared_memory_available

    if not shared_memory_available():
        pytest.skip("no shared memory on this host")
    bk = _process_backend(2)
    if bk.effective_ipc != "shm":
        bk.close()
        pytest.skip("shm transport not active")
    f = named_integrand("3D-f4")
    try:
        cfg = PaganiConfig(rel_tol=1e-3, backend=bk, chunk_budget=40_000)
        PaganiIntegrator(cfg).integrate(f, 3)
        first = (bk._in_arena.size, bk._out_arena.size)
        assert first[0] > 0 and first[1] > 0
        PaganiIntegrator(cfg).integrate(f, 3)
        # Same-shaped job: the arenas are reused, not reallocated.
        assert (bk._in_arena.size, bk._out_arena.size) == first
    finally:
        bk.close()
    assert bk._in_arena.size == 0
    assert bk._out_arena.size == 0
