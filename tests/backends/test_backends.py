"""Protocol-conformance suite for the array-execution backends.

Every registered backend that is available on the host runs the same
battery: primitive semantics against the NumPy reference, the
chunk-execution contract, and end-to-end PAGANI agreement on Genz
integrands.  Host backends must match the NumPy reference **exactly**
(bit-identical estimates and errors); accelerator backends with a
different array library (cupy) are held to machine-precision agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import integrate
from repro.backends import (
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    ThreadedNumpyBackend,
    available_backends,
    get_backend,
)
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule
from repro.errors import ConfigurationError
from repro.integrands.catalog import named_integrand
from repro.integrands.genz import GenzFamily, make_genz

#: every backend we try; unavailable ones skip rather than fail
ALL_BACKEND_SPECS = [
    "numpy", "threaded", "threaded:2", "process", "process:2",
    "numba", "numba:2", "cupy",
]

#: backends sharing NumPy's array library *and* chunk arithmetic must be
#: bit-identical to it; numba's fused kernel sums sequentially per region
#: (BLAS sums blocked), so the compiled lane is held to the same
#: machine-precision contract as cupy instead
EXACT_SPECS = {"numpy", "threaded", "threaded:2", "process", "process:2"}


def _backend_or_skip(spec: str) -> ArrayBackend:
    try:
        return get_backend(spec)
    except BackendUnavailableError as exc:
        pytest.skip(f"backend {spec} unavailable: {exc}")


@pytest.fixture(params=ALL_BACKEND_SPECS)
def backend(request) -> ArrayBackend:
    return _backend_or_skip(request.param)


# ---------------------------------------------------------------------------
# Registry / spec resolution
# ---------------------------------------------------------------------------
def test_numpy_always_available():
    assert "numpy" in available_backends()
    assert "threaded" in available_backends()


def test_get_backend_defaults_and_singletons():
    assert get_backend(None) is get_backend("numpy")
    assert isinstance(get_backend("numpy"), NumpyBackend)


def test_get_backend_instance_passthrough():
    bk = ThreadedNumpyBackend(num_threads=2)
    assert get_backend(bk) is bk


def test_get_backend_threaded_spec_parses_width():
    assert get_backend("threaded:3").num_threads == 3


def test_get_backend_process_spec_parses_width():
    assert get_backend("process:3").num_workers == 3


def test_new_backend_builds_fresh_instances():
    from repro.backends import new_backend

    a = new_backend("threaded:2")
    b = new_backend("threaded:2")
    assert a is not b                      # isolated instances per call
    assert get_backend("threaded:2") is get_backend("threaded:2")
    inst = get_backend("numpy")
    assert new_backend(inst) is inst       # instances pass through


@pytest.mark.parametrize(
    "spec", ["nope", "threaded:x", "process:x", "numba:x", "numpy:4", 3.5]
)
def test_get_backend_rejects_bad_specs(spec):
    with pytest.raises(ConfigurationError):
        get_backend(spec)


# ---------------------------------------------------------------------------
# Primitive semantics (vs the NumPy reference implementation)
# ---------------------------------------------------------------------------
def test_reductions_match_numpy(backend, rng):
    vals = rng.standard_normal(1000)
    a = backend.asarray(vals)
    assert backend.reduce_sum(a) == pytest.approx(float(np.sum(vals)), rel=1e-14)
    assert backend.minmax(a) == (float(vals.min()), float(vals.max()))
    b = backend.asarray(rng.standard_normal(1000))
    assert backend.dot(a, b) == pytest.approx(
        float(np.dot(vals, backend.to_numpy(b))), rel=1e-13
    )
    # scalars come back as Python numbers (device sync points)
    assert isinstance(backend.reduce_sum(a), float)
    assert isinstance(backend.count_nonzero(a > 0), int)


def test_scan_and_compress(backend, rng):
    flags = (rng.random(257) > 0.4).astype(np.int64)
    scan = backend.to_numpy(backend.exclusive_scan(backend.asarray(flags)))
    ref = np.concatenate(([0], np.cumsum(flags)[:-1]))
    np.testing.assert_array_equal(scan, ref)

    mask = backend.asarray(flags.astype(bool))
    data = backend.asarray(rng.standard_normal((257, 3)))
    kept = backend.to_numpy(backend.compress(mask, data))
    np.testing.assert_array_equal(
        kept, backend.to_numpy(data)[flags.astype(bool)]
    )


def test_count_nonzero_matches(backend):
    flags = backend.asarray(np.array([True, False, True, True, False]))
    assert backend.count_nonzero(flags) == 3


def test_map_integrand_coerces_dtype(backend):
    pts = backend.asarray(np.linspace(0, 1, 12).reshape(4, 3))
    out = backend.map_integrand(
        lambda x: (np.sum(x, axis=1) > 1.0), pts  # bool-valued integrand
    )
    host = backend.to_numpy(out)
    assert host.dtype == np.float64
    assert host.shape == (4,)


def test_run_chunks_executes_all_disjoint_slices(backend):
    out = backend.xp.zeros(64)

    def task(lo, hi):
        def work():
            out[lo:hi] = lo
        return work

    backend.run_chunks([task(i, i + 8) for i in range(0, 64, 8)])
    host = backend.to_numpy(out)
    np.testing.assert_array_equal(host, np.repeat(np.arange(0, 64, 8), 8))


def test_run_chunks_propagates_worker_errors():
    bk = ThreadedNumpyBackend(num_threads=2)

    def boom():
        raise RuntimeError("worker exploded")

    with pytest.raises(RuntimeError, match="worker exploded"):
        bk.run_chunks([boom, boom])
    bk.close()


# ---------------------------------------------------------------------------
# Evaluate-sweep agreement
# ---------------------------------------------------------------------------
def test_evaluate_regions_matches_reference(backend, rng):
    ndim = 4
    rule = get_rule(ndim)
    m = 37
    centers = rng.random((m, ndim)) * 0.8 + 0.1
    halfw = np.full((m, ndim), 0.05)
    f = make_genz(GenzFamily.GAUSSIAN, ndim, seed=3)

    ref = evaluate_regions(rule, centers, halfw, f, error_model="cascade")
    got = evaluate_regions(
        rule, centers, halfw, f, error_model="cascade",
        chunk_budget=rule.npoints * ndim * 8,  # force many chunks
        backend=backend,
    )
    est = backend.to_numpy(got.estimate)
    err = backend.to_numpy(got.error)
    np.testing.assert_allclose(est, ref.estimate, rtol=1e-13)
    np.testing.assert_allclose(err, ref.error, rtol=1e-12, atol=1e-300)
    np.testing.assert_array_equal(
        backend.to_numpy(got.split_axis), ref.split_axis
    )
    assert got.neval == ref.neval


# ---------------------------------------------------------------------------
# End-to-end PAGANI agreement on the Genz suite
# ---------------------------------------------------------------------------
GENZ_CASES = [
    (GenzFamily.GAUSSIAN, 4),
    (GenzFamily.PRODUCT_PEAK, 3),
    (GenzFamily.CORNER_PEAK, 3),
    (GenzFamily.C0, 3),
]


@pytest.mark.parametrize("spec", [s for s in ALL_BACKEND_SPECS if s != "numpy"])
@pytest.mark.parametrize("family,ndim", GENZ_CASES)
def test_pagani_genz_agreement_with_numpy(spec, family, ndim):
    _backend_or_skip(spec)
    f = make_genz(family, ndim, seed=7)
    results = {}
    for bk in ("numpy", spec):
        cfg = PaganiConfig(rel_tol=1e-4, max_iterations=12, backend=bk)
        results[bk] = PaganiIntegrator(cfg).integrate(f, ndim)
    ref, got = results["numpy"], results[spec]
    if spec in EXACT_SPECS:
        # same array library, same chunking => bit-identical
        assert got.estimate == ref.estimate
        assert got.errorest == ref.errorest
    else:
        assert got.estimate == pytest.approx(ref.estimate, rel=1e-12)
        assert got.errorest == pytest.approx(ref.errorest, rel=1e-9)
    assert got.neval == ref.neval
    assert got.iterations == ref.iterations
    assert got.status == ref.status
    # both land on the true value within tolerance
    assert abs(got.estimate - f.reference) <= 3e-4 * abs(f.reference)


# One spec per transform family: the canonical spec must make each
# transformed integrand process-shippable *and* bit-identical across the
# host backends, exactly like a plain catalogue integrand.
TRANSFORM_SPECS = [
    "semi_infinite(3D-f4, scale=2.0)",
    "infinite(2D-genz-gaussian, scale=1.5)",
    "gaussian_measure(2D-f4, mean=0.5, sigma=0.8)",
]


@pytest.mark.parametrize("spec", sorted(EXACT_SPECS - {"numpy"}))
@pytest.mark.parametrize("tspec", TRANSFORM_SPECS)
def test_pagani_transform_agreement_with_numpy(spec, tspec):
    _backend_or_skip(spec)
    results = {}
    for bk in ("numpy", spec):
        f = named_integrand(tspec)
        cfg = PaganiConfig(rel_tol=1e-4, max_iterations=12, backend=bk)
        results[bk] = PaganiIntegrator(cfg).integrate(f, f.ndim)
    ref, got = results["numpy"], results[spec]
    assert got.estimate == ref.estimate
    assert got.errorest == ref.errorest
    assert got.neval == ref.neval
    assert got.status == ref.status


def test_api_backend_keyword_roundtrip(gaussian3):
    ref = integrate(gaussian3, 3, rel_tol=1e-4)
    thr = integrate(gaussian3, 3, rel_tol=1e-4, backend="threaded")
    assert thr.estimate == ref.estimate
    assert thr.errorest == ref.errorest


def test_api_rejects_backend_for_baselines(gaussian3):
    with pytest.raises(ConfigurationError, match="pagani"):
        integrate(gaussian3, 3, method="cuhre", backend="threaded")


def test_config_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        PaganiIntegrator(PaganiConfig(backend="not-a-backend"))
