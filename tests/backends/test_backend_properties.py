"""Property-based tests for the Thrust-style backend primitives.

Hypothesis drives random flag/value populations through every available
backend's ``exclusive_scan``, reductions and stream compaction, asserting
the algebraic properties the PAGANI kernels rely on (the filter kernel's
scan/compact contract, the reduction sync points) rather than any single
worked example.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.backends import ArrayBackend, BackendUnavailableError, get_backend

#: host backends always run; cupy joins when CUDA is present
SPECS = ["numpy", "threaded", "cupy"]


def _backends() -> list:
    out = []
    for spec in SPECS:
        try:
            out.append(get_backend(spec))
        except BackendUnavailableError:
            pass
    return out


BACKENDS = _backends()
BACKEND_IDS = [bk.name for bk in BACKENDS]

flags_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=0, max_value=200),
    elements=st.integers(min_value=0, max_value=1),
)

value_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(
        min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
)


@pytest.mark.parametrize("bk", BACKENDS, ids=BACKEND_IDS)
@given(flags=flags_arrays)
def test_exclusive_scan_properties(bk: ArrayBackend, flags):
    scan = bk.to_numpy(bk.exclusive_scan(bk.asarray(flags)))
    assert scan.shape == flags.shape
    if flags.size:
        # Defining recurrence of the exclusive prefix sum.
        assert scan[0] == 0
        np.testing.assert_array_equal(scan[1:], np.cumsum(flags)[:-1])
        # The filter kernel's contract: each surviving element's scan value
        # is its output slot, and slots are consecutive.
        assert scan[-1] + flags[-1] == flags.sum()
        np.testing.assert_array_equal(
            scan[flags.astype(bool)], np.arange(int(flags.sum()))
        )


@pytest.mark.parametrize("bk", BACKENDS, ids=BACKEND_IDS)
@given(flags=flags_arrays)
def test_count_matches_scan_total(bk: ArrayBackend, flags):
    n = bk.count_nonzero(bk.asarray(flags.astype(bool)))
    assert n == int(flags.sum())


@pytest.mark.parametrize("bk", BACKENDS, ids=BACKEND_IDS)
@given(values=value_arrays)
def test_reductions_agree_with_reference(bk: ArrayBackend, values):
    dev = bk.asarray(values)
    assert bk.reduce_sum(dev) == pytest.approx(float(np.sum(values)), rel=1e-12, abs=1e-300)
    lo, hi = bk.minmax(dev)
    assert lo == float(np.min(values)) and hi == float(np.max(values))
    assert bk.dot(dev, dev) == pytest.approx(
        float(np.dot(values, values)), rel=1e-12, abs=1e-300
    )


@pytest.mark.parametrize("bk", BACKENDS, ids=BACKEND_IDS)
@given(flags=flags_arrays)
def test_compress_is_order_preserving_subset(bk: ArrayBackend, flags):
    mask = flags.astype(bool)
    payload = np.arange(flags.size, dtype=np.float64)
    kept = bk.to_numpy(bk.compress(bk.asarray(mask), bk.asarray(payload)))
    # Exactly the flagged rows, in their original order, nothing duplicated.
    np.testing.assert_array_equal(kept, payload[mask])
    assert kept.size == int(mask.sum())


@pytest.mark.parametrize("bk", BACKENDS, ids=BACKEND_IDS)
@given(flags=flags_arrays)
def test_compress_2d_rows(bk: ArrayBackend, flags):
    mask = flags.astype(bool)
    payload = np.stack(
        [np.arange(flags.size, dtype=np.float64)] * 3, axis=1
    ) + np.array([0.0, 0.25, 0.5])
    kept = bk.to_numpy(bk.compress(bk.asarray(mask), bk.asarray(payload)))
    np.testing.assert_array_equal(kept, payload[mask])
