"""Packaging/export sanity: the public API surface stays intact."""

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.cubature",
        "repro.backends",
        "repro.gpu",
        "repro.baselines",
        "repro.integrands",
        "repro.reference",
        "repro.diagnostics",
        "repro.sparse_grids",
        "repro.cli",
        "repro.api",
        "repro.errors",
    ],
)
def test_submodules_importable_and_documented(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} must have a module docstring"


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.cubature",
        "repro.backends",
        "repro.gpu",
        "repro.baselines",
        "repro.integrands",
        "repro.reference",
        "repro.sparse_grids",
        "repro.diagnostics",
    ],
)
def test_package_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_setup_py_is_a_metadata_free_shim():
    """setup.py predates pyproject.toml and must never disagree with it:
    the only thing it may contain is a bare ``setup()`` call, so every
    piece of metadata has exactly one home."""
    source = (REPO_ROOT / "setup.py").read_text()
    call = re.search(r"setup\((.*?)\)", source, re.DOTALL)
    assert call, "setup.py must call setuptools.setup()"
    assert call.group(1).strip() == "", (
        "setup.py passed arguments to setup(); move all metadata to "
        "pyproject.toml — the shim exists only for wheel-less "
        "legacy editable installs"
    )
    for forbidden in ("name=", "version=", "packages=", "entry_points="):
        assert forbidden not in source, f"metadata drift: {forbidden} in setup.py"


def test_pyproject_declares_console_script_and_package():
    """The surfaces CI's clean-install job exercises are declared where
    pip actually reads them."""
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    assert 'name = "pagani-repro"' in pyproject
    assert 'pagani-repro = "repro.cli:main"' in pyproject


def test_all_registered_backend_names_reach_the_cli_help(capsys):
    """`--backend` help is generated from the registry
    (``backend_spec_help``), so every registered backend must appear in
    the live help output — the surface cannot drift from the registry."""
    import pytest

    from repro import cli
    from repro.backends import _FACTORIES

    with pytest.raises(SystemExit):
        cli.main(["run", "--help"])
    help_text = capsys.readouterr().out
    for name in _FACTORIES:
        assert name in help_text, (
            f"backend {name!r} is registered but never mentioned in the "
            "CLI's --backend help text"
        )


def test_public_classes_have_docstrings():
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"
