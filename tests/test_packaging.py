"""Packaging/export sanity: the public API surface stays intact."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.cubature",
        "repro.backends",
        "repro.gpu",
        "repro.baselines",
        "repro.integrands",
        "repro.reference",
        "repro.diagnostics",
        "repro.sparse_grids",
        "repro.cli",
        "repro.api",
        "repro.errors",
    ],
)
def test_submodules_importable_and_documented(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} must have a module docstring"


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.cubature",
        "repro.backends",
        "repro.gpu",
        "repro.baselines",
        "repro.integrands",
        "repro.reference",
        "repro.sparse_grids",
        "repro.diagnostics",
    ],
)
def test_package_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_public_classes_have_docstrings():
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"
