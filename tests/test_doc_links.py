"""The documentation link graph stays intact (tools/check_doc_links.py).

CI runs the tool over README + docs/ in the docs job; these tests keep
the same check inside tier-1 and pin the tool's own behaviour on
synthetic broken inputs.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

import check_doc_links as cdl  # noqa: E402


def test_repo_docs_have_no_broken_links(capsys):
    assert cdl.main([]) == 0
    assert "all documentation links OK" in capsys.readouterr().out


def test_missing_file_and_bad_anchor_detected(tmp_path, capsys):
    target = tmp_path / "page.md"
    target.write_text("# Real Heading\n\nbody\n")
    source = tmp_path / "index.md"
    source.write_text(
        "[ok](page.md)\n"
        "[ok-anchor](page.md#real-heading)\n"
        "[gone](missing.md)\n"
        "[bad-anchor](page.md#no-such-heading)\n"
    )
    assert cdl.main([str(source)]) == 1
    err = capsys.readouterr().err
    assert "missing.md" in err
    assert "no-such-heading" in err


def test_links_inside_code_fences_ignored(tmp_path):
    source = tmp_path / "doc.md"
    source.write_text("```\n[not a link](nowhere.md)\n```\n")
    assert cdl.main([str(source)]) == 0


def test_github_slugging():
    assert cdl.github_slug("Reading `BENCH_process.json`") == (
        "reading-bench_processjson"
    )
    assert cdl.github_slug("The layer map") == "the-layer-map"
