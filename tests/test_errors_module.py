"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    DeviceError,
    DeviceMemoryError,
    DimensionError,
    IntegrationError,
    KernelError,
    ReproError,
)


def test_hierarchy():
    assert issubclass(ConfigurationError, ReproError)
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(DimensionError, ConfigurationError)
    assert issubclass(DeviceMemoryError, DeviceError)
    assert issubclass(DeviceMemoryError, MemoryError)
    assert issubclass(KernelError, DeviceError)
    assert issubclass(IntegrationError, ReproError)


def test_device_memory_error_payload():
    err = DeviceMemoryError(requested=100, available=40)
    assert err.requested == 100
    assert err.available == 40
    assert "100" in str(err) and "40" in str(err)


def test_device_memory_error_custom_message():
    err = DeviceMemoryError(requested=1, available=0, message="custom")
    assert str(err) == "custom"


def test_catching_base_class_covers_library_errors():
    """Callers should be able to catch ReproError for anything we raise."""
    from repro import PaganiConfig, PaganiIntegrator

    with pytest.raises(ReproError):
        PaganiIntegrator(PaganiConfig(rel_tol=-1.0))
    from repro.cubature.rules import get_rule

    with pytest.raises(ReproError):
        get_rule(1)
