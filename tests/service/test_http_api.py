"""HTTP front end: endpoint round-trips, error paths (400/404/409/410/
429), cancellation over HTTP, metrics, and wire-level bit-identity."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.api import integrate, serve_http
from repro.integrands.catalog import named_integrand
from repro.service import IntegrationService
from repro.service.http import HttpIntegrationServer
from repro.service.store import result_to_payload


def request(method, url, body=None, timeout=30):
    """(status_code, json_payload, headers) for one request."""
    req = urllib.request.Request(
        url, method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


@contextmanager
def http_server(**kwargs):
    kwargs.setdefault("port", 0)
    server = serve_http(**kwargs)
    try:
        yield server
    finally:
        server.close()


def wait_status(base, job_id, want, timeout=120.0):
    """Poll until the job's status is in ``want``; returns the payload."""
    deadline = time.monotonic() + timeout
    while True:
        code, body, _ = request("GET", f"{base}/v1/jobs/{job_id}")
        assert code == 200, body
        if body["status"] in want:
            return body
        if time.monotonic() > deadline:
            raise AssertionError(
                f"job {job_id} stuck in {body['status']!r}, wanted {want}"
            )
        time.sleep(0.02)


# ---------------------------------------------------------------------------
# happy path
# ---------------------------------------------------------------------------
def test_submit_poll_result_roundtrip_bit_identical():
    f = named_integrand("3D-f4")
    cold = integrate(f, f.ndim, rel_tol=1e-3)
    cold_hex = result_to_payload(cold)

    with http_server() as server:
        base = server.url
        code, body, _ = request(
            "POST", base + "/v1/jobs",
            {"integrand": "3D-f4", "rel_tol": 1e-3, "priority": 2},
        )
        assert code == 202
        job = body["job_id"]
        assert body["location"] == f"/v1/jobs/{job}"

        status = wait_status(base, job, ("done",))
        assert status["priority"] == 2
        assert status["fingerprint"]
        assert status["total_seconds"] > 0

        code, res, _ = request("GET", f"{base}/v1/jobs/{job}/result")
        assert code == 200
        assert res["result"]["converged"]
        # over-the-wire bit-identity with a cold in-process run
        assert res["result_hex"]["estimate"] == cold_hex["estimate"]
        assert res["result_hex"]["errorest"] == cold_hex["errorest"]
        assert res["result_hex"]["neval"] == cold_hex["neval"]
        # and the decimal view agrees with itself
        assert res["result"]["estimate"] == pytest.approx(cold.estimate)


def test_duplicate_submission_served_from_cache():
    with http_server() as server:
        base = server.url
        spec = {"integrand": "3D-f4", "rel_tol": 1e-3}
        _, first, _ = request("POST", base + "/v1/jobs", spec)
        wait_status(base, first["job_id"], ("done",))
        _, dup, _ = request("POST", base + "/v1/jobs", spec)
        status = wait_status(base, dup["job_id"], ("done",))
        assert status["cache_hit"] is True
        code, a, _ = request(
            "GET", f"{base}/v1/jobs/{first['job_id']}/result"
        )
        code, b, _ = request(
            "GET", f"{base}/v1/jobs/{dup['job_id']}/result"
        )
        assert a["result_hex"]["estimate"] == b["result_hex"]["estimate"]


def test_healthz_jobs_list_and_metrics():
    with http_server(shards=2) as server:
        base = server.url
        code, body, _ = request("GET", base + "/healthz")
        assert (code, body) == (200, {"ok": True})

        _, sub, _ = request(
            "POST", base + "/v1/jobs", {"integrand": "3D-f4"}
        )
        wait_status(base, sub["job_id"], ("done",))

        code, listing, _ = request("GET", base + "/v1/jobs")
        assert code == 200
        assert [j["job_id"] for j in listing["jobs"]] == [sub["job_id"]]

        code, metrics, _ = request("GET", base + "/metrics")
        assert code == 200
        svc = metrics["service"]
        assert svc["submitted"] == 1
        assert svc["shards"] == 2
        assert len(svc["per_shard"]) == 2
        for shard in svc["per_shard"]:
            assert set(shard) == {"shard", "live", "followers", "utilization"}
        assert svc["queued"] == 0 and svc["inflight"] == 0
        assert svc["cache"]["entries"] == 1
        http = metrics["http"]
        assert http["requests"] >= 3
        assert http["rejected"] == 0
        assert http["jobs_tracked"] == 1
        assert metrics["max_queued"] == server.max_queued


# ---------------------------------------------------------------------------
# error paths
# ---------------------------------------------------------------------------
def test_unknown_job_and_route_404():
    with http_server() as server:
        base = server.url
        for method, path in (
            ("GET", "/v1/jobs/999"),
            ("GET", "/v1/jobs/999/result"),
            ("GET", "/v1/jobs/not-a-number"),
            ("GET", "/v2/jobs"),
            ("DELETE", "/v1/jobs/999"),
            ("POST", "/v1/other"),
        ):
            code, body, _ = request(method, base + path)
            assert code == 404, (method, path)
            assert "error" in body


def test_malformed_spec_rejected_400():
    with http_server() as server:
        base = server.url
        bad_bodies = [
            {"integrand": "3D-f4", "bogus": 1},        # unknown key
            {"rel_tol": 1e-3},                          # no integrand
            {"integrand": "no-such-integrand"},         # unknown spec
            {"integrand": "3D-f4", "rel_tol": 2.0},     # invalid tolerance
            {"integrand": "3D-f4", "priority": 0},      # invalid priority
        ]
        for body in bad_bodies:
            code, payload, _ = request("POST", base + "/v1/jobs", body)
            assert code == 400, body
            assert payload["error"]
        # not JSON at all
        req = urllib.request.Request(
            base + "/v1/jobs", method="POST", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=30)
        assert exc.value.code == 400
        # JSON but not an object
        code, payload, _ = request("POST", base + "/v1/jobs", ["3D-f4"])
        assert code == 400


# ---------------------------------------------------------------------------
# backpressure + cancellation (one slow rotation, bounded queue)
# ---------------------------------------------------------------------------
def test_admission_control_and_cancellation_over_http():
    with http_server(max_concurrent=1, max_queued=1) as server:
        base = server.url
        slow = {"integrand": "8D-f7", "rel_tol": 1e-7,
                "max_iterations": 35, "label": "slow"}
        _, running, _ = request("POST", base + "/v1/jobs", slow)
        wait_status(base, running["job_id"], ("running",))

        # different tolerance -> different fingerprint -> real queue entry
        queued = dict(slow, rel_tol=2e-7, label="queued")
        code, q, _ = request("POST", base + "/v1/jobs", queued)
        assert code == 202

        # the bounded queue is full: next POST is 429 + Retry-After
        third = dict(slow, rel_tol=3e-7, label="rejected")
        code, body, headers = request("POST", base + "/v1/jobs", third)
        assert code == 429
        assert "Retry-After" in headers
        assert "queue full" in body["error"]

        # a queued/running job's result is 409 + Retry-After
        code, body, headers = request(
            "GET", f"{base}/v1/jobs/{q['job_id']}/result"
        )
        assert code == 409
        assert "Retry-After" in headers

        # cancel the queued job over HTTP
        code, body, _ = request("DELETE", f"{base}/v1/jobs/{q['job_id']}")
        assert code == 202 and body["cancelled"]
        status = wait_status(base, q["job_id"], ("cancelled",))
        assert status["status"] == "cancelled"
        code, body, _ = request(
            "GET", f"{base}/v1/jobs/{q['job_id']}/result"
        )
        assert code == 410
        # cancelling a terminal job is a 409
        code, body, _ = request("DELETE", f"{base}/v1/jobs/{q['job_id']}")
        assert code == 409

        # cancel the running job too (worker abandons it mid-rotation)
        code, body, _ = request(
            "DELETE", f"{base}/v1/jobs/{running['job_id']}"
        )
        assert code == 202
        wait_status(base, running["job_id"], ("cancelled",), timeout=300)

        _, metrics, _ = request("GET", base + "/metrics")
        assert metrics["http"]["rejected"] == 1


# ---------------------------------------------------------------------------
# construction / lifecycle
# ---------------------------------------------------------------------------
def test_server_requires_positive_max_queued():
    from repro.errors import ConfigurationError

    with IntegrationService(max_concurrent=1) as svc:
        with pytest.raises(ConfigurationError):
            HttpIntegrationServer(svc, port=0, max_queued=0,
                                  owns_service=False)


def test_close_is_idempotent_and_post_after_close_fails():
    server = serve_http(port=0)
    url = server.url
    server.close()
    server.close()  # second close is a no-op
    with pytest.raises(urllib.error.URLError):
        request("POST", url + "/v1/jobs", {"integrand": "3D-f4"},
                timeout=2)


def test_server_without_service_ownership_leaves_service_running():
    with IntegrationService(max_concurrent=2) as svc:
        server = HttpIntegrationServer(svc, port=0, owns_service=False)
        _, sub, _ = request(
            "POST", server.url + "/v1/jobs", {"integrand": "3D-f4"}
        )
        wait_status(server.url, sub["job_id"], ("done",))
        server.close()
        # the service is still alive: direct submission works
        handle = svc.submit("3D-f4", rel_tol=1e-3)
        assert handle.result(timeout=300).converged
