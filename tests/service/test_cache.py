"""ResultCache: fingerprint contract, LRU behaviour, isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import IntegrationResult, Status
from repro.service import ResultCache, job_fingerprint


def fp(**overrides):
    base = dict(
        integrand_id="5d-f4",
        ndim=5,
        bounds=np.array([(0.0, 1.0)] * 5),
        rel_tol=1e-4,
        abs_tol=1e-20,
        backend="numpy",
        chunk_budget=16_000_000,
        max_iterations=None,
        relerr_filtering=True,
    )
    base.update(overrides)
    return job_fingerprint(**base)


def result(estimate=1.25, errorest=1e-6):
    return IntegrationResult(
        estimate=estimate, errorest=errorest, status=Status.CONVERGED_REL,
        neval=1000, nregions=64, iterations=3, method="pagani",
    )


def test_fingerprint_is_deterministic():
    assert fp() == fp()


@pytest.mark.parametrize(
    "change",
    [
        {"integrand_id": "5d-f5"},
        {"ndim": 4, "bounds": np.array([(0.0, 1.0)] * 4)},
        {"bounds": np.array([(0.0, 2.0)] + [(0.0, 1.0)] * 4)},
        {"rel_tol": 1e-5},
        {"abs_tol": 1e-19},
        {"backend": "threaded"},
        {"chunk_budget": 1_000_000},
        {"max_iterations": 10},
        {"relerr_filtering": False},
        {"collect_traces": True},
    ],
)
def test_fingerprint_sensitive_to_every_field(change):
    assert fp(**change) != fp()


def test_fingerprint_exact_not_decimal():
    """float.hex keying: tolerances one ULP apart must not alias."""
    assert fp(rel_tol=1e-4) != fp(rel_tol=np.nextafter(1e-4, 1.0))


def test_hit_returns_equal_bits():
    cache = ResultCache()
    original = result(estimate=0.123456789012345678, errorest=3.7e-9)
    cache.put(fp(), original)
    replay = cache.get(fp())
    assert replay is not original
    assert replay.estimate == original.estimate
    assert replay.errorest == original.errorest
    assert replay.status is original.status
    assert replay.iterations == original.iterations
    assert replay.neval == original.neval


def test_copies_isolate_cache_from_mutation():
    cache = ResultCache()
    mine = result()
    cache.put(fp(), mine)
    mine.estimate = -999.0  # producer mutates its copy after caching
    first = cache.get(fp())
    first.estimate = 777.0  # consumer mutates its replay
    second = cache.get(fp())
    assert second.estimate == 1.25


def test_miss_and_hit_counters():
    cache = ResultCache()
    assert cache.get(fp()) is None
    cache.put(fp(), result())
    assert cache.get(fp()) is not None
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert cache.hit_rate == 0.5


def test_lru_eviction_order():
    cache = ResultCache(max_entries=2)
    keys = [fp(rel_tol=t) for t in (1e-3, 1e-4, 1e-5)]
    cache.put(keys[0], result())
    cache.put(keys[1], result())
    assert cache.get(keys[0]) is not None  # refresh key 0
    cache.put(keys[2], result())  # evicts key 1 (least recently used)
    assert keys[1] not in cache
    assert keys[0] in cache and keys[2] in cache
    assert cache.evictions == 1
    assert len(cache) == 2


def test_put_same_key_replaces():
    cache = ResultCache(max_entries=2)
    cache.put(fp(), result(estimate=1.0))
    cache.put(fp(), result(estimate=2.0))
    assert len(cache) == 1
    assert cache.get(fp()).estimate == 2.0


def test_clear():
    cache = ResultCache()
    cache.put(fp(), result())
    cache.clear()
    assert len(cache) == 0
    assert fp() not in cache


def test_rejects_silly_capacity():
    with pytest.raises(ValueError):
        ResultCache(max_entries=0)


# ---------------------------------------------------------------------------
# Snapshot copies happen OUTSIDE the cache lock (contention bugfix)
# ---------------------------------------------------------------------------
def _assert_copies_unlocked(cache, monkeypatch):
    """Wrap ``copy.deepcopy`` so every IntegrationResult copy proves the
    cache lock is free while it runs — a reader stalled inside deepcopy
    must not serialise every other cache access behind it."""
    import copy as copy_mod

    observed = []
    real = copy_mod.deepcopy

    def spying(obj, *a, **kw):
        if isinstance(obj, IntegrationResult):
            free = cache._lock.acquire(blocking=False)
            if free:
                cache._lock.release()
            observed.append(free)
        return real(obj, *a, **kw)

    monkeypatch.setattr(copy_mod, "deepcopy", spying)
    return observed


def test_resultcache_copies_outside_lock(monkeypatch):
    cache = ResultCache()
    observed = _assert_copies_unlocked(cache, monkeypatch)
    cache.put(fp(), result())
    got = cache.get(fp())
    assert got is not None
    assert len(observed) >= 2  # put snapshot + get snapshot
    assert all(observed), "deepcopy ran while holding the cache lock"


def test_tiered_cache_copies_outside_lock(tmp_path, monkeypatch):
    from repro.service import TieredResultCache

    cache = TieredResultCache(tmp_path, max_entries=1)
    observed = _assert_copies_unlocked(cache, monkeypatch)
    cache.put(fp(), result())
    assert cache.get(fp()) is not None
    # Evict the entry from the memory tier, then re-read: the durable
    # promotion path must also copy outside the lock.
    cache.put(fp(rel_tol=1e-5), result())
    assert cache.get(fp()) is not None
    assert len(observed) >= 3
    assert all(observed), "deepcopy ran while holding the cache lock"
    cache.close()


def test_concurrent_readers_not_serialised_by_slow_copy(monkeypatch):
    """A slow deepcopy in one reader must not block another reader's
    get(): with the copy outside the lock both finish concurrently."""
    import copy as copy_mod
    import threading
    import time

    cache = ResultCache()
    cache.put(fp(), result())
    real = copy_mod.deepcopy
    release = threading.Event()
    stalled = threading.Event()

    def slow(obj, *a, **kw):
        if isinstance(obj, IntegrationResult) and not stalled.is_set():
            stalled.set()
            assert release.wait(5)
        return real(obj, *a, **kw)

    monkeypatch.setattr(copy_mod, "deepcopy", slow)
    t = threading.Thread(target=cache.get, args=(fp(),))
    t.start()
    assert stalled.wait(5)
    # First reader is parked inside deepcopy; the lock must be free.
    t0 = time.perf_counter()
    assert cache._lock.acquire(timeout=1)
    cache._lock.release()
    assert time.perf_counter() - t0 < 0.5
    release.set()
    t.join(timeout=5)
    assert not t.is_alive()
