"""Escalation policy: parsing, fault injection, honesty, fingerprints.

The escalation ladder only earns its keep on *failing* jobs, so these
tests force the failure modes deliberately: a watchdog tight enough to
trip ``MAX_ITERATIONS``, a tolerance PAGANI cannot reach
(``MEMORY_EXHAUSTED``), a monkeypatched rung that crashes mid-ladder,
and a cancellation that lands while the ladder is running.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import integrate
from repro.integrands.catalog import named_integrand
from repro.core.result import Status
from repro.errors import ConfigurationError
from repro.service import (
    EscalationPolicy,
    IntegrationService,
    JobSpec,
    JobStatus,
)
from repro.service.store import result_from_payload, result_to_payload


# ---------------------------------------------------------------------------
# Descriptor parsing
# ---------------------------------------------------------------------------
def test_parse_describe_roundtrip():
    for text in (
        "two_phase>vegas>qmc",
        "two_phase>vegas;watchdog=8",
        "qmc;watchdog=3;max_eval=500000",
        "vegas,two_phase",
    ):
        policy = EscalationPolicy.parse(text)
        again = EscalationPolicy.parse(policy.describe())
        assert again == policy


def test_parse_spellings():
    assert EscalationPolicy.parse(None) is None
    assert EscalationPolicy.parse(False) is None
    assert EscalationPolicy.parse("off") is None
    assert EscalationPolicy.parse(True) == EscalationPolicy()
    assert EscalationPolicy.parse("default") == EscalationPolicy()
    assert EscalationPolicy.parse({"ladder": "qmc", "max_eval": 100_000}) == (
        EscalationPolicy(ladder=("qmc",), max_eval=100_000)
    )


def test_parse_rejects_bad_descriptors():
    with pytest.raises(ConfigurationError, match="unknown escalation rung"):
        EscalationPolicy.parse("pagani>vegas")
    with pytest.raises(ConfigurationError, match="repeats"):
        EscalationPolicy.parse("vegas>vegas")
    with pytest.raises(ConfigurationError, match="descriptor key"):
        EscalationPolicy.parse("vegas;retries=3")
    with pytest.raises(ConfigurationError, match="must not be empty"):
        EscalationPolicy(ladder=())


# ---------------------------------------------------------------------------
# API-level fault injection
# ---------------------------------------------------------------------------
def test_watchdog_trips_and_ladder_recovers():
    """A watchdog too tight for PAGANI hands the job to a rung that
    converges; the result keeps the rung's own method and full history."""
    res = integrate(named_integrand("3D-f4"), 3, rel_tol=1e-6,
        escalation="two_phase>qmc;watchdog=1",
    )
    assert res.escalated
    assert res.converged
    assert res.method != "pagani"
    assert res.escalation[0].method == "pagani"
    assert res.escalation[0].status is Status.MAX_ITERATIONS
    assert res.escalation[-1].method == res.method
    assert res.escalation[-1].status is res.status


def test_ladder_exhausted_keeps_honest_status():
    """No rung reaches the impossible tolerance: the best candidate comes
    back still flagged with its own failure status, never 'converged'."""
    res = integrate(named_integrand("3D-f4"), 3, rel_tol=1e-13,
        escalation="qmc;watchdog=1;max_eval=50000",
    )
    assert res.escalated
    assert not res.converged
    assert len(res.escalation) == 2  # pagani + qmc, both recorded
    assert all(s.status is not None for s in res.escalation)


def test_mid_ladder_crash_is_recorded_and_skipped(monkeypatch):
    """A rung raising must not kill the job: the stage records the error
    and the ladder continues to the next rung."""
    from repro.baselines.vegas import VegasIntegrator

    def boom(self, *args, **kwargs):
        raise RuntimeError("injected vegas crash")

    monkeypatch.setattr(VegasIntegrator, "integrate", boom)
    res = integrate(named_integrand("3D-f4"), 3, rel_tol=1e-6,
        escalation="vegas>two_phase;watchdog=1",
    )
    assert res.converged
    assert res.method != "pagani"
    methods = [s.method for s in res.escalation]
    assert methods == ["pagani", "vegas", "two_phase"]
    assert "injected vegas crash" in res.escalation[1].error
    assert res.escalation[2].error is None


def test_escalation_rejected_for_baseline_methods():
    with pytest.raises(ConfigurationError, match="escalation"):
        integrate(named_integrand("3D-f4"), 3, method="cuhre", escalation="default")


# ---------------------------------------------------------------------------
# Service-level behaviour
# ---------------------------------------------------------------------------
def test_service_escalated_job_flagged_and_cached():
    with IntegrationService(max_concurrent=1) as svc:
        handle = svc.submit(
            "3D-f4", rel_tol=1e-6,
            escalation="two_phase>qmc;watchdog=1",
        )
        res = handle.result(timeout=300)
        assert handle.status is JobStatus.DONE
        assert handle.stats.escalated
        assert res.escalated
        assert svc.stats()["escalations"] == 1

        # replay from cache keeps the provenance
        twin = svc.submit(
            "3D-f4", rel_tol=1e-6,
            escalation="two_phase>qmc;watchdog=1",
        )
        res2 = twin.result(timeout=300)
        assert twin.cache_hit
        assert [s.method for s in res2.escalation] == [
            s.method for s in res.escalation
        ]
        assert res2.estimate == res.estimate


def test_fingerprints_distinct_native_vs_escalated():
    """One spec, three escalation settings, three distinct fingerprints —
    a cache must never serve an escalated result to a native caller."""
    with IntegrationService(max_concurrent=1) as svc:
        fingerprints = set()
        for escalation in (None, "two_phase>qmc;watchdog=1",
                           "qmc;watchdog=1"):
            handle = svc.submit_spec(
                JobSpec("3D-f4", rel_tol=1e-6, escalation=escalation)
            )
            handle.result(timeout=300)
            fingerprints.add(handle.stats.fingerprint)
        assert len(fingerprints) == 3
        assert svc.cache.stats()["hits"] == 0


def test_service_default_policy_and_per_job_off():
    """A service-wide default escalates failing jobs; a job opting out
    runs native PAGANI, unwatched — same spec, distinct fingerprints."""
    with IntegrationService(
        max_concurrent=1, escalation="two_phase>qmc;watchdog=1"
    ) as svc:
        escalated = svc.submit("3D-f4", rel_tol=1e-6)
        native = svc.submit("3D-f4", rel_tol=1e-6, escalation="off")
        res_esc = escalated.result(timeout=300)
        res_nat = native.result(timeout=300)
    # the inherited watchdog=1 trips the first job onto the ladder; the
    # opted-out twin runs the full native iteration budget and converges
    assert res_esc.escalated and res_esc.converged
    assert res_esc.method != "pagani"
    assert not res_nat.escalated
    assert res_nat.converged and res_nat.method == "pagani"
    assert escalated.stats.fingerprint != native.stats.fingerprint


def test_cancellation_during_escalation_not_cached():
    """Cancel while the ladder runs: the job completes CANCELLED and the
    partial escalated result never enters the cache."""
    from repro.baselines.two_phase import TwoPhaseIntegrator

    started = threading.Event()
    release = threading.Event()
    original = TwoPhaseIntegrator.integrate

    def stalled(self, *args, **kwargs):
        started.set()
        assert release.wait(timeout=60)
        return original(self, *args, **kwargs)

    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(TwoPhaseIntegrator, "integrate", stalled)
        with IntegrationService(max_concurrent=1) as svc:
            handle = svc.submit(
                "3D-f4", rel_tol=1e-6,
                escalation="two_phase>qmc;watchdog=1",
            )
            assert started.wait(timeout=60)
            handle.cancel()
            release.set()
            svc.wait_all(timeout=300)
            assert handle.status is JobStatus.CANCELLED
            assert len(svc.cache) == 0
            assert svc.stats()["escalations"] == 1


# ---------------------------------------------------------------------------
# Provenance serialisation
# ---------------------------------------------------------------------------
def test_escalation_survives_store_payload_roundtrip():
    res = integrate(named_integrand("3D-f4"), 3, rel_tol=1e-6,
        escalation="two_phase>qmc;watchdog=1",
    )
    assert res.escalated
    payload = result_to_payload(res)
    back = result_from_payload(payload)
    assert back.escalation is not None
    assert len(back.escalation) == len(res.escalation)
    for a, b in zip(back.escalation, res.escalation):
        assert a == b
    assert back.estimate == res.estimate


def test_native_result_payload_has_no_escalation_key():
    res = integrate(named_integrand("3D-f4"), 3, rel_tol=1e-4)
    payload = result_to_payload(res)
    assert "escalation" not in payload
    assert result_from_payload(payload).escalation is None
