"""A transform-spec job rides the full stack, bit for bit.

The acceptance round-trip for the opened workload space: one
``semi_infinite(...)`` spec must produce the exact bits of a cold
in-process numpy run when (a) shipped to worker processes by name,
(b) submitted over HTTP with ``backend="auto"``, and (c) replayed from
the durable tiered cache after a server restart.
"""

import json
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

from repro.api import integrate, serve_http
from repro.integrands.catalog import named_integrand
from repro.service.store import result_to_payload

SPEC = "semi_infinite(3D-f4, scale=2.0)"
REL_TOL = 1e-3


def _request(method, url, body=None, timeout=30):
    req = urllib.request.Request(
        url, method=method,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@contextmanager
def _server(**kwargs):
    kwargs.setdefault("port", 0)
    server = serve_http(**kwargs)
    try:
        yield server
    finally:
        server.close()


def _wait_done(base, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while True:
        code, body = _request("GET", f"{base}/v1/jobs/{job_id}")
        assert code == 200, body
        if body["status"] == "done":
            return body
        assert body["status"] in ("queued", "running"), body
        if time.monotonic() > deadline:
            raise AssertionError(f"job {job_id} stuck in {body['status']!r}")
        time.sleep(0.02)


def _cold_hex():
    f = named_integrand(SPEC)
    return result_to_payload(integrate(f, f.ndim, rel_tol=REL_TOL,
                                       backend="numpy"))


def _assert_bits(got_hex, want_hex):
    assert got_hex["estimate"] == want_hex["estimate"]
    assert got_hex["errorest"] == want_hex["errorest"]
    assert got_hex["neval"] == want_hex["neval"]


def test_transform_spec_ships_to_workers_bit_identical():
    # the spec travels to the worker processes by name (no pickled
    # closure), and the reference chunk decomposition reproduces the
    # numpy bits exactly
    f = named_integrand(SPEC)
    assert f.spec == "semi_infinite(3d-f4, scale=2.0)"
    res = integrate(f, f.ndim, rel_tol=REL_TOL, backend="process:2")
    _assert_bits(result_to_payload(res), _cold_hex())


def test_transform_job_http_auto_restart_replay(tmp_path):
    cold = _cold_hex()
    job = {"integrand": SPEC, "rel_tol": REL_TOL, "backend": "auto"}

    with _server(cache_dir=tmp_path / "cache") as server:
        code, body = _request("POST", server.url + "/v1/jobs", job)
        assert code == 202, body
        _wait_done(server.url, body["job_id"])
        code, res = _request(
            "GET", f"{server.url}/v1/jobs/{body['job_id']}/result"
        )
        assert code == 200
        assert res["result"]["converged"]
        # auto-routed execution reproduces the cold numpy bits
        _assert_bits(res["result_hex"], cold)

    # "restart": a brand-new server and service on the same durable
    # cache dir must replay the job from the store, bit-identically
    with _server(cache_dir=tmp_path / "cache") as server:
        code, body = _request("POST", server.url + "/v1/jobs", job)
        assert code == 202, body
        status = _wait_done(server.url, body["job_id"])
        assert status["cache_hit"] is True
        code, res = _request(
            "GET", f"{server.url}/v1/jobs/{body['job_id']}/result"
        )
        assert code == 200
        _assert_bits(res["result_hex"], cold)
