"""JobQueue ordering, laziness and thread safety."""

from __future__ import annotations

import threading

from repro.service import JobQueue, JobSpec, JobStatus
from repro.service.queue import COMPACT_DEAD_THRESHOLD
from repro.service.jobs import JobHandle


def handle(job_id=0, priority=1, rel_tol=1e-3, label=None):
    return JobHandle(
        job_id, JobSpec("3D-f4", priority=priority, rel_tol=rel_tol, label=label)
    )


def test_priority_orders_first():
    q = JobQueue()
    low = handle(0, priority=1)
    high = handle(1, priority=5)
    mid = handle(2, priority=3)
    for h in (low, high, mid):
        q.push(h)
    assert [q.pop() for _ in range(3)] == [high, mid, low]
    assert q.pop() is None


def test_looser_tolerance_first_within_priority():
    """Shortest-job-first inside one priority class: cheap (loose-tol)
    jobs do not convoy behind an expensive neighbour."""
    q = JobQueue()
    tight = handle(0, rel_tol=1e-8)
    loose = handle(1, rel_tol=1e-3)
    mid = handle(2, rel_tol=1e-5)
    for h in (tight, loose, mid):
        q.push(h)
    assert [q.pop() for _ in range(3)] == [loose, mid, tight]


def test_fifo_tie_break():
    q = JobQueue()
    handles = [handle(i) for i in range(5)]
    for h in handles:
        q.push(h)
    assert [q.pop() for _ in range(5)] == handles


def test_pop_skips_cancelled_entries():
    q = JobQueue()
    keep = handle(0)
    drop = handle(1, priority=9)  # most urgent, but cancelled
    q.push(keep)
    q.push(drop)
    assert drop.cancel()
    assert drop.status is JobStatus.CANCELLED
    assert len(q) == 1
    assert q.pop() is keep
    assert q.pop() is None


def test_peek_does_not_consume():
    q = JobQueue()
    h = handle(0)
    q.push(h)
    assert q.peek() is h
    assert q.peek() is h
    assert q.pop() is h
    assert q.peek() is None


def test_snapshot_in_service_order():
    q = JobQueue()
    a = handle(0, priority=1, label="a")
    b = handle(1, priority=2, label="b")
    c = handle(2, priority=2, rel_tol=1e-6, label="c")
    for h in (a, b, c):
        q.push(h)
    assert [h.spec.label for h in q.snapshot()] == ["b", "c", "a"]
    assert len(q) == 3  # snapshot is non-destructive


def test_concurrent_push_pop():
    q = JobQueue()
    n_producers, per_producer = 4, 50
    popped = []
    pop_lock = threading.Lock()
    done = threading.Event()

    def produce(base):
        for i in range(per_producer):
            q.push(handle(base * per_producer + i))

    def consume():
        while not (done.is_set() and len(q) == 0):
            h = q.pop()
            if h is not None:
                with pop_lock:
                    popped.append(h.job_id)

    threads = [threading.Thread(target=produce, args=(k,)) for k in range(n_producers)]
    consumer = threading.Thread(target=consume)
    consumer.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    done.set()
    consumer.join(timeout=10)
    assert sorted(popped) == list(range(n_producers * per_producer))


# ---------------------------------------------------------------------------
# Mass cancellation: O(1) depth + bounded heap (lazy compaction)
# ---------------------------------------------------------------------------
def test_mass_cancel_keeps_depth_o1_and_heap_bounded():
    """Cancelling 10k queued jobs must not leave 10k dead heap entries
    behind (the pre-fix behaviour: ``len`` rescanned the heap and dead
    entries lingered until popped)."""
    q = JobQueue()
    handles = [handle(i) for i in range(10_000)]
    for h in handles:
        q.push(h)
    assert len(q) == 10_000
    assert q.heap_size() == 10_000

    for h in handles:
        assert h.cancel()

    # Live count is a maintained counter, not a scan: exactly zero.
    assert len(q) == 0
    # Lazy compaction keeps the heap bounded by the dead-entry
    # threshold, not the number of cancellations.
    assert q.heap_size() <= 2 * COMPACT_DEAD_THRESHOLD
    assert q.pop() is None


def test_len_is_counter_not_scan():
    """``len(q)`` reads a maintained counter (O(1)); interleaved
    cancels keep it exact without touching the heap."""
    q = JobQueue()
    handles = [handle(i) for i in range(100)]
    for h in handles:
        q.push(h)
    for h in handles[::2]:
        h.cancel()
    assert len(q) == 50
    live = [q.pop() for _ in range(50)]
    assert all(h is not None for h in live)
    assert len(q) == 0


def test_pop_skips_cancelled_entries():
    q = JobQueue()
    a, b, c = handle(0, priority=3), handle(1, priority=2), handle(2, priority=1)
    for h in (a, b, c):
        q.push(h)
    b.cancel()
    assert q.pop() is a
    assert q.pop() is c
    assert q.pop() is None
