"""JobSpec serialisation/resolution and JobHandle edge behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import JobSpec, JobStatus
from repro.service.jobs import JobHandle


# ---------------------------------------------------------------------------
# JobSpec <-> jobs-file dict round trip
# ---------------------------------------------------------------------------
def test_to_dict_from_dict_round_trip():
    spec = JobSpec(
        "5D-f4", rel_tol=1e-4, priority=3, label="hot",
        max_iterations=20, bounds=[(0.0, 1.0)] * 5,
    )
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone.integrand == "5D-f4"
    assert clone.rel_tol == 1e-4
    assert clone.priority == 3
    assert clone.label == "hot"
    assert clone.max_iterations == 20
    assert np.asarray(clone.bounds).shape == (5, 2)


def test_to_dict_omits_defaults():
    out = JobSpec("3D-f4").to_dict()
    assert out == {"integrand": "3D-f4"}


def test_to_dict_rejects_callable_integrand():
    with pytest.raises(ConfigurationError):
        JobSpec(lambda x: x, ndim=2).to_dict()


def test_from_dict_requires_integrand_key():
    with pytest.raises(ConfigurationError):
        JobSpec.from_dict({"rel_tol": 1e-4})


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------
def test_resolve_named_spec_fills_everything():
    resolved = JobSpec("3D-f4", rel_tol=1e-4).resolve()
    assert resolved.ndim == 3
    assert resolved.cache_id == "3d-f4"
    assert resolved.bounds.shape == (3, 2)
    assert resolved.reference is not None
    assert resolved.relerr_filtering  # f4 is sign-definite


def test_resolve_spec_is_case_insensitive():
    assert JobSpec("3d-F4").resolve().cache_id == JobSpec("3D-f4").resolve().cache_id


def test_resolve_rejects_ndim_mismatch():
    with pytest.raises(ConfigurationError):
        JobSpec("3D-f4", ndim=5).resolve()


def test_resolve_callable_needs_ndim():
    with pytest.raises(ConfigurationError):
        JobSpec(lambda x: x).resolve()


def test_resolve_callable_cache_key_opt_in():
    def f(x):
        return np.ones(x.shape[0])

    assert JobSpec(f, ndim=2).resolve().cache_id is None
    f.cache_key = "my-fn-v1"
    assert JobSpec(f, ndim=2).resolve().cache_id == "custom:my-fn-v1"


def test_resolve_rejects_bad_bounds_shape():
    with pytest.raises(ConfigurationError):
        JobSpec("3D-f4", bounds=[(0.0, 1.0)] * 2).resolve()


def test_resolve_explicit_filtering_overrides_integrand():
    assert JobSpec("3D-f4", relerr_filtering=False).resolve().relerr_filtering is False


# ---------------------------------------------------------------------------
# JobHandle edges
# ---------------------------------------------------------------------------
def test_result_timeout_on_pending_handle():
    handle = JobHandle(0, JobSpec("3D-f4"))
    with pytest.raises(TimeoutError):
        handle.result(timeout=0.01)
    with pytest.raises(TimeoutError):
        handle.exception(timeout=0.01)


def test_wait_times_out_then_succeeds():
    handle = JobHandle(0, JobSpec("3D-f4"))
    assert not handle.wait(timeout=0.01)
    handle._complete(JobStatus.DONE, result=None)
    assert handle.wait(timeout=0.01)


def test_done_callback_fires_immediately_when_terminal():
    handle = JobHandle(0, JobSpec("3D-f4"))
    handle._complete(JobStatus.FAILED, exception=RuntimeError("x"))
    seen = []
    handle.add_done_callback(seen.append)
    assert seen == [handle]


def test_callback_exception_swallowed():
    handle = JobHandle(0, JobSpec("3D-f4"))

    def bad_callback(h):
        raise RuntimeError("callback bug")

    handle.add_done_callback(bad_callback)
    handle._complete(JobStatus.DONE, result=None)  # must not raise
    assert handle.done


def test_second_complete_is_ignored():
    handle = JobHandle(0, JobSpec("3D-f4"))
    handle._complete(JobStatus.FAILED, exception=RuntimeError("first"))
    handle._complete(JobStatus.DONE, result=None)
    assert handle.status is JobStatus.FAILED


def test_repr_mentions_status_and_label():
    handle = JobHandle(7, JobSpec("3D-f4", label="hot"))
    assert "hot" in repr(handle) and "queued" in repr(handle)


def test_stats_timing_properties():
    handle = JobHandle(0, JobSpec("3D-f4"))
    assert handle.stats.queue_seconds is None
    assert handle.stats.total_seconds is None
    assert handle._try_start()
    assert not handle._try_start()  # already running
    assert handle.stats.queue_seconds >= 0.0
    handle._complete(JobStatus.DONE, result=None)
    assert handle.stats.total_seconds >= 0.0


def test_back_to_queue_only_from_running():
    handle = JobHandle(0, JobSpec("3D-f4"))
    assert not handle._back_to_queue()  # queued -> no-op
    assert handle._try_start()
    assert handle._back_to_queue()
    assert handle.status is JobStatus.QUEUED
    handle._complete(JobStatus.DONE, result=None)
    assert not handle._back_to_queue()  # terminal -> no-op
