"""Sharded-service behaviour: K worker rotations over one queue/cache.

The single-shard semantics are covered exhaustively in
``test_service.py`` (shards=1 is the default and the pre-sharding code
path); this module asserts what sharding adds — concurrent completion
under contention, shard-count-independent caching and bit-identity,
cancellation across shards — and what it must not change.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import integrate, serve_jobs
from repro.errors import ConfigurationError
from repro.integrands.catalog import named_integrand
from repro.service import IntegrationService, JobSpec, JobStatus


def test_shards_must_be_positive():
    with pytest.raises(ConfigurationError, match="shards"):
        IntegrationService(shards=0)


def test_shards_visible_in_stats_and_property():
    with IntegrationService(shards=3, max_concurrent=1) as svc:
        assert svc.shards == 3
        assert svc.stats()["shards"] == 3
        # spec-string backends resolve to one fresh instance per shard
        backends = {id(shard.backend) for shard in svc._shards}
        assert len(backends) == 3


def test_shared_instance_backend_is_honoured_across_shards():
    from repro.backends import NumpyBackend

    bk = NumpyBackend()
    with IntegrationService(shards=2, backend=bk) as svc:
        assert all(shard.backend is bk for shard in svc._shards)
        h = svc.submit("3D-f4", rel_tol=1e-3)
        assert h.result(timeout=300).converged


def test_completion_under_contention_bit_identical():
    """More jobs than slots across 2 shards: all complete, every result
    bit-identical to a cold integrate() of the same spec."""
    specs = ["3D-f4", "3D-f3", "3D-f2", "4D-f4"]
    refs = {}
    for spec in specs:
        f = named_integrand(spec)
        refs[spec] = integrate(f, f.ndim, rel_tol=1e-3)
    with IntegrationService(shards=2, max_concurrent=1, cache=False) as svc:
        handles = [svc.submit(spec, rel_tol=1e-3) for spec in specs * 2]
        assert svc.wait_all(timeout=300)
    for h in handles:
        res = h.result(timeout=0)
        ref = refs[h.spec.integrand]
        assert res.estimate == ref.estimate
        assert res.errorest == ref.errorest
        assert res.neval == ref.neval


def test_cache_replays_are_shard_independent():
    """A warm cache serves every duplicate bit-for-bit no matter which
    shard computed the entry."""
    jobs = [JobSpec("3D-f4", rel_tol=1e-3), JobSpec("3D-f3", rel_tol=1e-3)]
    with IntegrationService(shards=3, max_concurrent=2) as svc:
        first = serve_jobs(jobs, service=svc)
        second = serve_jobs(jobs, service=svc)
        stats = svc.stats()
    assert all(h.cache_hit for h in second)
    assert stats["cache"]["hits"] >= 2
    for a, b in zip(first, second):
        assert a.result(timeout=0).estimate == b.result(timeout=0).estimate
        assert a.result(timeout=0).errorest == b.result(timeout=0).errorest


def test_duplicates_served_without_recompute_under_shards():
    """Every duplicate of an in-flight or finished job is served by a
    cache hit or coalesces onto the in-flight run (no guaranteed split
    between the two under sharding, but the sum is exact)."""
    k = 6
    with IntegrationService(shards=2, max_concurrent=2) as svc:
        handles = [svc.submit("4D-f4", rel_tol=1e-4) for _ in range(k)]
        assert svc.wait_all(timeout=300)
        stats = svc.stats()
    results = [h.result(timeout=0) for h in handles]
    for res in results[1:]:
        assert res.estimate == results[0].estimate
    # Actual runs = jobs not served from cache/coalescing; concurrent
    # admission can race two shards into one duplicate run each, but
    # never more than one primary per shard.
    served_without_run = stats["cache"]["hits"] + stats["coalesced"]
    assert served_without_run >= k - svc.shards


def test_queued_cancellation_with_shards():
    with IntegrationService(shards=2, max_concurrent=1, cache=False) as svc:
        blockers = [
            svc.submit("5D-f4", rel_tol=1e-5, priority=9) for _ in range(2)
        ]
        victim = svc.submit("3D-f4", rel_tol=1e-3, priority=1)
        assert victim.cancel()
        assert victim.status is JobStatus.CANCELLED
        for b in blockers:
            assert b.result(timeout=300).converged


def test_inflight_cancellation_with_shards():
    import time

    started = threading.Event()
    u = 1.0 / np.pi  # off-grid kink: slow convergence, slow rounds

    def slow(x):
        started.set()
        time.sleep(0.15)
        return np.exp(-20.0 * np.sum(np.abs(x - u), axis=1))

    slow.ndim = 2
    with IntegrationService(shards=2, max_concurrent=1, cache=False) as svc:
        h = svc.submit(slow, ndim=2, rel_tol=1e-9, max_iterations=50)
        assert started.wait(timeout=60)
        assert h.cancel()
        h.wait(timeout=300)
        assert h.status is JobStatus.CANCELLED


def test_failure_isolated_to_its_job_across_shards():
    def bad(x):
        raise RuntimeError("kaboom")

    bad.ndim = 3
    with IntegrationService(shards=2, max_concurrent=1, cache=False) as svc:
        ok = [svc.submit("3D-f4", rel_tol=1e-3) for _ in range(3)]
        doomed = svc.submit(bad, ndim=3)
        assert svc.wait_all(timeout=300)
    assert doomed.status is JobStatus.FAILED
    for h in ok:
        assert h.result(timeout=0).converged


def test_serve_jobs_shards_keyword():
    handles = serve_jobs(
        [{"integrand": "3D-f4", "rel_tol": 1e-3}] * 4, shards=2
    )
    assert [h.status for h in handles] == [JobStatus.DONE] * 4


def test_sharded_service_on_process_backend():
    """Each shard pins its own process backend instance end to end."""
    from repro.backends import BackendUnavailableError, new_backend

    try:
        new_backend("process:1").close()
    except BackendUnavailableError as exc:  # pragma: no cover - sandbox
        pytest.skip(f"process backend unavailable: {exc}")
    ref = None
    with IntegrationService(
        shards=2, max_concurrent=1, backend="process:1", cache=False
    ) as svc:
        assert len({id(s.backend) for s in svc._shards}) == 2
        handles = [svc.submit("3D-f4", rel_tol=1e-3) for _ in range(3)]
        for h in handles:
            res = h.result(timeout=300)
            if ref is None:
                ref = res
            assert res.estimate == ref.estimate
        for shard in svc._shards:
            shard.backend.close()
