"""CLI ``serve`` round trip on a jobs file."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def write_jobs(path, entries):
    path.write_text(json.dumps({"jobs": entries}))
    return str(path)


def test_serve_round_trip(tmp_path, capsys):
    jobs = write_jobs(
        tmp_path / "jobs.json",
        [
            {"integrand": "3D-f4", "rel_tol": 1e-4, "priority": 3},
            {"integrand": "3D-f3", "rel_tol": 1e-3, "priority": 1},
            {"integrand": "3D-f4", "rel_tol": 1e-4, "label": "repeat"},
        ],
    )
    out = tmp_path / "results.json"
    rc = main(["serve", "--jobs", jobs, "--out", str(out)])
    stdout = capsys.readouterr().out
    assert rc == 0
    assert "3/3 converged" in stdout
    assert "repeat" in stdout

    payload = json.loads(out.read_text())
    rows = payload["jobs"]
    assert [r["status"] for r in rows] == ["done"] * 3
    # the duplicate was served from the cache (or coalesced) ...
    assert rows[2]["cache_hit"]
    # ... with bit-identical numbers
    assert rows[2]["estimate"] == rows[0]["estimate"]
    assert rows[2]["errorest"] == rows[0]["errorest"]
    # service summary present and coherent
    assert payload["service"]["submitted"] == 3
    hits = (payload["service"]["cache"] or {}).get("hits", 0)
    assert hits + payload["service"]["coalesced"] >= 1


def test_serve_accepts_bare_list(tmp_path, capsys):
    jobs = tmp_path / "jobs.json"
    jobs.write_text(json.dumps([{"integrand": "3D-f4", "rel_tol": 1e-3}]))
    assert main(["serve", "--jobs", str(jobs)]) == 0
    assert "1/1 converged" in capsys.readouterr().out


def test_serve_no_cache_flag(tmp_path, capsys):
    jobs = write_jobs(
        tmp_path / "jobs.json",
        [
            {"integrand": "3D-f4", "rel_tol": 1e-3},
            {"integrand": "3D-f4", "rel_tol": 1e-3},
        ],
    )
    out = tmp_path / "results.json"
    assert main(["serve", "--jobs", jobs, "--no-cache", "--out", str(out)]) == 0
    rows = json.loads(out.read_text())["jobs"]
    assert not any(r["cache_hit"] for r in rows)
    assert rows[0]["estimate"] == rows[1]["estimate"]  # still deterministic


def test_serve_missing_file(tmp_path, capsys):
    assert main(["serve", "--jobs", str(tmp_path / "nope.json")]) == 2
    assert "cannot read jobs file" in capsys.readouterr().err


def test_serve_rejects_empty_jobs(tmp_path, capsys):
    jobs = tmp_path / "jobs.json"
    jobs.write_text("[]")
    assert main(["serve", "--jobs", str(jobs)]) == 2


@pytest.mark.parametrize(
    "entry",
    [
        {"integrand": "3D-f99"},
        {"integrand": "bogus"},
        {"integrand": "3D-f4", "priority": 0},
        {"integrand": "3D-f4", "frobnicate": True},
        {"integrand": 42},
    ],
)
def test_serve_rejects_bad_entries(tmp_path, capsys, entry):
    jobs = write_jobs(tmp_path / "jobs.json", [entry])
    assert main(["serve", "--jobs", jobs]) == 2
    assert "error:" in capsys.readouterr().err
