"""CLI ``serve`` round trip on a jobs file."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def write_jobs(path, entries):
    path.write_text(json.dumps({"jobs": entries}))
    return str(path)


def test_serve_round_trip(tmp_path, capsys):
    jobs = write_jobs(
        tmp_path / "jobs.json",
        [
            {"integrand": "3D-f4", "rel_tol": 1e-4, "priority": 3},
            {"integrand": "3D-f3", "rel_tol": 1e-3, "priority": 1},
            {"integrand": "3D-f4", "rel_tol": 1e-4, "label": "repeat"},
        ],
    )
    out = tmp_path / "results.json"
    rc = main(["serve", "--jobs", jobs, "--out", str(out)])
    stdout = capsys.readouterr().out
    assert rc == 0
    assert "3/3 converged" in stdout
    assert "repeat" in stdout

    payload = json.loads(out.read_text())
    rows = payload["jobs"]
    assert [r["status"] for r in rows] == ["done"] * 3
    # the duplicate was served from the cache (or coalesced) ...
    assert rows[2]["cache_hit"]
    # ... with bit-identical numbers
    assert rows[2]["estimate"] == rows[0]["estimate"]
    assert rows[2]["errorest"] == rows[0]["errorest"]
    # service summary present and coherent
    assert payload["service"]["submitted"] == 3
    hits = (payload["service"]["cache"] or {}).get("hits", 0)
    assert hits + payload["service"]["coalesced"] >= 1


def test_serve_accepts_bare_list(tmp_path, capsys):
    jobs = tmp_path / "jobs.json"
    jobs.write_text(json.dumps([{"integrand": "3D-f4", "rel_tol": 1e-3}]))
    assert main(["serve", "--jobs", str(jobs)]) == 0
    assert "1/1 converged" in capsys.readouterr().out


def test_serve_no_cache_flag(tmp_path, capsys):
    jobs = write_jobs(
        tmp_path / "jobs.json",
        [
            {"integrand": "3D-f4", "rel_tol": 1e-3},
            {"integrand": "3D-f4", "rel_tol": 1e-3},
        ],
    )
    out = tmp_path / "results.json"
    assert main(["serve", "--jobs", jobs, "--no-cache", "--out", str(out)]) == 0
    rows = json.loads(out.read_text())["jobs"]
    assert not any(r["cache_hit"] for r in rows)
    assert rows[0]["estimate"] == rows[1]["estimate"]  # still deterministic


def test_serve_missing_file(tmp_path, capsys):
    assert main(["serve", "--jobs", str(tmp_path / "nope.json")]) == 2
    assert "cannot read jobs file" in capsys.readouterr().err


def test_serve_rejects_empty_jobs(tmp_path, capsys):
    jobs = tmp_path / "jobs.json"
    jobs.write_text("[]")
    assert main(["serve", "--jobs", str(jobs)]) == 2


@pytest.mark.parametrize(
    "entry",
    [
        {"integrand": "3D-f99"},
        {"integrand": "bogus"},
        {"integrand": "3D-f4", "priority": 0},
        {"integrand": "3D-f4", "frobnicate": True},
        {"integrand": 42},
    ],
)
def test_serve_rejects_bad_entries(tmp_path, capsys, entry):
    jobs = write_jobs(tmp_path / "jobs.json", [entry])
    assert main(["serve", "--jobs", jobs]) == 2
    assert "error:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# serve --http: replay the jobs file over the wire
# ---------------------------------------------------------------------------
def test_serve_http_round_trip(tmp_path, capsys):
    jobs = write_jobs(
        tmp_path / "jobs.json",
        [
            {"integrand": "3D-f4", "rel_tol": 1e-3},
            {"integrand": "3D-f4", "rel_tol": 1e-3, "label": "repeat"},
        ],
    )
    out = tmp_path / "results.json"
    rc = main(["serve", "--http", "127.0.0.1:0", "--jobs", jobs,
               "--out", str(out)])
    stdout = capsys.readouterr().out
    assert rc == 0
    assert "serving on http://127.0.0.1:" in stdout
    assert "2/2 converged over HTTP" in stdout

    payload = json.loads(out.read_text())
    rows = payload["jobs"]
    assert [r["http_status"] for r in rows] == [200, 200]
    assert rows[1]["cache_hit"]
    # full hex payload travels through the CLI output file too
    assert (rows[0]["result_hex"]["estimate"]
            == rows[1]["result_hex"]["estimate"])
    assert payload["metrics"]["service"]["submitted"] == 2


def test_serve_http_durable_replay_across_restarts(tmp_path, capsys):
    jobs = write_jobs(
        tmp_path / "jobs.json", [{"integrand": "3D-f4", "rel_tol": 1e-3}]
    )
    cache_dir = tmp_path / "cache"
    first_out = tmp_path / "first.json"
    second_out = tmp_path / "second.json"
    argv = ["serve", "--http", "127.0.0.1:0", "--jobs", jobs,
            "--cache-dir", str(cache_dir)]
    assert main(argv + ["--out", str(first_out)]) == 0
    assert main(argv + ["--out", str(second_out)]) == 0
    stdout = capsys.readouterr().out
    assert "1 from the durable store" in stdout

    first = json.loads(first_out.read_text())["jobs"][0]
    second = json.loads(second_out.read_text())["jobs"][0]
    assert second["cache_hit"]
    # the restart replay is bit-identical, not approximately equal
    assert first["result_hex"]["estimate"] == second["result_hex"]["estimate"]
    assert first["result_hex"]["errorest"] == second["result_hex"]["errorest"]
    dur = json.loads(second_out.read_text())["metrics"]["service"]["cache"]
    assert dur["durable_hits"] == 1


@pytest.mark.parametrize("addr", ["nope", "8053", ":8053", "host:port"])
def test_serve_http_rejects_bad_address(tmp_path, capsys, addr):
    assert main(["serve", "--http", addr]) == 2
    assert "HOST:PORT" in capsys.readouterr().err
