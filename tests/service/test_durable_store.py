"""Durable result store + tiered cache: restart bit-identity, corrupt-
entry quarantine, LRU<->durable promotion/demotion, concurrent writers."""

from __future__ import annotations

import json
import math
import sqlite3
import threading

import pytest

from repro.api import integrate
from repro.core.result import IntegrationResult, IterationRecord, Status
from repro.integrands.catalog import canonical_spec, named_integrand
from repro.service import IntegrationService
from repro.service.cache import job_fingerprint
from repro.service.store import (
    STORE_SCHEMA,
    DurableResultStore,
    StorePayloadError,
    TieredResultCache,
    result_from_payload,
    result_to_payload,
)


def sample_result(estimate=0.123456789, with_trace=True) -> IntegrationResult:
    trace = []
    if with_trace:
        trace = [
            IterationRecord(
                iteration=i, n_regions=2**i, n_active=2**i - 1,
                n_finished_relerr=1, n_finished_threshold=0,
                estimate=estimate * (1 + 1e-9 * i), errorest=1e-5 / (i + 1),
                finished_estimate=estimate / 2, finished_errorest=1e-6,
                neval=1000 * (i + 1), sim_seconds=0.25 * i,
            )
            for i in range(3)
        ]
    return IntegrationResult(
        estimate=estimate, errorest=3.0037e-7, status=Status.CONVERGED_REL,
        neval=123456, nregions=789, iterations=7, method="pagani",
        sim_seconds=0.0625, wall_seconds=1.5, trace=trace,
        true_value=0.1234567,
    )


def results_equal(a: IntegrationResult, b: IntegrationResult) -> bool:
    if not (
        a.estimate == b.estimate and a.errorest == b.errorest
        and a.status is b.status and a.neval == b.neval
        and a.nregions == b.nregions and a.iterations == b.iterations
        and a.method == b.method and a.sim_seconds == b.sim_seconds
        and a.wall_seconds == b.wall_seconds
        and len(a.trace) == len(b.trace)
    ):
        return False
    for ra, rb in zip(a.trace, b.trace):
        if ra != rb:
            return False
    return True


# ---------------------------------------------------------------------------
# payload round trip
# ---------------------------------------------------------------------------
def test_payload_roundtrip_is_bit_identical():
    res = sample_result()
    back = result_from_payload(result_to_payload(res))
    assert results_equal(res, back)
    assert back.true_value == res.true_value


def test_payload_roundtrip_survives_json():
    res = sample_result()
    back = result_from_payload(
        json.loads(json.dumps(result_to_payload(res)))
    )
    assert results_equal(res, back)


def test_payload_roundtrip_awkward_floats():
    res = sample_result(with_trace=False)
    res.estimate = float("inf")
    res.errorest = float("nan")
    res.true_value = None
    # 0x1.b7cdfd9d7bdbbp-34: a value a decimal repr would mangle
    res.sim_seconds = float.fromhex("0x1.b7cdfd9d7bdbbp-34")
    back = result_from_payload(json.loads(json.dumps(result_to_payload(res))))
    assert back.estimate == float("inf")
    assert math.isnan(back.errorest)
    assert back.true_value is None
    assert back.sim_seconds.hex() == res.sim_seconds.hex()


def test_payload_rejects_unknown_schema_and_garbage():
    good = result_to_payload(sample_result())
    bad_schema = dict(good, schema=STORE_SCHEMA + 1)
    with pytest.raises(StorePayloadError):
        result_from_payload(bad_schema)
    with pytest.raises(StorePayloadError):
        result_from_payload({"schema": STORE_SCHEMA})
    broken = dict(good, estimate="not-a-hex-float")
    with pytest.raises(StorePayloadError):
        result_from_payload(broken)


# ---------------------------------------------------------------------------
# DurableResultStore
# ---------------------------------------------------------------------------
def test_store_put_get_roundtrip(tmp_path):
    with DurableResultStore(tmp_path / "cache") as store:
        res = sample_result()
        store.put("fp-1", res)
        assert "fp-1" in store
        assert len(store) == 1
        got = store.get("fp-1")
        assert results_equal(res, got)
        assert store.hits == 1 and store.misses == 0
        assert store.get("fp-absent") is None
        assert store.misses == 1


def test_store_survives_reopen_bit_identically(tmp_path):
    res = sample_result()
    with DurableResultStore(tmp_path / "cache") as store:
        store.put("fp-1", res)
        path = store.path
    with DurableResultStore(path) as reopened:
        got = reopened.get("fp-1")
    assert results_equal(res, got)


def test_store_quarantines_corrupt_entry(tmp_path):
    with DurableResultStore(tmp_path / "cache") as store:
        store.put("fp-good", sample_result())
        store.put("fp-bad", sample_result())
        # corrupt one row behind the store's back (a truncated disk
        # write, hand editing, a schema from the future...)
        conn = sqlite3.connect(store.path)
        conn.execute(
            "UPDATE results SET payload = '{\"schema\": 999' "
            "WHERE fingerprint = 'fp-bad'"
        )
        conn.commit()
        conn.close()

        assert store.get("fp-bad") is None      # miss, not a crash
        assert store.quarantined == 1
        assert "fp-bad" not in store            # row moved out
        assert len(store) == 1
        # the quarantine table keeps the evidence
        conn = sqlite3.connect(store.path)
        rows = conn.execute(
            "SELECT fingerprint, reason FROM quarantine"
        ).fetchall()
        conn.close()
        assert rows[0][0] == "fp-bad"
        # the healthy row is untouched
        assert results_equal(store.get("fp-good"), sample_result())


def test_store_quarantines_wrong_schema_row(tmp_path):
    with DurableResultStore(tmp_path / "cache") as store:
        store.put("fp-1", sample_result())
        future = dict(result_to_payload(sample_result()),
                      schema=STORE_SCHEMA + 7)
        conn = sqlite3.connect(store.path)
        conn.execute(
            "UPDATE results SET payload = ? WHERE fingerprint = 'fp-1'",
            (json.dumps(future),),
        )
        conn.commit()
        conn.close()
        assert store.get("fp-1") is None
        assert store.quarantined == 1


def test_store_put_is_idempotent_last_write_wins(tmp_path):
    with DurableResultStore(tmp_path / "cache") as store:
        store.put("fp", sample_result(estimate=1.0))
        store.put("fp", sample_result(estimate=2.0))
        assert len(store) == 1
        assert store.get("fp").estimate == 2.0


def test_store_concurrent_writers(tmp_path):
    store = DurableResultStore(tmp_path / "cache")
    errors = []

    def writer(worker: int) -> None:
        try:
            for i in range(20):
                store.put(f"fp-{worker}-{i}", sample_result(estimate=i))
                assert store.get(f"fp-{worker}-{i}") is not None
        except Exception as exc:  # pragma: no cover - failure evidence
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(store) == 80
    assert store.quarantined == 0
    store.close()


def test_store_clear_and_fingerprints(tmp_path):
    with DurableResultStore(tmp_path / "cache") as store:
        store.put("a", sample_result())
        store.put("b", sample_result())
        assert sorted(store.fingerprints()) == ["a", "b"]
        store.clear()
        assert len(store) == 0
        st = store.stats()
        assert st["entries"] == 0 and st["writes"] == 2


# ---------------------------------------------------------------------------
# TieredResultCache: promotion / demotion
# ---------------------------------------------------------------------------
def test_tiered_cache_write_through_and_memory_hit(tmp_path):
    cache = TieredResultCache(tmp_path / "cache", max_entries=4)
    res = sample_result()
    cache.put("fp", res)
    assert len(cache.store) == 1            # write-through
    got = cache.get("fp")
    assert results_equal(res, got)
    st = cache.stats()
    assert st["hits"] == 1 and st["memory_hits"] == 1
    assert st["durable_hits"] == 0          # served from the LRU
    cache.close()


def test_tiered_cache_eviction_demotes_not_deletes(tmp_path):
    cache = TieredResultCache(tmp_path / "cache", max_entries=2)
    for i in range(4):
        cache.put(f"fp-{i}", sample_result(estimate=float(i)))
    assert len(cache) == 2                  # LRU holds the newest two
    assert cache.evictions == 2
    assert len(cache.store) == 4            # durable tier kept everything
    # an evicted entry is a durable hit, then promoted back into the LRU
    got = cache.get("fp-0")
    assert got.estimate == 0.0
    st = cache.stats()
    assert st["durable_hits"] == 1
    assert "fp-0" in cache                  # promoted
    cache.close()


def test_tiered_cache_promotion_respects_capacity(tmp_path):
    cache = TieredResultCache(tmp_path / "cache", max_entries=2)
    for i in range(3):
        cache.put(f"fp-{i}", sample_result(estimate=float(i)))
    evictions_before = cache.evictions
    cache.get("fp-0")                       # durable hit -> promote
    assert len(cache) == 2                  # capacity still enforced
    assert cache.evictions == evictions_before + 1
    cache.close()


def test_tiered_cache_miss_counts_once(tmp_path):
    cache = TieredResultCache(tmp_path / "cache", max_entries=2)
    assert cache.get("nope") is None
    assert cache.misses == 1
    assert cache.store.misses == 1
    cache.close()


def test_tiered_cache_restart_replay(tmp_path):
    res = sample_result()
    cache = TieredResultCache(tmp_path / "cache", max_entries=4)
    cache.put("fp", res)
    cache.close()
    # a new process: fresh LRU, same directory
    cache2 = TieredResultCache(tmp_path / "cache", max_entries=4)
    assert len(cache2) == 0
    got = cache2.get("fp")
    assert results_equal(res, got)
    assert cache2.stats()["durable_hits"] == 1
    cache2.close()


def test_tiered_cache_rejects_bad_capacity(tmp_path):
    with pytest.raises(ValueError):
        TieredResultCache(tmp_path / "cache", max_entries=0)


# ---------------------------------------------------------------------------
# service-level restart replay: the durability contract end to end
# ---------------------------------------------------------------------------
def test_service_restart_replays_bit_identical_results(tmp_path):
    f = named_integrand("3D-f4")
    cold = integrate(f, f.ndim, rel_tol=1e-3)

    cache = TieredResultCache(tmp_path / "cache", max_entries=8)
    with IntegrationService(max_concurrent=2, cache=cache) as svc:
        first = svc.submit("3D-f4", rel_tol=1e-3)
        warm_res = first.result(timeout=300)
        fingerprint = first.stats.fingerprint
    cache.close()
    assert warm_res.estimate == cold.estimate
    assert warm_res.errorest == cold.errorest

    # "restart": new service, new LRU, same cache dir
    cache2 = TieredResultCache(tmp_path / "cache", max_entries=8)
    with IntegrationService(max_concurrent=2, cache=cache2) as svc:
        replay = svc.submit("3D-f4", rel_tol=1e-3)
        replay_res = replay.result(timeout=300)
        assert replay.cache_hit
        assert replay.stats.fingerprint == fingerprint
    assert cache2.stats()["durable_hits"] == 1
    cache2.close()

    assert replay_res.estimate == cold.estimate
    assert replay_res.errorest == cold.errorest
    assert replay_res.neval == cold.neval
    assert replay_res.iterations == cold.iterations


def test_fingerprint_is_store_key(tmp_path):
    """The durable tier uses the *same* fingerprint the LRU uses — no
    second identity scheme."""
    cache = TieredResultCache(tmp_path / "cache", max_entries=4)
    with IntegrationService(max_concurrent=2, cache=cache) as svc:
        handle = svc.submit("3D-f4", rel_tol=1e-3)
        handle.result(timeout=300)
        fp = handle.stats.fingerprint
    assert fp in cache.store.fingerprints()
    expected = job_fingerprint(
        integrand_id=canonical_spec("3D-f4"), ndim=3,
        bounds=[(0.0, 1.0)] * 3, rel_tol=1e-3, abs_tol=1e-20,
        backend="numpy", chunk_budget=svc.chunk_budget,
        max_iterations=None, relerr_filtering=True, collect_traces=False,
    )
    assert fp == expected
    cache.close()
