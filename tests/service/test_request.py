"""IntegrationRequest ↔ JobSpec unification: fingerprint stability.

The request redesign routes ``integrate(...)`` kwargs, ``integrate_many``
members and ``service.JobSpec`` through one frozen
:class:`repro.api.IntegrationRequest`.  The cache's promise is that this
refactor moved **no bytes**: a job described by raw kwargs and the same
job described by a request that round-trips through
``JobSpec.from_request`` must produce identical SHA-256 fingerprints for
every spec in the cache test corpus — and the base corpus fingerprint
itself is pinned so any silent payload change fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import IntegrationRequest, integrate
from repro.backends import get_backend
from repro.errors import ConfigurationError
from repro.service import JobSpec, job_fingerprint

#: the cache suite's corpus (see test_cache.py): one base job plus every
#: single-field sensitivity variation, kept structurally consistent
#: (ndim variations swap in the matching catalogue integrand)
BASE = dict(
    integrand_id="5d-f4",
    ndim=5,
    bounds=np.array([(0.0, 1.0)] * 5),
    rel_tol=1e-4,
    abs_tol=1e-20,
    backend="numpy",
    chunk_budget=16_000_000,
    max_iterations=None,
    relerr_filtering=True,
)

CORPUS = [
    {},
    {"integrand_id": "5d-f5"},
    {"integrand_id": "4d-f4", "ndim": 4, "bounds": np.array([(0.0, 1.0)] * 4)},
    {"bounds": np.array([(0.0, 2.0)] + [(0.0, 1.0)] * 4)},
    {"rel_tol": 1e-5},
    {"abs_tol": 1e-19},
    {"backend": "threaded"},
    {"chunk_budget": 1_000_000},
    {"max_iterations": 10},
    {"relerr_filtering": False},
    {"collect_traces": True},
]

#: the base corpus digest at the time the IntegrationRequest surface
#: landed — byte stability means this never changes without a schema bump
PINNED_BASE_FINGERPRINT = (
    "90174dbfecb4d4cb9eb215db9c723bb932fd52492a66b95478be4cd7752ae1ca"
)


def test_base_fingerprint_bytes_are_pinned():
    assert job_fingerprint(**BASE) == PINNED_BASE_FINGERPRINT


@pytest.mark.parametrize("change", CORPUS)
def test_request_roundtrip_reproduces_corpus_fingerprints(change):
    """kwargs path and IntegrationRequest→JobSpec path: identical SHA."""
    job = dict(BASE)
    job.update(change)
    collect_traces = job.pop("collect_traces", False)
    direct = job_fingerprint(**job, collect_traces=collect_traces)

    request = IntegrationRequest(
        bounds=job["bounds"],
        rel_tol=job["rel_tol"],
        abs_tol=job["abs_tol"],
        backend=job["backend"],
        max_iterations=job["max_iterations"],
        relerr_filtering=job["relerr_filtering"],
    )
    spec = JobSpec.from_request(
        job["integrand_id"], request, ndim=job["ndim"]
    )
    resolved = spec.resolve()
    # Exactly the service's _admit computation on the resolved job.
    via_request = job_fingerprint(
        integrand_id=resolved.cache_id,
        ndim=resolved.ndim,
        bounds=resolved.bounds,
        rel_tol=spec.rel_tol,
        abs_tol=spec.abs_tol,
        backend=get_backend(spec.backend).name,
        chunk_budget=job["chunk_budget"],
        max_iterations=spec.max_iterations,
        relerr_filtering=resolved.relerr_filtering,
        collect_traces=collect_traces,
    )
    assert via_request == direct


def test_jobspec_request_roundtrip_preserves_fields():
    request = IntegrationRequest(
        bounds=[(0.0, 2.0)] * 3, rel_tol=1e-5, abs_tol=1e-18,
        backend="process:4", max_iterations=7, relerr_filtering=False,
    )
    spec = JobSpec.from_request("3d-f4", request, priority=3, label="x")
    assert spec.priority == 3 and spec.label == "x"
    back = spec.to_request()
    assert back.bounds == request.bounds
    assert back.rel_tol == request.rel_tol
    assert back.abs_tol == request.abs_tol
    assert back.backend == "process:4"
    assert back.max_iterations == 7
    assert back.relerr_filtering is False


def test_from_request_flattens_backend_instances():
    bk = get_backend("threaded:2")
    request = IntegrationRequest(backend=bk)
    spec = JobSpec.from_request("3d-f4", request)
    assert spec.backend == "threaded"  # serialisable spec string


def test_from_request_rejects_non_pagani_methods():
    with pytest.raises(ConfigurationError, match="PAGANI"):
        JobSpec.from_request(
            "3d-f4", IntegrationRequest(method="cuhre")
        )


def test_integrate_request_kwarg_matches_kwargs_path():
    from repro.integrands.catalog import named_integrand

    f = named_integrand("3d-f4")
    via_kwargs = integrate(f, 3, rel_tol=1e-4, backend="numpy")
    via_request = integrate(
        f, 3, request=IntegrationRequest(rel_tol=1e-4, backend="numpy")
    )
    assert via_request.estimate == via_kwargs.estimate
    assert via_request.errorest == via_kwargs.errorest
    assert via_request.neval == via_kwargs.neval


def test_request_validates_method_and_tolerances():
    with pytest.raises(ConfigurationError, match="unknown method"):
        IntegrationRequest(method="simpson").validate()
    with pytest.raises(ConfigurationError, match="rel_tol"):
        IntegrationRequest(rel_tol=2.0).validate()
