"""IntegrationService end-to-end: cache bit-identity, priority order,
cancellation, failure isolation, coalescing, asyncio bridge."""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.api import integrate, serve_jobs
from repro.errors import ConfigurationError
from repro.integrands.catalog import named_integrand
from repro.service import (
    IntegrationService,
    JobFailedError,
    JobSpec,
    JobStatus,
    ServiceClosedError,
)
from repro.service.aio import AsyncIntegrationService


def make_slow_kink(delay: float = 0.05, ndim: int = 2, key: str = "slow"):
    """A *slowly converging* integrand (off-grid |x| kink: 5 iterations
    at rel_tol 1e-4, ~17 at 1e-9) whose every chunk evaluation also
    sleeps, so rotation rounds are slow enough for deterministic
    cancellation tests."""
    u = 1.0 / np.pi  # kink plane never aligns with region boundaries

    def fn(x: np.ndarray) -> np.ndarray:
        time.sleep(delay)
        return np.exp(-20.0 * np.sum(np.abs(x - u), axis=1))

    fn.ndim = ndim
    fn.cache_key = key
    fn.sign_definite = True
    return fn


# ---------------------------------------------------------------------------
# Cache-hit bit-identity (the headline contract)
# ---------------------------------------------------------------------------
def test_cache_hit_is_bit_identical_to_fresh_run():
    with IntegrationService(max_concurrent=2) as svc:
        cold = svc.submit("3D-f4", rel_tol=1e-5)
        cold_res = cold.result(timeout=120)
        hot = svc.submit("3D-f4", rel_tol=1e-5)
        hot_res = hot.result(timeout=120)

    assert not cold.cache_hit and hot.cache_hit
    # The replay is bit-identical to the cached run...
    assert hot_res.estimate == cold_res.estimate
    assert hot_res.errorest == cold_res.errorest
    assert hot_res.iterations == cold_res.iterations
    assert hot_res.neval == cold_res.neval
    assert hot_res.status is cold_res.status
    # ...and the cached run itself is bit-identical to a plain
    # integrate() call on the numpy backend (same config, same device).
    f = named_integrand("3d-f4")
    fresh = integrate(f, f.ndim, rel_tol=1e-5)
    assert cold_res.estimate == fresh.estimate
    assert cold_res.errorest == fresh.errorest
    assert cold_res.iterations == fresh.iterations
    assert cold_res.neval == fresh.neval


def test_different_tolerances_do_not_share_cache():
    with IntegrationService() as svc:
        a = svc.submit("3D-f4", rel_tol=1e-3)
        b = svc.submit("3D-f4", rel_tol=1e-4)
        a.result(timeout=120), b.result(timeout=120)
    assert not b.cache_hit
    assert a.stats.fingerprint != b.stats.fingerprint


def test_uncacheable_callable_runs_fine():
    def f(x):
        return np.ones(x.shape[0])

    with IntegrationService() as svc:
        h = svc.submit(f, ndim=3, rel_tol=1e-3)
        res = h.result(timeout=120)
    assert res.converged and abs(res.estimate - 1.0) < 1e-6
    assert h.stats.fingerprint is None and not h.cache_hit


def test_cache_disabled_recomputes():
    with IntegrationService(cache=False) as svc:
        a = svc.submit("3D-f4", rel_tol=1e-3)
        b = svc.submit("3D-f4", rel_tol=1e-3)
        ra, rb = a.result(timeout=120), b.result(timeout=120)
    assert not a.cache_hit and not b.cache_hit
    assert ra.estimate == rb.estimate  # deterministic even without cache


# ---------------------------------------------------------------------------
# Priority semantics
# ---------------------------------------------------------------------------
def test_priority_order_completion_under_contention():
    """Equal-work jobs, all live at once: the weighted rotation makes
    completion order follow priority order."""
    with IntegrationService(max_concurrent=4, cache=False) as svc:
        handles = {
            p: svc.submit(
                "4D-genz-gaussian", rel_tol=1e-6, priority=p, label=f"p{p}"
            )
            for p in (1, 2, 4, 8)
        }
        assert svc.wait_all(timeout=300)
    order = sorted(
        handles.values(), key=lambda h: h.stats.completion_index
    )
    assert [h.spec.priority for h in order] == [8, 4, 2, 1]


def test_priority_admission_order():
    """With one slot, queued jobs are admitted strictly by priority."""
    slow = make_slow_kink(delay=0.02, key="admission")
    with IntegrationService(max_concurrent=1, cache=False) as svc:
        gate = svc.submit(slow, ndim=2, rel_tol=1e-4)  # occupies the slot
        low = svc.submit("3D-f3", rel_tol=1e-3, priority=1)
        high = svc.submit("3D-f4", rel_tol=1e-3, priority=5)
        assert svc.wait_all(timeout=300)
    assert gate.status is JobStatus.DONE
    assert high.stats.completion_index < low.stats.completion_index
    assert high.stats.started_at <= low.stats.started_at


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------
def test_cancel_queued_job_never_runs():
    slow = make_slow_kink(delay=0.05, key="gate")
    with IntegrationService(max_concurrent=1, cache=False) as svc:
        gate = svc.submit(slow, ndim=2, rel_tol=1e-4)
        queued = svc.submit("3D-f4", rel_tol=1e-4)
        assert queued.status is JobStatus.QUEUED
        assert queued.cancel()
        assert queued.status is JobStatus.CANCELLED
        with pytest.raises(CancelledError):
            queued.result(timeout=0)
        assert gate.result(timeout=300).converged
    assert queued.stats.started_at is None  # it never entered the rotation
    assert not queued.cancel()  # second cancel reports already-terminal


def test_cancel_inflight_job():
    slow = make_slow_kink(delay=0.15, key="inflight")
    with IntegrationService(max_concurrent=2, cache=False) as svc:
        victim = svc.submit(slow, ndim=2, rel_tol=1e-9, max_iterations=50)
        bystander = svc.submit("3D-f4", rel_tol=1e-3)
        deadline = time.monotonic() + 30
        while victim.status is JobStatus.QUEUED and time.monotonic() < deadline:
            time.sleep(0.005)
        assert victim.status is JobStatus.RUNNING
        assert victim.cancel()
        assert victim.wait(timeout=60)
        assert victim.status is JobStatus.CANCELLED
        with pytest.raises(CancelledError):
            victim.result(timeout=0)
        assert bystander.result(timeout=300).converged


def test_cancel_primary_requeues_coalesced_follower():
    slow = make_slow_kink(delay=0.15, key="promote")
    with IntegrationService(max_concurrent=2) as svc:
        primary = svc.submit(slow, ndim=2, rel_tol=1e-4)
        follower = svc.submit(slow, ndim=2, rel_tol=1e-4)
        deadline = time.monotonic() + 30
        while svc.stats()["coalesced"] < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert svc.stats()["coalesced"] == 1
        assert primary.cancel()
        follower_res = follower.result(timeout=300)
    assert primary.status is JobStatus.CANCELLED
    assert follower.status is JobStatus.DONE
    assert follower_res.converged
    # the retry recomputed from scratch: the coalescing marks came off
    assert not follower.cache_hit
    assert follower.stats.coalesced_with is None


# ---------------------------------------------------------------------------
# Failure isolation & lifecycle
# ---------------------------------------------------------------------------
def test_failing_integrand_isolated_from_other_jobs():
    def bomb(x):
        raise RuntimeError("integrand exploded")

    bomb.ndim = 3
    with IntegrationService(max_concurrent=2) as svc:
        bad = svc.submit(bomb, ndim=3)
        good = svc.submit("3D-f4", rel_tol=1e-3)
        assert good.result(timeout=300).converged
        assert bad.wait(timeout=60)
    assert bad.status is JobStatus.FAILED
    with pytest.raises(JobFailedError) as excinfo:
        bad.result(timeout=0)
    assert "exploded" in str(excinfo.value.__cause__)
    assert isinstance(bad.exception(timeout=0), RuntimeError)


def test_bad_spec_fails_job_not_service():
    with IntegrationService() as svc:
        bad = svc.submit("9D-f99")  # resolves (and fails) in the worker
        good = svc.submit("3D-f4", rel_tol=1e-3)
        assert good.result(timeout=300).converged
        assert bad.wait(timeout=60)
    assert bad.status is JobStatus.FAILED
    assert isinstance(bad.exception(timeout=0), ConfigurationError)


def test_submit_validation_is_eager():
    with IntegrationService() as svc:
        with pytest.raises(ConfigurationError):
            svc.submit("3D-f4", priority=0)
        with pytest.raises(ConfigurationError):
            svc.submit("3D-f4", rel_tol=2.0)
        with pytest.raises(ConfigurationError):
            svc.submit_spec(JobSpec("3D-f4", max_iterations=0))


def test_submit_after_shutdown_raises():
    svc = IntegrationService()
    svc.shutdown(wait=True)
    with pytest.raises(ServiceClosedError):
        svc.submit("3D-f4")


def test_shutdown_cancel_pending_drops_queue():
    slow = make_slow_kink(delay=0.05, key="drain")
    svc = IntegrationService(max_concurrent=1, cache=False)
    gate = svc.submit(slow, ndim=2, rel_tol=1e-4)
    queued = svc.submit("3D-f4", rel_tol=1e-6)
    deadline = time.monotonic() + 30
    while gate.status is JobStatus.QUEUED and time.monotonic() < deadline:
        time.sleep(0.005)  # cancel_pending must only hit still-queued jobs
    svc.shutdown(wait=True, cancel_pending=True)
    assert gate.status is JobStatus.DONE  # running jobs always finish
    assert queued.status is JobStatus.CANCELLED


def test_coalescing_runs_once():
    slow = make_slow_kink(delay=0.1, key="coalesce")
    calls = []
    inner = slow

    def counting(x):
        calls.append(x.shape[0])
        return inner(x)

    counting.ndim = 2
    counting.cache_key = "coalesce"
    counting.sign_definite = True
    with IntegrationService(max_concurrent=4) as svc:
        a = svc.submit(counting, ndim=2, rel_tol=1e-4)
        b = svc.submit(counting, ndim=2, rel_tol=1e-4)
        ra, rb = a.result(timeout=300), b.result(timeout=300)
    assert svc.stats()["coalesced"] == 1
    assert b.cache_hit and b.stats.coalesced_with == a.job_id
    assert ra.estimate == rb.estimate and ra.errorest == rb.errorest
    assert ra.iterations == rb.iterations


def test_coalesced_follower_raises_twin_priority():
    """A high-priority duplicate must speed up the shared run, not crawl
    at its twin's rate."""
    slow_a = make_slow_kink(delay=0.03, key="boost-a")
    slow_b = make_slow_kink(delay=0.03, key="boost-b")
    with IntegrationService(max_concurrent=4) as svc:
        a = svc.submit(slow_a, ndim=2, rel_tol=1e-6, priority=1)
        b = svc.submit(slow_b, ndim=2, rel_tol=1e-6, priority=1)
        deadline = time.monotonic() + 30
        while (
            JobStatus.QUEUED in (a.status, b.status)
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)  # the duplicate must find a already in flight
        dup = svc.submit(slow_a, ndim=2, rel_tol=1e-6, priority=8)
        assert svc.wait_all(timeout=300)
    assert dup.cache_hit and dup.stats.coalesced_with == a.job_id
    # a (boosted to weight 8 by its follower) beats the equal-work b
    assert a.stats.completion_index < b.stats.completion_index


def test_finished_members_are_retired():
    """A long-lived rotation must not pin finished runs (results,
    traces, region arrays) for the service's lifetime."""
    with IntegrationService(max_concurrent=2, cache=False) as svc:
        for _ in range(3):
            svc.submit("3D-f4", rel_tol=1e-3)
        assert svc.wait_all(timeout=300)
        retained = [
            run
            for shard in svc._shards
            for run in shard.scheduler.members
            if run.has_result
        ]
    assert retained == []  # every finished member was retired


def test_history_limit_prunes_but_stats_stay_truthful():
    n_jobs = 40
    with IntegrationService(max_concurrent=2, history_limit=4) as svc:
        handles = [svc.submit("3D-f4", rel_tol=1e-3) for _ in range(n_jobs)]
        assert svc.wait_all(timeout=300)  # waits on retained handles only
        for h in handles:  # clients' own references still resolve
            assert h.result(timeout=60).converged
        stats = svc.stats()
    assert len(svc.jobs()) < n_jobs  # history was actually pruned
    assert stats["submitted"] == n_jobs
    assert stats["by_status"]["done"] == n_jobs


def test_stats_snapshot_shape():
    with IntegrationService() as svc:
        svc.submit("3D-f4", rel_tol=1e-3).result(timeout=300)
        stats = svc.stats()
    assert stats["submitted"] == 1
    assert stats["by_status"]["done"] == 1
    assert stats["cache"]["misses"] == 1
    assert stats["rounds"] >= 1
    assert stats["backend"] == "numpy"


def test_true_value_attached_like_integrate():
    with IntegrationService() as svc:
        res = svc.submit("3D-f4", rel_tol=1e-4).result(timeout=300)
    assert res.true_value is not None
    assert res.true_rel_error() is not None


# ---------------------------------------------------------------------------
# serve_jobs convenience + asyncio wrapper
# ---------------------------------------------------------------------------
def test_serve_jobs_accepts_dicts_and_specs():
    handles = serve_jobs(
        [
            {"integrand": "3D-f4", "rel_tol": 1e-4, "priority": 2},
            JobSpec("3D-f3", rel_tol=1e-3),
            {"integrand": "3D-f4", "rel_tol": 1e-4},  # duplicate -> hit
        ],
        max_concurrent=2,
    )
    assert [h.status for h in handles] == [JobStatus.DONE] * 3
    assert handles[2].cache_hit
    assert handles[2].result(timeout=0).estimate == handles[0].result(timeout=0).estimate


def test_async_service_gather():
    async def run():
        async with AsyncIntegrationService(max_concurrent=2) as svc:
            return await asyncio.gather(
                svc.integrate("3D-f4", rel_tol=1e-4, priority=2),
                svc.integrate("3D-f3", rel_tol=1e-3),
            )

    r1, r2 = asyncio.run(run())
    assert r1.converged and r2.converged


def test_async_future_cancellation():
    slow = make_slow_kink(delay=0.15, key="async-cancel")

    async def run():
        async with AsyncIntegrationService(max_concurrent=1, cache=False) as svc:
            fut = svc.submit(slow, ndim=2, rel_tol=1e-9, max_iterations=50)
            await asyncio.sleep(0.3)  # let it enter the rotation
            fut.cancel()
            with pytest.raises(asyncio.CancelledError):
                await fut

    asyncio.run(run())


def test_async_failure_propagates_like_sync():
    def bomb(x):
        raise ValueError("nope")

    bomb.ndim = 2

    async def run():
        async with AsyncIntegrationService() as svc:
            # same contract as JobHandle.result(): JobFailedError with
            # the integrand's exception chained
            with pytest.raises(JobFailedError) as excinfo:
                await svc.integrate(bomb, ndim=2)
            assert isinstance(excinfo.value.__cause__, ValueError)

    asyncio.run(run())
