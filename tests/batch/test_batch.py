"""Tests for the batched multi-integrand execution layer.

The load-bearing guarantee is the first test: ``integrate_many`` on the
numpy backend reproduces a loop of sequential ``integrate`` calls
bit-for-bit, member by member.  Everything the scheduler does — fusing
chunk submissions, rotating service order, early member exit — must be
invisible in the numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import integrate, integrate_many
from repro.backends import get_backend
from repro.batch import RULE_CACHE, BatchScheduler, RuleCache
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.genz import GenzFamily, make_genz
from tests.conftest import gaussian_nd


def genz_batch(dims=(2, 3), seed0=0):
    """One member per (family, dim) — all six families represented."""
    return [
        make_genz(fam, d, seed=seed0 + i)
        for i, (fam, d) in enumerate(
            (f, d) for f in GenzFamily for d in dims
        )
    ]


# ---------------------------------------------------------------------------
# Bit-identity with sequential execution (the acceptance contract)
# ---------------------------------------------------------------------------
def test_integrate_many_bit_identical_to_sequential_numpy():
    members = genz_batch()  # 12 Genz integrands, six families, two dims
    assert len(members) >= 8
    sequential = [integrate(f, f.ndim, rel_tol=1e-3, backend="numpy")
                  for f in members]
    batched = integrate_many(members, rel_tol=1e-3, backend="numpy")
    assert len(batched) == len(members)
    for f, rs, rb in zip(members, sequential, batched):
        assert rb.estimate == rs.estimate, f.name
        assert rb.errorest == rs.errorest, f.name
        assert rb.iterations == rs.iterations, f.name
        assert rb.neval == rs.neval, f.name
        assert rb.nregions == rs.nregions, f.name
        assert rb.status is rs.status, f.name
        assert rb.sim_seconds == rs.sim_seconds, f.name
        assert rb.true_value == rs.true_value, f.name


def test_integrate_many_threaded_machine_precision():
    members = genz_batch(dims=(2, 3))[:6]
    sequential = [integrate(f, f.ndim, rel_tol=1e-3, backend="numpy")
                  for f in members]
    batched = integrate_many(members, rel_tol=1e-3, backend="threaded")
    for rs, rb in zip(sequential, batched):
        assert rb.estimate == pytest.approx(rs.estimate, rel=1e-12)
        assert rb.converged == rs.converged


# ---------------------------------------------------------------------------
# Scheduler fairness and early exit
# ---------------------------------------------------------------------------
def _run_for(f, rel_tol=1e-3, mem_mb=None):
    cfg = PaganiConfig(rel_tol=rel_tol, backend="numpy")
    device = (
        VirtualDevice(DeviceSpec.scaled(mem_mb=mem_mb)) if mem_mb else None
    )
    return PaganiIntegrator(cfg, device=device).start_run(f, f.ndim)


def test_round_robin_serves_every_live_member_each_round():
    # Mixed difficulty: the sharp Gaussian iterates far longer than the
    # near-constant easy members, which must not be starved before their
    # exit nor hold the hard member back after it.
    members = [gaussian_nd(2, c=2.0), gaussian_nd(3, c=900.0), gaussian_nd(2, c=5.0)]
    sched = BatchScheduler(backend="numpy")
    runs = [_run_for(f, rel_tol=1e-7) for f in members]
    for run in runs:
        sched.add(run)
    results = sched.run()
    stats = sched.stats
    assert stats.peak_live == 3
    assert stats.rounds == max(r.iterations for r in results)
    for i, res in enumerate(results):
        # Fairness: a member is served exactly once per round it is live,
        # so its service count equals its iteration count, and it exits in
        # the round of its final iteration.
        assert stats.iterations_served[i] == res.iterations
        assert stats.exit_round[i] == res.iterations
        assert res.converged
        assert res.estimate == pytest.approx(members[i].reference, rel=1e-7)


def test_early_exit_releases_member_memory_immediately():
    easy = gaussian_nd(2, c=2.0)
    hard = gaussian_nd(3, c=900.0)
    sched = BatchScheduler(backend="numpy")
    easy_run = _run_for(easy, rel_tol=1e-6, mem_mb=64)
    hard_run = _run_for(hard, rel_tol=1e-9, mem_mb=64)
    sched.add(easy_run)
    sched.add(hard_run)
    while not easy_run.finished:
        sched.run_round()
    # The converged member's region store is gone and its device memory
    # accounting is back to zero — while the straggler still holds live
    # regions and keeps iterating.
    assert easy_run.store is None
    assert easy_run.device.memory.in_use == 0
    assert not hard_run.finished
    assert hard_run.store is not None
    assert hard_run.device.memory.in_use > 0
    sched.run()
    assert hard_run.finished
    assert hard_run.device.memory.in_use == 0
    assert easy_run.result.converged and hard_run.result.converged


def test_scheduler_rejects_foreign_backend_and_finished_runs():
    sched = BatchScheduler(backend="numpy")
    foreign = PaganiIntegrator(
        PaganiConfig(backend="threaded")
    ).start_run(gaussian_nd(2), 2)
    with pytest.raises(ConfigurationError):
        sched.add(foreign)
    foreign.abandon()
    done = _run_for(gaussian_nd(2))
    while not done.finished:
        done.step()
    with pytest.raises(ConfigurationError):
        sched.add(done)


def test_failing_member_is_isolated_and_batch_recovers():
    def flaky(x):
        raise ValueError("bad integrand input")

    flaky.ndim = 2
    healthy = [gaussian_nd(3, c=900.0), gaussian_nd(2, c=5.0)]
    sched = BatchScheduler(backend="numpy")
    runs = [
        _run_for(healthy[0], rel_tol=1e-7),
        PaganiIntegrator(
            PaganiConfig(rel_tol=1e-6, backend="numpy")
        ).start_run(flaky, 2),
        _run_for(healthy[1], rel_tol=1e-7),
    ]
    for run in runs:
        sched.add(run)
    with pytest.raises(RuntimeError, match="batch member 1 raised"):
        sched.run()
    # The offender is dead, the others are intact and continue to results.
    assert runs[1].finished and not runs[1].has_result
    assert runs[1].store is None
    results = sched.run()
    assert results[1] is None
    for k in (0, 2):
        assert results[k].converged
        assert results[k].estimate == pytest.approx(
            healthy[0 if k == 0 else 1].reference, rel=1e-7
        )


def test_prepare_failure_rolls_back_already_prepared_members():
    sched = BatchScheduler(backend="numpy")
    good = _run_for(gaussian_nd(2), rel_tol=1e-6)
    bad = _run_for(gaussian_nd(3), rel_tol=1e-6)
    sched.add(good)
    sched.add(bad)
    # Wedge the second member's phase protocol so its prepare_evaluation
    # inside the round raises after the first member is already prepared.
    bad.prepare_evaluation()
    with pytest.raises(RuntimeError):
        sched.run_round()
    # The good member rolled back cleanly and can still run to completion.
    assert not good.finished
    while not good.finished:
        good.step()
    assert good.result.converged


def test_integrator_survives_raising_integrand():
    def bad(x):
        raise ValueError("boom")

    integ = PaganiIntegrator(PaganiConfig(rel_tol=1e-3))
    with pytest.raises(ValueError):
        integ.integrate(bad, 2)
    # The failed run must not hold the device hostage.
    res = integ.integrate(gaussian_nd(2), 2)
    assert res.converged


def test_integrate_many_skip_mode_returns_none_for_failed_member():
    from repro.batch import BatchMemberError

    def bad(x):
        raise ValueError("boom")

    bad.ndim = 2
    members = [gaussian_nd(3, c=900.0), bad, gaussian_nd(2)]
    with pytest.raises(BatchMemberError):
        integrate_many(members, rel_tol=1e-6)
    results = integrate_many(members, rel_tol=1e-6, on_member_error="skip")
    assert results[1] is None
    assert results[0].converged and results[2].converged
    assert results[0].estimate == pytest.approx(members[0].reference, rel=1e-6)
    with pytest.raises(ConfigurationError):
        integrate_many(members, on_member_error="bogus")


def test_prepare_failure_leaves_counters_consistent():
    # A failed preparation (rolled back by the scheduler) must not inflate
    # nregions: the invariant nregions == sum(trace n_regions) holds.
    run = _run_for(gaussian_nd(2), rel_tol=1e-6)
    run.prepare_evaluation()
    regions_before = run.total_regions
    with pytest.raises(RuntimeError):
        run.prepare_evaluation()  # double-prepare refused, counters intact
    assert run.total_regions == regions_before
    run.cancel_evaluation()
    assert run.total_regions == regions_before - run._m
    while not run.finished:
        run.step()
    res = run.result
    assert res.nregions == sum(r.n_regions for r in res.trace)


def test_submission_failure_rolls_back_whole_round():
    # An exception escaping run_chunks itself (interrupt, dead pool) must
    # leave every member re-preparable, not wedged with a pending _ev.
    sched = BatchScheduler(backend="numpy")
    runs = [_run_for(gaussian_nd(2), rel_tol=1e-6),
            _run_for(gaussian_nd(3), rel_tol=1e-6)]
    for run in runs:
        sched.add(run)

    real_backend = sched.backend

    class FailingOnce:
        def __init__(self):
            self.failed = False

        def run_chunks(self, tasks):
            self.failed = True
            raise KeyboardInterrupt

        def __getattr__(self, name):
            return getattr(real_backend, name)

    failer = FailingOnce()
    sched.backend = failer
    with pytest.raises(KeyboardInterrupt):
        sched.run_round()
    assert failer.failed
    sched.backend = real_backend
    results = sched.run()  # every member recovered and re-prepared
    assert all(r.converged for r in results)
    for run, res in zip(runs, results):
        assert res.nregions == sum(t.n_regions for t in res.trace)


def test_completion_failure_abandons_member_and_unwedges_rest():
    sched = BatchScheduler(backend="numpy")
    runs = [_run_for(gaussian_nd(2), rel_tol=1e-6),
            _run_for(gaussian_nd(3), rel_tol=1e-6)]
    for run in runs:
        sched.add(run)
    original = runs[0].complete_iteration
    runs[0].complete_iteration = lambda: (_ for _ in ()).throw(
        MemoryError("split blew up")
    )
    with pytest.raises(MemoryError):
        sched.run_round()
    # The raising member is abandoned; the other rolled back and the
    # batch finishes without it.
    assert runs[0].finished and not runs[0].has_result
    runs[0].complete_iteration = original
    results = sched.run()
    assert results[0] is None and results[1].converged
    assert results[1].nregions == sum(t.n_regions for t in results[1].trace)


def test_ragged_bounds_raise_configuration_error():
    flat = lambda x: np.ones(x.shape[0])
    with pytest.raises(ConfigurationError):
        integrate_many(
            [flat, flat], ndim=2,
            bounds=[[(0.0, 1.0), (0.0, 1.0)], [(0.0, 1.0)]],
        )


def test_one_live_run_per_integrator():
    # Starting a run resets the integrator's device clock and memory
    # pool, so a second concurrent run on the same integrator would
    # corrupt the first's accounting; it must be refused up front.
    integ = PaganiIntegrator(PaganiConfig(rel_tol=1e-3))
    run = integ.start_run(gaussian_nd(3), 3)
    with pytest.raises(ConfigurationError):
        integ.start_run(gaussian_nd(2), 2)
    run.abandon()
    integ.start_run(gaussian_nd(2), 2).abandon()  # finished run frees the slot
    # Sequential reuse (integrate in a loop) keeps working.
    assert integ.integrate(gaussian_nd(2), 2).converged
    assert integ.integrate(gaussian_nd(2), 2).converged


def test_run_phase_protocol_misuse_raises():
    run = _run_for(gaussian_nd(2))
    with pytest.raises(RuntimeError):
        run.complete_iteration()  # nothing prepared
    tasks = run.prepare_evaluation()
    with pytest.raises(RuntimeError):
        run.prepare_evaluation()  # double prepare
    for t in tasks:
        t()
    run.complete_iteration()
    run.abandon()
    with pytest.raises(RuntimeError):
        run.prepare_evaluation()  # finished
    with pytest.raises(RuntimeError):
        _ = _run_for(gaussian_nd(2)).result  # unfinished result


# ---------------------------------------------------------------------------
# integrate_many argument handling
# ---------------------------------------------------------------------------
def test_empty_batch():
    assert integrate_many([]) == []
    results, stats = integrate_many([], return_stats=True)
    assert results == [] and stats.rounds == 0


def test_ndim_resolution_and_errors():
    g2 = gaussian_nd(2)
    with pytest.raises(ConfigurationError):
        integrate_many([lambda x: x[:, 0]])  # no ndim attribute
    res = integrate_many([lambda x: np.ones(x.shape[0])], ndim=2, rel_tol=1e-3)
    assert res[0].estimate == pytest.approx(1.0, rel=1e-9)
    with pytest.raises(ConfigurationError):
        integrate_many([g2, g2], ndim=[2])  # length mismatch


def test_bounds_shared_and_per_member():
    flat = lambda x: np.ones(x.shape[0])
    shared = integrate_many(
        [flat, flat], ndim=2, bounds=[(0.0, 2.0), (0.0, 3.0)], rel_tol=1e-3
    )
    assert [r.estimate for r in shared] == pytest.approx([6.0, 6.0], rel=1e-9)
    per_member = integrate_many(
        [flat, flat], ndim=2,
        bounds=[[(0.0, 1.0), (0.0, 1.0)], [(0.0, 2.0), (0.0, 2.0)]],
        rel_tol=1e-3,
    )
    assert [r.estimate for r in per_member] == pytest.approx(
        [1.0, 4.0], rel=1e-9
    )
    mixed = integrate_many(
        [flat, flat], ndim=2, bounds=[None, [(0.0, 2.0), (0.0, 1.0)]],
        rel_tol=1e-3,
    )
    assert [r.estimate for r in mixed] == pytest.approx([1.0, 2.0], rel=1e-9)
    as_array = integrate_many(
        [flat, flat], ndim=2,
        bounds=np.array([[[0.0, 1.0], [0.0, 1.0]], [[0.0, 2.0], [0.0, 2.0]]]),
        rel_tol=1e-3,
    )
    assert [r.estimate for r in as_array] == pytest.approx(
        [1.0, 4.0], rel=1e-9
    )
    with pytest.raises(ConfigurationError):
        integrate_many([flat], ndim=2, bounds=[(0.0, 1.0)])


def test_mixed_dimensionalities_in_one_batch():
    members = [gaussian_nd(2), gaussian_nd(4), gaussian_nd(3)]
    res = integrate_many(members, rel_tol=1e-5)
    for f, r in zip(members, res):
        assert r.converged
        assert r.estimate == pytest.approx(f.reference, rel=1e-5)
        assert r.true_value == pytest.approx(f.reference)


def test_return_stats_counts_fused_submissions():
    members = genz_batch(dims=(2,))[:6]
    results, stats = integrate_many(members, rel_tol=1e-3, return_stats=True)
    assert stats.fused_submissions == stats.rounds
    assert stats.rounds == max(r.iterations for r in results)
    assert stats.chunks_submitted >= stats.rounds  # >= 1 chunk per round
    assert stats.peak_live == len(members)


# ---------------------------------------------------------------------------
# RuleCache
# ---------------------------------------------------------------------------
def test_rule_cache_shares_tensors_per_backend():
    from repro.cubature.rules import get_rule

    cache = RuleCache()
    bk = get_backend("numpy")
    rule = get_rule(4)
    a = cache.device_rule(rule, bk)
    b = cache.device_rule(rule, bk)
    assert a is b  # one build per (backend, ndim)
    assert cache.stats() == {"backends": 1, "rules": 1}
    cache.device_rule(get_rule(3), bk)
    assert cache.stats()["rules"] == 2
    np.testing.assert_array_equal(np.asarray(a.points), rule.points)
    cache.clear()
    assert cache.stats() == {"backends": 0, "rules": 0}


def test_process_wide_cache_is_populated_by_evaluation():
    # Any integrate call routes through the shared cache instance.
    integrate(gaussian_nd(2), 2, rel_tol=1e-2)
    assert RULE_CACHE.stats()["rules"] >= 1
