"""Cross-cutting property-based tests on integration invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PaganiConfig, PaganiIntegrator, integrate
from repro.integrands.base import Integrand


# ---------------------------------------------------------------------------
# Lemma 3.1 (the relative-error filtering soundness lemma)
# ---------------------------------------------------------------------------
@settings(max_examples=60)
@given(
    seed=st.integers(0, 10**6),
    m=st.integers(1, 50),
    tau_exp=st.integers(1, 10),
    sign=st.sampled_from([-1.0, 1.0]),
)
def test_lemma_3_1(seed, m, tau_exp, sign):
    """If every region's error satisfies e_i <= τ|v_i| and all v_i share a
    sign, then Σe <= τ|Σv| — the paper's Lemma 3.1, verbatim."""
    rng = np.random.default_rng(seed)
    tau = 10.0**-tau_exp
    v = sign * rng.uniform(0.0, 10.0, size=m)
    e = rng.uniform(0.0, 1.0, size=m) * tau * np.abs(v)  # e_i <= τ|v_i|
    assert float(e.sum()) <= tau * abs(float(v.sum())) + 1e-15


@settings(max_examples=30)
@given(seed=st.integers(0, 10**6), m=st.integers(2, 50), tau_exp=st.integers(1, 6))
def test_lemma_3_1_fails_with_mixed_signs(seed, m, tau_exp):
    """The lemma's precondition matters: with mixed-sign v the conclusion
    can fail (this is why §3.5.1 adds the user flag).  We verify the
    counterexample construction rather than universal failure."""
    tau = 10.0**-tau_exp
    # two regions that cancel: v = (1, -1+δ), each with e_i = τ|v_i|
    v = np.array([1.0, -1.0 + tau / 2])
    e = tau * np.abs(v)
    assert float(e.sum()) > tau * abs(float(v.sum()))


# ---------------------------------------------------------------------------
# Integration-operator invariants
# ---------------------------------------------------------------------------
def _gauss(ndim, c=40.0):
    def fn(x):
        return np.exp(-c * np.sum((x - 0.5) ** 2, axis=1))

    return fn


@settings(max_examples=8)
@given(scale=st.floats(min_value=-50.0, max_value=50.0).filter(lambda s: abs(s) > 1e-3))
def test_linearity_in_scaling(scale):
    """∫ c·f = c·∫ f (PAGANI's estimate must be exactly linear in the
    integrand because every rule sum is)."""
    base = _gauss(3)
    r1 = integrate(lambda x: base(x), 3, rel_tol=1e-6)
    r2 = integrate(lambda x: scale * base(x), 3, rel_tol=1e-6)
    assert r2.estimate == pytest.approx(scale * r1.estimate, rel=1e-9)


@settings(max_examples=6)
@given(shift=st.floats(min_value=-3.0, max_value=3.0))
def test_translation_invariance(shift):
    """Integrating f(x - s) over the shifted box gives the same value."""
    c = 30.0
    f0 = Integrand(
        fn=lambda x: np.exp(-c * np.sum((x - 0.5) ** 2, axis=1)), ndim=2
    )
    fs = Integrand(
        fn=lambda x: np.exp(-c * np.sum((x - shift - 0.5) ** 2, axis=1)), ndim=2
    )
    r0 = integrate(f0, 2, rel_tol=1e-8)
    rs = integrate(fs, 2, rel_tol=1e-8,
                   bounds=[(shift, shift + 1.0), (shift, shift + 1.0)])
    assert rs.estimate == pytest.approx(r0.estimate, rel=1e-7)


def test_domain_decomposition_consistency():
    """∫ over [0,1]^2 equals the sum of ∫ over its four quadrants."""
    fn = _gauss(2, c=25.0)
    whole = integrate(fn, 2, rel_tol=1e-9).estimate
    parts = 0.0
    for qx in (0.0, 0.5):
        for qy in (0.0, 0.5):
            parts += integrate(
                fn, 2, rel_tol=1e-9,
                bounds=[(qx, qx + 0.5), (qy, qy + 0.5)],
            ).estimate
    assert parts == pytest.approx(whole, rel=1e-8)


def test_estimate_independent_of_initial_split():
    """Different d^n seeds converge to the same value (within tolerances)."""
    fn = _gauss(3, c=100.0)
    vals = []
    for d in (2, 3, 5):
        cfg = PaganiConfig(rel_tol=1e-7, initial_splits=d)
        vals.append(PaganiIntegrator(cfg).integrate(fn, 3).estimate)
    assert max(vals) - min(vals) <= 2e-7 * abs(vals[0])


@settings(max_examples=10)
@given(
    a=st.floats(min_value=0.1, max_value=5.0),
    b=st.floats(min_value=0.1, max_value=5.0),
)
def test_separable_product_structure(a, b):
    """For f(x,y) = g(ax)·g(by), the integral factorises; PAGANI must
    respect it (rule tensor structure)."""
    def f(x):
        return np.exp(-a * x[:, 0]) * np.exp(-b * x[:, 1])

    res = integrate(f, 2, rel_tol=1e-9)
    truth = (1 - np.exp(-a)) / a * (1 - np.exp(-b)) / b
    assert res.estimate == pytest.approx(truth, rel=1e-8)


def test_error_estimate_covers_true_error_on_smooth_suite():
    """Across a smooth family sweep, claimed convergence is honest."""
    for c in (10.0, 100.0, 400.0):
        fn = Integrand(
            fn=lambda x, c=c: np.exp(-c * np.sum((x - 0.5) ** 2, axis=1)),
            ndim=3,
        )
        from math import erf, pi, sqrt

        truth = (sqrt(pi / c) * erf(sqrt(c) / 2.0)) ** 3
        res = integrate(fn, 3, rel_tol=1e-7)
        assert res.converged
        assert abs(res.estimate - truth) / truth <= 1e-7, c
