"""Smolyak sparse grids: construction and integration behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import Status
from repro.errors import ConfigurationError
from repro.sparse_grids import (
    SmolyakConfig,
    SmolyakIntegrator,
    clenshaw_curtis,
    smolyak_points_count,
)
from repro.sparse_grids.smolyak import _smolyak_point_index, _smolyak_terms
from tests.conftest import gaussian_nd


# ---------------------------------------------------------------------------
# Clenshaw–Curtis levels
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("level,n", [(0, 1), (1, 3), (2, 5), (3, 9), (4, 17)])
def test_cc_point_counts(level, n):
    x, w = clenshaw_curtis(level)
    assert len(x) == len(w) == n


@pytest.mark.parametrize("level", [1, 2, 3, 4, 5])
def test_cc_weights_sum_to_interval_length(level):
    _, w = clenshaw_curtis(level)
    assert float(w.sum()) == pytest.approx(2.0, rel=1e-12)


@pytest.mark.parametrize("level", [2, 3, 4])
def test_cc_polynomial_exactness(level):
    """Level-l CC (2^l+1 points) integrates degree 2^l polynomials."""
    x, w = clenshaw_curtis(level)
    n = 2**level
    for k in range(0, n + 1):
        exact = 2.0 / (k + 1) if k % 2 == 0 else 0.0
        assert float(w @ x**k) == pytest.approx(exact, abs=1e-12), k


def test_cc_nesting():
    """Level l-1 nodes are a subset of level l nodes."""
    for level in (2, 3, 4):
        coarse = set(np.round(clenshaw_curtis(level - 1)[0], 12))
        fine = set(np.round(clenshaw_curtis(level)[0], 12))
        assert coarse <= fine


def test_cc_invalid_level():
    with pytest.raises(ValueError):
        clenshaw_curtis(-1)


# ---------------------------------------------------------------------------
# Smolyak combination
# ---------------------------------------------------------------------------
def test_combination_coefficients_sum_to_one():
    """Σ coeff over terms must reproduce the constant function exactly."""
    for ndim, level in [(2, 3), (3, 4), (5, 3)]:
        pts, wts = _smolyak_point_index(ndim, level)
        assert float(wts.sum()) == pytest.approx(1.0, rel=1e-12)


def test_sparse_vs_tensor_point_growth():
    """The whole point: far fewer nodes than the full tensor grid."""
    ndim, level = 5, 4
    sparse = smolyak_points_count(ndim, level)
    tensor = (2**level + 1) ** ndim
    assert sparse < tensor / 100


def test_smolyak_exact_on_low_degree_polynomials():
    pts, wts = _smolyak_point_index(3, 4)

    def poly(x):
        return 1.0 + x[:, 0] ** 2 + x[:, 1] * x[:, 2]

    # over [-1,1]^3 normalised: 1 + 1/3 + 0
    val = float(wts @ poly(pts))
    assert val == pytest.approx(1.0 + 1.0 / 3.0, rel=1e-12)


@settings(max_examples=10)
@given(ndim=st.integers(2, 4), level=st.integers(1, 4))
def test_smolyak_terms_structure(ndim, level):
    terms = _smolyak_terms(ndim, level)
    for coeff, k in terms:
        assert len(k) == ndim
        assert max(0, level - ndim + 1) <= sum(k) <= level
        assert coeff != 0


# ---------------------------------------------------------------------------
# Integrator
# ---------------------------------------------------------------------------
def test_converges_on_smooth_gaussian():
    g = gaussian_nd(3, c=10.0)
    res = SmolyakIntegrator(SmolyakConfig(rel_tol=1e-6, max_level=12)).integrate(g, 3)
    assert res.converged
    assert abs(res.estimate - g.reference) / g.reference <= 1e-5
    assert res.method == "smolyak-cc"


def test_nested_caching_reuses_points():
    calls = {"n": 0}
    g = gaussian_nd(2, c=5.0)

    def counting(x):
        calls["n"] += x.shape[0]
        return g.fn(x)

    res = SmolyakIntegrator(SmolyakConfig(rel_tol=1e-8, max_level=8)).integrate(
        counting, 2
    )
    # every point evaluated exactly once across all levels
    assert calls["n"] == res.neval


def test_struggles_on_sharp_peak_vs_pagani():
    """Sparse grids lack local adaptivity: on the paper's f4-style peak
    PAGANI reaches the tolerance while Smolyak needs far more points or
    fails — the §2 rationale."""
    from repro.core import PaganiConfig, PaganiIntegrator

    g = gaussian_nd(4, c=625.0)
    sg = SmolyakIntegrator(
        SmolyakConfig(rel_tol=1e-5, max_level=9, max_points=400_000)
    ).integrate(g, 4)
    pg = PaganiIntegrator(PaganiConfig(rel_tol=1e-5)).integrate(g, 4)
    pg_err = abs(pg.estimate - g.reference) / g.reference
    sg_err = abs(sg.estimate - g.reference) / g.reference
    assert pg.converged and pg_err <= 1e-5
    assert (not sg.converged) or sg_err > pg_err


def test_custom_bounds():
    f = lambda x: np.ones(x.shape[0])
    res = SmolyakIntegrator(SmolyakConfig(rel_tol=1e-4)).integrate(
        f, 2, bounds=[(0.0, 3.0), (1.0, 2.0)]
    )
    assert res.estimate == pytest.approx(3.0, rel=1e-12)


def test_max_points_guard():
    g = gaussian_nd(5, c=625.0)
    res = SmolyakIntegrator(
        SmolyakConfig(rel_tol=1e-12, max_level=12, max_points=2_000)
    ).integrate(g, 5)
    assert res.status in (Status.MEMORY_EXHAUSTED, Status.MAX_ITERATIONS)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SmolyakIntegrator(SmolyakConfig(rel_tol=0.0))
    with pytest.raises(ConfigurationError):
        SmolyakIntegrator(SmolyakConfig(max_level=0))
    with pytest.raises(ConfigurationError):
        SmolyakIntegrator().integrate(gaussian_nd(2), 2, bounds=np.zeros((3, 2)))
