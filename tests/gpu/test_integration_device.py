"""Cross-module device behaviour: accounting consistency across methods."""

import pytest

from repro.core import PaganiConfig, PaganiIntegrator
from repro.baselines.two_phase import TwoPhaseConfig, TwoPhaseIntegrator
from repro.gpu.device import DeviceSpec, VirtualDevice
from tests.conftest import gaussian_nd


def test_pagani_sim_time_matches_trace_monotone():
    g = gaussian_nd(3)
    integ = PaganiIntegrator(PaganiConfig(rel_tol=1e-7))
    res = integ.integrate(g, 3)
    times = [rec.sim_seconds for rec in res.trace]
    assert times == sorted(times)
    assert res.sim_seconds == pytest.approx(times[-1], rel=1e-9)


def test_same_device_reused_across_runs_resets_cleanly():
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=64))
    integ = PaganiIntegrator(PaganiConfig(rel_tol=1e-5), device=dev)
    g = gaussian_nd(3)
    r1 = integ.integrate(g, 3)
    r2 = integ.integrate(g, 3)
    # deterministic: identical runs, identical simulated time and results
    assert r1.estimate == r2.estimate
    assert r1.sim_seconds == pytest.approx(r2.sim_seconds)
    assert dev.memory.in_use == 0


@pytest.mark.slow
def test_bigger_device_never_reduces_attainable_digits():
    g = gaussian_nd(4, c=900.0)
    small = PaganiIntegrator(
        PaganiConfig(rel_tol=1e-8, max_iterations=30),
        device=VirtualDevice(DeviceSpec.scaled(mem_mb=4, name="s")),
    ).integrate(g, 4)
    big = PaganiIntegrator(
        PaganiConfig(rel_tol=1e-8, max_iterations=30),
        device=VirtualDevice(DeviceSpec.scaled(mem_mb=256, name="b")),
    ).integrate(g, 4)
    assert big.converged or not small.converged
    if small.converged and big.converged:
        assert big.rel_errorest <= small.rel_errorest * 10


def test_evaluate_kernel_flops_scale_with_dimension():
    """8-D regions cost ~400 point evaluations vs ~90 in 5-D: the device
    accounting must reflect the rule's point count."""
    results = {}
    for ndim in (5, 8):
        g = gaussian_nd(ndim, c=10.0)
        integ = PaganiIntegrator(
            PaganiConfig(rel_tol=1e-2, max_iterations=2, initial_splits=2)
        )
        integ.integrate(g, ndim)
        st = integ.device.stats()["evaluate"]
        results[ndim] = st.flops / max(st.launches, 1)
    assert results[8] > 3.0 * results[5]


def test_two_phase_phase2_runs_on_sm_slots():
    g = gaussian_nd(3)
    integ = TwoPhaseIntegrator(TwoPhaseConfig(rel_tol=1e-8))
    integ.integrate(g, 3)
    rep = integ.last_phase2_report
    assert rep.n_slots == integ.device.spec.parallel_slots
    assert rep.makespan >= rep.total_work / rep.n_slots - 1e-12
