"""Device preset coverage and spec arithmetic."""

import pytest

from repro.gpu.device import DeviceSpec


def test_parallel_slots():
    spec = DeviceSpec.v100()
    assert spec.parallel_slots == spec.n_sms * spec.blocks_per_sm == 640


def test_scaled_custom_name():
    spec = DeviceSpec.scaled(mem_mb=32, name="unit-device")
    assert spec.name == "unit-device"
    assert spec.mem_capacity == 32 * 1024**2


def test_scaled_default_name_mentions_memory():
    spec = DeviceSpec.scaled(mem_mb=48)
    assert "48" in spec.name


def test_spec_is_frozen():
    spec = DeviceSpec.v100()
    with pytest.raises(AttributeError):
        spec.n_sms = 1  # type: ignore[misc]


def test_efficiency_never_exceeds_max():
    spec = DeviceSpec.a100()
    for n in (0, 1, 10, 1e3, 1e6, 1e12):
        assert 0.0 <= spec.efficiency(n) <= spec.eff_max + 1e-15
