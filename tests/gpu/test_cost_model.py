"""Cost-model behaviours the figure reproductions rely on."""

import pytest

from repro.gpu.device import (
    KERNEL_INEFFICIENCY,
    CpuSpec,
    DeviceSpec,
    VirtualDevice,
)


def test_gpu_beats_cpu_at_scale_but_not_for_tiny_work():
    """The crossover the paper's §4.3 describes: for trivial workloads the
    GPU's launch overhead loses to the CPU; at scale the GPU wins by orders
    of magnitude."""
    gpu = VirtualDevice(DeviceSpec.v100())
    cpu = CpuSpec()
    flops_per_region = 30_000.0  # an 8-D region evaluation

    tiny_gpu = gpu.charge_kernel("t", work_items=1, flops_per_item=flops_per_region)
    tiny_cpu = cpu.seconds_for_flops(flops_per_region)
    assert tiny_cpu < tiny_gpu  # launch overhead dominates one region

    n = 1_000_000
    big_gpu = gpu.charge_kernel("b", work_items=n, flops_per_item=flops_per_region)
    big_cpu = cpu.seconds_for_flops(n * flops_per_region)
    assert big_cpu / big_gpu > 100.0  # orders of magnitude at scale


def test_throughput_matches_paper_order_of_magnitude():
    """Paper: ~1e6-1e7 regions/s in 8D on the V100 (Fig. 5/9 combined).
    The calibrated cost model must land in that decade."""
    gpu = VirtualDevice(DeviceSpec.v100())
    n = 2_000_000
    seconds = gpu.charge_kernel("e", work_items=n, flops_per_item=33_000.0)
    throughput = n / seconds
    assert 5e5 < throughput < 5e7


def test_efficiency_curve_reproduces_occupancy_claim():
    """Paper §4.3.2: the evaluate kernel needs >= 2^11 regions to reach
    ~40% of peak (eff_max 45%)."""
    spec = DeviceSpec.v100()
    assert spec.efficiency(2**11) >= 0.35
    assert spec.efficiency(2**6) < 0.15


def test_kernel_inefficiency_applied():
    gpu = VirtualDevice(DeviceSpec.v100())
    n, fpi = 1_000_000, 1000.0
    seconds = gpu.charge_kernel("k", work_items=n, flops_per_item=fpi)
    ideal = n * fpi / (gpu.spec.peak_gflops_fp64 * 1e9 * gpu.spec.efficiency(n))
    # achieved time must be slower than the ideal flop-count prediction by
    # exactly the documented inefficiency factor (plus launch overhead)
    assert seconds == pytest.approx(
        ideal / KERNEL_INEFFICIENCY + gpu.spec.launch_overhead_us * 1e-6, rel=1e-9
    )


def test_a100_faster_than_v100():
    a, v = DeviceSpec.a100(), DeviceSpec.v100()
    assert a.peak_gflops_fp64 > v.peak_gflops_fp64
    assert a.mem_capacity > v.mem_capacity
    ta = VirtualDevice(a).charge_kernel("x", work_items=10**6, flops_per_item=1e4)
    tv = VirtualDevice(v).charge_kernel("x", work_items=10**6, flops_per_item=1e4)
    assert ta < tv


def test_memory_bound_kernel_uses_bandwidth():
    gpu = VirtualDevice(DeviceSpec.v100())
    n = 10_000_000
    t = gpu.charge_kernel("m", work_items=n, bytes_per_item=8.0)
    expected = n * 8.0 / (gpu.spec.mem_bandwidth_gbs * 1e9)
    assert t == pytest.approx(expected + gpu.spec.launch_overhead_us * 1e-6, rel=1e-9)
