"""Block scheduler: makespan bounds and imbalance statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.scheduler import BlockScheduler


def test_fewer_blocks_than_slots():
    rep = BlockScheduler(8).schedule([1.0, 2.0, 3.0])
    assert rep.makespan == 3.0
    assert rep.total_work == 6.0


def test_perfectly_balanced():
    rep = BlockScheduler(4).schedule([1.0] * 8)
    assert rep.makespan == pytest.approx(2.0)
    assert rep.imbalance == pytest.approx(1.0)
    assert rep.utilisation == pytest.approx(1.0)


def test_single_straggler_dominates():
    """One 100x block stalls the device — the Figure 1 phenomenon."""
    durations = [100.0] + [1.0] * 99
    rep = BlockScheduler(10).schedule(durations)
    assert rep.makespan >= 100.0
    assert rep.utilisation < 0.25


def test_empty_schedule():
    rep = BlockScheduler(4).schedule([])
    assert rep.makespan == 0.0
    assert rep.utilisation == 1.0


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        BlockScheduler(2).schedule([1.0, -0.5])


def test_invalid_slot_count_rejected():
    with pytest.raises(ValueError):
        BlockScheduler(0)


@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=300
    ),
    slots=st.integers(min_value=1, max_value=64),
)
def test_makespan_bounds(durations, slots):
    """Property: lower bound max(total/slots, max) <= makespan <= greedy
    upper bound (lower bound + max duration); slot busy times sum to the
    total work."""
    rep = BlockScheduler(slots).schedule(durations)
    total = sum(durations)
    mx = max(durations)
    lower = max(total / slots, mx)
    assert rep.makespan >= lower - 1e-9
    assert rep.makespan <= lower + mx + 1e-9
    assert rep.imbalance >= 1.0 - 1e-12
    assert float(rep.slot_busy.sum()) == pytest.approx(total, rel=1e-9, abs=1e-9)


def test_single_slot_serialises():
    rep = BlockScheduler(1).schedule([3.0, 1.0, 2.0])
    assert rep.makespan == pytest.approx(6.0)
