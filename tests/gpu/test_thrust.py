"""Thrust-style primitives: results and device charging."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import thrust
from repro.gpu.device import VirtualDevice


@pytest.fixture
def dev():
    return VirtualDevice()


def test_reduce_sum(dev):
    a = np.arange(10.0)
    assert thrust.reduce_sum(dev, a) == pytest.approx(45.0)
    assert "thrust::reduce" in dev.stats()


def test_reduce_sum_without_device():
    assert thrust.reduce_sum(None, np.ones(3)) == pytest.approx(3.0)


def test_dot(dev):
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([0.0, 1.0, 1.0])
    assert thrust.dot(dev, a, b) == pytest.approx(5.0)


def test_minmax(dev):
    lo, hi = thrust.minmax(dev, np.array([3.0, -1.0, 7.0]))
    assert (lo, hi) == (-1.0, 7.0)


def test_minmax_empty_rejected(dev):
    with pytest.raises(ValueError):
        thrust.minmax(dev, np.empty(0))


def test_exclusive_scan_is_compaction_index(dev):
    flags = np.array([1, 0, 1, 1, 0, 1])
    scan = thrust.exclusive_scan(dev, flags)
    np.testing.assert_array_equal(scan, [0, 1, 1, 2, 3, 3])
    # surviving element k lands at slot scan[k]
    slots = scan[flags.astype(bool)]
    np.testing.assert_array_equal(slots, np.arange(flags.sum()))


def test_count_nonzero(dev):
    assert thrust.count_nonzero(dev, np.array([True, False, True])) == 2


def test_each_call_charges_one_launch(dev):
    a = np.ones(100)
    for _ in range(3):
        thrust.reduce_sum(dev, a)
    assert dev.stats()["thrust::reduce"].launches == 3


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_reduce_matches_numpy(values):
    arr = np.asarray(values)
    assert thrust.reduce_sum(None, arr) == pytest.approx(float(arr.sum()), rel=1e-12, abs=1e-9)


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=100))
def test_scan_prefix_property(flags):
    arr = np.asarray(flags, dtype=np.int64)
    scan = thrust.exclusive_scan(None, arr)
    assert scan[0] == 0
    for i in range(1, len(arr)):
        assert scan[i] == scan[i - 1] + arr[i - 1]
