"""Device memory pool accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeviceMemoryError
from repro.gpu.memory import MemoryPool


def test_alloc_free_roundtrip():
    pool = MemoryPool(1000)
    h = pool.alloc(400)
    assert pool.in_use == 400
    assert pool.available == 600
    pool.free(h)
    assert pool.in_use == 0
    assert pool.n_allocations == 0


def test_oom_carries_shortfall():
    pool = MemoryPool(100)
    pool.alloc(80)
    with pytest.raises(DeviceMemoryError) as exc:
        pool.alloc(50)
    assert exc.value.requested == 50
    assert exc.value.available == 20
    # failed allocation must not leak accounting
    assert pool.in_use == 80


def test_exact_fit_succeeds():
    pool = MemoryPool(100)
    pool.alloc(100)
    assert pool.available == 0
    with pytest.raises(DeviceMemoryError):
        pool.alloc(1)


def test_double_free_detected():
    pool = MemoryPool(10)
    h = pool.alloc(5)
    pool.free(h)
    with pytest.raises(KeyError):
        pool.free(h)


def test_resize_grows_and_shrinks():
    pool = MemoryPool(100)
    h = pool.alloc(10)
    pool.resize(h, 60)
    assert pool.in_use == 60
    pool.resize(h, 5)
    assert pool.in_use == 5
    with pytest.raises(DeviceMemoryError):
        pool.resize(h, 200)
    assert pool.in_use == 5  # failed resize leaves state intact


def test_peak_tracking():
    pool = MemoryPool(100)
    h1 = pool.alloc(40)
    h2 = pool.alloc(50)
    pool.free(h1)
    pool.free(h2)
    assert pool.peak_in_use == 90
    assert pool.in_use == 0


def test_reset_clears_everything():
    pool = MemoryPool(100)
    pool.alloc(70)
    pool.reset()
    assert pool.in_use == 0
    assert pool.can_fit(100)


def test_zero_allocation_allowed():
    pool = MemoryPool(10)
    h = pool.alloc(0)
    assert pool.in_use == 0
    pool.free(h)


@pytest.mark.parametrize("bad", [0, -5])
def test_invalid_capacity_rejected(bad):
    with pytest.raises(ValueError):
        MemoryPool(bad)


def test_negative_allocation_rejected():
    pool = MemoryPool(10)
    with pytest.raises(ValueError):
        pool.alloc(-1)


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=30))
def test_accounting_invariant_under_random_ops(sizes):
    """Property: in_use always equals the sum of live allocations and never
    exceeds capacity."""
    pool = MemoryPool(500)
    live = {}
    for s in sizes:
        try:
            h = pool.alloc(s)
            live[h] = s
        except DeviceMemoryError:
            # free the largest live allocation and continue
            if live:
                big = max(live, key=live.get)
                pool.free(big)
                del live[big]
        assert pool.in_use == sum(live.values())
        assert 0 <= pool.in_use <= 500
