"""Virtual device: specs, efficiency curve, cost accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.gpu.device import CpuSpec, DeviceSpec, VirtualDevice


def test_v100_preset_matches_paper():
    spec = DeviceSpec.v100()
    assert spec.peak_gflops_fp64 == pytest.approx(7834.0)  # 7.834 TFLOP/s
    assert spec.mem_capacity == 16 * 1024**3  # 16 GB
    assert spec.n_sms == 80


def test_scaled_preset_only_shrinks_memory():
    base = DeviceSpec.v100()
    scaled = DeviceSpec.scaled(mem_mb=64)
    assert scaled.mem_capacity == 64 * 1024**2
    assert scaled.peak_gflops_fp64 == base.peak_gflops_fp64
    assert scaled.launch_overhead_us == base.launch_overhead_us


def test_efficiency_curve_saturates():
    spec = DeviceSpec.v100()
    assert spec.efficiency(0) == 0.0
    assert spec.efficiency(spec.eff_half_workload) == pytest.approx(spec.eff_max / 2)
    assert spec.efficiency(1e9) == pytest.approx(spec.eff_max, rel=1e-3)
    # monotone
    effs = [spec.efficiency(n) for n in (10, 100, 1000, 10000, 100000)]
    assert effs == sorted(effs)


def test_launch_executes_and_charges():
    dev = VirtualDevice()
    out = dev.launch(
        "square", lambda a: a * a, np.arange(4.0),
        work_items=4, flops_per_item=1.0,
    )
    np.testing.assert_array_equal(out, [0.0, 1.0, 4.0, 9.0])
    st_ = dev.stats()["square"]
    assert st_.launches == 1
    assert st_.flops == 4.0
    assert dev.elapsed_seconds > 0.0


def test_launch_overhead_dominates_tiny_kernels():
    dev = VirtualDevice()
    t = dev.charge_kernel("tiny", work_items=1, flops_per_item=1.0)
    assert t == pytest.approx(dev.spec.launch_overhead_us * 1e-6, rel=0.05)


def test_compute_vs_memory_roofline():
    dev = VirtualDevice()
    t_compute = dev.charge_kernel("c", work_items=1_000_000, flops_per_item=1e4)
    t_mem = dev.charge_kernel("m", work_items=1_000_000, bytes_per_item=8.0)
    # the flop-heavy kernel must cost more than the byte-light one
    assert t_compute > t_mem


def test_time_accumulates_and_resets():
    dev = VirtualDevice()
    dev.charge_kernel("a", work_items=1000, flops_per_item=10.0)
    dev.charge_kernel("a", work_items=1000, flops_per_item=10.0)
    assert dev.stats()["a"].launches == 2
    t = dev.elapsed_seconds
    assert t > 0
    dev.reset_clock()
    assert dev.elapsed_seconds == 0.0
    assert dev.stats() == {}


def test_negative_work_items_rejected():
    dev = VirtualDevice()
    with pytest.raises(KernelError):
        dev.launch("bad", lambda: None, work_items=-1)


def test_negative_makespan_rejected():
    dev = VirtualDevice()
    with pytest.raises(KernelError):
        dev.charge_makespan("bad", -1.0)


def test_breakdown_sorted_and_shares_sum_to_one():
    dev = VirtualDevice()
    dev.charge_kernel("big", work_items=100000, flops_per_item=1e4)
    dev.charge_kernel("small", work_items=10, flops_per_item=1.0)
    rows = dev.breakdown()
    assert rows[0][0] == "big"
    assert sum(share for _, _, share in rows) == pytest.approx(1.0)


def test_cpu_spec_seconds():
    cpu = CpuSpec(effective_gflops=2.0)
    assert cpu.seconds_for_flops(2e9) == pytest.approx(1.0)


@given(
    n1=st.integers(1, 10**7),
    n2=st.integers(1, 10**7),
    fpi=st.floats(min_value=1.0, max_value=1e5),
)
def test_charge_monotone_in_work(n1, n2, fpi):
    """Property: more work items never cost less simulated time."""
    dev = VirtualDevice()
    lo, hi = min(n1, n2), max(n1, n2)
    t_lo = dev.charge_kernel("k", work_items=lo, flops_per_item=fpi)
    t_hi = dev.charge_kernel("k", work_items=hi, flops_per_item=fpi)
    assert t_hi >= t_lo - 1e-15
