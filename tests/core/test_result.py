"""Result/status dataclass helpers."""

import math

import pytest

from repro.core.result import IntegrationResult, IterationRecord, Status


def _res(**kw):
    base = dict(estimate=1.0, errorest=1e-6, status=Status.CONVERGED_REL)
    base.update(kw)
    return IntegrationResult(**base)


def test_converged_property():
    assert _res(status=Status.CONVERGED_REL).converged
    assert _res(status=Status.CONVERGED_ABS).converged
    for s in (Status.MAX_ITERATIONS, Status.MAX_EVALUATIONS,
              Status.MEMORY_EXHAUSTED, Status.NO_ACTIVE_REGIONS):
        assert not _res(status=s).converged


def test_rel_errorest():
    assert _res(estimate=2.0, errorest=1e-4).rel_errorest == pytest.approx(5e-5)
    assert _res(estimate=0.0, errorest=1.0).rel_errorest == math.inf
    assert _res(estimate=0.0, errorest=0.0).rel_errorest == 0.0
    assert _res(estimate=-2.0, errorest=1e-4).rel_errorest == pytest.approx(5e-5)


def test_true_rel_error():
    r = _res(estimate=1.01)
    assert r.true_rel_error() is None
    r.true_value = 1.0
    assert r.true_rel_error() == pytest.approx(0.01)
    r.true_value = 0.0
    assert r.true_rel_error() == pytest.approx(1.01)


def test_str_formats_key_fields():
    r = _res(method="pagani", neval=100, nregions=10)
    s = str(r)
    assert "pagani" in s and "converged" in s
    r2 = _res(status=Status.MEMORY_EXHAUSTED, method="pagani")
    assert "NOT converged" in str(r2)
    assert "memory_exhausted" in str(r2)


def test_iteration_record_fields():
    rec = IterationRecord(
        iteration=2, n_regions=100, n_active=60, n_finished_relerr=30,
        n_finished_threshold=10, estimate=1.0, errorest=0.1,
        finished_estimate=0.2, finished_errorest=0.01, neval=4000,
        sim_seconds=0.5,
    )
    assert rec.n_active + rec.n_finished_relerr + rec.n_finished_threshold == rec.n_regions


def test_status_values_are_stable_strings():
    """Status strings appear in CSV artifacts; keep them stable."""
    assert Status.CONVERGED_REL.value == "converged_rel"
    assert Status.CONVERGED_ABS.value == "converged_abs"
    assert Status.MAX_ITERATIONS.value == "max_iterations"
    assert Status.MAX_EVALUATIONS.value == "max_evaluations"
    assert Status.MEMORY_EXHAUSTED.value == "memory_exhausted"
    assert Status.NO_ACTIVE_REGIONS.value == "no_active_regions"
