"""Property-based invariants of the RegionStore structural kernels.

The filter and split kernels are the only operations that change the
region population, so the whole algorithm's conservation story rests on
two invariants Hypothesis checks here over random populations:

* ``filter`` keeps exactly the flagged rows, in order — no region is lost
  or duplicated, across every parallel array at once;
* ``split`` doubles the population and conserves measure exactly: the two
  children tile their parent (volumes sum bit-exactly, geometry stays
  inside the parent box, only the chosen axis halves).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import RegionStore


@st.composite
def region_populations(draw):
    ndim = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(m, ndim))
    halfwidths = rng.uniform(1e-6, 3.0, size=(m, ndim))
    split_axis = rng.integers(0, ndim, size=m)
    estimate = rng.normal(size=m)
    error = np.abs(rng.normal(size=m))
    return ndim, centers, halfwidths, split_axis, estimate, error


def _make_store(pop) -> RegionStore:
    ndim, centers, halfwidths, split_axis, estimate, error = pop
    return RegionStore(
        ndim=ndim,
        centers=centers.copy(),
        halfwidths=halfwidths.copy(),
        estimate=estimate.copy(),
        error=error.copy(),
        split_axis=split_axis.astype(np.int64),
        parent_estimate=None,
    )


@given(pop=region_populations(), mask_seed=st.integers(0, 2**31 - 1))
def test_filter_keeps_exactly_the_flagged_rows(pop, mask_seed):
    store = _make_store(pop)
    m = store.size
    active = np.random.default_rng(mask_seed).integers(0, 2, size=m).astype(bool)
    before = {
        "centers": store.centers.copy(),
        "halfwidths": store.halfwidths.copy(),
        "estimate": store.estimate.copy(),
        "error": store.error.copy(),
        "split_axis": store.split_axis.copy(),
    }
    survivors = store.filter(active)
    assert survivors == store.size == int(active.sum())
    for name in before:
        np.testing.assert_array_equal(
            getattr(store, name), before[name][active],
            err_msg=f"{name} rows lost/duplicated/reordered by filter",
        )


@given(pop=region_populations())
def test_split_conserves_volume_exactly(pop):
    store = _make_store(pop)
    m = store.size
    parent_centers = store.centers.copy()
    parent_half = store.halfwidths.copy()
    parent_vol = store.volumes()
    parent_estimate = store.estimate.copy()
    axes = store.split_axis.copy()

    store.split()

    assert store.size == 2 * m
    child_vol = store.volumes()
    # Halving one factor multiplies the product by an exact 0.5, so each
    # child's volume is bit-exactly half its parent's — no tolerance.
    np.testing.assert_array_equal(child_vol[0::2], 0.5 * parent_vol)
    np.testing.assert_array_equal(child_vol[1::2], 0.5 * parent_vol)

    # Only the chosen axis halves; the others are inherited untouched.
    for k in range(m):
        ax = axes[k]
        for child in (2 * k, 2 * k + 1):
            assert store.halfwidths[child, ax] == 0.5 * parent_half[k, ax]
            keep = np.arange(store.ndim) != ax
            np.testing.assert_array_equal(
                store.halfwidths[child, keep], parent_half[k, keep]
            )
    # Children tile the parent: centers offset by ±h/2 along the split
    # axis, and every child box stays inside its parent box.
    lo = parent_centers - parent_half
    hi = parent_centers + parent_half
    for k in range(m):
        for child in (2 * k, 2 * k + 1):
            c_lo = store.centers[child] - store.halfwidths[child]
            c_hi = store.centers[child] + store.halfwidths[child]
            assert np.all(c_lo >= lo[k] - 1e-12 * np.abs(lo[k]) - 1e-300)
            assert np.all(c_hi <= hi[k] + 1e-12 * np.abs(hi[k]) + 1e-300)
    # The two children of one parent are disjoint along the split axis.
    left = store.centers[0::2, :][np.arange(m), axes]
    right = store.centers[1::2, :][np.arange(m), axes]
    assert np.all(left < right)

    # Parent estimates propagate pairwise for the two-level error step.
    np.testing.assert_array_equal(store.parent_estimate[0::2], parent_estimate)
    np.testing.assert_array_equal(store.parent_estimate[1::2], parent_estimate)


@given(pop=region_populations(), n_cycles=st.integers(1, 4))
@settings(max_examples=25)
def test_soa_capacity_grows_geometrically_and_covers_size(pop, n_cycles):
    """The preallocated SoA reservation is a power-of-two multiple of the
    starting row count, always covers the live population, and never
    shrinks across filter/split cycles."""
    store = _make_store(pop)
    base = store.size
    seen_caps = [store.reserved]
    for cycle in range(n_cycles):
        keep = np.ones(store.size, dtype=bool)
        keep[::2] = cycle % 2 == 0  # vary survivor fraction per cycle
        if not keep.any():
            keep[0] = True
        store.filter(keep)
        store.split()
        seen_caps.append(store.reserved)
        assert store.reserved >= store.size
        # Doubling growth: every reservation is base * 2**k.
        ratio = store.reserved / base
        assert ratio == 2 ** round(np.log2(ratio))
    assert seen_caps == sorted(seen_caps), "capacity must never shrink"


@given(pop=region_populations())
@settings(max_examples=25)
def test_soa_buffers_are_reused_once_capacity_suffices(pop):
    """Steady-state filter/split cycles swap between the store's two
    preallocated buffer sets instead of allocating fresh columns."""
    store = _make_store(pop)
    # Burn in one cycle so both halves of the ping-pong pair exist.
    store.filter(np.ones(store.size, dtype=bool))
    store.split()
    # A halving filter followed by a split returns to the same row count,
    # so capacity cannot grow — the columns must come from the existing
    # front/back pair.
    pair = {id(buf) for cols in (store._front, store._back) for buf in cols.values()}
    for _ in range(3):
        keep = np.zeros(store.size, dtype=bool)
        keep[: store.size // 2] = True
        store.filter(keep)
        store.split()
        for cols in (store._front, store._back):
            for name, buf in cols.items():
                assert id(buf) in pair, (
                    f"column {name!r} was reallocated in steady state"
                )


@given(pop=region_populations())
@settings(max_examples=25)
def test_soa_memory_accounting_charges_reserved_capacity(pop):
    from repro.core.regions import bytes_per_region

    store = _make_store(pop)
    store.filter(np.ones(store.size, dtype=bool))
    store.split()
    assert store.nbytes_device == store.reserved * bytes_per_region(store.ndim)
    # Filtering down does not release the reservation (it is reused by
    # the next growth), so the charge is stable under compaction.
    keep = np.zeros(store.size, dtype=bool)
    keep[0] = True
    reserved_before = store.reserved
    store.filter(keep)
    assert store.reserved == reserved_before
    assert store.nbytes_device == reserved_before * bytes_per_region(store.ndim)


@given(pop=region_populations(), mask_seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15)
def test_filter_then_split_round_trip(pop, mask_seed):
    """The per-iteration composition: compaction then doubling."""
    store = _make_store(pop)
    m = store.size
    active = np.random.default_rng(mask_seed).integers(0, 2, size=m).astype(bool)
    surviving_vol = store.volumes()[active]
    store.filter(active)
    if store.size == 0:
        return
    store.split()
    assert store.size == 2 * int(active.sum())
    # Total measure of the split population equals the surviving measure.
    assert np.sum(store.volumes()) == pytest.approx(
        np.sum(surviving_vol), rel=1e-12
    )
