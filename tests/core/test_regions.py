"""Region store: uniform split, filter compaction, split kernel, memory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import RegionStore, bytes_per_region
from repro.errors import ConfigurationError, DeviceMemoryError
from repro.gpu.device import DeviceSpec, VirtualDevice

UNIT = np.array([[0.0, 1.0], [0.0, 1.0], [0.0, 1.0]])


def test_uniform_split_counts_and_geometry():
    store = RegionStore.uniform_split(UNIT, 4)
    assert store.size == 4**3
    # all halfwidths equal 1/8; centers on the expected lattice
    np.testing.assert_allclose(store.halfwidths, 1.0 / 8.0)
    lattice = (np.arange(4) + 0.5) / 4.0
    assert set(np.round(store.centers[:, 0], 12)) == set(np.round(lattice, 12))


def test_uniform_split_covers_domain_exactly():
    store = RegionStore.uniform_split(UNIT, 3)
    assert float(store.volumes().sum()) == pytest.approx(1.0, rel=1e-12)
    # regions are disjoint: no two share a center
    assert len({tuple(c) for c in np.round(store.centers, 12)}) == store.size


def test_uniform_split_nonunit_bounds():
    bounds = np.array([[-2.0, 4.0], [10.0, 11.0]])
    store = RegionStore.uniform_split(bounds, 2)
    assert store.size == 4
    assert float(store.volumes().sum()) == pytest.approx(6.0, rel=1e-12)
    np.testing.assert_allclose(store.halfwidths[:, 0], 1.5)
    np.testing.assert_allclose(store.halfwidths[:, 1], 0.25)


@pytest.mark.parametrize("bad_bounds", [
    np.zeros((3, 3)),
    np.array([[0.0, 0.0]]),
    np.array([[1.0, 0.0]]),
])
def test_uniform_split_validates_bounds(bad_bounds):
    with pytest.raises(ConfigurationError):
        RegionStore.uniform_split(bad_bounds, 2)


def test_split_halves_chosen_axis_and_conserves_volume():
    store = RegionStore.uniform_split(UNIT, 2)
    store.estimate = np.arange(store.size, dtype=np.float64)
    store.split_axis = np.array([0, 1, 2, 0, 1, 2, 0, 1])
    vol_before = float(store.volumes().sum())
    store.split()
    assert store.size == 16
    assert float(store.volumes().sum()) == pytest.approx(vol_before, rel=1e-12)
    # children are pairwise siblings sharing the parent estimate
    np.testing.assert_array_equal(store.parent_estimate[0::2], np.arange(8.0))
    np.testing.assert_array_equal(store.parent_estimate[1::2], np.arange(8.0))


def test_split_children_partition_parent():
    store = RegionStore.uniform_split(np.array([[0.0, 1.0], [0.0, 1.0]]), 1)
    store.estimate = np.zeros(1)
    store.split_axis = np.array([1])
    store.split()
    # two children stacked along axis 1
    np.testing.assert_allclose(store.halfwidths, [[0.5, 0.25], [0.5, 0.25]])
    np.testing.assert_allclose(store.centers, [[0.5, 0.25], [0.5, 0.75]])


@settings(max_examples=20)
@given(seed=st.integers(0, 9999), d=st.integers(1, 3), ndim=st.integers(2, 4))
def test_split_volume_conservation_property(seed, d, ndim):
    rng = np.random.default_rng(seed)
    bounds = np.stack([np.zeros(ndim), rng.uniform(0.5, 3.0, ndim)], axis=1)
    store = RegionStore.uniform_split(bounds, d)
    store.estimate = rng.normal(size=store.size)
    store.split_axis = rng.integers(0, ndim, size=store.size)
    before = float(store.volumes().sum())
    store.split()
    assert float(store.volumes().sum()) == pytest.approx(before, rel=1e-12)
    assert store.size == 2 * d**ndim


def test_filter_removes_and_preserves_order():
    store = RegionStore.uniform_split(UNIT, 2)
    store.estimate = np.arange(8.0)
    store.error = np.arange(8.0) * 0.1
    keep = np.array([True, False, True, True, False, False, True, False])
    n = store.filter(keep)
    assert n == 4
    np.testing.assert_array_equal(store.estimate, [0.0, 2.0, 3.0, 6.0])
    np.testing.assert_allclose(store.error, [0.0, 0.2, 0.3, 0.6], rtol=1e-12)


def test_filter_flag_length_checked():
    store = RegionStore.uniform_split(UNIT, 2)
    with pytest.raises(ValueError):
        store.filter(np.ones(3, dtype=bool))


def test_device_memory_accounting_tracks_store():
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=8))
    store = RegionStore.uniform_split(UNIT, 2, device=dev)
    expected = store.size * bytes_per_region(3)
    assert dev.memory.in_use == expected
    store.estimate = np.zeros(store.size)
    store.split_axis = np.zeros(store.size, dtype=np.int64)
    store.split()
    assert dev.memory.in_use == 2 * expected
    store.release()
    assert dev.memory.in_use == 0


def test_split_raises_when_device_full():
    # 1 MB device: 8 regions fit, but not many doublings
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=1, name="tiny"))
    store = RegionStore.uniform_split(UNIT, 8, device=dev)  # 512 regions
    store.estimate = np.zeros(store.size)
    store.split_axis = np.zeros(store.size, dtype=np.int64)
    with pytest.raises(DeviceMemoryError):
        for _ in range(20):
            store.split()


def test_split_would_fit_predicts_capacity():
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=1, name="tiny"))
    store = RegionStore.uniform_split(UNIT, 4, device=dev)
    bpr = bytes_per_region(3)
    # Capacity grows by doubling from the current reservation; the fit
    # check asks whether the reservation covering 2*n_active children
    # still fits in the pool.  Find the largest reachable capacity.
    cap = store.size
    while (2 * cap * bpr) - store.nbytes_device <= dev.memory.available:
        cap *= 2
    # Splitting cap/2 active regions needs exactly `cap` rows: fits.
    assert store.split_would_fit(cap // 2)
    # Splitting cap active regions needs the next doubling: does not fit.
    assert not store.split_would_fit(cap)


def test_store_without_device_never_blocks():
    store = RegionStore.uniform_split(UNIT, 2)
    assert store.split_would_fit(10**9)
    store.release()  # no-op
