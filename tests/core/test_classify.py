"""REL-ERR-CLASSIFY and the Algorithm 3 threshold search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import rel_err_classify, threshold_classify


# ---------------------------------------------------------------------------
# rel_err_classify
# ---------------------------------------------------------------------------
def test_rel_err_classify_basic():
    v = np.array([1.0, 1.0, -1.0, 0.0])
    e = np.array([0.5, 1e-9, 1e-9, 0.0])
    active = rel_err_classify(v, e, tau_rel=1e-6)
    np.testing.assert_array_equal(active, [True, False, False, False])


def test_rel_err_classify_margin_tightens():
    v = np.ones(1)
    e = np.array([0.8e-6])
    assert not rel_err_classify(v, e, 1e-6, margin=1.0)[0]
    assert rel_err_classify(v, e, 1e-6, margin=0.5)[0]


def test_rel_err_classify_zero_estimate_with_error_stays_active():
    active = rel_err_classify(np.zeros(1), np.array([1e-12]), 1e-3)
    assert active[0]


# ---------------------------------------------------------------------------
# threshold_classify
# ---------------------------------------------------------------------------
def _skewed_errors(n=1000, seed=0):
    """Error population like a converging run: many tiny, few large."""
    rng = np.random.default_rng(seed)
    e = rng.lognormal(mean=-8.0, sigma=2.5, size=n)
    e[: n // 50] *= 1e4  # heavy head
    return e


def test_threshold_search_succeeds_on_skewed_population():
    e = _skewed_errors()
    active = np.ones(e.size, dtype=bool)
    v_tot = 1.0
    e_tot = float(e.sum())
    new_active, trace = threshold_classify(
        active, e, v_tot, e_tot, tau_rel=1e-3
    )
    assert trace.success
    removed = active & ~new_active
    n_removed = int(removed.sum())
    # memory requirement: at least half the actives discarded
    assert n_removed > 0.5 * e.size
    # accuracy requirement: committed error within the final P_max budget
    assert float(e[removed].sum()) <= trace.final_pmax * trace.error_budget + 1e-18


def test_threshold_never_reactivates_finished_regions():
    e = _skewed_errors()
    active = np.ones(e.size, dtype=bool)
    active[::3] = False  # pre-finished by rel-err
    new_active, _ = threshold_classify(active, e, 1.0, float(e.sum()), 1e-3)
    assert not np.any(new_active & ~active)


def test_threshold_trace_records_probes():
    e = _skewed_errors()
    active = np.ones(e.size, dtype=bool)
    _, trace = threshold_classify(active, e, 1.0, float(e.sum()), 1e-3)
    assert len(trace.probes) >= 1
    assert trace.initial_threshold == pytest.approx(float(e.mean()))
    assert trace.min_error == pytest.approx(float(e.min()))
    assert trace.max_error == pytest.approx(float(e.max()))
    # every probe's bookkeeping is a valid fraction
    for p in trace.probes:
        assert 0.0 <= p.frac_removed <= 1.0
    assert trace.probes[-1].accepted == trace.success


def test_no_budget_returns_unchanged():
    """Converged or over-committed runs must not filter at all."""
    e = np.array([1e-12, 1e-12])
    active = np.ones(2, dtype=bool)
    new_active, trace = threshold_classify(
        active, e, v_tot=1.0, e_tot=1e-12, tau_rel=1e-3
    )
    assert not trace.success
    np.testing.assert_array_equal(new_active, active)


def test_empty_active_set_returns_unchanged():
    e = np.array([1.0, 2.0])
    active = np.zeros(2, dtype=bool)
    new_active, trace = threshold_classify(active, e, 1.0, 3.0, 1e-3)
    assert not trace.success
    np.testing.assert_array_equal(new_active, active)


def test_commit_allowance_restricts_commitment():
    e = _skewed_errors()
    active = np.ones(e.size, dtype=bool)
    e_tot = float(e.sum())
    allowance = 1e-9 * e_tot
    new_active, trace = threshold_classify(
        active, e, 1.0, e_tot, 1e-3, commit_allowance=allowance
    )
    if trace.success:
        committed = float(e[active & ~new_active].sum())
        assert committed <= trace.final_pmax * allowance + 1e-18


def test_uniform_errors_fail_accuracy_or_memory():
    """All-equal errors: discarding half commits half the error, which
    exceeds any reasonable budget -> unsuccessful search, mask unchanged."""
    e = np.full(100, 1.0)
    active = np.ones(100, dtype=bool)
    new_active, trace = threshold_classify(active, e, 1.0, 100.0, 1e-6)
    assert not trace.success
    np.testing.assert_array_equal(new_active, active)


@settings(max_examples=30)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 400),
    tau_exp=st.integers(2, 8),
)
def test_threshold_postconditions_property(seed, n, tau_exp):
    """Properties that must hold for ANY outcome: no reactivation; on
    success both Algorithm 3 requirements hold; on failure the mask is
    untouched."""
    rng = np.random.default_rng(seed)
    e = rng.lognormal(mean=-6, sigma=3, size=n)
    active = rng.random(n) < 0.8
    tau = 10.0 ** (-tau_exp)
    v_tot = float(rng.uniform(0.5, 2.0))
    e_tot = float(e.sum())
    new_active, trace = threshold_classify(active.copy(), e, v_tot, e_tot, tau)
    assert not np.any(new_active & ~active)
    n_active = int(active.sum())
    if trace.success:
        removed = active & ~new_active
        assert int(removed.sum()) > 0.5 * n_active
        assert float(e[removed].sum()) <= trace.final_pmax * trace.error_budget * (1 + 1e-12)
    else:
        np.testing.assert_array_equal(new_active, active)
