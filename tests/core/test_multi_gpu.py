"""Multi-GPU PAGANI (the §4.4 future-work extension)."""

import numpy as np
import pytest

from repro.core import MultiGpuPagani, PaganiConfig, Status
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec
from tests.conftest import gaussian_nd


def test_matches_single_device_estimate():
    g = gaussian_nd(3)
    multi = MultiGpuPagani(n_devices=4, config=PaganiConfig(rel_tol=1e-7))
    res = multi.integrate(g, 3)
    assert res.converged
    assert res.estimate == pytest.approx(g.reference, rel=1e-7)
    assert res.method == "pagani-x4"


def test_single_device_degenerates_gracefully():
    g = gaussian_nd(2)
    res = MultiGpuPagani(n_devices=1, config=PaganiConfig(rel_tol=1e-6)).integrate(g, 2)
    assert res.converged
    assert res.estimate == pytest.approx(g.reference, rel=1e-6)


def test_report_accounts_all_devices():
    g = gaussian_nd(3)
    multi = MultiGpuPagani(n_devices=3, config=PaganiConfig(rel_tol=1e-6))
    res = multi.integrate(g, 3)
    report = multi.last_report
    assert len(report.per_device_seconds) == 3
    assert report.makespan == max(report.per_device_seconds)
    assert report.imbalance >= 1.0
    assert sum(report.per_device_regions) == res.nregions
    assert res.sim_seconds == pytest.approx(report.makespan)


def test_error_weighted_packing_balances_peak():
    """The peak's seed regions land on different devices than the greedy
    round-robin would produce; imbalance should stay moderate even for a
    very concentrated integrand."""
    g = gaussian_nd(3, c=900.0)
    multi = MultiGpuPagani(n_devices=4, config=PaganiConfig(rel_tol=1e-6))
    res = multi.integrate(g, 3, seed_splits=6)
    assert res.converged
    report = multi.last_report
    busy = [s for s in report.per_device_seconds if s > 0]
    assert len(busy) == 4, "all devices must receive work"


def _four_peaks(ndim=4, c=900.0):
    """Four separated sharp Gaussians: adaptive work a static partition CAN
    spread across devices (a single peak would land on one device and gain
    nothing — the §4.4 load-balancing caveat)."""
    from math import erf, pi, sqrt

    from repro.integrands.base import Integrand

    mus = np.array(
        [[0.2] * ndim, [0.8] * ndim,
         [0.2, 0.8] * (ndim // 2), [0.8, 0.2] * (ndim // 2)]
    )

    def fn(x):
        out = np.zeros(x.shape[0])
        for mu in mus:
            out += np.exp(-c * np.sum((x - mu[None, :]) ** 2, axis=1))
        return out

    ref = 0.0
    for mu in mus:
        v = 1.0
        for m in mu:
            v *= sqrt(pi / c) / 2 * (erf(sqrt(c) * (1 - m)) + erf(sqrt(c) * m))
        ref += v
    return Integrand(fn=fn, ndim=ndim, reference=ref, flops_per_eval=120.0)


@pytest.mark.slow
def test_fleet_memory_extends_attainable_precision():
    """§4.4's motivation: more devices = more total memory = more digits.
    A workload that memory-exhausts one tiny device converges on a fleet
    whose nodes each take a share of the peaks."""
    from repro.integrands.base import Integrand  # noqa: F401 (used in helper)

    f = _four_peaks()
    spec = DeviceSpec.scaled(mem_mb=6, name="tiny")
    single = MultiGpuPagani(
        n_devices=1, config=PaganiConfig(rel_tol=1e-8, max_iterations=30),
        device_spec=spec,
    ).integrate(f, 4)
    fleet = MultiGpuPagani(
        n_devices=8, config=PaganiConfig(rel_tol=1e-8, max_iterations=30),
        device_spec=spec,
    ).integrate(f, 4, seed_splits=4)
    assert not single.converged
    assert fleet.converged
    assert fleet.estimate == pytest.approx(f.reference, rel=1e-6)


def test_nonconverged_partition_flags_result():
    g = gaussian_nd(4, c=900.0)
    spec = DeviceSpec.scaled(mem_mb=2, name="micro")
    # Redistribution off: this test exercises flag propagation from a
    # hopeless partition, not the §4.4 rescue path (covered by the fleet
    # test), and a 2 MB device at 1e-9 would churn through the whole
    # redistribution budget before flagging.
    res = MultiGpuPagani(
        n_devices=2, config=PaganiConfig(rel_tol=1e-9, max_iterations=25),
        device_spec=spec, redistribution_rounds=0,
    ).integrate(g, 4)
    assert not res.converged
    assert res.status in (Status.MEMORY_EXHAUSTED, Status.MAX_ITERATIONS,
                          Status.NO_ACTIVE_REGIONS)


def test_bounds_and_validation():
    with pytest.raises(ConfigurationError):
        MultiGpuPagani(n_devices=0)
    g = gaussian_nd(2)
    with pytest.raises(ConfigurationError):
        MultiGpuPagani(n_devices=2).integrate(g, 2, bounds=np.zeros((3, 2)))


def test_custom_bounds_partitioned_correctly():
    f = lambda x: np.ones(x.shape[0])
    res = MultiGpuPagani(n_devices=3, config=PaganiConfig(rel_tol=1e-6)).integrate(
        f, 2, bounds=[(0.0, 2.0), (-1.0, 1.0)]
    )
    assert res.estimate == pytest.approx(4.0, rel=1e-9)
