"""Characterisation tests for *documented* heuristic failure modes.

The paper is explicit that adaptive cubature algorithms "are heuristics
[whose] integral and error estimates ... are not theoretically guaranteed to
be accurate" (§2).  These tests pin down the concrete mechanisms in this
implementation so regressions (or silent behaviour changes) are caught, and
so the limitations stay documented by executable examples.
"""

import numpy as np

from repro.core import PaganiConfig, PaganiIntegrator
from repro.cubature.rules import LAMBDA3, get_rule
from repro.cubature.evaluation import evaluate_regions
from repro.integrands.genz import GenzFamily, make_genz


def test_edge_sliver_blindness_of_interior_rules():
    """The Genz–Malik points reach only λ3 ≈ 0.9487 of the halfwidth, so a
    feature living entirely in the outer ~5 % sliver of a cell is invisible
    to the rule: near-zero error estimate, real bias.  This is intrinsic to
    every interior cubature rule (Cuhre included) — what makes it matter
    for PAGANI is that a *filtering* algorithm may commit such a cell
    permanently."""
    rule = get_rule(2)
    # cell [0.9, 1.0]²; outermost sample along x sits at 0.95 + 0.05·λ3
    center, halfw = 0.95, 0.05
    outermost = center + halfw * float(LAMBDA3)
    kink = 0.999
    assert kink > outermost

    # sharp enough that the exponential tail is invisible at the outermost
    # sample (e^{-a·(kink−outermost)} ≈ 4e-4)
    a = 5000.0

    def f(x):
        return np.exp(-a * np.abs(x[:, 0] - kink)) + 1.0

    res = evaluate_regions(
        rule,
        np.array([[center, center]]),
        np.array([[halfw, halfw]]),
        f,
    )
    # exact over the cell: 1-D kink factor (+ the constant) times width 0.1
    kink_1d = (2.0 - np.exp(-a * (kink - 0.9)) - np.exp(-a * (1.0 - kink))) / a
    true_val = (0.1 + kink_1d) * 0.1
    bias = abs(res.estimate[0] - true_val)
    # the rule is blind: real bias exceeds its own error estimate
    assert bias > 3.0 * res.error[0]


def test_unlucky_kink_alignment_overstates_accuracy():
    """3D C0 instance (seed=5) places a kink plane ~0.1 % inside a cell
    boundary of the initial grid: thousands of sliver-blind cells get
    committed and the claimed error understates the true error by ~10x.
    The estimate is still good to ~4.5 digits — the failure is in the
    *error claim*, exactly the phenomenon Figure 4 of the paper plots
    points above the tolerance line for."""
    f = make_genz(GenzFamily.C0, ndim=3, seed=5)
    res = PaganiIntegrator(PaganiConfig(rel_tol=1e-6)).integrate(f, 3)
    assert res.converged
    true_rel = abs(res.estimate - f.reference) / abs(f.reference)
    assert true_rel < 1e-4          # still a decent estimate...
    assert true_rel > res.rel_errorest  # ...but the claim is optimistic


def test_lucky_kink_alignment_is_accurate():
    """Same family, different parameter draw: no pathological alignment,
    and the true error honours the claimed tolerance."""
    f = make_genz(GenzFamily.C0, ndim=3, seed=8)
    res = PaganiIntegrator(PaganiConfig(rel_tol=1e-6)).integrate(f, 3)
    assert res.converged
    true_rel = abs(res.estimate - f.reference) / abs(f.reference)
    assert true_rel <= 1e-5


def test_oscillatory_with_filtering_on_can_mislead():
    """§3.5.1: for sign-indefinite integrands the Lemma 3.1 precondition
    fails, so relative-error filtering may terminate with an aggressive
    claim.  The filtering-off flag is the prescribed fix; verify the flag
    changes behaviour (same integrand, strictly more conservative path)."""
    f = make_genz(GenzFamily.OSCILLATORY, ndim=4, seed=6)
    on = PaganiIntegrator(
        PaganiConfig(rel_tol=1e-6, relerr_filtering=True)
    ).integrate(f, 4)
    off = PaganiIntegrator(
        PaganiConfig(rel_tol=1e-6, relerr_filtering=False)
    ).integrate(f, 4)
    err_off = abs(off.estimate - f.reference) / abs(f.reference)
    # the safe path must actually meet the tolerance
    assert err_off <= 1e-6 or not off.converged
    # and never uses fewer regions than the filtered path
    assert off.nregions >= on.nregions
