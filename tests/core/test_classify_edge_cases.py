"""Additional edge cases for the classification layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import rel_err_classify, threshold_classify


def test_all_regions_already_finished():
    e = np.zeros(10)
    active = np.zeros(10, dtype=bool)
    new_active, trace = threshold_classify(active, e, 1.0, 1.0, 1e-3)
    assert not trace.success
    assert not new_active.any()


def test_single_active_region_cannot_satisfy_memory_requirement():
    """Discarding the single active region is 100% > 50%, but if its error
    exceeds the budget the accuracy requirement blocks it."""
    e = np.array([1.0])
    active = np.ones(1, dtype=bool)
    new_active, trace = threshold_classify(active, e, 1.0, 1.0, 1e-6)
    # budget = 1 - 1e-6 ~ 1; removing the region commits its whole error
    # (1.0) > P_max * budget -> unsuccessful
    assert not trace.success
    assert new_active[0]


def test_single_tiny_region_can_be_committed():
    e = np.array([1e-12])
    active = np.ones(1, dtype=bool)
    # e_tot dominated by a large finished share, budget large
    new_active, trace = threshold_classify(active, e, 1.0, 0.5, 1e-3)
    assert trace.success
    assert not new_active[0]


def test_threshold_handles_identical_error_values():
    e = np.full(100, 1e-9)
    active = np.ones(100, dtype=bool)
    # generous budget: every region can go; memory requirement is satisfied
    # by removing all (error below any threshold >= the common value)
    new_active, trace = threshold_classify(active, e, 1.0, 1e-3, 1e-2)
    if trace.success:
        assert np.count_nonzero(~new_active) > 50


def test_infinite_and_nan_free_probes():
    rng = np.random.default_rng(0)
    e = rng.lognormal(-5, 4, size=256)
    active = rng.random(256) < 0.7
    _, trace = threshold_classify(active, e, 1.0, float(e.sum()), 1e-4)
    for p in trace.probes:
        assert np.isfinite(p.threshold)
        assert np.isfinite(p.frac_removed)


def test_rel_err_classify_negative_estimates():
    v = np.array([-1.0, -1.0])
    e = np.array([1e-9, 0.5])
    active = rel_err_classify(v, e, 1e-6)
    np.testing.assert_array_equal(active, [False, True])


def test_rel_err_classify_abs_share_zero_is_neutral():
    v = np.array([1.0])
    e = np.array([1e-7])
    a0 = rel_err_classify(v, e, 1e-6, abs_share=0.0)
    a1 = rel_err_classify(v, e, 1e-6)
    np.testing.assert_array_equal(a0, a1)


def test_rel_err_classify_abs_share_finishes_tiny_regions():
    v = np.array([0.0, 0.0])
    e = np.array([1e-12, 1e-3])
    active = rel_err_classify(v, e, 1e-6, abs_share=1e-9)
    np.testing.assert_array_equal(active, [False, True])


@settings(max_examples=25)
@given(
    seed=st.integers(0, 10**5),
    n=st.integers(1, 100),
)
def test_threshold_never_discards_above_budget_even_with_relaxed_pmax(seed, n):
    """Even after the P_max relaxation schedule, a successful search never
    commits more than the final P_max times the budget."""
    rng = np.random.default_rng(seed)
    e = rng.lognormal(-4, 2, size=n)
    active = np.ones(n, dtype=bool)
    e_tot = float(e.sum())
    v_tot = float(rng.uniform(0.1, 10.0))
    new_active, trace = threshold_classify(
        active, e, v_tot, e_tot, 1e-3, max_direction_changes=50, max_probes=200
    )
    if trace.success:
        committed = float(e[active & ~new_active].sum())
        assert committed <= trace.final_pmax * trace.error_budget * (1 + 1e-9)
        assert trace.final_pmax <= 0.95 + 1e-12