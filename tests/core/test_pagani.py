"""End-to-end PAGANI behaviour: convergence, statuses, flags, traces."""

import math

import numpy as np
import pytest

from repro.core import PaganiConfig, PaganiIntegrator, Status
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.genz import GenzFamily, make_genz
from tests.conftest import gaussian_nd


def _run(integrand, tol, **cfg_kwargs):
    cfg = PaganiConfig(rel_tol=tol, **cfg_kwargs)
    return PaganiIntegrator(cfg).integrate(integrand, integrand.ndim)


# ---------------------------------------------------------------------------
# Convergence on analytic integrands
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("ndim", [2, 3, 4])
@pytest.mark.parametrize("tol", [1e-4, 1e-7])
def test_gaussian_converges_within_claimed_error(ndim, tol):
    g = gaussian_nd(ndim)
    res = _run(g, tol)
    assert res.status is Status.CONVERGED_REL
    true_rel = abs(res.estimate - g.reference) / g.reference
    assert true_rel <= tol


@pytest.mark.parametrize(
    "family", [GenzFamily.PRODUCT_PEAK, GenzFamily.GAUSSIAN, GenzFamily.C0,
               GenzFamily.CORNER_PEAK]
)
def test_genz_families_converge(family):
    f = make_genz(family, ndim=4, seed=3)
    res = _run(f, 1e-6)
    assert res.converged
    true_rel = abs(res.estimate - f.reference) / abs(f.reference)
    assert true_rel <= 1e-5


def test_oscillatory_with_filtering_disabled():
    f = make_genz(GenzFamily.OSCILLATORY, ndim=3, seed=1)
    res = _run(f, 1e-7, relerr_filtering=False)
    assert res.converged
    assert abs(res.estimate - f.reference) / abs(f.reference) <= 1e-7


def test_constant_integrand_converges_immediately():
    from repro.integrands.base import Integrand

    c = Integrand(fn=lambda x: np.full(x.shape[0], 3.0), ndim=3, reference=3.0)
    res = _run(c, 1e-6)
    assert res.converged
    assert res.iterations == 1
    assert res.estimate == pytest.approx(3.0, rel=1e-12)


def test_zero_integrand():
    from repro.integrands.base import Integrand

    z = Integrand(fn=lambda x: np.zeros(x.shape[0]), ndim=2, reference=0.0)
    res = _run(z, 1e-6)
    assert res.estimate == 0.0
    assert res.status in (Status.CONVERGED_ABS, Status.CONVERGED_REL)


def test_abs_tol_termination():
    g = gaussian_nd(3, c=5000.0)  # tiny integral
    cfg = PaganiConfig(rel_tol=1e-14, abs_tol=1e-6)
    res = PaganiIntegrator(cfg).integrate(g, 3)
    assert res.status is Status.CONVERGED_ABS
    assert res.errorest <= 1e-6


def test_custom_bounds_match_scaled_reference():
    """∫ exp(-sum x) over [0,2]^3 = (1-e^-2)^3."""
    from repro.integrands.base import Integrand

    f = Integrand(fn=lambda x: np.exp(-np.sum(x, axis=1)), ndim=3)
    res = PaganiIntegrator(PaganiConfig(rel_tol=1e-8)).integrate(
        f, 3, bounds=[(0.0, 2.0)] * 3
    )
    truth = (1.0 - math.exp(-2.0)) ** 3
    assert res.converged
    assert res.estimate == pytest.approx(truth, rel=1e-8)


def test_negative_integrand_sign_definite():
    """Everything-negative integrands satisfy Lemma 3.1 too."""
    from repro.integrands.base import Integrand

    g = gaussian_nd(3)
    f = Integrand(fn=lambda x: -g.fn(x), ndim=3, reference=-g.reference)
    res = _run(f, 1e-6)
    assert res.converged
    assert res.estimate == pytest.approx(-g.reference, rel=1e-6)


# ---------------------------------------------------------------------------
# Statuses and resource behaviour
# ---------------------------------------------------------------------------
def test_max_iterations_flag():
    g = gaussian_nd(4, c=2000.0)
    res = _run(g, 1e-10, max_iterations=3)
    assert res.status is Status.MAX_ITERATIONS
    assert res.iterations == 3
    assert not res.converged
    assert res.estimate != 0.0  # estimates still returned


def test_memory_exhaustion_on_tiny_device():
    g = gaussian_nd(5, c=3000.0)
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=1, name="tiny"))
    cfg = PaganiConfig(rel_tol=1e-9, max_iterations=40)
    res = PaganiIntegrator(cfg, device=dev).integrate(g, 5)
    assert res.status is Status.MEMORY_EXHAUSTED
    # the flagged result still carries the best-so-far estimates
    assert res.estimate > 0.0
    assert res.errorest > 0.0


def test_device_memory_released_after_run():
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=16))
    PaganiIntegrator(PaganiConfig(rel_tol=1e-4), device=dev).integrate(
        gaussian_nd(3), 3
    )
    assert dev.memory.in_use == 0


# ---------------------------------------------------------------------------
# Trace consistency
# ---------------------------------------------------------------------------
def test_trace_accounting_identities():
    g = gaussian_nd(3)
    res = _run(g, 1e-7)
    assert res.trace, "trace must be collected by default"
    for rec in res.trace:
        assert rec.n_active + rec.n_finished_relerr + rec.n_finished_threshold == rec.n_regions
        assert rec.neval > 0
    # iteration regions double at most (minus filtering)
    for a, b in zip(res.trace, res.trace[1:]):
        assert b.n_regions <= 2 * a.n_active
    # nregions is the sum over trace levels
    assert res.nregions == sum(rec.n_regions for rec in res.trace)


def test_trace_can_be_disabled():
    g = gaussian_nd(2)
    res = PaganiIntegrator(PaganiConfig(rel_tol=1e-4)).integrate(
        g, 2, collect_trace=False
    )
    assert res.trace == []
    assert res.converged


def test_sim_time_positive_and_evaluate_is_largest_kernel():
    """At unit-test scale launch overheads are significant (the paper's own
    point about small workloads under-utilising the device), so we assert
    dominance among kernels here; the >90 % share at production scale is
    demonstrated by benchmarks/bench_breakdown.py."""
    g = gaussian_nd(4, c=200.0)
    integ = PaganiIntegrator(PaganiConfig(rel_tol=1e-7))
    res = integ.integrate(g, 4)
    assert res.sim_seconds > 0
    stats = integ.device.stats()
    largest = max(stats.items(), key=lambda kv: kv[1].seconds)[0]
    assert largest == "evaluate"


# ---------------------------------------------------------------------------
# Configuration validation and knobs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"rel_tol": 0.0},
        {"rel_tol": 2.0},
        {"abs_tol": -1.0},
        {"max_iterations": 0},
        {"error_model": "nope"},
        {"initial_splits": 0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        PaganiIntegrator(PaganiConfig(**kwargs))


def test_bad_runtime_tolerance_rejected():
    with pytest.raises(ConfigurationError):
        PaganiIntegrator().integrate(gaussian_nd(2), 2, rel_tol=0.0)


def test_bad_bounds_shape_rejected():
    with pytest.raises(ConfigurationError):
        PaganiIntegrator().integrate(gaussian_nd(2), 2, bounds=[(0, 1)] * 3)


def test_initial_splits_override():
    cfg = PaganiConfig(initial_splits=3)
    assert cfg.splits_for(5) == 3
    auto = PaganiConfig(init_target=2048)
    assert auto.splits_for(8) >= 2
    assert auto.splits_for(2) ** 2 >= 2048


def test_four_difference_error_model_still_converges():
    # the paper-verbatim four-difference error is far more conservative, so
    # use a 2-D case where the extra subdivisions stay cheap
    g = gaussian_nd(2)
    res = _run(g, 1e-5, error_model="four_difference")
    assert res.converged
    assert abs(res.estimate - g.reference) / g.reference <= 1e-5


def test_two_level_disabled_still_converges():
    g = gaussian_nd(3)
    res = _run(g, 1e-5, two_level=False)
    assert res.converged


def test_threshold_traces_recorded_when_triggered():
    # Force memory pressure so Algorithm 3 runs.
    g = gaussian_nd(4, c=1500.0)
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=4, name="small"))
    integ = PaganiIntegrator(PaganiConfig(rel_tol=1e-8, max_iterations=25), device=dev)
    integ.integrate(g, 4)
    assert len(integ.threshold_traces) >= 1
