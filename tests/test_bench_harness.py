"""Unit tests for the benchmark harness utilities (no integration runs)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

import harness as hz  # noqa: E402
from harness import SweepRow  # noqa: E402


def _row(integrand="5D f4", method="pagani", digits=3, converged=True,
         true_rel=1e-4, sim_ms=1.0, status="converged_rel"):
    return SweepRow(
        integrand=integrand, method=method, digits=digits, converged=converged,
        status=status, estimate=1.0, errorest=1e-4, true_rel_error=true_rel,
        sim_ms=sim_ms, nregions=100, neval=1000,
    )


def test_digits_for_known_and_unknown():
    assert hz.digits_for("5D f4")
    assert hz.digits_for("unknown-integrand") == [3, 4, 5]


def test_select_filters_rows():
    rows = [_row(), _row(method="cuhre"), _row(integrand="8D f7")]
    out = hz.select(rows, "5D f4", "pagani")
    assert len(out) == 1
    assert out[0].method == "pagani"


def test_max_converged_digits_honours_truthfulness():
    rows = [
        _row(digits=3, converged=True, true_rel=1e-4),
        _row(digits=4, converged=True, true_rel=1e-5),
        # claims convergence at 5 digits but true error is 1e-2: not truthful
        _row(digits=5, converged=True, true_rel=1e-2),
        _row(digits=6, converged=False),
    ]
    assert hz.max_converged_digits(rows, "5D f4", "pagani") == 4


def test_write_csv_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setattr(hz, "RESULTS_DIR", tmp_path)
    rows = [_row(), _row(digits=4)]
    path = hz.write_csv(rows, "unit.csv")
    text = path.read_text()
    assert "integrand" in text.splitlines()[0]
    assert len(text.splitlines()) == 3


def test_sweep_disk_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setattr(hz, "RESULTS_DIR", tmp_path)
    rows = [_row(), _row(method="cuhre", converged=False, status="max_evaluations")]
    hz._store_cached("unit", rows)
    loaded = hz._load_cached("unit")
    assert loaded == rows


def test_sweep_cache_miss_returns_none(tmp_path, monkeypatch):
    monkeypatch.setattr(hz, "RESULTS_DIR", tmp_path)
    assert hz._load_cached("nothing-here") is None


def test_cached_sweep_calls_compute_once(tmp_path, monkeypatch):
    monkeypatch.setattr(hz, "RESULTS_DIR", tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return [_row()]

    hz._SWEEP_CACHE.pop("unitk", None)
    a = hz._cached_sweep("unitk", compute)
    b = hz._cached_sweep("unitk", compute)
    assert a == b
    assert len(calls) == 1
    hz._SWEEP_CACHE.pop("unitk", None)
    # second process simulation: memory cache cleared, disk cache hits
    c = hz._cached_sweep("unitk", compute)
    assert c == a
    assert len(calls) == 1
    hz._SWEEP_CACHE.pop("unitk", None)


def test_print_table_formats(capsys):
    hz.print_table(
        "T", ["a", "bb"], [["1", "22"], ["333", "4"]], paper_note="note"
    )
    out = capsys.readouterr().out
    assert "=== T ===" in out
    assert "paper: note" in out
    assert "333" in out


def test_fmt_e():
    assert hz.fmt_e(1.5e-3) == "1.50e-03"
    assert hz.fmt_e(float("nan")) == "-"
    assert hz.fmt_e(float("inf")) == "-"


def test_integrand_catalogues_have_references():
    for cat in (hz.sweep_integrands(), hz.speedup_integrands(), hz.qmc_integrands()):
        for name, integrand in cat.items():
            assert integrand.reference is not None, name
            assert integrand.ndim == int(name.split("D")[0])


def test_backend_bench_smoke_roundtrip(tmp_path):
    data = hz.run_backend_bench(backends=["numpy", "threaded"], smoke=True)
    assert data["mode"] == "smoke"
    assert set(data["backends"]) == {"numpy", "threaded"}
    for spec, rows in data["backends"].items():
        assert rows, spec
        for r in rows:
            assert r["matches_numpy"], (spec, r)
            assert r["wall_seconds"] > 0
            assert r["converged"]

    path = hz.write_backend_bench(data, out=tmp_path / "BENCH_backends.json")
    import json

    loaded = json.loads(path.read_text())
    assert loaded["backends"]["threaded"][0]["estimate"] == pytest.approx(
        data["backends"]["threaded"][0]["estimate"]
    )


def test_backend_bench_skips_unavailable_backends():
    data = hz.run_backend_bench(backends=["cupy"], smoke=True)
    # on a CUDA host this runs; everywhere else it must skip, not crash
    assert "cupy" in data["backends"] or "cupy" in data["skipped_backends"]


def test_batch_bench_smoke_roundtrip(tmp_path):
    data = hz.run_batch_bench(backends=["numpy", "threaded"], smoke=True)
    assert data["mode"] == "smoke"
    assert set(data["backends"]) == {"numpy", "threaded"}
    assert data["n_members"] == len(hz.batch_bench_members(smoke=True))
    for spec, d in data["backends"].items():
        assert d["sequential_seconds"] > 0 and d["batched_seconds"] > 0
        assert d["rounds"] >= 1
        assert len(d["members"]) == data["n_members"]
        for r in d["members"]:
            assert r["matches_sequential"], (spec, r)
            assert r["converged"]

    path = hz.write_batch_bench(data, out=tmp_path / "BENCH_batch.json")
    import json

    loaded = json.loads(path.read_text())
    assert loaded["backends"]["numpy"]["speedup"] == pytest.approx(
        data["backends"]["numpy"]["speedup"]
    )


def test_service_bench_smoke_roundtrip(tmp_path, capsys):
    data = hz.run_service_bench(smoke=True)
    assert data["mode"] == "smoke"
    assert data["n_jobs"] == len(data["unique_jobs"]) * data["duplicate_factor"]
    # bit-identity against cold integrate() runs must hold in every pass
    for key, bad in data["bit_identity"].items():
        assert bad == [], key
    # the warm replay is served entirely from the cache
    assert data["runs"]["warm_replay"]["all_cache_hits"]
    assert data["priority_order"]["in_priority_order"]
    assert data["priority_order"]["completion_order"] == [8, 4, 2, 1]
    # every duplicate was served without recomputation (hit or coalesced)
    n_dupes = data["n_jobs"] - len(data["unique_jobs"])
    assert data["runs"]["with_cache"]["served_without_recompute"] >= n_dupes

    path = hz.write_service_bench(data, out=tmp_path / "BENCH_service.json")
    import json

    loaded = json.loads(path.read_text())
    assert loaded["suite"] == "pagani-service-bench"
    hz.print_service_bench(data)
    out = capsys.readouterr().out
    assert "priority completion order" in out
    assert "bit-identity" in out


def test_committed_service_bench_artifact_claims():
    """The committed BENCH_service.json must actually evidence the
    service-layer claims: >=5x duplicate-mix speedup via cache hits,
    bit-identical replays, priority-order completion."""
    import json

    path = hz.RESULTS_DIR / hz.SERVICE_BENCH_FILE
    data = json.loads(path.read_text())
    assert data["suite"] == "pagani-service-bench"
    assert data["generated_by"].endswith("harness.py --service")
    assert data["cache_speedup"] >= 5.0
    for key, bad in data["bit_identity"].items():
        assert bad == [], key
    assert data["priority_order"]["in_priority_order"]
    assert data["runs"]["warm_replay"]["all_cache_hits"]


def test_process_bench_smoke_roundtrip(tmp_path, capsys):
    data = hz.run_process_bench(backends=["numpy", "threaded"], smoke=True)
    assert data["mode"] == "smoke"
    assert set(data["backends"]) == {"numpy", "threaded"}
    assert data["n_members"] == len(hz.process_bench_members(smoke=True))
    assert data["backends"]["numpy"]["speedup_vs_numpy"] == 1.0
    for spec, d in data["backends"].items():
        assert d["wall_seconds"] > 0
        assert d["all_match"], spec
        for r in d["members"]:
            assert r["converged"], (spec, r)
    # no process run requested -> the plain-integrate probe is skipped
    assert data["plain_integrate_bit_identical"] is None

    path = hz.write_process_bench(data, out=tmp_path / "BENCH_process.json")
    import json

    loaded = json.loads(path.read_text())
    assert loaded["suite"] == "pagani-process-bench"
    hz.print_process_bench(data)
    out = capsys.readouterr().out
    assert "vs numpy" in out


def test_process_bench_includes_process_backend_when_available():
    from repro.backends import BackendUnavailableError, new_backend

    try:
        new_backend("process:2").close()
    except BackendUnavailableError:
        pytest.skip("process backend unavailable on this host")
    data = hz.run_process_bench(backends=["numpy", "process"], smoke=True)
    assert data["backends"]["process"]["all_match"]
    assert data["plain_integrate_bit_identical"] is True


def test_committed_process_bench_artifact_claims():
    """The committed BENCH_process.json must evidence the process-backend
    claims: agreement with the numpy reference everywhere, plain-
    integrate bit-identity, and the >=3x speedup whenever the recording
    host had enough cores for the expectation to apply."""
    import json

    path = hz.RESULTS_DIR / hz.PROCESS_BENCH_FILE
    data = json.loads(path.read_text())
    assert data["suite"] == "pagani-process-bench"
    assert data["generated_by"].endswith("harness.py --process")
    assert data["plain_integrate_bit_identical"] is True
    assert {"numpy", "process"} <= set(data["backends"])
    for spec, d in data["backends"].items():
        assert d["all_match"], spec
        for r in d["members"]:
            assert r["converged"], (spec, r)
    speedup = data["backends"]["process"]["speedup_vs_numpy"]
    assert speedup is not None and speedup > 0
    exp = data["expectation"]
    assert exp["min_speedup_vs_numpy"] == hz.PROCESS_BENCH_MIN_SPEEDUP
    assert exp["enforced_on_this_host"] == (
        data["host"]["cpus"] >= exp["min_cores"]
    )
    if exp["enforced_on_this_host"]:
        assert speedup >= exp["min_speedup_vs_numpy"]


def test_service_bench_shards_recorded():
    data = hz.run_service_bench(smoke=True, shards=2)
    assert data["shards"] == 2
    for key, bad in data["bit_identity"].items():
        assert bad == [], key
    assert data["priority_order"]["in_priority_order"]


def test_batch_bench_members_cover_all_families():
    names = {f.name for f in hz.batch_bench_members(smoke=False)}
    for family in ("oscillatory", "product_peak", "corner_peak", "gaussian",
                   "c0", "discontinuous"):
        assert any(family in n for n in names), family
    assert len(names) == 24


# ---------------------------------------------------------------------------
# HTTP traffic-trace benchmark
# ---------------------------------------------------------------------------
def test_http_bench_smoke_roundtrip(tmp_path, capsys):
    data = hz.run_http_bench(smoke=True)
    assert data["mode"] == "smoke"
    assert data["suite"] == "pagani-http-bench"
    n_unique = len(data["unique_jobs"])
    assert data["n_jobs_per_wave"] == n_unique * data["duplicate_factor"]

    for name, wave in data["waves"].items():
        assert wave["all_converged"], name
        # every wave replays bit-identically against cold integrate()
        assert wave["replay_mismatches"] == [], name
    assert data["waves"]["warm"]["cache_hit_fraction"] >= 0.5
    restart = data["waves"]["restart_warm"]
    # the restart wave never recomputes: a fresh LRU means every hit
    # was served by the durable SQLite tier
    assert restart["cache_hit_fraction"] >= 0.9
    assert restart["fresh_runs"] == 0
    assert restart["durable_hits"] >= n_unique
    assert restart["durable_entries"] == n_unique
    assert hz.http_bench_problems(data) == []

    path = hz.write_http_bench(data, out=tmp_path / "BENCH_http.json")
    import json

    loaded = json.loads(path.read_text())
    assert loaded["suite"] == "pagani-http-bench"
    hz.print_http_bench(data)
    out = capsys.readouterr().out
    assert "restart_warm" in out
    assert "durable" in out


def test_committed_http_bench_artifact_claims():
    """The committed BENCH_http.json must evidence the durability
    contract: the restart-warm wave serves >=90% of duplicate requests
    from the durable store, bit-identical to cold integrate()."""
    import json

    path = hz.RESULTS_DIR / hz.HTTP_BENCH_FILE
    data = json.loads(path.read_text())
    assert data["suite"] == "pagani-http-bench"
    assert data["generated_by"].endswith("harness.py --http")
    for name, wave in data["waves"].items():
        assert wave["all_converged"], name
        assert wave["replay_mismatches"] == [], name
    assert data["waves"]["warm"]["cache_hit_fraction"] >= 0.5
    restart = data["waves"]["restart_warm"]
    assert restart["cache_hit_fraction"] >= 0.9
    assert restart["durable_hits"] >= len(data["unique_jobs"])
    # the gate's floors ride inside the payload itself
    assert data["expectation"]["min_restart_hit_rate"] >= 0.9
    assert hz.http_bench_problems(data) == []


def test_scenarios_bench_smoke_roundtrip(tmp_path, capsys):
    data = hz.run_scenarios_bench(smoke=True)
    assert data["mode"] == "smoke"
    assert data["suite"] == "pagani-scenarios-bench"
    for row in data["transforms"]:
        assert row["converged"], row["spec"]
        assert row["canonical_spec"]
    assert all(m["converged"] for m in data["sweep"]["members"])
    esc = data["escalation"]
    # the watchdogged PAGANI attempt must actually escalate, and the
    # result must keep the rung's own method — honest provenance
    assert esc["escalated"]
    assert esc["stages"][0]["method"] == "pagani"
    assert esc["final_method"] == esc["stages"][-1]["method"] != "pagani"
    assert esc["final_status"] == esc["stages"][-1]["status"]
    assert hz.scenarios_bench_problems(data) == []

    path = hz.write_scenarios_bench(data, out=tmp_path / "BENCH_scenarios.json")
    import json

    loaded = json.loads(path.read_text())
    assert loaded["suite"] == "pagani-scenarios-bench"
    hz.print_scenarios_bench(data)
    out = capsys.readouterr().out
    assert "escalation" in out
    assert "pagani->" in out


def test_committed_scenarios_bench_artifact_claims():
    """The committed BENCH_scenarios.json must evidence the opened
    workload space: every transform family and sweep member converged,
    and the escalation row kept honest PAGANI-first provenance."""
    import json

    path = hz.RESULTS_DIR / hz.SCENARIOS_BENCH_FILE
    data = json.loads(path.read_text())
    assert data["suite"] == "pagani-scenarios-bench"
    assert data["generated_by"].endswith("harness.py --scenarios")
    families = {row["spec"].split("(")[0] for row in data["transforms"]}
    assert families == {"semi_infinite", "infinite", "gaussian_measure"}
    assert len(data["sweep"]["members"]) >= 2
    assert data["escalation"]["escalated"]
    assert hz.scenarios_bench_problems(data) == []
