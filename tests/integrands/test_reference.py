"""Semi-analytic reference machinery: densities, panels, box integrals."""

import numpy as np
import pytest
from fractions import Fraction

from repro.reference.boxint import (
    box_integral,
    box_moment_exact,
    expect_s2,
    expect_s4,
    expect_s8,
    h2_density,
    h4_density,
    integrate_panels,
)


# ---------------------------------------------------------------------------
# exact rational moments
# ---------------------------------------------------------------------------
def test_moment_k0_is_one():
    assert box_moment_exact(5, 0) == Fraction(1)


def test_moment_first_is_n_thirds():
    for n in (1, 2, 8):
        assert box_moment_exact(n, 1) == Fraction(n, 3)


def test_moment_second_matches_hand_computation():
    # E[(x^2+y^2)^2] = E[x^4] + 2E[x^2]E[y^2] + E[y^4] = 1/5 + 2/9 + 1/5
    assert box_moment_exact(2, 2) == Fraction(1, 5) + Fraction(2, 9) + Fraction(1, 5)


def test_moment_monotone_in_k():
    # S_8 >= 1 has positive probability mass, moments grow quickly
    vals = [float(box_moment_exact(8, k)) for k in range(5)]
    assert vals[0] == 1.0
    assert all(b > a * 0 for a, b in zip(vals, vals[1:]))


def test_moment_invalid_args():
    with pytest.raises(ValueError):
        box_moment_exact(0, 1)
    with pytest.raises(ValueError):
        box_moment_exact(2, -1)


# ---------------------------------------------------------------------------
# h2 density
# ---------------------------------------------------------------------------
def test_h2_piecewise_values():
    assert h2_density(np.array([0.5]))[0] == pytest.approx(np.pi / 4)
    assert h2_density(np.array([1.0]))[0] == pytest.approx(np.pi / 4)
    assert h2_density(np.array([2.0]))[0] == pytest.approx(0.0, abs=1e-12)
    assert h2_density(np.array([2.5]))[0] == 0.0
    assert h2_density(np.array([-0.1]))[0] == 0.0


def test_h2_integrates_to_one():
    val = integrate_panels(h2_density, 0.0, 2.0, breakpoints=[1.0],
                           sqrt_singularities=[1.0])
    assert val == pytest.approx(1.0, rel=1e-13)


def test_h2_mean_is_two_thirds():
    val = integrate_panels(lambda t: t * h2_density(t), 0.0, 2.0,
                           breakpoints=[1.0], sqrt_singularities=[1.0])
    assert val == pytest.approx(2.0 / 3.0, rel=1e-12)


def test_h4_density_normalised():
    val = integrate_panels(
        lambda t: np.array([h4_density(v) for v in np.atleast_1d(t)]),
        0.0, 4.0, breakpoints=[1.0, 2.0, 3.0],
        sqrt_singularities=[1.0, 2.0, 3.0],
    )
    assert val == pytest.approx(1.0, rel=1e-10)
    assert h4_density(-0.5) == 0.0
    assert h4_density(4.5) == 0.0


# ---------------------------------------------------------------------------
# panel integrator
# ---------------------------------------------------------------------------
def test_panels_polynomial_exact():
    val = integrate_panels(lambda x: 3 * x**2, 0.0, 2.0)
    assert val == pytest.approx(8.0, rel=1e-14)


def test_panels_with_breakpoints():
    f = lambda x: np.where(x < 1.0, x, 2.0 - x)  # tent with kink at 1
    val = integrate_panels(f, 0.0, 2.0, breakpoints=[1.0])
    assert val == pytest.approx(1.0, rel=1e-14)


def test_panels_sqrt_singularity_handled():
    """∫_0^1 √x dx = 2/3 with a cusp at 0: substitution restores spectral
    accuracy that plain Gauss would miss at 1e-14 level."""
    val = integrate_panels(lambda x: np.sqrt(x), 0.0, 1.0,
                           sqrt_singularities=[0.0])
    assert val == pytest.approx(2.0 / 3.0, rel=1e-14)


def test_panels_double_singular_endpoint_split():
    # both endpoints flagged: ∫_0^1 sqrt(x(1-x)) dx = π/8
    val = integrate_panels(
        lambda x: np.sqrt(x * (1.0 - x)), 0.0, 1.0,
        sqrt_singularities=[0.0, 1.0],
    )
    assert val == pytest.approx(np.pi / 8.0, rel=1e-13)


def test_panels_empty_interval():
    assert integrate_panels(lambda x: x, 1.0, 1.0) == 0.0


# ---------------------------------------------------------------------------
# expectations and box integrals
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("expect,n", [(expect_s2, 2), (expect_s4, 4), (expect_s8, 8)])
def test_expectations_match_exact_moments(expect, n):
    for k in (0, 1, 2, 3, 7):
        exact = float(box_moment_exact(n, k))
        num = expect(lambda t, k=k: np.power(t, float(k)))
        assert num == pytest.approx(exact, rel=5e-12), (n, k)


def test_expect_s8_matches_f7_moment():
    """The certification test: the same pipeline that produces the f8
    reference must reproduce f7's exact rational value."""
    exact = float(box_moment_exact(8, 11))
    num = expect_s8(lambda t: np.power(t, 11.0))
    assert num == pytest.approx(exact, rel=1e-11)


def test_box_integral_even_uses_exact_path():
    assert box_integral(8, 22) == float(box_moment_exact(8, 11))


def test_box_integral_b8_15_stable_across_resolutions():
    a = box_integral(8, 15, n_nodes=48)
    b = box_integral(8, 15, n_nodes=64)
    assert a == pytest.approx(b, rel=1e-10)
    assert 8000 < a < 10000  # coarse sanity bracket


def test_box_integral_validation():
    with pytest.raises(ValueError):
        box_integral(8, -1)
    with pytest.raises(ValueError):
        box_integral(5, 15)


def test_box_integral_b2_1_matches_known_constant():
    """B_2(1) = (√2 + asinh(1))/3 ≈ 0.7652, a classic box-integral value."""
    expected = (np.sqrt(2.0) + np.arcsinh(1.0)) / 3.0
    assert box_integral(2, 1) == pytest.approx(expected, rel=1e-12)
