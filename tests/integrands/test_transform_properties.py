"""Property-based tests for the domain transforms.

Hypothesis drives random interior points, dimensions and scales through
algebraic identities the transforms must satisfy exactly (or to float
round-off):

* the Jacobian factor is strictly positive everywhere — a change of
  variables must never flip or annihilate the integrand;
* rescaling the domain commutes with rescaling the integrand's argument
  (``semi_infinite(f, a*s) == a^n * semi_infinite(f(a .), s)``);
* ``gaussian_measure`` with zero mean and identity Cholesky *is* the
  inverse-CDF map ``f(ndtri(u))``;
* the boundary clip keeps every transform finite on the closed cube.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import ndtri

hyp = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.integrands.transforms import (
    gaussian_measure,
    infinite,
    semi_infinite,
)

_SETTINGS = dict(max_examples=50, deadline=None)


def _ones(x: np.ndarray) -> np.ndarray:
    return np.ones(x.shape[0])


def _interior_points(draw, ndim: int, n: int = 4) -> np.ndarray:
    elems = st.floats(min_value=0.01, max_value=0.99)
    rows = draw(
        st.lists(
            st.lists(elems, min_size=ndim, max_size=ndim),
            min_size=n, max_size=n,
        )
    )
    return np.asarray(rows, dtype=np.float64)


@st.composite
def _points_and_scale(draw):
    ndim = draw(st.integers(min_value=1, max_value=4))
    pts = _interior_points(draw, ndim)
    scale = draw(st.floats(min_value=0.1, max_value=10.0))
    return ndim, pts, scale


@given(_points_and_scale())
@settings(**_SETTINGS)
def test_jacobian_strictly_positive(case):
    """With f == 1 the transform value IS the Jacobian: must be > 0."""
    ndim, pts, scale = case
    for build in (semi_infinite, infinite):
        jac = build(_ones, ndim, scale=scale).fn(pts)
        assert np.all(jac > 0.0)
        assert np.all(np.isfinite(jac))


@given(_points_and_scale(), st.floats(min_value=0.25, max_value=4.0))
@settings(**_SETTINGS)
def test_semi_infinite_scale_invariance(case, a):
    """semi_infinite(f, a*s).fn == a^n * semi_infinite(f(a.), s).fn.

    Substituting x -> a*x in the map is the same as scaling the domain
    map by a; the two spellings must agree to float round-off.
    """
    ndim, pts, scale = case

    def f(x):
        return np.exp(-np.sum(x, axis=1))

    def f_scaled(x):
        return f(a * x)

    lhs = semi_infinite(f, ndim, scale=a * scale).fn(pts)
    rhs = a**ndim * semi_infinite(f_scaled, ndim, scale=scale).fn(pts)
    np.testing.assert_allclose(lhs, rhs, rtol=1e-12)


@given(st.integers(min_value=1, max_value=4), st.data())
@settings(**_SETTINGS)
def test_gaussian_measure_identity_is_inverse_cdf(ndim, data):
    """mean=0, chol=I: the transform is exactly u -> f(ndtri(u))."""
    pts = _interior_points(data.draw, ndim)

    def f(x):
        return np.sum(x * x, axis=1) + 1.0

    g = gaussian_measure(f, ndim)
    expected = f(ndtri(pts))
    np.testing.assert_array_equal(g.fn(pts), expected)


@pytest.mark.parametrize("build", [semi_infinite, infinite])
def test_boundary_clip_keeps_values_finite(build):
    """t = 0 and t = 1 would hit the maps' poles; the clip must keep
    every evaluation finite (the integrand decaying fast enough)."""
    ndim = 3

    def f(x):
        return np.exp(-np.sum(np.abs(x), axis=1))

    g = build(f, ndim, scale=1.0)
    corners = np.array(
        [[0.0] * ndim, [1.0] * ndim, [0.0, 1.0, 0.5], [1.0, 0.0, 0.5]]
    )
    vals = g.fn(corners)
    assert np.all(np.isfinite(vals))


def test_gaussian_measure_boundary_clip_finite():
    ndim = 2

    def f(x):
        return np.ones(x.shape[0])

    g = gaussian_measure(f, ndim)
    corners = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    vals = g.fn(corners)
    assert np.all(np.isfinite(vals))
