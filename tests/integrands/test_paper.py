"""The paper's f1–f8: analytic references vs brute force, metadata."""

import numpy as np
import pytest

from repro.integrands.paper import (
    f1_oscillatory,
    f2_product_peak,
    f3_corner_peak,
    f4_gaussian,
    f5_c0,
    f6_discontinuous,
    f7_box11,
    f8_box15,
    paper_suite,
)

ALL_FACTORIES = [
    (f1_oscillatory, 4),
    (f2_product_peak, 4),
    (f3_corner_peak, 4),
    (f4_gaussian, 4),
    (f5_c0, 4),
    (f6_discontinuous, 4),
    (f7_box11, 4),
    (f8_box15, 4),
]


def _mc_estimate(f, ndim, n=400_000, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, ndim))
    vals = f(pts)
    return float(np.mean(vals)), float(np.std(vals) / np.sqrt(n))


@pytest.mark.parametrize("factory,ndim", ALL_FACTORIES)
def test_reference_within_mc_confidence(factory, ndim):
    """Every analytic/semi-analytic reference must sit inside a brute-force
    Monte Carlo confidence interval — guards against sign errors, wrong
    normalisations or transcription slips in the closed forms."""
    f = factory(ndim)
    est, se = _mc_estimate(f, ndim)
    assert abs(est - f.reference) <= 6.0 * se + 1e-12, (
        f"{f.name}: MC {est} vs reference {f.reference} (se={se})"
    )


@pytest.mark.parametrize("factory,ndim", ALL_FACTORIES)
def test_vectorised_output_shape_and_dtype(factory, ndim):
    f = factory(ndim)
    pts = np.random.default_rng(1).random((17, ndim))
    out = f(pts)
    assert out.shape == (17,)
    assert out.dtype == np.float64


@pytest.mark.parametrize("factory,ndim", ALL_FACTORIES)
def test_batch_matches_pointwise(factory, ndim):
    f = factory(ndim)
    pts = np.random.default_rng(2).random((50, ndim))
    batch = f(pts)
    single = np.array([f(p[None, :])[0] for p in pts])
    np.testing.assert_allclose(batch, single, rtol=1e-13)


def test_f1_is_not_sign_definite():
    f = f1_oscillatory(8)
    assert not f.sign_definite
    pts = np.random.default_rng(3).random((10_000, 8))
    vals = f(pts)
    assert np.any(vals > 0) and np.any(vals < 0)


@pytest.mark.parametrize(
    "factory,ndim",
    [(f2_product_peak, 4), (f4_gaussian, 4), (f5_c0, 4), (f7_box11, 4)],
)
def test_sign_definite_integrands_are_nonnegative(factory, ndim):
    f = factory(ndim)
    assert f.sign_definite
    pts = np.random.default_rng(4).random((10_000, ndim))
    assert np.all(f(pts) >= 0.0)


def test_f3_exact_rational_reference_no_cancellation():
    """The 8-D corner-peak reference is ~1e-10 from alternating O(1) terms;
    exact arithmetic must agree with high-precision integration of the
    1-D reduction (spot-check against the 2-D closed value)."""
    f2d = f3_corner_peak(2)
    # ∫∫ (1+x+2y)^-3 over unit square = 1/(1·2·2!)·Σ...
    # independent quadrature check:
    from scipy import integrate as si

    val, _ = si.dblquad(lambda y, x: (1 + x + 2 * y) ** -3.0, 0, 1, 0, 1,
                        epsabs=1e-13)
    assert f2d.reference == pytest.approx(val, rel=1e-9)


def test_f4_reference_is_erf_product():
    from math import erf, pi, sqrt

    f = f4_gaussian(3)
    assert f.reference == pytest.approx((sqrt(pi) / 25 * erf(12.5)) ** 3, rel=1e-14)


def test_f6_zero_outside_cut_box():
    f = f6_discontinuous(6)
    pts = np.full((1, 6), 0.95)  # beyond every cut
    assert f(pts)[0] == 0.0
    inside = np.full((1, 6), 0.1)
    assert f(inside)[0] > 0.0


def test_f6_cut_planes_align_with_tenth_grid():
    """The property that makes a d=10 initial split straddle-free."""
    idx = np.arange(1.0, 7.0)
    cuts = (3.0 + idx) / 10.0
    assert np.allclose(cuts * 10, np.round(cuts * 10))


def test_f7_reference_is_exact_moment():
    from repro.reference.boxint import box_moment_exact

    f = f7_box11(8)
    assert f.reference == float(box_moment_exact(8, 11))


def test_f8_reference_dimension_guard():
    with pytest.raises(ValueError):
        f8_box15(5)


def test_paper_suite_composition():
    suite = paper_suite()
    names = [s.name for s in suite]
    assert "8D f1" in names and "5D f4" in names and "6D f6" in names
    assert "3D f3" in names
    assert all(s.reference is not None for s in suite)
