"""Domain transforms: semi-infinite, infinite, Gaussian measure."""

import math

import numpy as np
import pytest

from repro import integrate
from repro.integrands.base import Integrand
from repro.integrands.transforms import gaussian_measure, infinite, semi_infinite


def test_semi_infinite_exponential():
    """∫_[0,∞)^2 e^{-x-y} dx dy = 1."""
    f = semi_infinite(lambda x: np.exp(-np.sum(x, axis=1)), 2)
    res = integrate(f, 2, rel_tol=1e-8)
    assert res.converged
    assert res.estimate == pytest.approx(1.0, rel=1e-7)


def test_semi_infinite_scale_changes_nothing_mathematically():
    """∫∫ x² e^{-x-y} = Γ(3) = 2, independent of the map's scale knob."""
    truth = math.gamma(3.0)
    g = lambda x: x[:, 0] ** 2 * np.exp(-np.sum(x, axis=1))
    r1 = integrate(semi_infinite(g, 2, scale=1.0), 2, rel_tol=1e-8)
    r2 = integrate(semi_infinite(g, 2, scale=3.0), 2, rel_tol=1e-8)
    assert r1.estimate == pytest.approx(truth, rel=1e-6)
    assert r2.estimate == pytest.approx(r1.estimate, rel=1e-6)


def test_infinite_gaussian():
    """∫_R^2 e^{-|x|²} = π."""
    f = infinite(lambda x: np.exp(-np.sum(x * x, axis=1)), 2)
    res = integrate(f, 2, rel_tol=1e-8)
    assert res.converged
    assert res.estimate == pytest.approx(math.pi, rel=1e-7)


def test_infinite_heavy_center_with_scale():
    """A tight Gaussian needs a matched scale to integrate efficiently."""
    c = 100.0
    f = infinite(lambda x: np.exp(-c * np.sum(x * x, axis=1)), 2, scale=0.1)
    res = integrate(f, 2, rel_tol=1e-7)
    assert res.estimate == pytest.approx(math.pi / c, rel=1e-6)


def test_gaussian_measure_mean_of_linear():
    """E[a·z + b] under N(mu, I) = a·mu + b."""
    a = np.array([2.0, -3.0, 1.0])
    mu = np.array([0.5, 1.5, -1.0])
    f = gaussian_measure(lambda z: z @ a + 7.0, 3, mean=mu)
    res = integrate(f, 3, rel_tol=1e-7, relerr_filtering=False)
    assert res.estimate == pytest.approx(float(a @ mu) + 7.0, rel=1e-5)


def test_gaussian_measure_second_moment_with_cholesky():
    """E[z1²] under N(0, LLᵀ) = (LLᵀ)_{11}."""
    L = np.array([[2.0, 0.0], [1.0, 1.5]])
    f = gaussian_measure(lambda z: z[:, 0] ** 2, 2, chol=L)
    res = integrate(f, 2, rel_tol=1e-7)
    assert res.estimate == pytest.approx(4.0, rel=1e-5)


def test_metadata_propagates():
    base = Integrand(
        fn=lambda x: np.exp(-np.sum(x, axis=1)), ndim=2, name="expo",
        flops_per_eval=20.0, sign_definite=True,
    )
    t = semi_infinite(base, 2)
    assert "expo" in t.name
    assert t.flops_per_eval > base.flops_per_eval
    assert t.sign_definite


@pytest.mark.parametrize("factory", [semi_infinite, infinite])
def test_scale_validation(factory):
    with pytest.raises(ValueError):
        factory(lambda x: np.ones(x.shape[0]), 2, scale=0.0)


def test_gaussian_measure_shape_validation():
    with pytest.raises(ValueError):
        gaussian_measure(lambda z: z[:, 0], 2, mean=[1.0])
    with pytest.raises(ValueError):
        gaussian_measure(lambda z: z[:, 0], 2, chol=np.eye(3))
