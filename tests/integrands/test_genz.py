"""Genz families: closed forms, reproducibility, difficulty scaling."""

import numpy as np
import pytest

from repro.integrands.genz import DEFAULT_DIFFICULTY, GenzFamily, make_genz

ALL_FAMILIES = list(GenzFamily)


def _mc(f, ndim, n=300_000, seed=0):
    rng = np.random.default_rng(seed)
    vals = f(rng.random((n, ndim)))
    return float(np.mean(vals)), float(np.std(vals) / np.sqrt(n))


@pytest.mark.parametrize("family", ALL_FAMILIES)
@pytest.mark.parametrize("ndim", [2, 3, 5])
def test_closed_form_within_mc_confidence(family, ndim):
    f = make_genz(family, ndim, seed=7)
    est, se = _mc(f, ndim)
    assert abs(est - f.reference) <= 6.0 * se + 1e-12, f"{f.name}"


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_same_seed_reproduces(family):
    a = make_genz(family, 4, seed=9)
    b = make_genz(family, 4, seed=9)
    pts = np.random.default_rng(0).random((100, 4))
    np.testing.assert_array_equal(a(pts), b(pts))
    assert a.reference == b.reference


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_different_seeds_differ(family):
    a = make_genz(family, 4, seed=1)
    b = make_genz(family, 4, seed=2)
    assert a.reference != b.reference


def test_only_oscillatory_is_sign_indefinite():
    for family in ALL_FAMILIES:
        f = make_genz(family, 3, seed=0)
        assert f.sign_definite == (family is not GenzFamily.OSCILLATORY)


def test_difficulty_scaling_applied():
    """The drawn coefficients must be rescaled to the family difficulty."""
    f_easy = make_genz(GenzFamily.GAUSSIAN, 3, seed=4, difficulty=1.0)
    f_hard = make_genz(GenzFamily.GAUSSIAN, 3, seed=4, difficulty=30.0)
    # harder instance is peakier: smaller integral of the same-shape peak
    assert f_hard.reference < f_easy.reference


def test_default_difficulty_table_covers_all_families():
    assert set(DEFAULT_DIFFICULTY) == set(GenzFamily)
    assert all(v > 0 for v in DEFAULT_DIFFICULTY.values())


def test_string_family_accepted():
    f = make_genz("gaussian", 3, seed=1)
    assert "gaussian" in f.name


def test_discontinuous_support_box():
    f = make_genz(GenzFamily.DISCONTINUOUS, 4, seed=3)
    pts = np.ones((1, 4)) * 0.999  # beyond u1/u2 with near certainty
    # not guaranteed zero (u could be ~1); just check batch evaluates
    assert f(pts).shape == (1,)
    zero_pts = np.zeros((1, 4)) + 1e-6
    assert f(zero_pts)[0] > 0.0


def test_integration_against_closed_form():
    """End-to-end: PAGANI on a random Genz instance hits the closed form."""
    from repro.core import PaganiConfig, PaganiIntegrator

    f = make_genz(GenzFamily.PRODUCT_PEAK, 3, seed=21)
    res = PaganiIntegrator(PaganiConfig(rel_tol=1e-8)).integrate(f, 3)
    assert res.converged
    assert res.estimate == pytest.approx(f.reference, rel=1e-8)
