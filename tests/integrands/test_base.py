"""Integrand wrapper types."""

import numpy as np

from repro.integrands.base import Integrand, ScalarIntegrand


def test_integrand_callable_passthrough():
    f = Integrand(fn=lambda x: x[:, 0] * 2, ndim=2, name="double-x0")
    pts = np.array([[1.0, 0.0], [2.0, 5.0]])
    np.testing.assert_array_equal(f(pts), [2.0, 4.0])


def test_with_name_preserves_everything_else():
    f = Integrand(
        fn=lambda x: x[:, 0], ndim=3, name="a", reference=1.5,
        flops_per_eval=77.0, sign_definite=False, notes="hello",
    )
    g = f.with_name("b")
    assert g.name == "b"
    assert g.reference == 1.5
    assert g.flops_per_eval == 77.0
    assert not g.sign_definite
    assert g.notes == "hello"
    assert g.fn is f.fn


def test_scalar_adapter_matches_batch():
    def scalar(x):
        return float(np.sum(x**2))

    adapter = ScalarIntegrand(scalar, flops_per_eval=10.0)
    pts = np.random.default_rng(0).random((20, 3))
    out = adapter(pts)
    expected = np.sum(pts**2, axis=1)
    np.testing.assert_allclose(out, expected, rtol=1e-15)
    assert adapter.flops_per_eval == 10.0


def test_scalar_adapter_promotes_1d_point():
    adapter = ScalarIntegrand(lambda x: float(x[0]))
    out = adapter(np.array([3.0, 1.0]))
    assert out.shape == (1,)
    assert out[0] == 3.0


def test_defaults():
    f = Integrand(fn=lambda x: x[:, 0], ndim=2)
    assert f.reference is None
    assert f.sign_definite
    assert f.flops_per_eval == 50.0
    assert f.name == ""
