"""Orbit machinery: point generation, closed-form monomial sums, solver."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cubature.orbits import (
    Orbit,
    cube_moment,
    make_orbits,
    monomials_up_to,
    solve_weights,
)
from repro.errors import DimensionError

LAM = 0.7342  # arbitrary non-special generator value


@pytest.mark.parametrize("ndim", [2, 3, 4, 5, 8])
@pytest.mark.parametrize(
    "kind,count",
    [
        ("center", lambda n: 1),
        ("star", lambda n: 2 * n),
        ("pairs", lambda n: 2 * n * (n - 1)),
        ("corners", lambda n: 2**n),
    ],
)
def test_orbit_point_counts(ndim, kind, count):
    orbit = Orbit(kind, LAM, count(ndim))
    pts = orbit.points(ndim)
    assert pts.shape == (count(ndim), ndim)


@pytest.mark.parametrize("ndim", [2, 3, 5])
@pytest.mark.parametrize("kind", ["center", "star", "pairs", "corners"])
def test_orbit_points_unique(ndim, kind):
    counts = {"center": 1, "star": 2 * ndim, "pairs": 2 * ndim * (ndim - 1), "corners": 2**ndim}
    pts = Orbit(kind, LAM, counts[kind]).points(ndim)
    assert len({tuple(np.round(p, 12)) for p in pts}) == pts.shape[0]


@pytest.mark.parametrize("kind", ["star", "pairs", "corners"])
def test_orbit_sign_symmetric(kind):
    """Every fully-symmetric orbit is closed under sign flips."""
    ndim = 3
    counts = {"star": 2 * ndim, "pairs": 2 * ndim * (ndim - 1), "corners": 2**ndim}
    pts = Orbit(kind, LAM, counts[kind]).points(ndim)
    pset = {tuple(np.round(p, 12)) for p in pts}
    for p in pts:
        assert tuple(np.round(-p, 12)) in pset


@pytest.mark.parametrize("ndim", [2, 3, 4, 6])
@pytest.mark.parametrize("kind", ["center", "star", "pairs", "corners"])
@pytest.mark.parametrize(
    "pattern", [(), (1,), (2,), (1, 1), (3,), (2, 1), (1, 1, 1)]
)
def test_monomial_sum_matches_bruteforce(ndim, kind, pattern):
    """Closed-form orbit monomial sums agree with explicit point sums."""
    if len(pattern) > ndim:
        pytest.skip("pattern wider than dimension")
    counts = {
        "center": 1,
        "star": 2 * ndim,
        "pairs": 2 * ndim * (ndim - 1),
        "corners": 2**ndim,
    }
    orbit = Orbit(kind, LAM, counts[kind])
    pts = orbit.points(ndim)
    vals = np.ones(pts.shape[0])
    for axis, a in enumerate(pattern):
        vals *= pts[:, axis] ** (2 * a)
    assert orbit.monomial_sum(pattern, ndim) == pytest.approx(float(vals.sum()), rel=1e-12)


def test_cube_moment_values():
    assert cube_moment(()) == 1.0
    assert cube_moment((1,)) == pytest.approx(1.0 / 3.0)
    assert cube_moment((2,)) == pytest.approx(1.0 / 5.0)
    assert cube_moment((1, 1)) == pytest.approx(1.0 / 9.0)
    assert cube_moment((3, 1, 2)) == pytest.approx(1.0 / (7 * 3 * 5))


def test_monomials_up_to_filters_by_dimension():
    assert (1, 1, 1) in monomials_up_to(6, 3)
    assert (1, 1, 1) not in monomials_up_to(6, 2)
    assert monomials_up_to(0, 5) == [()]


@given(st.integers(min_value=2, max_value=10))
def test_make_orbits_structure(ndim):
    orbits = make_orbits(ndim, 0.3, 0.9, 0.9, 0.6)
    assert [o.kind for o in orbits] == ["center", "star", "star", "pairs", "corners"]
    assert sum(o.npoints for o in orbits) == 1 + 4 * ndim + 2 * ndim * (ndim - 1) + 2**ndim


@pytest.mark.parametrize("bad", [0, 1, 21, 50])
def test_make_orbits_rejects_bad_dims(bad):
    with pytest.raises(DimensionError):
        make_orbits(bad, 0.3, 0.9, 0.9, 0.6)


def test_solve_weights_degree1_is_volume_match():
    orbits = make_orbits(3, 0.3, 0.9, 0.9, 0.6)
    w = solve_weights(orbits, 3, degree=1, use=[0])
    # only the center participates: its weight must equal the normalised
    # volume (1.0)
    assert w[0] == pytest.approx(1.0)
    assert np.all(w[1:] == 0.0)


def test_solve_weights_inconsistent_system_raises():
    """Arbitrary generators cannot satisfy the degree-7 conditions."""
    orbits = make_orbits(3, 0.31, 0.77, 0.52, 0.61)
    with pytest.raises(ValueError, match="inconsistent"):
        solve_weights(orbits, 3, degree=7)


@given(
    ndim=st.integers(min_value=2, max_value=8),
    lam=st.floats(min_value=0.2, max_value=0.95),
)
def test_degree3_rule_from_any_star(ndim, lam):
    """A center+star subset always admits a degree-3 rule; verify it
    integrates x^2 exactly."""
    orbits = make_orbits(ndim, lam, 0.9486832980505138, 0.9486832980505138, 0.6882472016116853)
    w = solve_weights(orbits, ndim, degree=3, use=[0, 1])
    pts = np.concatenate([orbits[0].points(ndim), orbits[1].points(ndim)])
    wp = np.concatenate(
        [np.full(orbits[0].npoints, w[0]), np.full(orbits[1].npoints, w[1])]
    )
    assert float(wp.sum()) == pytest.approx(1.0, rel=1e-10)
    assert float(wp @ pts[:, 0] ** 2) == pytest.approx(1.0 / 3.0, rel=1e-10)
