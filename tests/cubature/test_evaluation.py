"""Batch region evaluation: estimates, errors, axis selection, chunking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule


def _unit_regions(ndim, m=1):
    centers = np.full((m, ndim), 0.5)
    halfw = np.full((m, ndim), 0.5)
    return centers, halfw


def test_constant_integrand_exact():
    rule = get_rule(3)
    c, h = _unit_regions(3)
    res = evaluate_regions(rule, c, h, lambda x: np.full(x.shape[0], 2.5))
    assert res.estimate[0] == pytest.approx(2.5, rel=1e-12)
    assert res.error[0] == pytest.approx(0.0, abs=1e-12)
    assert res.neval == rule.npoints


def test_polynomial_on_shifted_scaled_region():
    """Exactness must survive affine region placement (not just unit cube)."""
    rule = get_rule(2)
    centers = np.array([[3.0, -1.0]])
    halfw = np.array([[0.25, 2.0]])

    def f(x):
        return x[:, 0] ** 2 * x[:, 1] ** 4

    res = evaluate_regions(rule, centers, halfw, f)

    def exact_1d(lo, hi, p):
        return (hi ** (p + 1) - lo ** (p + 1)) / (p + 1)

    exact = exact_1d(2.75, 3.25, 2) * exact_1d(-3.0, 1.0, 4)
    assert res.estimate[0] == pytest.approx(exact, rel=1e-12)


@settings(max_examples=15)
@given(
    seed=st.integers(0, 9999),
    ndim=st.integers(2, 5),
    m=st.integers(1, 7),
)
def test_volume_scaling_property(seed, ndim, m):
    """∫ c dV over any region equals c · volume (per-region, batched)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(m, ndim))
    halfw = rng.uniform(0.1, 2.0, size=(m, ndim))
    res = evaluate_regions(rule := get_rule(ndim), centers, halfw,
                           lambda x: np.ones(x.shape[0]))
    vols = np.prod(2 * halfw, axis=1)
    np.testing.assert_allclose(res.estimate, vols, rtol=1e-12)
    np.testing.assert_allclose(res.error, 0.0, atol=1e-10 * float(vols.max()))


def test_batch_matches_individual_evaluation(rng):
    """Evaluating m regions at once == evaluating them one by one."""
    ndim = 4
    rule = get_rule(ndim)
    m = 9
    centers = rng.uniform(0.2, 0.8, size=(m, ndim))
    halfw = rng.uniform(0.05, 0.2, size=(m, ndim))

    def f(x):
        return np.exp(-np.sum(x**2, axis=1)) + np.sin(x[:, 0])

    batch = evaluate_regions(rule, centers, halfw, f)
    for i in range(m):
        single = evaluate_regions(rule, centers[i : i + 1], halfw[i : i + 1], f)
        assert single.estimate[0] == pytest.approx(batch.estimate[i], rel=1e-12)
        # error is a difference of near-equal weighted sums whose BLAS
        # reduction order varies with batch shape: compare on the estimate's
        # absolute scale, not the error's
        assert single.error[0] == pytest.approx(
            batch.error[i], abs=1e-10 * abs(batch.estimate[i]) + 1e-300
        )
        assert single.split_axis[0] == batch.split_axis[i]


def test_chunking_does_not_change_results(rng):
    ndim = 3
    rule = get_rule(ndim)
    m = 64
    centers = rng.uniform(0.1, 0.9, size=(m, ndim))
    halfw = rng.uniform(0.01, 0.1, size=(m, ndim))

    def f(x):
        return np.cos(x @ np.arange(1.0, ndim + 1.0))

    full = evaluate_regions(rule, centers, halfw, f)
    tiny = evaluate_regions(rule, centers, halfw, f, chunk_budget=rule.npoints * ndim * 3)
    # chunk size changes BLAS blocking, so allow reduction-order noise
    np.testing.assert_allclose(full.estimate, tiny.estimate, rtol=1e-12)
    scale = float(np.abs(full.estimate).max())
    np.testing.assert_allclose(full.error, tiny.error, atol=1e-10 * scale)
    np.testing.assert_array_equal(full.split_axis, tiny.split_axis)


def test_split_axis_finds_the_spiky_dimension():
    """A peak varying only along axis 2 must select axis 2."""
    ndim = 4
    rule = get_rule(ndim)
    c, h = _unit_regions(ndim)

    def f(x):
        return np.exp(-200.0 * (x[:, 2] - 0.5) ** 2)

    res = evaluate_regions(rule, c, h, f)
    assert res.split_axis[0] == 2


def test_split_axis_scales_with_region_shape():
    """With equal integrand curvature, the wider axis has the larger scaled
    fourth difference (offsets are proportional to the halfwidth)."""
    ndim = 2
    rule = get_rule(ndim)
    centers = np.array([[0.5, 0.5]])
    halfw = np.array([[0.5, 0.05]])  # axis 0 much wider

    def f(x):
        return np.exp(-5.0 * ((x[:, 0] - 0.5) ** 2 + (x[:, 1] - 0.5) ** 2))

    res = evaluate_regions(rule, centers, halfw, f)
    assert res.split_axis[0] == 0


def test_four_difference_mode_is_more_conservative(rng):
    ndim = 3
    rule = get_rule(ndim)
    centers = rng.uniform(0.3, 0.7, size=(5, ndim))
    halfw = np.full((5, ndim), 0.25)

    def f(x):
        return np.exp(np.sum(x, axis=1))

    two = evaluate_regions(rule, centers, halfw, f, error_model="two_rule")
    four = evaluate_regions(rule, centers, halfw, f, error_model="four_difference")
    np.testing.assert_array_equal(two.estimate, four.estimate)
    assert np.all(four.error >= two.error - 1e-300)


def test_unknown_error_model_rejected():
    rule = get_rule(2)
    c, h = _unit_regions(2)
    with pytest.raises(ValueError, match="error model"):
        evaluate_regions(rule, c, h, lambda x: np.ones(x.shape[0]),
                         error_model="bogus")


def test_shape_mismatch_rejected():
    rule = get_rule(3)
    with pytest.raises(ValueError):
        evaluate_regions(rule, np.zeros((2, 3)), np.ones((3, 3)),
                         lambda x: np.ones(x.shape[0]))
    with pytest.raises(ValueError):
        evaluate_regions(rule, np.zeros((2, 4)), np.ones((2, 4)),
                         lambda x: np.ones(x.shape[0]))


def test_output_buffers_are_used():
    rule = get_rule(2)
    c, h = _unit_regions(2, m=3)
    est = np.empty(3)
    err = np.empty(3)
    ax = np.empty(3, dtype=np.int64)
    res = evaluate_regions(rule, c, h, lambda x: np.ones(x.shape[0]),
                           out_estimate=est, out_error=err, out_axis=ax)
    assert res.estimate is est
    assert res.error is err
    assert res.split_axis is ax
