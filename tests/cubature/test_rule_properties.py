"""Deeper property-based tests on the cubature layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule


@settings(max_examples=15)
@given(
    ndim=st.integers(2, 5),
    seed=st.integers(0, 10000),
)
def test_estimate_linear_in_integrand(ndim, seed):
    """Rule estimates are linear functionals: est(a f + b g) =
    a est(f) + b est(g), per region, exactly (up to fp roundoff)."""
    rng = np.random.default_rng(seed)
    rule = get_rule(ndim)
    centers = rng.uniform(0.2, 0.8, size=(4, ndim))
    halfw = rng.uniform(0.05, 0.2, size=(4, ndim))
    a, b = rng.normal(size=2)

    f = lambda x: np.sin(np.sum(x, axis=1))
    g = lambda x: np.exp(-np.sum(x * x, axis=1))
    fg = lambda x: a * f(x) + b * g(x)

    rf = evaluate_regions(rule, centers, halfw, f)
    rg = evaluate_regions(rule, centers, halfw, g)
    rfg = evaluate_regions(rule, centers, halfw, fg)
    np.testing.assert_allclose(
        rfg.estimate, a * rf.estimate + b * rg.estimate, rtol=1e-10, atol=1e-12
    )


@settings(max_examples=15)
@given(ndim=st.integers(2, 4), seed=st.integers(0, 10000))
def test_children_sum_approaches_parent(ndim, seed):
    """Splitting a region and summing child estimates must agree with the
    parent estimate within the combined error estimates (smooth f)."""
    rng = np.random.default_rng(seed)
    rule = get_rule(ndim)
    center = rng.uniform(0.3, 0.7, size=(1, ndim))
    halfw = np.full((1, ndim), 0.25)

    f = lambda x: np.exp(np.sum(x, axis=1) * 0.7)

    parent = evaluate_regions(rule, center, halfw, f)
    axis = int(parent.split_axis[0])
    ch = halfw.copy()
    ch[0, axis] *= 0.5
    cc = np.vstack([center, center])
    cc[0, axis] -= ch[0, axis]
    cc[1, axis] += ch[0, axis]
    hh = np.vstack([ch, ch])
    children = evaluate_regions(rule, cc, hh, f)
    gap = abs(parent.estimate[0] - children.estimate.sum())
    allowed = parent.error[0] + children.error.sum() + 1e-13 * abs(parent.estimate[0])
    assert gap <= max(allowed, 1e-14)


def _split_all(centers, halfw, axes):
    m, n = centers.shape
    ch = halfw.copy()
    rows = np.arange(m)
    ch[rows, axes] *= 0.5
    cc = np.empty((2 * m, n))
    hh = np.empty((2 * m, n))
    off = np.zeros((m, n))
    off[rows, axes] = ch[rows, axes]
    cc[0::2] = centers - off
    cc[1::2] = centers + off
    hh[0::2] = ch
    hh[1::2] = ch
    return cc, hh


@settings(max_examples=10)
@given(ndim=st.integers(2, 4), seed=st.integers(0, 10000))
def test_error_contracts_over_repeated_refinement(ndim, seed):
    """A single split may transiently raise the summed error estimate (the
    cascade model can flip children into the crude branch), but three
    levels of breadth-first refinement must contract it decisively — the
    convergence property every adaptive method rests on."""
    rng = np.random.default_rng(seed)
    rule = get_rule(ndim)
    centers = rng.uniform(0.35, 0.65, size=(1, ndim))
    halfw = np.full((1, ndim), 0.3)

    f = lambda x: 1.0 / (1.0 + np.sum(x, axis=1)) ** 2

    parent = evaluate_regions(rule, centers, halfw, f)
    total0 = float(parent.error.sum())
    res = parent
    for _ in range(3):
        centers, halfw = _split_all(centers, halfw, res.split_axis)
        res = evaluate_regions(rule, centers, halfw, f)
    assert float(res.error.sum()) < 0.5 * total0 + 1e-16


def test_reflection_symmetry_of_estimates():
    """Mirroring the integrand across the region centre leaves the estimate
    unchanged (fully-symmetric point set)."""
    rule = get_rule(3)
    center = np.array([[0.5, 0.5, 0.5]])
    halfw = np.array([[0.3, 0.3, 0.3]])

    f = lambda x: np.exp(x[:, 0] - 0.5) + (x[:, 1] - 0.5) ** 3
    g = lambda x: np.exp(-(x[:, 0] - 0.5)) - (x[:, 1] - 0.5) ** 3

    rf = evaluate_regions(rule, center, halfw, f)
    rg = evaluate_regions(rule, center, halfw, g)
    assert rf.estimate[0] == pytest.approx(rg.estimate[0], rel=1e-12)
    assert rf.error[0] == pytest.approx(rg.error[0], rel=1e-9, abs=1e-14)


def test_integrand_called_with_expected_point_layout():
    """The integrand receives an (N, ndim) float64 C-contiguous array."""
    rule = get_rule(3)
    seen = {}

    def probe(x):
        seen["shape"] = x.shape
        seen["dtype"] = x.dtype
        seen["contig"] = x.flags["C_CONTIGUOUS"]
        return np.ones(x.shape[0])

    evaluate_regions(rule, np.full((2, 3), 0.5), np.full((2, 3), 0.1), probe)
    assert seen["shape"] == (2 * rule.npoints, 3)
    assert seen["dtype"] == np.float64
    assert seen["contig"]
