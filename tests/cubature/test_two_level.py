"""Two-level (parent/sibling) error refinement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubature.two_level import SHRINK_FLOOR, two_level_errors


def test_agreeing_parent_shrinks_errors():
    """Parent equals children sum exactly: raw errors shrink to the floor."""
    v = np.array([1.0, 1.0])
    e = np.array([0.2, 0.2])
    parents = np.array([2.0])
    out = two_level_errors(v, e, parents)
    np.testing.assert_allclose(out, SHRINK_FLOOR * e)


def test_disagreeing_parent_inflates_errors():
    """Large parent/children gap: errors grow to cover the discrepancy."""
    v = np.array([1.0, 1.0])
    e = np.array([0.01, 0.03])
    parents = np.array([3.0])  # delta = 1.0 >> e_a + e_b
    out = two_level_errors(v, e, parents)
    assert out[0] == pytest.approx(1.0 * 0.25)  # delta * share_a
    assert out[1] == pytest.approx(1.0 * 0.75)
    assert np.all(out >= e)


def test_partial_agreement_interpolates():
    v = np.array([1.0, 1.0])
    e = np.array([0.5, 0.5])
    parents = np.array([2.5])  # delta = 0.5 = half of e_a+e_b
    out = two_level_errors(v, e, parents)
    np.testing.assert_allclose(out, 0.5 * 0.5 * np.ones(2))


def test_zero_error_children_agreeing_parent_stay_zero():
    v = np.array([1.0, 1.0])
    e = np.array([0.0, 0.0])
    parents = np.array([2.0])
    out = two_level_errors(v, e, parents)
    np.testing.assert_array_equal(out, 0.0)


def test_zero_error_children_disagreeing_parent_inherit_half():
    v = np.array([1.0, 1.0])
    e = np.array([0.0, 0.0])
    parents = np.array([2.8])
    out = two_level_errors(v, e, parents)
    np.testing.assert_allclose(out, 0.4)


def test_multiple_pairs_are_independent():
    v = np.array([1.0, 1.0, 5.0, 5.0])
    e = np.array([0.1, 0.1, 0.0, 0.0])
    parents = np.array([2.0, 11.0])
    out = two_level_errors(v, e, parents)
    np.testing.assert_allclose(out[:2], SHRINK_FLOOR * 0.1)
    np.testing.assert_allclose(out[2:], 0.5)


def test_odd_children_rejected():
    with pytest.raises(ValueError, match="even"):
        two_level_errors(np.ones(3), np.ones(3), np.ones(1))


def test_parent_count_mismatch_rejected():
    with pytest.raises(ValueError, match="parent"):
        two_level_errors(np.ones(4), np.ones(4), np.ones(3))


@settings(max_examples=50)
@given(
    seed=st.integers(0, 100000),
    k=st.integers(1, 30),
)
def test_refined_errors_always_nonnegative_and_bounded(seed, k):
    """Properties: output >= 0 always; in the agreement regime output never
    exceeds the raw error; in disagreement it never exceeds max(raw, delta)."""
    rng = np.random.default_rng(seed)
    v = rng.normal(size=2 * k)
    e = np.abs(rng.normal(size=2 * k)) * rng.choice([0.0, 1.0], size=2 * k)
    parents = rng.normal(size=k)
    out = two_level_errors(v, e, parents)
    assert np.all(out >= 0.0)
    delta = np.abs(parents - (v[0::2] + v[1::2]))
    esum = e[0::2] + e[1::2]
    for i in range(k):
        cap = max(e[2 * i], e[2 * i + 1], delta[i])
        assert out[2 * i] <= cap + 1e-12
        assert out[2 * i + 1] <= cap + 1e-12
        if delta[i] <= esum[i]:
            assert out[2 * i] <= e[2 * i] + 1e-12
            assert out[2 * i + 1] <= e[2 * i + 1] + 1e-12
