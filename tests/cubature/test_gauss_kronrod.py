"""Tensor Gauss–Kronrod: construction correctness and cost growth."""

import numpy as np
import pytest

from repro.cubature.gauss_kronrod import (
    evaluate_regions_gk,
    gauss_legendre,
    get_tensor_rule,
    kronrod_15,
    point_count,
    stieltjes_polynomial_roots,
)
from repro.errors import DimensionError

#: published K15 nodes (QUADPACK), positive half, 10 decimals
QUADPACK_K15_POSITIVE = [
    0.0000000000,
    0.2077849550,
    0.4058451514,
    0.5860872355,
    0.7415311856,
    0.8648644234,
    0.9491079123,
    0.9914553711,
]


def test_gauss_legendre_basics():
    x, w = gauss_legendre(7)
    assert w.sum() == pytest.approx(2.0)
    # degree-13 exactness
    assert float(w @ x**12) == pytest.approx(2.0 / 13.0, rel=1e-13)
    assert float(w @ x**13) == pytest.approx(0.0, abs=1e-14)


def test_stieltjes_roots_interlace_gauss_nodes():
    gx, _ = gauss_legendre(7)
    sx = stieltjes_polynomial_roots()
    merged = np.sort(np.concatenate([gx, sx]))
    # strict interlacing: alternate origin of consecutive nodes
    origin = [0 if np.min(np.abs(x - gx)) < 1e-12 else 1 for x in merged]
    assert all(a != b for a, b in zip(origin, origin[1:]))


def test_kronrod_nodes_match_quadpack_table():
    nodes, _, _ = kronrod_15()
    positive = np.sort(nodes[nodes >= -1e-15])
    np.testing.assert_allclose(
        positive, QUADPACK_K15_POSITIVE, atol=5e-10
    )


def test_kronrod_degree_23_exactness():
    nodes, kw, _ = kronrod_15()
    for k in range(0, 24):
        exact = 2.0 / (k + 1) if k % 2 == 0 else 0.0
        assert float(kw @ nodes**k) == pytest.approx(exact, abs=1e-13), k
    # and NOT exact at 24 (so the construction is the genuine K15)
    assert abs(float(kw @ nodes**24) - 2.0 / 25.0) > 1e-10


def test_embedded_gauss_weights_recover_g7():
    nodes, _, gw = kronrod_15()
    x7, w7 = gauss_legendre(7)
    nz = gw > 0
    np.testing.assert_allclose(np.sort(nodes[nz]), np.sort(x7), atol=1e-12)
    assert gw.sum() == pytest.approx(2.0)


@pytest.mark.parametrize("ndim", [1, 2, 3, 4])
def test_tensor_point_count(ndim):
    rule = get_tensor_rule(ndim)
    assert rule.npoints == point_count(ndim) == 15**ndim


def test_tensor_rule_rejects_high_dims():
    with pytest.raises(DimensionError):
        get_tensor_rule(7)


def test_tensor_exactness_on_separable_polynomial():
    rule = get_tensor_rule(2)
    c = np.array([[0.0, 0.0]])
    h = np.array([[1.0, 1.0]])

    def f(x):
        return x[:, 0] ** 10 * x[:, 1] ** 8

    res = evaluate_regions_gk(rule, c, h, f)
    exact = (2.0 / 11.0) * (2.0 / 9.0)
    assert res.estimate[0] == pytest.approx(exact, rel=1e-13)
    assert res.error[0] < 1e-13


def test_tensor_batch_evaluation_on_boxes():
    rule = get_tensor_rule(3)
    rng = np.random.default_rng(0)
    c = rng.uniform(0.2, 0.8, size=(5, 3))
    h = rng.uniform(0.05, 0.2, size=(5, 3))

    def f(x):
        return np.exp(-np.sum(x, axis=1))

    res = evaluate_regions_gk(rule, c, h, f)
    for i in range(5):
        lo = c[i] - h[i]
        hi = c[i] + h[i]
        exact = np.prod(np.exp(-lo) - np.exp(-hi))
        assert res.estimate[i] == pytest.approx(exact, rel=1e-12)
        assert abs(res.estimate[i] - exact) <= max(res.error[i], 1e-13)


def test_cost_growth_beats_genz_malik_claim():
    """§2.1: GM needs 2^n + Θ(n³) evaluations, tensor GK needs 15^n.
    Verify the crossover the paper's argument rests on."""
    from repro.cubature.rules import point_count as gm_count

    for n in (2, 3, 4, 5, 6):
        assert point_count(n) > gm_count(n)
    assert point_count(6) / gm_count(6) > 10_000
