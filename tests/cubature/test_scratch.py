"""SweepScratch: bit-identity of the buffered chunk path and the O(1)
steady-state allocation contract of the PAGANI loop.

The scratch path rewrites every chunk temporary through ``out=`` ufunc
forms; its entire correctness claim is **bit identity** with the
allocating expressions (the golden and conformance suites depend on it).
The allocation-regression test pins the tentpole's point: once a run
reaches steady state, an iteration performs no large array allocations —
the store's SoA buffers, the run's scratch and the rule tensors are all
reused in place.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.cubature.evaluation import SweepScratch, compute_chunk
from repro.cubature.rules import RULE_CACHE, get_rule
from repro.integrands.genz import GenzFamily, make_genz

MODELS = ["two_rule", "four_difference", "cascade"]


@pytest.mark.parametrize("ndim", [2, 3, 5])
@pytest.mark.parametrize("model", MODELS)
def test_scratch_path_is_bit_identical(ndim, model, rng):
    bk = get_backend("numpy")
    rule = get_rule(ndim)
    dr = RULE_CACHE.device_rule(rule, bk)
    f = make_genz(GenzFamily.PRODUCT_PEAK, ndim, seed=5)
    scratch = SweepScratch()
    for m in (41, 17, 41):  # shrink then regrow: buffers are re-sliced
        c = rng.random((m, ndim)) * 0.8 + 0.1
        h = rng.random((m, ndim)) * 0.1 + 0.01
        ref = compute_chunk(bk, dr, f, c, h, model)
        got = compute_chunk(bk, dr, f, c, h, model, scratch=scratch)
        for r, g, name in zip(ref, got, ("estimate", "error", "axis")):
            assert np.array_equal(r, g), f"{name} differs with scratch"


def test_scratch_buffers_are_reused_across_calls(rng):
    bk = get_backend("numpy")
    ndim = 3
    dr = RULE_CACHE.device_rule(get_rule(ndim), bk)
    f = make_genz(GenzFamily.GAUSSIAN, ndim, seed=2)
    scratch = SweepScratch()
    c = rng.random((20, ndim))
    h = np.full((20, ndim), 0.05)
    compute_chunk(bk, dr, f, c, h, "cascade", scratch=scratch)
    first = {name: id(buf) for name, buf in scratch._bufs.items()}
    assert "pts" in first and "i7" in first
    # Same-size and smaller chunks must not allocate fresh buffers.
    compute_chunk(bk, dr, f, c, h, "cascade", scratch=scratch)
    compute_chunk(bk, dr, f, c[:7], h[:7], "cascade", scratch=scratch)
    assert {name: id(buf) for name, buf in scratch._bufs.items()} == first


def test_steady_state_iterations_allocate_o1_new_arrays(monkeypatch):
    """Once the region population passes its peak, a PAGANI step on the
    numpy backend performs no region-scale ``np.empty`` allocations: chunk
    temporaries come from the run's scratch, region columns from the
    store's reserved SoA ping-pong buffers, and the sweep's outputs are
    written straight into the store's columns.

    The workload (4D product peak at rel_tol 1e-9) grows for three
    iterations, then relerr filtering shrinks the population below the
    reservation — every later iteration must run allocation-free.
    """
    f = make_genz(GenzFamily.PRODUCT_PEAK, 4, seed=9)
    cfg = PaganiConfig(rel_tol=1e-9, backend="numpy")
    run = PaganiIntegrator(cfg).start_run(f, 4)

    allocated = []
    real_empty = np.empty

    def counting_empty(shape, *args, **kwargs):
        allocated.append(shape)
        return real_empty(shape, *args, **kwargs)

    def region_scale(threshold):
        return [
            s for s in allocated
            if np.prod(np.atleast_1d(s).astype(float)) >= threshold
        ]

    monkeypatch.setattr(np, "empty", counting_empty)
    big_per_step = []
    steps = 0
    try:
        while not run.finished and steps < 30:
            n_regions = max(run.store.size, 1)
            allocated = []
            run.step()
            steps += 1
            big_per_step.append(len(region_scale(n_regions)))
    finally:
        monkeypatch.undo()
    assert run.finished and steps >= 5, (
        f"workload drifted ({steps} steps); pick one with a growth phase "
        "and a steady tail"
    )
    # Growth phase allocates (capacity doubling, scratch sizing) ...
    assert big_per_step[0] > 0
    # ... but the tail is allocation-free: at least the last two
    # iterations reuse every region-scale array in place.
    tail = big_per_step[-2:]
    assert tail == [0] * len(tail), (
        f"steady-state steps still allocate: per-step counts {big_per_step}"
    )
