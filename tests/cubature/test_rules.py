"""Genz–Malik rule construction: weights, exactness, companion rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubature.rules import (
    get_rule,
    point_count,
    published_degree5_orbit_weights,
    published_degree7_orbit_weights,
)


@pytest.mark.parametrize("ndim", [2, 3, 4, 5, 6, 7, 8, 10])
def test_point_count(ndim):
    rule = get_rule(ndim)
    assert rule.npoints == point_count(ndim)
    assert rule.points.shape == (rule.npoints, ndim)


@pytest.mark.parametrize("ndim", [2, 3, 4, 5, 6, 7, 8, 9, 10, 12])
def test_solved_weights_match_published_closed_forms(ndim):
    """The moment solver must land exactly on the literature constants."""
    rule = get_rule(ndim)
    np.testing.assert_allclose(
        rule.orbit_weights["w7"], published_degree7_orbit_weights(ndim),
        rtol=1e-10, atol=1e-14,
    )
    np.testing.assert_allclose(
        rule.orbit_weights["w5"], published_degree5_orbit_weights(ndim),
        rtol=1e-10, atol=1e-14,
    )


@pytest.mark.parametrize("ndim", [2, 3, 5, 8])
def test_weights_integrate_constant(ndim):
    rule = get_rule(ndim)
    for w in (rule.w7, rule.w5, rule.w3a, rule.w3b, rule.w1):
        assert float(w.sum()) == pytest.approx(1.0, rel=1e-10)


def _random_even_poly(rng, ndim, degree):
    """Random polynomial of total degree <= degree as (coeffs, exponents)."""
    n_terms = 6
    exps = []
    for _ in range(n_terms):
        remaining = degree
        e = np.zeros(ndim, dtype=int)
        for d in rng.permutation(ndim):
            k = rng.integers(0, remaining + 1)
            e[d] = k
            remaining -= k
            if remaining == 0:
                break
        exps.append(e)
    coeffs = rng.normal(size=n_terms)
    return coeffs, np.array(exps)


def _poly_cube_integral(coeffs, exps):
    """Exact integral over [-1,1]^n normalised by volume."""
    total = 0.0
    for c, e in zip(coeffs, exps):
        term = c
        for k in e:
            term *= 0.0 if k % 2 == 1 else 1.0 / (k + 1)
        total += term
    return total


@settings(max_examples=20)
@given(
    ndim=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_degree7_exactness_on_random_polynomials(ndim, seed):
    """Property: the main rule integrates any degree-7 polynomial exactly."""
    rng = np.random.default_rng(seed)
    rule = get_rule(ndim)
    coeffs, exps = _random_even_poly(rng, ndim, 7)
    vals = np.zeros(rule.npoints)
    for c, e in zip(coeffs, exps):
        vals += c * np.prod(rule.points**e[None, :], axis=1)
    exact = _poly_cube_integral(coeffs, exps)
    scale = max(1.0, float(np.abs(coeffs).sum()))
    assert float(vals @ rule.w7) == pytest.approx(exact, abs=1e-10 * scale)


@settings(max_examples=20)
@given(
    ndim=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_degree5_exactness(ndim, seed):
    rng = np.random.default_rng(seed)
    rule = get_rule(ndim)
    coeffs, exps = _random_even_poly(rng, ndim, 5)
    vals = np.zeros(rule.npoints)
    for c, e in zip(coeffs, exps):
        vals += c * np.prod(rule.points**e[None, :], axis=1)
    exact = _poly_cube_integral(coeffs, exps)
    scale = max(1.0, float(np.abs(coeffs).sum()))
    assert float(vals @ rule.w5) == pytest.approx(exact, abs=1e-10 * scale)


@pytest.mark.parametrize("which,degree", [("w3a", 3), ("w3b", 3), ("w1", 1)])
def test_companion_rules_exact_at_their_degree(which, degree):
    rng = np.random.default_rng(5)
    for ndim in (2, 4, 7):
        rule = get_rule(ndim)
        w = getattr(rule, which)
        coeffs, exps = _random_even_poly(rng, ndim, degree)
        vals = np.zeros(rule.npoints)
        for c, e in zip(coeffs, exps):
            vals += c * np.prod(rule.points**e[None, :], axis=1)
        exact = _poly_cube_integral(coeffs, exps)
        scale = max(1.0, float(np.abs(coeffs).sum()))
        assert float(vals @ w) == pytest.approx(exact, abs=1e-10 * scale)


def test_degree5_not_exact_at_degree7():
    """The error signal |I7 − I5| must be nonzero for degree-6 content."""
    rule = get_rule(3)
    vals = rule.points[:, 0] ** 6
    i7 = float(vals @ rule.w7)
    i5 = float(vals @ rule.w5)
    assert i7 == pytest.approx(1.0 / 7.0, rel=1e-10)
    assert abs(i7 - i5) > 1e-4


def test_star_indices_point_where_expected():
    rule = get_rule(4)
    for axis in range(4):
        p = rule.points[rule.idx2_plus[axis]]
        m = rule.points[rule.idx2_minus[axis]]
        assert p[axis] > 0 and m[axis] < 0
        assert np.all(np.delete(p, axis) == 0.0)
        np.testing.assert_allclose(p, -m)
        p3 = rule.points[rule.idx3_plus[axis]]
        assert abs(p3[axis]) > abs(p[axis])  # λ3 > λ2


def test_rule_caching_is_identity():
    assert get_rule(5) is get_rule(5)


def test_flops_per_region_scales_with_integrand_cost():
    rule = get_rule(4)
    assert rule.flops_per_region(100.0) > rule.flops_per_region(10.0)
    assert rule.flops_per_region(10.0) > rule.npoints * 10.0


@pytest.mark.parametrize("bad", [0, 1, 25])
def test_rule_rejects_unsupported_dimensions(bad):
    from repro.errors import DimensionError

    with pytest.raises(DimensionError):
        get_rule(bad)
