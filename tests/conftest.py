"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep hypothesis deadlines generous: rule construction and batch evaluation
# do real numerical work per example.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20211115)


@pytest.fixture
def small_device():
    """A tiny device so memory-exhaustion paths trigger quickly."""
    from repro.gpu.device import DeviceSpec, VirtualDevice

    return VirtualDevice(DeviceSpec.scaled(mem_mb=2, name="tiny"))


@pytest.fixture
def default_device():
    from repro.gpu.device import VirtualDevice

    return VirtualDevice()


def gaussian_nd(ndim: int, c: float = 50.0):
    """Separable Gaussian with erf closed form, used across tests."""
    from math import erf, pi, sqrt

    from repro.integrands.base import Integrand

    factor = sqrt(pi / c) * erf(sqrt(c) / 2.0)

    def fn(x: np.ndarray) -> np.ndarray:
        return np.exp(-c * np.sum((x - 0.5) ** 2, axis=1))

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D gaussian(c={c})",
        reference=factor**ndim,
        flops_per_eval=4.0 * ndim + 25.0,
        sign_definite=True,
    )


@pytest.fixture
def gaussian3():
    return gaussian_nd(3)


@pytest.fixture
def gaussian5():
    return gaussian_nd(5)
