"""tools/check_bench_regression.py: the CI benchmark gate."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

import check_bench_regression as gate  # noqa: E402


def payload(rate_s_per_meval=0.1, converged=True, matches=True, backends=("numpy",)):
    """A minimal BENCH_backends-shaped payload with a known eval rate."""
    neval = 2_000_000
    return {
        "schema": 1,
        "backends": {
            spec: [
                {
                    "integrand": "3D f4",
                    "digits": 3,
                    "converged": converged,
                    "matches_numpy": matches,
                    "wall_seconds": rate_s_per_meval * neval / 1e6,
                    "neval": neval,
                }
            ]
            for spec in backends
        },
    }


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def run(tmp_path, baseline, current, extra=()):
    return gate.main(
        [
            "--baseline", write(tmp_path, "baseline.json", baseline),
            "--current", write(tmp_path, "current.json", current),
            *extra,
        ]
    )


def test_ok_within_tolerance(tmp_path, capsys):
    assert run(tmp_path, payload(0.1), payload(0.25)) == 0
    assert "benchmark gate OK" in capsys.readouterr().out


def test_regression_beyond_tolerance(tmp_path, capsys):
    assert run(tmp_path, payload(0.1), payload(0.5)) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_tolerance_flag(tmp_path):
    assert run(tmp_path, payload(0.1), payload(0.5), ["--tolerance", "10"]) == 0


def test_smoke_dnf_is_fatal_even_when_fast(tmp_path, capsys):
    assert run(tmp_path, payload(0.1), payload(0.05, converged=False)) == 1
    assert "did not converge" in capsys.readouterr().err


def test_numerics_mismatch_is_fatal(tmp_path, capsys):
    assert run(tmp_path, payload(0.1), payload(0.1, matches=False)) == 1
    assert "disagrees with the numpy reference" in capsys.readouterr().err


def test_ungated_backend_reported_not_gated(tmp_path, capsys):
    baseline = payload(0.1, backends=("numpy", "threaded"))
    current = payload(0.1, backends=("numpy", "threaded"))
    current["backends"]["threaded"][0]["wall_seconds"] *= 50
    assert run(tmp_path, baseline, current) == 0
    assert "not gated" in capsys.readouterr().out


def test_backend_without_baseline_skipped(tmp_path, capsys):
    assert run(
        tmp_path,
        payload(0.1, backends=("numpy",)),
        payload(0.1, backends=("numpy", "exotic")),
    ) == 0
    assert "no baseline" in capsys.readouterr().out


def test_gated_backend_missing_from_current_fails(tmp_path, capsys):
    assert run(
        tmp_path,
        payload(0.1, backends=("numpy",)),
        payload(0.1, backends=("threaded",)),
    ) == 1
    assert "none of the gated backends" in capsys.readouterr().err


def test_structural_errors_exit_2(tmp_path):
    good = write(tmp_path, "good.json", payload())
    with pytest.raises(SystemExit) as exc:
        gate.main(["--baseline", good, "--current", str(tmp_path / "missing.json")])
    assert exc.value.code == 2
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit) as exc:
        gate.main(["--baseline", good, "--current", str(bad)])
    assert exc.value.code == 2
    no_backends = write(tmp_path, "nb.json", {"schema": 1})
    with pytest.raises(SystemExit) as exc:
        gate.main(["--baseline", good, "--current", no_backends])
    assert exc.value.code == 2


def test_committed_baseline_is_loadable():
    data = gate.load(gate.DEFAULT_BASELINE)
    assert "numpy" in data["backends"]
    assert gate.backend_rate(data["backends"]["numpy"]) > 0


# ---------------------------------------------------------------------------
# pagani-http-bench payloads (waves schema; no baseline comparison)
# ---------------------------------------------------------------------------
def http_payload(warm_hits=1.0, restart_hits=1.0, converged=True,
                 mismatches=()):
    def wave(hit_fraction):
        return {
            "all_converged": converged,
            "replay_mismatches": list(mismatches),
            "cache_hit_fraction": hit_fraction,
            "fresh_runs": 0 if hit_fraction == 1.0 else 2,
            "wall_seconds": 1.0,
        }

    return {
        "schema": 1,
        "suite": "pagani-http-bench",
        "waves": {
            "cold": wave(0.5),
            "warm": wave(warm_hits),
            "restart_warm": wave(restart_hits),
        },
        "expectation": {
            "min_warm_hit_rate": 0.5,
            "min_restart_hit_rate": 0.9,
        },
    }


def run_http(tmp_path, current):
    # no --baseline: http payloads must gate without one
    return gate.main(["--current", write(tmp_path, "http.json", current)])


def test_http_payload_ok(tmp_path, capsys):
    assert run_http(tmp_path, http_payload()) == 0
    out = capsys.readouterr().out
    assert "benchmark gate OK" in out
    assert "restart_warm" in out


def test_http_dnf_is_fatal(tmp_path, capsys):
    assert run_http(tmp_path, http_payload(converged=False)) == 1
    assert "non-converged" in capsys.readouterr().err


def test_http_replay_mismatch_is_fatal(tmp_path, capsys):
    bad = http_payload(mismatches=["3D-f4@1e-3: estimate bits differ"])
    assert run_http(tmp_path, bad) == 1
    assert "disagree with cold integrate()" in capsys.readouterr().err


def test_http_warm_hit_rate_floor(tmp_path, capsys):
    assert run_http(tmp_path, http_payload(warm_hits=0.4)) == 1
    assert "warm wave hit rate" in capsys.readouterr().err


def test_http_restart_hit_rate_floor(tmp_path, capsys):
    assert run_http(tmp_path, http_payload(restart_hits=0.8)) == 1
    assert "durable store did not survive" in capsys.readouterr().err


def test_http_payload_without_waves_exit_2(tmp_path):
    broken = {"schema": 1, "suite": "pagani-http-bench"}
    with pytest.raises(SystemExit) as exc:
        run_http(tmp_path, broken)
    assert exc.value.code == 2


def test_committed_http_artifact_passes_gate(capsys):
    path = (Path(__file__).parent.parent / "benchmarks" / "results"
            / "BENCH_http.json")
    assert gate.main(["--current", str(path)]) == 0
    assert "benchmark gate OK" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# pagani-scenarios-bench payloads (correctness claims; no baseline)
# ---------------------------------------------------------------------------
def scenarios_payload(converged=True, escalated=True, final_method="two_phase",
                      final_converged=True, first_stage="pagani"):
    row = {
        "spec": "semi_infinite(3D-f4, scale=2.0)",
        "canonical_spec": "semi_infinite(3d-f4, scale=2.0)",
        "estimate": 1.0, "status": "converged_rel", "converged": converged,
    }
    member = {"spec": "gaussian_measure(2d-f4)", "estimate": 1.0,
              "status": "converged_rel", "converged": converged}
    return {
        "schema": 1,
        "suite": "pagani-scenarios-bench",
        "transforms": [row],
        "sweep": {"spec": "sweep:gaussian_measure(2D-f4, sigma=0.5;1.0)",
                  "members": [member, dict(member)]},
        "escalation": {
            "spec": "3D-f4",
            "escalated": escalated,
            "final_method": final_method,
            "final_status": "converged_rel",
            "converged": final_converged,
            "estimate": 1.0,
            "stages": [
                {"method": first_stage, "status": "max_iterations"},
                {"method": final_method, "status": "converged_rel"},
            ],
        },
    }


def run_scenarios(tmp_path, current):
    return gate.main(["--current", write(tmp_path, "scen.json", current)])


def test_scenarios_payload_ok(tmp_path, capsys):
    assert run_scenarios(tmp_path, scenarios_payload()) == 0
    out = capsys.readouterr().out
    assert "benchmark gate OK" in out
    assert "pagani->two_phase" in out


def test_scenarios_dnf_is_fatal(tmp_path, capsys):
    assert run_scenarios(tmp_path, scenarios_payload(converged=False)) == 1
    assert "DNF" in capsys.readouterr().err


def test_scenarios_relabelled_escalation_is_fatal(tmp_path, capsys):
    dishonest = scenarios_payload(final_method="pagani")
    assert run_scenarios(tmp_path, dishonest) == 1
    assert "relabelled" in capsys.readouterr().err


def test_scenarios_missing_escalation_is_fatal(tmp_path, capsys):
    assert run_scenarios(tmp_path, scenarios_payload(escalated=False)) == 1
    assert "did not escalate" in capsys.readouterr().err


def test_scenarios_payload_without_sections_exit_2(tmp_path):
    broken = {"schema": 1, "suite": "pagani-scenarios-bench"}
    with pytest.raises(SystemExit) as exc:
        run_scenarios(tmp_path, broken)
    assert exc.value.code == 2


def test_committed_scenarios_artifact_passes_gate(capsys):
    path = (Path(__file__).parent.parent / "benchmarks" / "results"
            / "BENCH_scenarios.json")
    assert gate.main(["--current", str(path)]) == 0
    assert "benchmark gate OK" in capsys.readouterr().out
