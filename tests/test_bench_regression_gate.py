"""tools/check_bench_regression.py: the CI benchmark gate."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))

import check_bench_regression as gate  # noqa: E402


def payload(rate_s_per_meval=0.1, converged=True, matches=True, backends=("numpy",)):
    """A minimal BENCH_backends-shaped payload with a known eval rate."""
    neval = 2_000_000
    return {
        "schema": 1,
        "backends": {
            spec: [
                {
                    "integrand": "3D f4",
                    "digits": 3,
                    "converged": converged,
                    "matches_numpy": matches,
                    "wall_seconds": rate_s_per_meval * neval / 1e6,
                    "neval": neval,
                }
            ]
            for spec in backends
        },
    }


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def run(tmp_path, baseline, current, extra=()):
    return gate.main(
        [
            "--baseline", write(tmp_path, "baseline.json", baseline),
            "--current", write(tmp_path, "current.json", current),
            *extra,
        ]
    )


def test_ok_within_tolerance(tmp_path, capsys):
    assert run(tmp_path, payload(0.1), payload(0.25)) == 0
    assert "benchmark gate OK" in capsys.readouterr().out


def test_regression_beyond_tolerance(tmp_path, capsys):
    assert run(tmp_path, payload(0.1), payload(0.5)) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_tolerance_flag(tmp_path):
    assert run(tmp_path, payload(0.1), payload(0.5), ["--tolerance", "10"]) == 0


def test_smoke_dnf_is_fatal_even_when_fast(tmp_path, capsys):
    assert run(tmp_path, payload(0.1), payload(0.05, converged=False)) == 1
    assert "did not converge" in capsys.readouterr().err


def test_numerics_mismatch_is_fatal(tmp_path, capsys):
    assert run(tmp_path, payload(0.1), payload(0.1, matches=False)) == 1
    assert "disagrees with the numpy reference" in capsys.readouterr().err


def test_ungated_backend_reported_not_gated(tmp_path, capsys):
    baseline = payload(0.1, backends=("numpy", "threaded"))
    current = payload(0.1, backends=("numpy", "threaded"))
    current["backends"]["threaded"][0]["wall_seconds"] *= 50
    assert run(tmp_path, baseline, current) == 0
    assert "not gated" in capsys.readouterr().out


def test_backend_without_baseline_skipped(tmp_path, capsys):
    assert run(
        tmp_path,
        payload(0.1, backends=("numpy",)),
        payload(0.1, backends=("numpy", "exotic")),
    ) == 0
    assert "no baseline" in capsys.readouterr().out


def test_gated_backend_missing_from_current_fails(tmp_path, capsys):
    assert run(
        tmp_path,
        payload(0.1, backends=("numpy",)),
        payload(0.1, backends=("threaded",)),
    ) == 1
    assert "none of the gated backends" in capsys.readouterr().err


def test_structural_errors_exit_2(tmp_path):
    good = write(tmp_path, "good.json", payload())
    with pytest.raises(SystemExit) as exc:
        gate.main(["--baseline", good, "--current", str(tmp_path / "missing.json")])
    assert exc.value.code == 2
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit) as exc:
        gate.main(["--baseline", good, "--current", str(bad)])
    assert exc.value.code == 2
    no_backends = write(tmp_path, "nb.json", {"schema": 1})
    with pytest.raises(SystemExit) as exc:
        gate.main(["--baseline", good, "--current", no_backends])
    assert exc.value.code == 2


def test_committed_baseline_is_loadable():
    data = gate.load(gate.DEFAULT_BASELINE)
    assert "numpy" in data["backends"]
    assert gate.backend_rate(data["backends"]["numpy"]) > 0
