"""Top-level integrate() dispatch."""

import numpy as np
import pytest

from repro import Status, integrate
from repro.errors import ConfigurationError
from repro.integrands.genz import GenzFamily, make_genz
from tests.conftest import gaussian_nd


@pytest.mark.parametrize(
    "method", ["pagani", "cuhre", "two_phase", "qmc", "vegas"]
)
def test_all_methods_dispatch_and_converge(method):
    g = gaussian_nd(3, c=20.0)
    # vegas runs a fixed iteration schedule; its statistical error floor
    # sits above 1e-4 relative, so it gets the looser (still honest) goal
    rel_tol = 1e-3 if method == "vegas" else 1e-4
    res = integrate(g, 3, rel_tol=rel_tol, method=method, max_eval=20_000_000)
    assert res.converged
    assert res.estimate == pytest.approx(g.reference, rel=1e-3)
    assert res.method.startswith(method.split("_")[0]) or method == "two_phase"


def test_unknown_method_rejected():
    with pytest.raises(ConfigurationError, match="unknown method"):
        integrate(lambda x: np.ones(x.shape[0]), 2, method="lebesgue")


def test_true_value_filled_from_integrand_metadata():
    g = gaussian_nd(3)
    res = integrate(g, 3, rel_tol=1e-5)
    assert res.true_value == pytest.approx(g.reference)
    assert res.true_rel_error() is not None
    assert res.true_rel_error() <= 1e-5


def test_plain_callable_has_no_true_value():
    res = integrate(lambda x: np.ones(x.shape[0]), 2, rel_tol=1e-4)
    assert res.true_value is None
    assert res.true_rel_error() is None
    assert res.estimate == pytest.approx(1.0, rel=1e-10)


def test_relerr_filtering_inferred_from_sign_definite():
    f = make_genz(GenzFamily.OSCILLATORY, 3, seed=4)
    assert not f.sign_definite
    # should integrate fine because the flag is auto-disabled
    res = integrate(f, 3, rel_tol=1e-6)
    assert abs(res.estimate - f.reference) / abs(f.reference) <= 1e-5


def test_explicit_filtering_override():
    g = gaussian_nd(2)
    res = integrate(g, 2, rel_tol=1e-5, relerr_filtering=False)
    assert res.converged


def test_max_iterations_forwarded():
    g = gaussian_nd(3, c=2000.0)
    res = integrate(g, 3, rel_tol=1e-10, max_iterations=2)
    assert res.status is Status.MAX_ITERATIONS
    assert res.iterations == 2


def test_max_eval_forwarded_to_cuhre():
    g = gaussian_nd(3, c=2000.0)
    res = integrate(g, 3, rel_tol=1e-12, method="cuhre", max_eval=40_000)
    assert res.status is Status.MAX_EVALUATIONS
    assert res.neval <= 40_000


def test_custom_device_is_used():
    from repro import DeviceSpec, VirtualDevice

    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=32))
    g = gaussian_nd(3)
    res = integrate(g, 3, rel_tol=1e-5, device=dev)
    assert res.converged
    assert dev.elapsed_seconds > 0.0


def test_bounds_forwarded():
    f = lambda x: np.ones(x.shape[0])
    res = integrate(f, 2, rel_tol=1e-6, bounds=[(0.0, 3.0), (0.0, 2.0)])
    assert res.estimate == pytest.approx(6.0, rel=1e-10)


def test_scalar_integrand_adapter():
    from repro import ScalarIntegrand

    f = ScalarIntegrand(lambda x: float(np.exp(-np.sum(x * x))))
    res = integrate(f, 2, rel_tol=1e-4)
    assert res.converged
    from math import erf, pi, sqrt

    truth = (sqrt(pi) / 2 * erf(1.0)) ** 2
    assert res.estimate == pytest.approx(truth, rel=1e-4)
