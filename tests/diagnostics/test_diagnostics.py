"""Diagnostics: imbalance reports, tree shapes, kernel breakdown."""

import numpy as np
import pytest

from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.diagnostics.breakdown import CATEGORIES, kernel_breakdown
from repro.diagnostics.imbalance import ImbalanceReport, partition_imbalance
from repro.diagnostics.tree import TreeShape, cuhre_tree_shape, tree_shape_from_trace
from repro.integrands.base import Integrand
from tests.conftest import gaussian_nd


# ---------------------------------------------------------------------------
# imbalance
# ---------------------------------------------------------------------------
def test_partition_imbalance_flags_peaky_cell():
    def fn(x):
        # peak well inside one quadrant so the 2x2 partition isolates it
        return np.exp(-2000.0 * ((x[:, 0] - 0.75) ** 2 + (x[:, 1] - 0.7) ** 2))

    f = Integrand(fn=fn, ndim=2, name="2D peak")
    report = partition_imbalance(f, 2, splits_per_axis=2, rel_tol=1e-7,
                                 max_eval_per_processor=300_000)
    assert report.n_processors == 4
    # the peak lives in one quadrant; that processor dominates
    assert report.max_over_mean > 1.5
    assert 0.0 < report.parallel_efficiency < 1.0
    assert "imbalance" in report.summary()


def test_uniform_integrand_is_balanced():
    f = Integrand(fn=lambda x: np.ones(x.shape[0]), ndim=2)
    report = partition_imbalance(f, 2, splits_per_axis=2, rel_tol=1e-4)
    assert report.max_over_mean == pytest.approx(1.0)
    assert report.parallel_efficiency == pytest.approx(1.0)


def test_imbalance_report_dataclass():
    r = ImbalanceReport(subdivisions=np.array([10.0, 10.0]), nevals=np.array([1.0, 1.0]))
    assert r.max_over_mean == 1.0
    zero = ImbalanceReport(subdivisions=np.zeros(2), nevals=np.zeros(2))
    assert zero.parallel_efficiency == 1.0


# ---------------------------------------------------------------------------
# tree shapes
# ---------------------------------------------------------------------------
def test_tree_shape_from_pagani_trace():
    g = gaussian_nd(3)
    res = PaganiIntegrator(PaganiConfig(rel_tol=1e-6)).integrate(g, 3)
    shape = tree_shape_from_trace(res)
    assert shape.method == "pagani"
    assert shape.depth == len(res.trace)
    assert shape.total_regions == res.nregions
    assert shape.max_width >= shape.level_widths[0]
    assert "depth" in shape.summary()


def test_cuhre_tree_shape_from_depths():
    shape = cuhre_tree_shape([0, 1, 1, 2, 2, 2, 5])
    assert shape.level_widths == [1, 2, 3, 0, 0, 1]
    assert shape.depth == 6
    assert shape.total_regions == 7


def test_cuhre_tree_shape_with_finished():
    shape = cuhre_tree_shape([0, 1, 1], finished_depths=[1])
    assert shape.finished_per_level == [0, 1]


def test_empty_tree_shape():
    shape = TreeShape(method="x", level_widths=[], finished_per_level=[])
    assert shape.max_width == 0
    assert shape.total_regions == 0


# ---------------------------------------------------------------------------
# breakdown
# ---------------------------------------------------------------------------
def test_kernel_breakdown_groups_and_sums():
    g = gaussian_nd(3)
    integ = PaganiIntegrator(PaganiConfig(rel_tol=1e-6))
    integ.integrate(g, 3)
    shares = kernel_breakdown(integ.device)
    assert shares, "breakdown must not be empty"
    assert sum(s.share for s in shares) == pytest.approx(1.0)
    assert shares == sorted(shares, key=lambda s: s.seconds, reverse=True)
    cats = {s.category for s in shares}
    assert "evaluate" in cats
    assert cats <= set(CATEGORIES.values()) | {"other"}


def test_breakdown_empty_device():
    from repro.gpu.device import VirtualDevice

    assert kernel_breakdown(VirtualDevice()) == []
