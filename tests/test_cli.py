"""Command-line interface."""

import pytest

from repro.cli import main, named_integrand


def test_named_integrand_parsing():
    f = named_integrand("8D-f7")
    assert f.ndim == 8 and "f7" in f.name
    f = named_integrand("3d-f3")
    assert f.ndim == 3
    f = named_integrand("4D-genz-gaussian")
    assert f.ndim == 4 and "gaussian" in f.name


@pytest.mark.parametrize("bad", ["f7", "8Q-f7", "8D-f99", "8D-genz", "8D-genz-bogus"])
def test_named_integrand_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        named_integrand(bad)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "f7" in out and "genz" in out


def test_run_command_converges(capsys):
    rc = main(["run", "--integrand", "3D-f3", "--rel-tol", "1e-4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "true rel error" in out
    assert "pagani" in out


def test_run_command_failure_exit_code(capsys):
    # absurd tolerance with tiny budget: cuhre cannot converge -> rc 1
    rc = main(
        [
            "run", "--integrand", "3D-f4", "--method", "cuhre",
            "--rel-tol", "1e-12", "--max-eval", "20000",
        ]
    )
    assert rc == 1


def test_batch_command(capsys):
    rc = main(
        ["batch", "--integrands", "3D-f3,3D-f4,2D-genz-gaussian",
         "--rel-tol", "1e-3"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    for name in ("3D f3", "3D f4", "genz-gaussian"):
        assert name in out
    assert "3/3 converged" in out
    assert "rounds" in out and "fused chunks" in out


def test_batch_command_rejects_bad_spec(capsys):
    assert main(["batch", "--integrands", "bogus"]) == 2
    assert main(["batch", "--integrands", ","]) == 2


def test_batch_command_threaded_backend(capsys):
    rc = main(
        ["batch", "--integrands", "2D-genz-gaussian,3D-genz-product_peak",
         "--rel-tol", "1e-3", "--backend", "threaded"]
    )
    assert rc == 0
    assert "backend 'threaded'" in capsys.readouterr().out


def test_compare_command(capsys):
    rc = main(
        ["compare", "--integrand", "3D-f3", "--rel-tol", "1e-3",
         "--max-eval", "3000000"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    for m in ("pagani", "two_phase", "cuhre", "qmc"):
        assert m in out
