"""The documentation that executes: public-API doctests.

CI runs the same examples through the dedicated lane
(``pytest --doctest-modules src/repro/api.py
src/repro/service/__init__.py``); this test keeps the lane green inside
the default tier-1 suite too, so a broken example fails fast locally.
"""

import doctest

import repro.api
import repro.service


def _run(module, min_examples: int) -> None:
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted >= min_examples, (
        f"{module.__name__}: expected at least {min_examples} doctest "
        f"examples, found {results.attempted} — the public API must keep "
        "runnable examples"
    )


def test_api_doctests_pass():
    _run(repro.api, min_examples=10)


def test_service_doctests_pass():
    _run(repro.service, min_examples=4)
