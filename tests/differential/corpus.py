"""The shared differential-testing corpus.

Each entry is one integration problem with an analytically known value:
finite-box catalogue members plus one problem per domain transform
(semi-infinite, infinite, Gaussian measure).  Every integrator in the
package — PAGANI and all four baselines — must be able to run every
entry, because the transforms fold their domains onto the unit cube.

Kept separate from the test module so other suites (benchmarks, golden
regeneration) can import the same problems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.integrands.base import Integrand
from repro.integrands.catalog import named_integrand
from repro.integrands.transforms import (
    gaussian_measure,
    infinite,
    semi_infinite,
)


def _exp_decay(x: np.ndarray) -> np.ndarray:
    """prod exp(-x_i) over [0, inf)^n: integral = 1."""
    return np.exp(-np.sum(x, axis=1))


def _gauss_full_line(x: np.ndarray) -> np.ndarray:
    """prod exp(-x_i^2) over R^n: integral = pi^(n/2)."""
    return np.exp(-np.sum(x * x, axis=1))


def _prod_cos(x: np.ndarray) -> np.ndarray:
    """prod cos(x_i); E under N(0, s^2 I) is exp(-n s^2 / 2)."""
    return np.prod(np.cos(x), axis=1)


@dataclass(frozen=True)
class Problem:
    name: str
    build: Callable[[], Integrand]
    ndim: int
    truth: float


def _semi_infinite_exp() -> Integrand:
    return semi_infinite(_exp_decay, 3, scale=1.0, reference=1.0)


def _infinite_gaussian() -> Integrand:
    return infinite(_gauss_full_line, 2, scale=1.0, reference=math.pi)


def _gaussian_measure_cos() -> Integrand:
    s = 0.7
    truth = math.exp(-2 * s * s / 2.0)
    return gaussian_measure(
        _prod_cos, 2, chol=np.diag([s, s]), reference=truth
    )


def _catalogue(spec: str) -> Callable[[], Integrand]:
    return lambda: named_integrand(spec)


#: the corpus every integrator must pass.  Finite-box members use the
#: catalogue's analytic references; transform members carry closed-form
#: truths supplied above.
PROBLEMS = [
    Problem("3D-f4", _catalogue("3D-f4"), 3, named_integrand("3D-f4").reference),
    Problem("2D-f2", _catalogue("2D-f2"), 2, named_integrand("2D-f2").reference),
    Problem(
        "3D-genz-gaussian",
        _catalogue("3D-genz-gaussian"),
        3,
        named_integrand("3D-genz-gaussian").reference,
    ),
    Problem("semi_infinite-exp", _semi_infinite_exp, 3, 1.0),
    Problem("infinite-gaussian", _infinite_gaussian, 2, math.pi),
    Problem(
        "gaussian_measure-cos",
        _gaussian_measure_cos,
        2,
        math.exp(-0.49),
    ),
]
