"""Cross-integrator differential harness.

Every integrator in the package runs the shared corpus of finite-box and
domain-transformed problems with analytically known values, and each
result must land within its *own reported error bound* — the estimate
and the error estimate are checked against each other, not just the
estimate against the truth.  An integrator that silently under-reports
its error fails here even when its estimate happens to be accurate.

Deterministic integrators (PAGANI, CUHRE, two-phase) claim hard bounds
and get a small safety factor only.  The stochastic baselines (vegas,
randomised QMC) report one-sigma errors, so they get a chi-square-style
multiplier: a seeded run sitting farther than 6 sigma from a known value
is a bug, not bad luck.
"""

from __future__ import annotations

import pytest

from repro import integrate

from tests.differential.corpus import PROBLEMS

METHODS = ["pagani", "cuhre", "two_phase", "qmc", "vegas"]

#: safety multiplier on the reported error bound.  Deterministic
#: integrators must essentially honour their bound; stochastic ones get
#: 6-sigma slack on their one-sigma estimates.
SIGMA = {
    "pagani": 3.0,
    "cuhre": 3.0,
    "two_phase": 3.0,
    "qmc": 6.0,
    "vegas": 6.0,
}

#: per-method convergence goal — loose enough that every method finishes
#: fast, tight enough that an estimate/bound mismatch is meaningful
REL_TOL = {
    "pagani": 1e-5,
    "cuhre": 1e-5,
    "two_phase": 1e-5,
    "qmc": 1e-4,
    "vegas": 1e-3,
}


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("problem", PROBLEMS, ids=lambda p: p.name)
def test_estimate_within_own_error_bound(problem, method):
    f = problem.build()
    res = integrate(
        f, problem.ndim, rel_tol=REL_TOL[method], method=method,
        max_eval=30_000_000,
    )
    assert res.converged, (
        f"{method} failed to converge on {problem.name}: {res}"
    )
    err = abs(res.estimate - problem.truth)
    # the reported bound, with an absolute floor so an errorest of
    # exactly zero (possible for polynomial-exact rules) stays passable
    allowed = SIGMA[method] * max(res.errorest, 1e-14 * abs(problem.truth))
    assert err <= allowed, (
        f"{method} on {problem.name}: |{res.estimate} - {problem.truth}| "
        f"= {err:.3e} exceeds {SIGMA[method]} x errorest "
        f"({res.errorest:.3e})"
    )


@pytest.mark.parametrize("problem", PROBLEMS, ids=lambda p: p.name)
def test_integrators_agree_pairwise(problem):
    """All five estimates of one problem agree among themselves.

    Catches a family of bugs the per-method bound check cannot: a truth
    value in the corpus being wrong would fail every method the same
    way, while genuine disagreement isolates the odd integrator out.
    """
    f = problem.build()
    estimates = {
        m: integrate(
            f, problem.ndim, rel_tol=REL_TOL[m], method=m,
            max_eval=30_000_000,
        ).estimate
        for m in METHODS
    }
    lo, hi = min(estimates.values()), max(estimates.values())
    spread = (hi - lo) / max(abs(problem.truth), 1e-300)
    assert spread <= 5e-3, f"integrators disagree on {problem.name}: {estimates}"
