"""End-to-end: every paper-suite integrand through the full PAGANI stack.

A coarse-tolerance pass over all nine integrand/dimension combinations of
§4.1 — the cheapest run that still exercises rule construction, the main
loop, classification and the analytic references together in every
dimensionality the paper evaluates.
"""

import pytest

from repro.core import PaganiConfig, PaganiIntegrator, Status
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.paper import paper_suite

# The 6D/8D members take minutes each at full stack depth; the whole
# module is the definition of "end-to-end slow".
pytestmark = pytest.mark.slow

SUITE = {f.name: f for f in paper_suite()}

#: f6's cuts align with tenths (see integrands/paper.py); everything else
#: uses the default initial split.
SPLITS = {"6D f6": 10}

#: Members that cannot converge at laptop scale and must instead fail
#: *honestly*.  8D f1 oscillates in sign, so §3.5.1 requires relative-error
#: filtering off; with no regions filtered the list doubles every
#: iteration, and §3.5.2's threshold classification cannot commit enough —
#: the integral's tiny magnitude (|I| ≈ 3.44e-5 against O(1) total
#: variation) leaves τ_rel·|V| commit allowances near zero.  The paper runs
#: this member on a 16 GiB V100 (§4.2); on the 192 MB memory-scaled device
#: the run must end flagged MEMORY_EXHAUSTED ("a flag pertaining to not
#: achieving the user's accuracy requirements", §3.5.2) rather than
#: pretend convergence.  The benchmark harness documents the same member
#: as the double-DNF of the Fig. 7 comparison.
EXPECT_MEMORY_EXHAUSTED = {"8D f1"}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_pagani_coarse_pass(name):
    f = SUITE[name]
    cfg = PaganiConfig(
        rel_tol=1e-2,
        relerr_filtering=f.sign_definite,
        max_iterations=25,
        initial_splits=SPLITS.get(name),
    )
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=192))
    res = PaganiIntegrator(cfg, device=dev).integrate(f, f.ndim)
    true_rel = abs(res.estimate - f.reference) / abs(f.reference)
    if name in EXPECT_MEMORY_EXHAUSTED:
        # Honest failure: flagged, error estimate not underselling the
        # distance to the tolerance, estimate still in the right ballpark.
        assert res.status is Status.MEMORY_EXHAUSTED, res.status.value
        assert not res.converged
        assert res.errorest > cfg.rel_tol * abs(res.estimate)
        assert true_rel <= 5e-2, f"{name}: true rel err {true_rel:.2e}"
    else:
        assert res.converged, f"{name}: {res.status.value}"
        assert true_rel <= 5e-2, f"{name}: true rel err {true_rel:.2e}"
    # device invariants hold across the whole suite
    assert dev.memory.in_use == 0
    assert res.neval > 0 and res.nregions == sum(r.n_regions for r in res.trace)


def test_suite_has_paper_composition():
    dims = sorted((f.ndim, f.name.split()[1]) for f in SUITE.values())
    assert (8, "f1") in dims and (8, "f8") in dims
    assert (5, "f4") in dims and (6, "f6") in dims and (3, "f3") in dims
    assert len(SUITE) == 9
