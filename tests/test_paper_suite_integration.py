"""End-to-end: every paper-suite integrand through the full PAGANI stack.

A coarse-tolerance pass over all nine integrand/dimension combinations of
§4.1 — the cheapest run that still exercises rule construction, the main
loop, classification and the analytic references together in every
dimensionality the paper evaluates.
"""

import numpy as np
import pytest

from repro.core import PaganiConfig, PaganiIntegrator
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.paper import paper_suite

# The 6D/8D members take minutes each at full stack depth; the whole
# module is the definition of "end-to-end slow".
pytestmark = pytest.mark.slow

SUITE = {f.name: f for f in paper_suite()}

#: f6's cuts align with tenths (see integrands/paper.py); everything else
#: uses the default initial split.
SPLITS = {"6D f6": 10}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_pagani_coarse_pass(name):
    f = SUITE[name]
    cfg = PaganiConfig(
        rel_tol=1e-2,
        relerr_filtering=f.sign_definite,
        max_iterations=25,
        initial_splits=SPLITS.get(name),
    )
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=192))
    res = PaganiIntegrator(cfg, device=dev).integrate(f, f.ndim)
    true_rel = abs(res.estimate - f.reference) / abs(f.reference)
    assert res.converged, f"{name}: {res.status.value}"
    assert true_rel <= 5e-2, f"{name}: true rel err {true_rel:.2e}"
    # device invariants hold across the whole suite
    assert dev.memory.in_use == 0
    assert res.neval > 0 and res.nregions == sum(r.n_regions for r in res.trace)


def test_suite_has_paper_composition():
    dims = sorted((f.ndim, f.name.split()[1]) for f in SUITE.values())
    assert (8, "f1") in dims and (8, "f8") in dims
    assert (5, "f4") in dims and (6, "f6") in dims and (3, "f3") in dims
    assert len(SUITE) == 9
