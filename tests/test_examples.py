"""Smoke tests: every example script must run end-to-end.

Examples are documentation that executes; a broken example is a broken
deliverable.  Each is imported as a module and its ``main()`` invoked
with output captured.  All four domain examples run in the fast suite at
their ``quick=True`` CI budgets; the full-precision ladders stay behind
``@pytest.mark.slow`` for nightly runs.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_quickstart_runs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "PAGANI" in out
    assert "converged=True" in out
    for m in ("pagani", "two_phase", "cuhre", "qmc"):
        assert m in out


def test_infinite_domain_runs(capsys):
    _load("infinite_domain").main()
    out = capsys.readouterr().out
    assert "semi-infinite" in out
    assert "Gaussian measure" in out
    # all three textbook values converge
    assert out.count("converged") == 3


# -- fast CI budgets for the domain examples --------------------------------
def test_cosmology_likelihood_quick(capsys):
    _load("cosmology_likelihood").main(quick=True)
    out = capsys.readouterr().out
    assert "Bayesian evidence" in out
    assert "Per-iteration filtering" in out


def test_beam_dynamics_quick(capsys):
    _load("beam_dynamics").main(quick=True)
    out = capsys.readouterr().out
    assert "filtering OFF" in out
    # the safe configuration must be marked OK at every digit level
    safe_section = out.split("filtering OFF")[1]
    assert "BAD" not in safe_section


def test_option_basket_pricing_quick(capsys):
    _load("option_basket_pricing").main(quick=True)
    out = capsys.readouterr().out
    assert "Monte Carlo reference" in out
    assert "pagani" in out


# -- full-precision ladders (nightly) ---------------------------------------
@pytest.mark.slow
def test_cosmology_likelihood_runs(capsys):
    _load("cosmology_likelihood").main()
    out = capsys.readouterr().out
    assert "Bayesian evidence" in out
    assert "Per-iteration filtering" in out


@pytest.mark.slow
def test_beam_dynamics_runs(capsys):
    _load("beam_dynamics").main()
    out = capsys.readouterr().out
    assert "filtering OFF" in out
    safe_section = out.split("filtering OFF")[1]
    assert "BAD" not in safe_section


@pytest.mark.slow
def test_option_basket_pricing_runs(capsys):
    _load("option_basket_pricing").main()
    out = capsys.readouterr().out
    assert "Monte Carlo reference" in out
    assert "pagani" in out
