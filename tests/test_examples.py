"""Smoke tests: every example script must run end-to-end.

Examples are documentation that executes; a broken example is a broken
deliverable.  Each is imported as a module and its ``main()`` invoked with
output captured (runtime is kept modest by the examples' own parameters).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_quickstart_runs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "PAGANI" in out
    assert "converged=True" in out
    for m in ("pagani", "two_phase", "cuhre", "qmc"):
        assert m in out


@pytest.mark.slow
def test_cosmology_likelihood_runs(capsys):
    _load("cosmology_likelihood").main()
    out = capsys.readouterr().out
    assert "Bayesian evidence" in out
    assert "finished" in out


@pytest.mark.slow
def test_beam_dynamics_runs(capsys):
    _load("beam_dynamics").main()
    out = capsys.readouterr().out
    assert "filtering OFF" in out
    # the safe configuration must be marked OK at every digit level
    safe_section = out.split("filtering OFF")[1]
    assert "BAD" not in safe_section


@pytest.mark.slow
def test_option_basket_pricing_runs(capsys):
    _load("option_basket_pricing").main()
    out = capsys.readouterr().out
    assert "Monte Carlo reference" in out
    assert "pagani" in out
