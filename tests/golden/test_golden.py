"""Golden regression: the Genz suite must reproduce pinned bits exactly.

The committed JSON pins estimate/errorest (as ``float.hex()`` strings),
iteration counts and evaluation counts for every Genz family on the numpy
reference backend.  Hot-path refactors — backend changes, scheduling
changes, evaluation-sweep rewrites — must not move these numbers by a
single ULP; an intentional numerical change regenerates the file via
``tests/golden/regen.py`` and explains itself in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.api import integrate
from repro.integrands.genz import make_genz
from tests.golden.regen import blas_fingerprint

GOLDEN_PATH = Path(__file__).parent / "genz_numpy_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: Bit-exactness is only promised on an environment whose BLAS dispatch
#: matches the one that generated the file: a different numpy build or
#: CPU microarchitecture may legally move results by an ULP.  The gate is
#: a runtime probe (a deterministic matvec hashed to hex — see
#: regen.blas_fingerprint), not version strings, so same-version hosts
#: with different SIMD kernels correctly fall back to the near-ULP
#: approximate comparison instead of failing spuriously.
_GEN = GOLDEN.get("generated_with", {})
SAME_ENVIRONMENT = _GEN.get("blas_probe") == blas_fingerprint()


def _case_id(row):
    return f"{row['ndim']}D-{row['family']}"


@pytest.mark.parametrize("row", GOLDEN["rows"], ids=_case_id)
def test_genz_bits_pinned(row):
    f = make_genz(row["family"], row["ndim"], seed=row["seed"])
    res = integrate(f, row["ndim"], rel_tol=row["rel_tol"], backend="numpy")
    if SAME_ENVIRONMENT:
        assert float(res.estimate).hex() == row["estimate_hex"], (
            f"estimate drifted: {res.estimate!r} vs pinned {row['estimate']!r}"
        )
        assert float(res.errorest).hex() == row["errorest_hex"], (
            f"errorest drifted: {res.errorest!r} vs pinned {row['errorest']!r}"
        )
        assert res.iterations == row["iterations"]
        assert res.neval == row["neval"]
        assert res.nregions == row["nregions"]
    else:
        # The same ULP drift the float fallback absorbs can flip an
        # iteration at a convergence boundary (changing neval/nregions
        # with it), so the exact counters are only pinned on the
        # generating environment.
        assert res.estimate == pytest.approx(row["estimate"], rel=1e-12)
        assert res.errorest == pytest.approx(
            row["errorest"], rel=1e-9, abs=1e-300
        )
        assert abs(res.iterations - row["iterations"]) <= 1
    assert res.status.value == row["status"]


def test_golden_covers_every_family():
    families = {r["family"] for r in GOLDEN["rows"]}
    assert families == {
        "oscillatory", "product_peak", "corner_peak", "gaussian", "c0",
        "discontinuous",
    }
    assert len(GOLDEN["rows"]) >= 12
