"""Golden regression for the opened workload space.

Pins bit-exact results for (a) one transformed integrand per transform
family — the spec grammar must keep rebuilding *exactly* the same
computation — and (b) every baseline integrator on a shared catalogue
problem (vegas and QMC are seeded, so their sampling paths are pinned
too).  Same regeneration contract as the Genz file: only an intentional
numerical change may touch ``workload_numpy_golden.json``, via
``tests/golden/regen.py``, with the reason in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.api import integrate
from repro.integrands.catalog import named_integrand
from tests.golden.regen import blas_fingerprint

GOLDEN_PATH = Path(__file__).parent / "workload_numpy_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

# see tests/golden/test_golden.py: bit-exactness is promised only on the
# BLAS-dispatch environment that generated the file
_GEN = GOLDEN.get("generated_with", {})
SAME_ENVIRONMENT = _GEN.get("blas_probe") == blas_fingerprint()


def _case_id(row):
    if row["kind"] == "transform":
        return row["spec"]
    return f"{row['method']}:{row['spec']}"


def _run(row):
    f = named_integrand(row["spec"])
    if row["kind"] == "transform":
        return integrate(f, f.ndim, rel_tol=row["rel_tol"], backend="numpy")
    return integrate(f, f.ndim, rel_tol=row["rel_tol"], method=row["method"])


@pytest.mark.parametrize("row", GOLDEN["rows"], ids=_case_id)
def test_workload_bits_pinned(row):
    res = _run(row)
    if SAME_ENVIRONMENT:
        assert float(res.estimate).hex() == row["estimate_hex"], (
            f"estimate drifted: {res.estimate!r} vs pinned {row['estimate']!r}"
        )
        assert float(res.errorest).hex() == row["errorest_hex"], (
            f"errorest drifted: {res.errorest!r} vs pinned {row['errorest']!r}"
        )
        assert res.iterations == row["iterations"]
        assert res.neval == row["neval"]
    else:
        assert res.estimate == pytest.approx(row["estimate"], rel=1e-12)
        assert res.errorest == pytest.approx(
            row["errorest"], rel=1e-9, abs=1e-300
        )
    assert res.status.value == row["status"]


def test_workload_golden_coverage():
    """Every transform family and every baseline integrator is pinned."""
    transforms = {
        r["spec"].split("(")[0] for r in GOLDEN["rows"]
        if r["kind"] == "transform"
    }
    assert transforms == {"semi_infinite", "infinite", "gaussian_measure"}
    baselines = {
        r["method"] for r in GOLDEN["rows"] if r["kind"] == "baseline"
    }
    assert baselines == {"cuhre", "two_phase", "qmc", "vegas"}
