"""Regenerate the golden-value file for the Genz family on numpy.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regen.py

The file pins bit-exact estimates/errors/iteration counts for the whole
Genz suite on the reference backend.  Regenerate it **only** when a change
intentionally alters the numerics (new error model default, rule fix, …)
and say why in the commit message; for pure refactors, optimisations and
scheduling changes the suite must reproduce these bits exactly.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).parent / "genz_numpy_golden.json"
WORKLOAD_PATH = Path(__file__).parent / "workload_numpy_golden.json"

#: the pinned workload: every Genz family at several dimensionalities
DIMS = (2, 3, 5)
SEED = 0
REL_TOL = 1e-4


def blas_fingerprint() -> str:
    """Hex digest of a deterministic matvec probing BLAS kernel dispatch.

    Two environments that produce identical bits here use the same
    reduction orders on the shapes the hot path cares about, so the
    golden hex comparison is safe; version/machine strings alone cannot
    distinguish CPU microarchitectures that dispatch different kernels.
    """
    a = (np.arange(1, 777 * 33 + 1, dtype=np.float64) / 7.0).reshape(777, 33)
    w = np.arange(1, 34, dtype=np.float64) / 3.0
    v = a @ w
    b = (np.arange(1, 12 * 8 + 1, dtype=np.float64) / 11.0).reshape(12, 8)
    return (float(np.sum(v)).hex() + ":" + float((b @ b.T).sum()).hex())


def golden_cases():
    from repro.integrands.genz import GenzFamily, make_genz

    for family in GenzFamily:
        for ndim in DIMS:
            yield family.value, ndim, make_genz(family, ndim, seed=SEED)


def compute_rows() -> list:
    from repro.api import integrate

    rows = []
    for family, ndim, f in golden_cases():
        res = integrate(f, ndim, rel_tol=REL_TOL, backend="numpy")
        rows.append(
            {
                "family": family,
                "ndim": ndim,
                "seed": SEED,
                "rel_tol": REL_TOL,
                # float.hex() round-trips exactly; the test compares hex
                # strings so a 1-ULP drift is a failure, not a rounding
                # artifact of decimal repr.
                "estimate_hex": float(res.estimate).hex(),
                "errorest_hex": float(res.errorest).hex(),
                "estimate": res.estimate,
                "errorest": res.errorest,
                "iterations": res.iterations,
                "neval": res.neval,
                "nregions": res.nregions,
                "status": res.status.value,
            }
        )
    return rows


#: one pinned spec per transform family (PAGANI on numpy)
TRANSFORM_ROWS = (
    "semi_infinite(3D-f4, scale=2.0)",
    "infinite(2D-genz-gaussian, scale=1.5)",
    "gaussian_measure(2D-f4, mean=0.5, sigma=0.8)",
)

#: one pinned run per baseline integrator on a shared problem; vegas and
#: qmc are seeded, so their sampling paths are deterministic too
BASELINE_ROWS = (
    ("cuhre", "3D-f4", 1e-5),
    ("two_phase", "3D-f4", 1e-5),
    ("qmc", "3D-f4", 1e-4),
    ("vegas", "3D-f4", 1e-3),
)


def _result_row(res, rel_tol: float) -> dict:
    return {
        "rel_tol": rel_tol,
        "estimate_hex": float(res.estimate).hex(),
        "errorest_hex": float(res.errorest).hex(),
        "estimate": res.estimate,
        "errorest": res.errorest,
        "iterations": res.iterations,
        "neval": res.neval,
        "status": res.status.value,
    }


def compute_workload_rows() -> list:
    from repro.api import integrate
    from repro.integrands.catalog import named_integrand

    rows = []
    for spec in TRANSFORM_ROWS:
        f = named_integrand(spec)
        res = integrate(f, f.ndim, rel_tol=REL_TOL, backend="numpy")
        rows.append({"kind": "transform", "spec": spec,
                     **_result_row(res, REL_TOL)})
    for method, spec, rel_tol in BASELINE_ROWS:
        f = named_integrand(spec)
        res = integrate(f, f.ndim, rel_tol=rel_tol, method=method)
        rows.append({"kind": "baseline", "method": method, "spec": spec,
                     **_result_row(res, rel_tol)})
    return rows


def main() -> None:
    payload = {
        "schema": 1,
        "description": "bit-exact Genz-family results on the numpy backend",
        # The bit-exact hex comparison is gated on this fingerprint: a
        # different numpy build or CPU family may legally move results by
        # an ULP through BLAS kernel dispatch, so foreign environments
        # fall back to a tight approximate check (see test_golden.py).
        "generated_with": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "blas_probe": blas_fingerprint(),
        },
        "rows": compute_rows(),
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(payload['rows'])} rows)")

    workload = {
        "schema": 1,
        "description": (
            "bit-exact transform-spec and baseline-integrator results "
            "on the numpy backend"
        ),
        "generated_with": payload["generated_with"],
        "rows": compute_workload_rows(),
    }
    WORKLOAD_PATH.write_text(json.dumps(workload, indent=2) + "\n")
    print(f"wrote {WORKLOAD_PATH} ({len(workload['rows'])} rows)")


if __name__ == "__main__":
    main()
