"""VEGAS-style importance-sampling Monte Carlo baseline."""

import numpy as np
import pytest

from repro.baselines.vegas import VegasConfig, VegasIntegrator
from repro.core.result import Status
from repro.errors import ConfigurationError
from tests.conftest import gaussian_nd


def test_converges_on_moderate_gaussian():
    g = gaussian_nd(3, c=50.0)
    res = VegasIntegrator(VegasConfig(rel_tol=3e-3)).integrate(g, 3)
    assert res.converged
    true_rel = abs(res.estimate - g.reference) / g.reference
    assert true_rel <= 6.0 * max(res.rel_errorest, 3e-3)
    assert res.method == "vegas"


def test_grid_adaptation_beats_flat_sampling():
    """With adaptation disabled (alpha=0) the same budget must do no
    better than the adaptive grid on a peaked integrand."""
    g = gaussian_nd(3, c=400.0)
    budget = 1_500_000
    adaptive = VegasIntegrator(
        VegasConfig(rel_tol=1e-8, max_eval=budget, alpha=1.5)
    ).integrate(g, 3)
    flat = VegasIntegrator(
        VegasConfig(rel_tol=1e-8, max_eval=budget, alpha=0.0)
    ).integrate(g, 3)
    assert adaptive.errorest < flat.errorest


def test_respects_budget():
    g = gaussian_nd(4, c=625.0)
    res = VegasIntegrator(
        VegasConfig(rel_tol=1e-10, max_eval=300_000)
    ).integrate(g, 4)
    assert res.status is Status.MAX_EVALUATIONS
    assert res.neval <= 300_000


def test_deterministic_given_seed():
    g = gaussian_nd(2, c=30.0)
    r1 = VegasIntegrator(VegasConfig(rel_tol=1e-3, seed=7)).integrate(g, 2)
    r2 = VegasIntegrator(VegasConfig(rel_tol=1e-3, seed=7)).integrate(g, 2)
    assert r1.estimate == r2.estimate


def test_custom_bounds():
    f = lambda x: np.sum(x, axis=1)
    res = VegasIntegrator(VegasConfig(rel_tol=3e-3)).integrate(
        f, 2, bounds=[(0.0, 2.0), (0.0, 2.0)]
    )
    assert res.estimate == pytest.approx(8.0, rel=0.02)


def test_cubature_outperforms_vegas_like_the_paper_says():
    """Paper §1: on moderate-dimension integrands 'probabilistic algorithms
    such as Vegas ... are consistently outperformed by a deterministic
    algorithm like Cuhre'.  Compare true error at equal evaluation count."""
    from repro.baselines.cuhre import CuhreConfig, CuhreIntegrator

    g = gaussian_nd(4, c=200.0)
    vg = VegasIntegrator(VegasConfig(rel_tol=1e-12, max_eval=800_000)).integrate(g, 4)
    cu = CuhreIntegrator(CuhreConfig(rel_tol=1e-12, max_eval=800_000)).integrate(g, 4)
    err_v = abs(vg.estimate - g.reference) / g.reference
    err_c = abs(cu.estimate - g.reference) / g.reference
    assert err_c < err_v


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rel_tol": 0.0},
        {"n_bins": 1},
        {"n_iterations": 2, "n_warmup": 3},
        {"alpha": -1.0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        VegasIntegrator(VegasConfig(**kwargs))


def test_chi2_diagnostic():
    integ = VegasIntegrator()
    # consistent passes -> chi2/dof ~ small; inconsistent -> large
    assert integ.chi2_per_dof([1.0, 1.0, 1.0], [0.1, 0.1, 0.1]) == pytest.approx(0.0)
    assert integ.chi2_per_dof([1.0], [0.1]) == 0.0
    assert integ.chi2_per_dof([0.0, 10.0], [0.01, 0.01]) > 100.0
