"""Two-phase baseline: phases, local termination, failure modes."""

import numpy as np
import pytest

from repro.baselines.two_phase import TwoPhaseConfig, TwoPhaseIntegrator
from repro.core.result import Status
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.genz import GenzFamily, make_genz
from tests.conftest import gaussian_nd


def test_converges_on_easy_integrand():
    g = gaussian_nd(3, c=20.0)
    res = TwoPhaseIntegrator(TwoPhaseConfig(rel_tol=1e-6)).integrate(g, 3)
    assert res.converged
    assert abs(res.estimate - g.reference) / g.reference <= 1e-6
    assert res.method == "two_phase"


def test_phase2_runs_and_is_charged():
    g = gaussian_nd(3)
    integ = TwoPhaseIntegrator(TwoPhaseConfig(rel_tol=1e-8, target_blocks=64))
    res = integ.integrate(g, 3)
    stats = integ.device.stats()
    assert "phase2" in stats, "hard tolerance must reach phase II"
    assert stats["phase2"].seconds > 0
    assert integ.last_phase2_report.makespan > 0
    assert res.estimate == pytest.approx(g.reference, rel=1e-6)


def test_memory_exhaustion_on_demanding_run():
    """The paper's signature failure: tight tolerance + per-block budgets."""
    g = gaussian_nd(5, c=625.0)  # the paper's 5D f4
    dev = VirtualDevice(DeviceSpec.scaled(mem_mb=8, name="small"))
    res = TwoPhaseIntegrator(
        TwoPhaseConfig(rel_tol=1e-7), device=dev
    ).integrate(g, 5)
    assert res.status is Status.MEMORY_EXHAUSTED
    assert res.estimate > 0  # still returns estimates


def test_block_budget_derived_from_device_memory():
    g = gaussian_nd(3, c=20.0)
    small = TwoPhaseIntegrator(
        TwoPhaseConfig(rel_tol=1e-4),
        device=VirtualDevice(DeviceSpec.scaled(mem_mb=4, name="s")),
    )
    big = TwoPhaseIntegrator(
        TwoPhaseConfig(rel_tol=1e-4),
        device=VirtualDevice(DeviceSpec.scaled(mem_mb=512, name="b")),
    )
    rs = small.integrate(g, 3)
    rb = big.integrate(g, 3)
    # both fine on the easy case, regardless of memory scale
    assert rs.converged and rb.converged


def test_agrees_with_pagani_on_kinked_integrand():
    """C0 kinks are the adversarial case for every filtering method: cells
    where a kink hides in the edge sliver beyond the outermost rule sample
    get committed with underestimated errors (see
    tests/core/test_known_limitations.py).  Both filtering methods must
    still land within a digit of each other and of the analytic value."""
    from repro.core import PaganiConfig, PaganiIntegrator

    f = make_genz(GenzFamily.C0, ndim=3, seed=5)
    rt = TwoPhaseIntegrator(TwoPhaseConfig(rel_tol=1e-6)).integrate(f, 3)
    rp = PaganiIntegrator(PaganiConfig(rel_tol=1e-6)).integrate(f, 3)
    err_pagani = abs(rp.estimate - f.reference) / abs(f.reference)
    err_two_phase = abs(rt.estimate - f.reference) / abs(f.reference)
    assert err_pagani <= 1e-3
    assert err_two_phase <= 1e-3
    assert rt.estimate == pytest.approx(rp.estimate, rel=1e-3)


def test_relerr_filtering_flag_respected():
    f = make_genz(GenzFamily.OSCILLATORY, ndim=3, seed=2)
    res = TwoPhaseIntegrator(
        TwoPhaseConfig(rel_tol=1e-5, relerr_filtering=False)
    ).integrate(f, 3)
    assert res.estimate == pytest.approx(f.reference, rel=1e-4)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        TwoPhaseIntegrator(TwoPhaseConfig(rel_tol=1.5))
    with pytest.raises(ConfigurationError):
        TwoPhaseIntegrator(TwoPhaseConfig(target_blocks=0))
    with pytest.raises(ConfigurationError):
        TwoPhaseIntegrator().integrate(gaussian_nd(2), 2, bounds=np.zeros((3, 2)))


def test_phase1_only_when_tolerance_met_early():
    g = gaussian_nd(2, c=5.0)
    integ = TwoPhaseIntegrator(TwoPhaseConfig(rel_tol=1e-3))
    res = integ.integrate(g, 2)
    assert res.converged
    assert "phase2" not in integ.device.stats()
