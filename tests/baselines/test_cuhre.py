"""Sequential Cuhre baseline."""

import numpy as np
import pytest

from repro.baselines.cuhre import CuhreConfig, CuhreIntegrator
from repro.core.result import Status
from repro.errors import ConfigurationError
from repro.integrands.genz import GenzFamily, make_genz
from tests.conftest import gaussian_nd


def test_converges_on_gaussian():
    g = gaussian_nd(3)
    res = CuhreIntegrator(CuhreConfig(rel_tol=1e-7)).integrate(g, 3)
    assert res.status is Status.CONVERGED_REL
    assert abs(res.estimate - g.reference) / g.reference <= 1e-7
    assert res.method == "cuhre"


def test_respects_max_eval_budget():
    g = gaussian_nd(4, c=2000.0)
    res = CuhreIntegrator(CuhreConfig(rel_tol=1e-12, max_eval=50_000)).integrate(g, 4)
    assert res.status is Status.MAX_EVALUATIONS
    assert res.neval <= 50_000


def test_nregions_grows_with_precision():
    g = gaussian_nd(3)
    lo = CuhreIntegrator(CuhreConfig(rel_tol=1e-3)).integrate(g, 3)
    hi = CuhreIntegrator(CuhreConfig(rel_tol=1e-8)).integrate(g, 3)
    assert hi.nregions > lo.nregions
    assert hi.sim_seconds > lo.sim_seconds


def test_matches_pagani_estimate():
    from repro.core import PaganiConfig, PaganiIntegrator

    f = make_genz(GenzFamily.PRODUCT_PEAK, ndim=3, seed=11)
    rc = CuhreIntegrator(CuhreConfig(rel_tol=1e-8)).integrate(f, 3)
    rp = PaganiIntegrator(PaganiConfig(rel_tol=1e-8)).integrate(f, 3)
    assert rc.estimate == pytest.approx(rp.estimate, rel=1e-7)
    assert rc.estimate == pytest.approx(f.reference, rel=1e-7)


def test_custom_bounds():
    import math

    from repro.integrands.base import Integrand

    f = Integrand(fn=lambda x: np.exp(np.sum(x, axis=1)), ndim=2)
    res = CuhreIntegrator(CuhreConfig(rel_tol=1e-9)).integrate(
        f, 2, bounds=[(-1.0, 1.0), (0.0, 2.0)]
    )
    truth = (math.e - 1.0 / math.e) * (math.exp(2.0) - 1.0)
    assert res.estimate == pytest.approx(truth, rel=1e-9)


def test_two_level_flag_changes_errors_not_estimates():
    g = gaussian_nd(2)
    with_tl = CuhreIntegrator(CuhreConfig(rel_tol=1e-6, two_level=True)).integrate(g, 2)
    without = CuhreIntegrator(CuhreConfig(rel_tol=1e-6, two_level=False)).integrate(g, 2)
    # both converge; the refined-error variant should need no MORE regions
    assert with_tl.converged and without.converged
    assert with_tl.nregions <= without.nregions


def test_zero_integrand_terminates():
    from repro.integrands.base import Integrand

    z = Integrand(fn=lambda x: np.zeros(x.shape[0]), ndim=2)
    res = CuhreIntegrator(CuhreConfig(rel_tol=1e-6, abs_tol=1e-12)).integrate(z, 2)
    assert res.estimate == 0.0
    assert res.converged or res.status is Status.NO_ACTIVE_REGIONS


def test_config_validation():
    with pytest.raises(ConfigurationError):
        CuhreIntegrator(CuhreConfig(rel_tol=0.0))
    with pytest.raises(ConfigurationError):
        CuhreIntegrator(CuhreConfig(max_eval=0))
    with pytest.raises(ConfigurationError):
        CuhreIntegrator().integrate(gaussian_nd(2), 2, bounds=[(0, 1)] * 3)


def test_region_cap_reports_memory_exhaustion():
    g = gaussian_nd(3, c=2000.0)
    res = CuhreIntegrator(
        CuhreConfig(rel_tol=1e-12, max_regions=200, max_eval=10**9)
    ).integrate(g, 3)
    assert res.status is Status.MEMORY_EXHAUSTED
