"""Randomized QMC integrator and the low-discrepancy sequence substrate."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.qmc import QmcConfig, QmcIntegrator
from repro.baselines.sequences import (
    HaltonSequence,
    SobolSequence,
    first_primes,
    make_sequence,
    radical_inverse,
)
from repro.core.result import Status
from repro.errors import ConfigurationError
from tests.conftest import gaussian_nd


# ---------------------------------------------------------------------------
# sequences
# ---------------------------------------------------------------------------
def test_first_primes():
    np.testing.assert_array_equal(first_primes(8), [2, 3, 5, 7, 11, 13, 17, 19])


def test_radical_inverse_base2_known_values():
    out = radical_inverse(np.array([1, 2, 3, 4, 5]), 2)
    np.testing.assert_allclose(out, [0.5, 0.25, 0.75, 0.125, 0.625])


def test_radical_inverse_base3_known_values():
    out = radical_inverse(np.array([1, 2, 3]), 3)
    np.testing.assert_allclose(out, [1 / 3, 2 / 3, 1 / 9])


@given(st.integers(min_value=2, max_value=13), st.integers(min_value=0, max_value=10**6))
def test_radical_inverse_in_unit_interval(base, idx):
    v = radical_inverse(np.array([idx]), base)[0]
    assert 0.0 <= v < 1.0


def test_halton_points_shape_and_range():
    seq = HaltonSequence(5)
    pts = seq.random(100)
    assert pts.shape == (100, 5)
    assert np.all(pts >= 0.0) and np.all(pts < 1.0)


def test_halton_is_progressive():
    """Successive draws continue the sequence rather than restarting."""
    a = HaltonSequence(3)
    chunks = np.vstack([a.random(10), a.random(10)])
    b = HaltonSequence(3)
    whole = b.random(20)
    np.testing.assert_array_equal(chunks, whole)


def test_halton_rotation_is_seeded_and_uniform():
    s1 = HaltonSequence(4, seed=42).random(64)
    s2 = HaltonSequence(4, seed=42).random(64)
    s3 = HaltonSequence(4, seed=43).random(64)
    np.testing.assert_array_equal(s1, s2)
    assert not np.allclose(s1, s3)
    assert np.all(s1 >= 0.0) and np.all(s1 < 1.0)


def test_halton_beats_random_discrepancy():
    """Low-discrepancy sanity: Halton's star-discrepancy proxy (max CDF
    deviation per axis) must beat IID sampling at the same budget."""
    n = 2048
    h = HaltonSequence(2).random(n)
    r = np.random.default_rng(0).random((n, 2))

    def max_cdf_dev(pts):
        dev = 0.0
        for d in range(pts.shape[1]):
            s = np.sort(pts[:, d])
            emp = np.arange(1, n + 1) / n
            dev = max(dev, float(np.max(np.abs(s - emp))))
        return dev

    assert max_cdf_dev(h) < max_cdf_dev(r)


def test_sobol_wrapping():
    pts = SobolSequence(3, seed=1).random(128)
    assert pts.shape == (128, 3)
    assert np.all(pts >= 0.0) and np.all(pts < 1.0)


def test_make_sequence_factory():
    assert make_sequence("halton", 2).name == "halton"
    assert make_sequence("sobol", 2).name == "sobol"
    with pytest.raises(ValueError):
        make_sequence("latin", 2)


@pytest.mark.parametrize("cls", [HaltonSequence, SobolSequence])
def test_sequences_reject_bad_dim(cls):
    with pytest.raises(ValueError):
        cls(0)


# ---------------------------------------------------------------------------
# integrator
# ---------------------------------------------------------------------------
def test_qmc_converges_on_smooth_integrand():
    g = gaussian_nd(3, c=5.0)  # broad, QMC-friendly
    res = QmcIntegrator(QmcConfig(rel_tol=1e-4)).integrate(g, 3)
    assert res.status is Status.CONVERGED_REL
    assert abs(res.estimate - g.reference) / g.reference <= 5e-4


def test_qmc_error_estimate_statistically_honest():
    """True error should rarely exceed a few sigma of the claimed error."""
    g = gaussian_nd(2, c=30.0)
    res = QmcIntegrator(QmcConfig(rel_tol=3e-4, seed=9)).integrate(g, 2)
    true_err = abs(res.estimate - g.reference)
    assert true_err <= 6.0 * res.errorest


def test_qmc_respects_budget():
    g = gaussian_nd(5, c=625.0)  # narrow peak: hard for QMC
    res = QmcIntegrator(QmcConfig(rel_tol=1e-8, max_eval=300_000)).integrate(g, 5)
    assert res.status is Status.MAX_EVALUATIONS
    assert res.neval <= 300_000


def test_qmc_halton_engine():
    g = gaussian_nd(2, c=5.0)
    res = QmcIntegrator(
        QmcConfig(rel_tol=1e-4, sequence="halton")
    ).integrate(g, 2)
    assert res.converged
    assert res.method == "qmc-halton"


def test_qmc_custom_bounds():

    from repro.integrands.base import Integrand

    f = Integrand(fn=lambda x: np.sum(x, axis=1), ndim=2)
    res = QmcIntegrator(QmcConfig(rel_tol=1e-5)).integrate(
        f, 2, bounds=[(0.0, 2.0), (0.0, 2.0)]
    )
    # ∫∫ (x+y) over [0,2]^2 = 8
    assert res.estimate == pytest.approx(8.0, rel=1e-4)


def test_qmc_deterministic_given_seed():
    g = gaussian_nd(2, c=30.0)
    r1 = QmcIntegrator(QmcConfig(rel_tol=1e-4, seed=5)).integrate(g, 2)
    r2 = QmcIntegrator(QmcConfig(rel_tol=1e-4, seed=5)).integrate(g, 2)
    assert r1.estimate == r2.estimate
    assert r1.neval == r2.neval


def test_qmc_config_validation():
    with pytest.raises(ConfigurationError):
        QmcIntegrator(QmcConfig(rel_tol=0.0))
    with pytest.raises(ConfigurationError):
        QmcIntegrator(QmcConfig(n_replicas=1))
    with pytest.raises(ConfigurationError):
        QmcIntegrator(QmcConfig(growth=1))
