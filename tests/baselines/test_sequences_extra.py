"""Additional properties of the low-discrepancy substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sequences import (
    HaltonSequence,
    SobolSequence,
    first_primes,
    radical_inverse,
)


@given(st.integers(min_value=1, max_value=60))
def test_first_primes_are_prime_and_increasing(k):
    ps = first_primes(k)
    assert len(ps) == k
    assert list(ps) == sorted(set(ps))
    for p in ps:
        assert p >= 2
        assert all(p % q != 0 for q in range(2, int(p**0.5) + 1))


@given(
    base=st.integers(min_value=2, max_value=11),
    i=st.integers(min_value=0, max_value=10**5),
    j=st.integers(min_value=0, max_value=10**5),
)
def test_radical_inverse_injective(base, i, j):
    """Distinct indices map to distinct radical inverses."""
    if i == j:
        return
    vi = radical_inverse(np.array([i]), base)[0]
    vj = radical_inverse(np.array([j]), base)[0]
    assert vi != vj


def test_radical_inverse_stratification():
    """The first b^k points of a van der Corput sequence hit every interval
    [m/b^k, (m+1)/b^k) exactly once — the defining stratification."""
    base, k = 3, 3
    n = base**k
    vals = radical_inverse(np.arange(n), base)
    # digit sums in floats land an ulp below the exact rationals; nudge
    # before flooring
    cells = np.floor(vals * n + 1e-9).astype(int)
    assert sorted(cells) == list(range(n))


def test_halton_2d_box_counts_balanced():
    """Every cell of a coarse grid receives a near-fair share of points."""
    pts = HaltonSequence(2).random(6 * 6 * 30)
    counts = np.histogram2d(pts[:, 0], pts[:, 1], bins=6)[0]
    expected = pts.shape[0] / 36
    assert counts.min() > 0.5 * expected
    assert counts.max() < 1.8 * expected


def test_sobol_first_points_unscrambled():
    """Unscrambled Sobol' starts with the known dyadic pattern."""
    pts = SobolSequence(2, seed=None).random(4)
    # first point of the unscrambled sequence is the origin
    assert pts[0, 0] == 0.0 and pts[0, 1] == 0.0
    assert {0.25, 0.5, 0.75} >= set(np.round(pts[1:, 0], 10)) or True
    # all coordinates are dyadic rationals with denominator 8
    assert np.allclose(pts * 8, np.round(pts * 8))


def test_halton_vs_sobol_integrate_smooth_similarly():
    """Both engines should integrate a smooth function to similar accuracy
    at the same budget (cross-validation of the from-scratch Halton)."""

    def f(x):
        return np.prod(1.0 + 0.3 * np.cos(2 * np.pi * x), axis=1)

    n = 4096
    vals_h = f(HaltonSequence(3, seed=1).random(n))
    vals_s = f(SobolSequence(3, seed=1).random(n))
    # truth = 1 (each factor integrates to 1)
    err_h = abs(np.mean(vals_h) - 1.0)
    err_s = abs(np.mean(vals_s) - 1.0)
    assert err_h < 5e-3 and err_s < 5e-3


@settings(max_examples=10)
@given(seed=st.integers(0, 10**6))
def test_rotation_preserves_unit_cube(seed):
    pts = HaltonSequence(4, seed=seed).random(257)
    assert np.all(pts >= 0.0) and np.all(pts < 1.0)
