"""Approximate statement coverage of the fast suite without coverage.py.

CI enforces a coverage floor through pytest-cov; this tool exists for
environments where coverage.py is not installed (it needs nothing beyond
the stdlib and pytest).  It traces line events in ``src/repro`` frames
while running the fast suite, then divides by the executable-line count
derived from each module's code objects — the same statement notion
coverage.py uses, modulo a percent or two of docstring/def-line
bookkeeping.  Use it to sanity-check the committed ``--cov-fail-under``
value when changing the floor::

    PYTHONPATH=src python tools/measure_coverage.py

Expect roughly a 3-5x slowdown over a plain pytest run.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO / "src" / "repro")

_hits: dict = {}


def _line_tracer(frame, event, arg):
    if event == "line":
        _hits.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
    return _line_tracer


def _call_tracer(frame, event, arg):
    if event != "call":
        return None
    fn = frame.f_code.co_filename
    if not fn.startswith(SRC_PREFIX):
        return None
    _hits.setdefault(fn, set()).add(frame.f_lineno)
    return _line_tracer


def executable_lines(path: Path) -> set:
    """Line numbers holding bytecode, collected recursively per code object."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set = set()
    stack = [code]
    while stack:
        co = stack.pop()
        lines.update(ln for _, _, ln in co.co_lines() if ln is not None)
        for const in co.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main() -> int:
    # `python -m pytest` puts the CWD on sys.path; pytest.main from a
    # script does not, and the tests import `tests.conftest` absolutely.
    sys.path.insert(0, str(REPO))

    import pytest

    sys.settrace(_call_tracer)
    threading.settrace(_call_tracer)
    rc = pytest.main(["-q", "-m", "not slow", "-p", "no:cacheprovider"])
    sys.settrace(None)
    threading.settrace(None)
    if rc != 0:
        print(f"pytest failed (rc={rc}); coverage numbers not meaningful")
        return rc

    total_exec = 0
    total_hit = 0
    rows = []
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        exe = executable_lines(path)
        hit = _hits.get(str(path), set()) & exe
        total_exec += len(exe)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(exe) if exe else 100.0
        rows.append((str(path.relative_to(REPO)), len(exe), len(hit), pct))

    print(f"\n{'module':<48} {'stmts':>6} {'hit':>6} {'cover':>7}")
    for name, n_exec, n_hit, pct in rows:
        print(f"{name:<48} {n_exec:>6} {n_hit:>6} {pct:>6.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nTOTAL: {total_hit}/{total_exec} = {overall:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
