#!/usr/bin/env python
"""Benchmark regression gate for CI.

Compares a fresh smoke run of the backend benchmark
(``python benchmarks/harness.py --smoke --out current.json``) against the
committed baseline ``benchmarks/results/BENCH_backends.json``.

The two payloads run *different workloads* (the committed baseline is
the quick-mode fig5/fig6 sweep; the smoke run is one CI-sized job), so
raw wall seconds are not comparable.  The gate therefore compares the
**normalised evaluation rate** — wall seconds per million integrand
evaluations — which is workload-size independent to first order, with a
deliberately generous tolerance (default 3x): shared CI runners jitter,
real pathologies (an accidentally quadratic hot path, a dropped
vectorisation) blow through 3x anyway.

Hard checks (always fatal, tolerance-independent):

* every smoke row converged — the smoke workload is chosen to converge,
  a DNF means the algorithm broke;
* every smoke row agrees with the numpy reference
  (``matches_numpy``) — a silent numerics change is worse than a slowdown.

When ``--current`` holds a ``pagani-http-bench`` payload (the HTTP
traffic-trace benchmark), the gate switches to that schema's hard
checks instead: every wave converged (DNF fatal), every replay is
bit-identical to cold ``integrate()`` (replay-mismatch fatal), and the
warm / restart-warm cache-hit-rate floors hold.  No baseline or rate
comparison applies — loopback wall clock is noise.

When ``--current`` holds a ``pagani-routing-bench`` payload (the
adaptive-routing benchmark), the hard checks are: every scenario run
converged, routed results agree with numpy, the ``auto`` policy stayed
within the payload's own ratio bound of the best fixed backend, and —
on hosts where the payload says the expectation is enforced — the shm
transport is at least as fast as per-chunk pickling.

When ``--current`` holds a ``pagani-kernels-bench`` payload (the
compiled-kernel lane benchmark), the hard checks are: every lane row
converged, every numba row agrees with the numpy lane to the ULP
contract, and — only on hosts where the payload's expectation block
says it is enforced (numba present, enough cores) — the numba median
speedup stays at or above the recorded floor.  No baseline comparison
applies; the payload carries its own expectation.

When ``--current`` holds a ``pagani-scenarios-bench`` payload (the
workload-scenarios benchmark), the hard checks are correctness claims
only: every transform spec and sweep member converged, and the
escalation row kept honest provenance — a PAGANI-first stage history
whose final result is never relabelled as converged native PAGANI.

Exit codes: 0 OK, 1 regression/mismatch, 2 structural problem (missing
file, malformed payload).

Usage::

    python benchmarks/harness.py --smoke --out /tmp/current.json
    python tools/check_bench_regression.py --current /tmp/current.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "results" / "BENCH_backends.json"

#: per-million-eval wall seconds below this are treated as this value
#: when forming ratios, so timer noise on microscopic workloads cannot
#: fabricate a regression (or hide one behind a zero division).
RATE_FLOOR = 1e-6


def load(path: Path) -> dict:
    def structural(msg: str) -> SystemExit:
        print(msg, file=sys.stderr)
        return SystemExit(2)

    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise structural(f"error: cannot read {path}: {exc}")
    except ValueError as exc:
        raise structural(f"error: {path} is not valid JSON: {exc}")
    if data.get("suite") == "pagani-http-bench":
        # HTTP traffic-trace payload: waves instead of backend rows.
        if "waves" not in data or not isinstance(data["waves"], dict):
            raise structural(f"error: {path} has no 'waves' section")
        return data
    if data.get("suite") == "pagani-routing-bench":
        if "scenarios" not in data or not isinstance(data["scenarios"], dict):
            raise structural(f"error: {path} has no 'scenarios' section")
        return data
    if data.get("suite") == "pagani-kernels-bench":
        if "lanes" not in data or not isinstance(data["lanes"], dict):
            raise structural(f"error: {path} has no 'lanes' section")
        return data
    if data.get("suite") == "pagani-scenarios-bench":
        for section, kind in (("transforms", list), ("sweep", dict),
                              ("escalation", dict)):
            if section not in data or not isinstance(data[section], kind):
                raise structural(
                    f"error: {path} has no '{section}' section")
        return data
    if "backends" not in data or not isinstance(data["backends"], dict):
        raise structural(f"error: {path} has no 'backends' section")
    return data


def check_http_bench(current: dict) -> list:
    """Hard checks for a ``pagani-http-bench`` payload (no baseline
    comparison — wall clock over a loopback socket is noise; the claims
    are correctness claims: every wave converged, every replay is
    bit-identical, and the hit-rate floors hold)."""
    failures = []
    waves = current["waves"]
    exp = current.get("expectation", {})
    for name, wave in waves.items():
        if not wave.get("all_converged", False):
            failures.append(f"http {name} wave: non-converged jobs (DNF)")
        if wave.get("replay_mismatches"):
            failures.append(
                f"http {name} wave: replays disagree with cold integrate() "
                f"({wave['replay_mismatches']})"
            )
    warm_floor = exp.get("min_warm_hit_rate", 0.5)
    if waves["warm"]["cache_hit_fraction"] < warm_floor:
        failures.append(
            f"http warm wave hit rate "
            f"{waves['warm']['cache_hit_fraction']:.2f} below {warm_floor}"
        )
    restart = waves.get("restart_warm")
    if restart is not None:
        restart_floor = exp.get("min_restart_hit_rate", 0.9)
        if restart["cache_hit_fraction"] < restart_floor:
            failures.append(
                f"http restart-warm hit rate "
                f"{restart['cache_hit_fraction']:.2f} below {restart_floor} "
                "— the durable store did not survive the restart"
            )
    print(f"{'wave':<14} {'hit rate':>9} {'fresh':>6}  bits")
    for name, wave in waves.items():
        bits = "MISMATCH" if wave.get("replay_mismatches") else "OK"
        print(f"{name:<14} {wave['cache_hit_fraction']:>8.0%} "
              f"{wave['fresh_runs']:>6}  {bits}")
    return failures


def check_routing_bench(current: dict) -> list:
    """Hard checks for a ``pagani-routing-bench`` payload.

    The payload carries its own expectation block (the smoke workload
    relaxes the auto ratio for runner timing noise), so the gate
    re-derives the failure list with the harness's own rules — one
    source of truth for what "routing regressed" means."""
    for extra in (REPO_ROOT / "benchmarks", REPO_ROOT / "src"):
        if str(extra) not in sys.path:
            sys.path.insert(0, str(extra))
    from harness import routing_bench_problems
    failures = list(routing_bench_problems(current))
    print(f"{'scenario':<13} {'auto':>9} {'best fixed':>18} {'ratio':>7}")
    for name, sc in current["scenarios"].items():
        best = sc["best_fixed"]
        print(
            f"{name:<13} {sc['auto']['wall_seconds']:>8.3f}s "
            f"{best:>10} {sc['fixed'][best]['wall_seconds']:>6.3f}s "
            f"{sc['auto_vs_best_ratio']:>6.2f}x"
        )
    ipc = current.get("ipc", {})
    if ipc.get("available"):
        enforced = current["expectation"]["ipc_enforced_on_this_host"]
        print(
            f"ipc shm {ipc['shm']['s_per_meval']:.4f} s/Meval vs pickle "
            f"{ipc['pickle']['s_per_meval']:.4f} s/Meval "
            f"({ipc['shm_speedup_vs_pickle']:.2f}x, "
            f"{'enforced' if enforced else 'not enforced on this host'})"
        )
    return failures


def check_kernels_bench(current: dict) -> list:
    """Hard checks for a ``pagani-kernels-bench`` payload.

    The payload carries its own expectation block (speedup floor plus
    the host conditions under which it is enforced), so the gate
    re-derives the failure list with the harness's own rules — one
    source of truth for what "the compiled lane regressed" means."""
    for extra in (REPO_ROOT / "benchmarks", REPO_ROOT / "src"):
        if str(extra) not in sys.path:
            sys.path.insert(0, str(extra))
    from harness import kernels_bench_problems
    failures = list(kernels_bench_problems(current))
    print(f"{'lane':<8} {'integrand':<9} {'digits':>6} {'s/Meval':>8} "
          f"{'vs numpy':>9}  agree")
    for spec in sorted(current["lanes"]):
        for r in current["lanes"][spec]:
            speedup = r.get("speedup_vs_numpy")
            print(
                f"{spec:<8} {r['integrand']:<9} {r['digits']:>6} "
                f"{r['s_per_meval']:>8.4f} "
                f"{f'{speedup:.2f}x' if speedup and spec != 'numpy' else '-':>9}"
                f"  {'OK' if r['matches_numpy'] else 'MISMATCH'}"
            )
    exp = current["expectation"]
    if exp["enforced_on_this_host"]:
        got = current["numba_median_speedup_vs_numpy"]
        print(f"numba median speedup {got:.2f}x "
              f"(floor {exp['min_speedup_vs_numpy']}x, enforced)")
    elif current["skipped_lanes"]:
        print(f"skipped lanes: {', '.join(current['skipped_lanes'])} — "
              "speedup expectation recorded, not enforced on this host")
    else:
        print(f"host has {current['host']['cpus']} core(s) < "
              f"{exp['min_cores']} — speedup expectation not enforced")
    return failures


def check_scenarios_bench(current: dict) -> list:
    """Hard checks for a ``pagani-scenarios-bench`` payload.

    The workload-scenarios artifact makes correctness claims only — the
    transform specs and the fused sweep converge, and the escalation row
    keeps honest provenance (PAGANI-first stage history, the final
    result never relabelled as converged native PAGANI).  The failure
    list is re-derived with the harness's own rules — one source of
    truth for what "the workload space regressed" means."""
    for extra in (REPO_ROOT / "benchmarks", REPO_ROOT / "src"):
        if str(extra) not in sys.path:
            sys.path.insert(0, str(extra))
    from harness import scenarios_bench_problems
    failures = list(scenarios_bench_problems(current))
    print(f"{'kind':<11} {'spec':<46} status")
    for row in current["transforms"]:
        print(f"{'transform':<11} {row['spec']:<46} {row['status']}")
    for member in current["sweep"]["members"]:
        print(f"{'sweep':<11} {member['spec']:<46} {member['status']}")
    esc = current["escalation"]
    ladder = "->".join(s["method"] for s in esc["stages"])
    print(f"{'escalation':<11} {esc['spec'] + ' [' + ladder + ']':<46} "
          f"{esc['final_status']}")
    return failures


def rate_per_meval(row: dict) -> float:
    """Wall seconds per million evaluations for one benchmark row."""
    neval = max(1, int(row.get("neval", 0)))
    return max(RATE_FLOOR, float(row["wall_seconds"]) / neval * 1e6)


def backend_rate(rows: list) -> float:
    """Median per-Meval rate over a backend's rows (robust to one
    outlier workload)."""
    return statistics.median(rate_per_meval(r) for r in rows)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline payload (default: {DEFAULT_BASELINE})",
    )
    ap.add_argument(
        "--current", type=Path, required=True,
        help="freshly generated payload to gate (harness --smoke output)",
    )
    ap.add_argument(
        "--tolerance", type=float, default=3.0,
        help="allowed current/baseline rate ratio (default 3.0 — "
        "generous on purpose; only pathologies should trip it)",
    )
    ap.add_argument(
        "--backends", default="numpy",
        help="comma-separated backends to gate (default: numpy — the "
        "deterministic reference; others are reported informationally)",
    )
    args = ap.parse_args(argv)

    current = load(args.current)
    if current.get("suite") == "pagani-routing-bench":
        failures = check_routing_bench(current)
        if failures:
            print("\nFAIL:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nbenchmark gate OK")
        return 0
    if current.get("suite") == "pagani-kernels-bench":
        failures = check_kernels_bench(current)
        if failures:
            print("\nFAIL:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nbenchmark gate OK")
        return 0
    if current.get("suite") == "pagani-scenarios-bench":
        failures = check_scenarios_bench(current)
        if failures:
            print("\nFAIL:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nbenchmark gate OK")
        return 0
    if current.get("suite") == "pagani-http-bench":
        failures = check_http_bench(current)
        if failures:
            print("\nFAIL:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nbenchmark gate OK")
        return 0

    baseline = load(args.baseline)
    gated = [b.strip() for b in args.backends.split(",") if b.strip()]

    failures = []

    # --- hard checks on the fresh run -----------------------------------
    for spec, rows in current["backends"].items():
        for row in rows:
            label = f"{spec}/{row.get('integrand')}@d{row.get('digits')}"
            if not row.get("converged", False):
                failures.append(f"{label}: smoke workload did not converge")
            if not row.get("matches_numpy", False):
                failures.append(f"{label}: disagrees with the numpy reference")

    # --- rate comparison -------------------------------------------------
    print(f"{'backend':<12} {'baseline':>12} {'current':>12} {'ratio':>7}  gate")
    for spec in sorted(current["backends"]):
        cur_rows = current["backends"][spec]
        base_rows = baseline["backends"].get(spec)
        if not cur_rows:
            continue
        if not base_rows:
            print(f"{spec:<12} {'-':>12} {backend_rate(cur_rows):>10.3f}"
                  f"{'':>2} {'-':>7}  no baseline (skipped)")
            continue
        base_rate = backend_rate(base_rows)
        cur_rate = backend_rate(cur_rows)
        ratio = cur_rate / base_rate
        is_gated = spec in gated
        verdict = "OK"
        if ratio > args.tolerance and is_gated:
            verdict = "REGRESSION"
            failures.append(
                f"{spec}: {cur_rate:.3f} s/Meval vs baseline "
                f"{base_rate:.3f} s/Meval ({ratio:.2f}x > "
                f"{args.tolerance:.1f}x allowed)"
            )
        elif ratio > args.tolerance:
            verdict = "slow (not gated)"
        print(f"{spec:<12} {base_rate:>10.3f}s {cur_rate:>10.3f}s "
              f"{ratio:>6.2f}x  {verdict}")

    if not any(spec in current["backends"] for spec in gated):
        failures.append(
            f"none of the gated backends {gated} appear in the current run"
        )

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbenchmark gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
