#!/usr/bin/env python
"""Markdown link checker for the documentation front door.

Walks the given markdown files (default: ``README.md`` and every
``docs/*.md``) and verifies every **relative** link target:

* the linked file exists (relative to the linking file);
* when the link carries a ``#fragment``, the target markdown file has a
  heading whose GitHub-style slug matches the fragment.

External links (``http(s)://``, ``mailto:``) are *not* fetched — CI must
stay hermetic — but their URLs are sanity-checked for whitespace.
Images and reference-style definitions are checked like links.

Exit codes: 0 OK, 1 broken links found, 2 structural problem.

Usage::

    python tools/check_doc_links.py                 # README + docs/
    python tools/check_doc_links.py README.md docs/architecture.md
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline links/images: [text](target) / ![alt](target); reference
#: definitions: [label]: target
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for our docs)."""
    # Strip inline code/links/emphasis markers, then slugify.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def _display(path: Path) -> str:
    """Repo-relative rendering when possible, absolute otherwise."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def heading_slugs(path: Path) -> List[str]:
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs: List[str] = []
    seen: dict = {}
    for match in _HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.append(slug if n == 0 else f"{slug}-{n}")
    return slugs


def extract_links(path: Path) -> List[str]:
    text = path.read_text(encoding="utf-8")
    text = _CODE_FENCE.sub("", text)  # fenced blocks are not links
    return _INLINE_LINK.findall(text) + _REF_DEF.findall(text)


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Return ``(target, problem)`` pairs for every broken link."""
    problems: List[Tuple[str, str]] = []
    for target in extract_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            if any(c.isspace() for c in target):
                problems.append((target, "external URL contains whitespace"))
            continue
        if target.startswith("#"):
            base, fragment = path, target[1:]
        else:
            rel, _, fragment = target.partition("#")
            base = (path.parent / rel).resolve()
            if not base.exists():
                problems.append((target, f"missing file {rel!r}"))
                continue
        if fragment:
            if base.suffix != ".md":
                continue  # anchors into source files: GitHub line refs etc.
            if fragment not in heading_slugs(base):
                problems.append(
                    (target, f"no heading with slug {fragment!r} in "
                             f"{_display(base)}")
                )
    return problems


def default_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "files", nargs="*", type=Path,
        help="markdown files to check (default: README.md docs/*.md)",
    )
    args = ap.parse_args(argv)
    files = [f.resolve() for f in args.files] or default_files()

    n_links = 0
    failures = []
    for path in files:
        if not path.exists():
            print(f"error: no such file {path}", file=sys.stderr)
            return 2
        links = extract_links(path)
        n_links += len(links)
        for target, problem in check_file(path):
            failures.append((_display(path), target, problem))

    print(f"checked {n_links} links across {len(files)} files")
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for path, target, problem in failures:
            print(f"  - {path}: [{target}] {problem}", file=sys.stderr)
        return 1
    print("all documentation links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
