#!/usr/bin/env python
"""Bayesian evidence for a toy cosmological parameter-estimation model.

The paper's motivating application (via the authors' CosmoSIS work) is
parameter estimation for cosmological models of galaxy clusters: computing
marginal likelihoods means integrating a sharply peaked likelihood over a
multi-dimensional parameter box — precisely the "ill-behaved in a small
corner of the domain" workload where uniform processor partitions starve
and adaptive filtering shines.

This example builds a 6-parameter Gaussian-mixture likelihood (a dominant
mode plus a degenerate ridge, mimicking parameter degeneracies), computes
the Bayesian evidence Z = ∫ L(θ) π(θ) dθ with PAGANI at increasing
precision, and shows the region-filtering statistics along the way.

Run:  python examples/cosmology_likelihood.py
"""

import numpy as np

from repro import PaganiConfig, PaganiIntegrator
from repro.integrands import Integrand

NDIM = 6

# A dominant mode at theta0 with small widths, plus a shallow degenerate
# ridge between parameters 0 and 1 (classic Omega_m / sigma_8 style
# degeneracy), all inside the unit prior box.
THETA0 = np.array([0.31, 0.81, 0.67, 0.96, 0.048, 0.55])
WIDTHS = np.array([0.015, 0.02, 0.03, 0.02, 0.004, 0.08])
RIDGE_WEIGHT = 0.25


def log_likelihood(theta: np.ndarray) -> np.ndarray:
    """Vectorised log-likelihood over an (N, 6) parameter batch."""
    z = (theta - THETA0[None, :]) / WIDTHS[None, :]
    main = -0.5 * np.sum(z * z, axis=1)
    # ridge: theta0 + theta1 roughly constant
    s = (theta[:, 0] + theta[:, 1] - (THETA0[0] + THETA0[1])) / 0.01
    t = (theta[:, 0] - theta[:, 1] - (THETA0[0] - THETA0[1])) / 0.25
    rest = (theta[:, 2:] - THETA0[None, 2:]) / (3.0 * WIDTHS[None, 2:])
    ridge = -0.5 * (s * s + t * t + np.sum(rest * rest, axis=1))
    return np.logaddexp(main, np.log(RIDGE_WEIGHT) + ridge)


def likelihood(theta: np.ndarray) -> np.ndarray:
    return np.exp(log_likelihood(theta))


def main(quick: bool = False) -> None:
    """``quick=True`` stops at 4 digits — the CI smoke budget; the full
    precision ladder is the default interactive (and nightly) run."""
    integrand = Integrand(
        fn=likelihood,
        ndim=NDIM,
        name="6D cluster likelihood",
        flops_per_eval=120.0,
        sign_definite=True,
    )

    print("Bayesian evidence Z = ∫ L(θ) dθ over the unit prior box")
    print(f"{'digits':>6} {'estimate':>18} {'est.rel.err':>12} "
          f"{'iters':>6} {'regions':>9} {'filtered%':>9}")
    integrator = PaganiIntegrator(PaganiConfig(max_iterations=40))
    last = None
    for digits in (3, 4) if quick else (3, 4, 5, 6, 7):
        res = integrator.integrate(integrand, NDIM, rel_tol=10.0**-digits)
        filtered = sum(
            rec.n_finished_relerr + rec.n_finished_threshold for rec in res.trace
        )
        pct = 100.0 * filtered / max(res.nregions, 1)
        print(
            f"{digits:>6} {res.estimate:>18.12e} {res.rel_errorest:>12.2e} "
            f"{res.iterations:>6} {res.nregions:>9} {pct:>8.1f}%"
        )
        last = res

    assert last is not None
    print("\nPer-iteration filtering on the tightest run "
          "(active vs finished regions):")
    for rec in last.trace[-8:]:
        print(
            f"  it {rec.iteration:>2}: {rec.n_regions:>8} regions, "
            f"{rec.n_active:>8} active, "
            f"{rec.n_finished_relerr:>7} finished(rel) "
            f"{rec.n_finished_threshold:>7} finished(thr)"
        )


if __name__ == "__main__":
    main()
