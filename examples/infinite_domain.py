#!/usr/bin/env python
"""Infinite and semi-infinite domains via the transform helpers.

The paper's cubature rules live on boxes; real physics workloads often do
not.  ``repro.integrands.transforms`` folds the classic rational and
inverse-normal maps (with Jacobians) into new unit-cube integrands, so
PAGANI applies unchanged.  This example computes three textbook values:

* ∫_[0,∞)³ e^{-(x+y+z)} (x y z)^{1/2} dV = Γ(3/2)³
* ∫_R² e^{-|x|²} cos(4 x₁) dV = π e^{-4}
* E[max(e^{z} − 1, 0)] under z ~ N(0, 0.25)  (a Black–Scholes-style call)

Run:  python examples/infinite_domain.py
"""

import math

import numpy as np
from scipy.stats import norm

from repro import integrate
from repro.integrands.transforms import gaussian_measure, infinite, semi_infinite


def main() -> None:
    print("== semi-infinite: Gamma-function product ==")
    f = semi_infinite(
        lambda x: np.exp(-np.sum(x, axis=1)) * np.sqrt(np.prod(x, axis=1)),
        ndim=3,
        scale=1.5,
    )
    truth = math.gamma(1.5) ** 3
    res = integrate(f, 3, rel_tol=1e-7)
    print(f"  estimate {res.estimate:.12f}  truth {truth:.12f}  "
          f"true rel err {abs(res.estimate - truth) / truth:.1e}  [{res.status.value}]")

    print("\n== infinite: oscillatory Gaussian ==")
    g = infinite(
        lambda x: np.exp(-np.sum(x * x, axis=1)) * np.cos(4.0 * x[:, 0]),
        ndim=2,
    )
    truth = math.pi * math.exp(-4.0)
    # cos factor oscillates in sign: disable rel-err filtering (§3.5.1)
    res = integrate(g, 2, rel_tol=1e-8, relerr_filtering=False)
    print(f"  estimate {res.estimate:.12f}  truth {truth:.12f}  "
          f"true rel err {abs(res.estimate - truth) / truth:.1e}  [{res.status.value}]")

    print("\n== Gaussian measure: undiscounted call price ==")
    sigma = 0.5
    h = gaussian_measure(
        lambda z: np.maximum(np.exp(sigma * z[:, 0]) - 1.0, 0.0), ndim=2
    )
    # E[max(e^{σz}-1,0)] = e^{σ²/2}Φ(σ) − Φ(0)... closed form:
    truth = math.exp(sigma**2 / 2) * norm.cdf(sigma) - 0.5
    res = integrate(h, 2, rel_tol=1e-6)
    print(f"  estimate {res.estimate:.12f}  truth {truth:.12f}  "
          f"true rel err {abs(res.estimate - truth) / max(truth, 1e-300):.1e}  "
          f"[{res.status.value}]")


if __name__ == "__main__":
    main()
