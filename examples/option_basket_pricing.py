#!/usr/bin/env python
"""Risk-neutral pricing of a basket call option by deterministic cubature.

Finance is the paper's first motivating domain: option prices are
expectations over multi-dimensional log-normal asset distributions.  The
payoff ``max(mean(S_T) − K, 0)`` has a *kink* along a curved surface (the
at-the-money manifold), which defeats fixed product rules and rewards
adaptive subdivision concentrated along the kink.

We map the Gaussian expectation onto the unit cube with the inverse-normal
transform and price a 5-asset basket call with PAGANI, the sequential Cuhre
baseline and QMC — QMC is competitive here (kinks hurt cubature), which
mirrors the paper's honest framing that no method dominates everywhere.

Run:  python examples/option_basket_pricing.py
"""

import numpy as np
from scipy.special import ndtri  # inverse standard-normal CDF

from repro import integrate
from repro.integrands import Integrand

N_ASSETS = 5
SPOT = 100.0
STRIKE = 105.0
RATE = 0.03
VOL = 0.25
CORR = 0.4
MATURITY = 1.0


def _chol() -> np.ndarray:
    cov = np.full((N_ASSETS, N_ASSETS), CORR * VOL * VOL)
    np.fill_diagonal(cov, VOL * VOL)
    return np.linalg.cholesky(cov * MATURITY)


_L = _chol()
_DRIFT = (RATE - 0.5 * VOL * VOL) * MATURITY


def payoff_on_cube(u: np.ndarray) -> np.ndarray:
    """Discounted basket-call payoff after mapping [0,1]^5 -> N(0, Σ).

    Points are clipped one ulp inside the open cube before the
    inverse-normal map; the Genz–Malik points never sit exactly on the
    boundary, so the clip only guards against rounding.
    """
    eps = 1e-15
    z = ndtri(np.clip(u, eps, 1.0 - eps))
    log_s = np.log(SPOT) + _DRIFT + z @ _L.T
    basket = np.mean(np.exp(log_s), axis=1)
    return np.exp(-RATE * MATURITY) * np.maximum(basket - STRIKE, 0.0)


def reference_price(n: int = 2_000_000, seed: int = 7) -> tuple[float, float]:
    """Brute-force Monte Carlo reference with its standard error."""
    rng = np.random.default_rng(seed)
    z = rng.standard_normal((n, N_ASSETS))
    log_s = np.log(SPOT) + _DRIFT + z @ _L.T
    basket = np.mean(np.exp(log_s), axis=1)
    pay = np.exp(-RATE * MATURITY) * np.maximum(basket - STRIKE, 0.0)
    return float(np.mean(pay)), float(np.std(pay) / np.sqrt(n))


def main(quick: bool = False) -> None:
    """``quick=True`` shrinks the MC reference and loosens the cubature
    goal so CI can smoke-test the whole pricing pipeline in seconds."""
    mc_price, mc_se = reference_price(n=200_000 if quick else 2_000_000)
    rel_tol = 1e-3 if quick else 2e-4
    max_eval = 5_000_000 if quick else 30_000_000
    print(f"Monte Carlo reference price: {mc_price:.4f} ± {mc_se:.4f} (1σ)\n")

    integrand = Integrand(
        fn=payoff_on_cube,
        ndim=N_ASSETS,
        name="5-asset basket call",
        flops_per_eval=250.0,  # ndtri + matmul + exp per point
        sign_definite=True,
    )

    print(f"{'method':<10} {'price':>10} {'est.err':>10} {'evals':>12} "
          f"{'sim ms':>10} {'status':>18}")
    for method in ("pagani", "cuhre", "qmc"):
        res = integrate(
            integrand, N_ASSETS, rel_tol=rel_tol, method=method,
            max_eval=max_eval,
        )
        print(
            f"{method:<10} {res.estimate:>10.4f} {res.errorest:>10.2e} "
            f"{res.neval:>12} {res.sim_seconds * 1e3:>10.3f} "
            f"{res.status.value:>18}"
        )
        gap = abs(res.estimate - mc_price)
        print(f"{'':<10} vs MC: {gap:.4f} ({gap / max(mc_se, 1e-12):.1f}σ of the MC error)")


if __name__ == "__main__":
    main()
