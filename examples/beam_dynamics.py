#!/usr/bin/env python
"""Collective-effects kernel integrals from electron-beam dynamics.

The paper's other motivating application (Arumugam et al.) is high-fidelity
simulation of collective effects in electron beams, where each simulation
step evaluates retarded-potential integrals of a charge distribution: a
narrow anisotropic Gaussian bunch against an oscillatory interaction
kernel.  Two features make this hard for non-adaptive methods: the bunch
occupies a tiny fraction of the domain, and the kernel oscillates — and the
oscillation also makes the integrand non-sign-definite, which is exactly
the case where PAGANI's §3.5.1 flag must disable relative-error filtering.

We integrate a 5-D model of such a kernel and demonstrate both flag
settings: with filtering wrongly enabled the run may terminate early with a
poor estimate; with the paper-prescribed setting it stays honest.

Run:  python examples/beam_dynamics.py
"""

import numpy as np

from repro import PaganiConfig, PaganiIntegrator
from repro.integrands import Integrand

NDIM = 5
#: bunch widths per axis (transverse tight, longitudinal wider)
SIGMA = np.array([0.02, 0.02, 0.08, 0.05, 0.05])
CENTER = np.array([0.5, 0.5, 0.35, 0.6, 0.5])
WAVE_VECTOR = np.array([9.0, 4.0, 18.0, 6.0, 3.0])


def kernel_density(x: np.ndarray) -> np.ndarray:
    """Oscillatory interaction kernel weighted by the bunch density."""
    z = (x - CENTER[None, :]) / SIGMA[None, :]
    density = np.exp(-0.5 * np.sum(z * z, axis=1))
    phase = x @ WAVE_VECTOR
    return density * np.cos(phase)


def reference_value() -> float:
    """Closed form: product of 1-D Gaussian-cosine integrals.

    cos(k·x) = Re Π e^{i k_j x_j}, and each 1-D factor
    ∫ exp(-(x-c)²/2σ²) e^{ikx} dx has an erf-form antiderivative; with the
    bunch many σ inside the box, the infinite-range Gaussian integral
    Re[Π σ√(2π) exp(ik c_j − k_j²σ_j²/2)] is exact to ~1e-14.
    """
    val = complex(1.0, 0.0)
    for c, s, k in zip(CENTER, SIGMA, WAVE_VECTOR):
        val *= s * np.sqrt(2.0 * np.pi) * np.exp(1j * k * c - 0.5 * (k * s) ** 2)
    return float(val.real)


def main(quick: bool = False) -> None:
    """``quick=True`` caps the digit ladder at 4 for CI smoke runs."""
    truth = reference_value()
    integrand = Integrand(
        fn=kernel_density,
        ndim=NDIM,
        name="5D beam kernel",
        reference=truth,
        flops_per_eval=80.0,
        sign_definite=False,  # cos kernel oscillates through zero
    )
    print(f"reference value: {truth:.12e}\n")

    for filtering, label in ((True, "rel-err filtering ON (wrong for this integrand)"),
                             (False, "rel-err filtering OFF (paper §3.5.1 flag)")):
        print(f"== {label} ==")
        for digits in (3, 4) if quick else (3, 5, 7):
            cfg = PaganiConfig(
                rel_tol=10.0**-digits,
                relerr_filtering=filtering,
                max_iterations=35,
            )
            res = PaganiIntegrator(cfg).integrate(integrand, NDIM)
            true_err = abs(res.estimate - truth) / abs(truth)
            honest = "OK " if true_err <= res.rel_errorest * 3 + 10.0**-digits else "BAD"
            print(
                f"  {digits} digits: est={res.estimate:+.10e} "
                f"claimed rel err={res.rel_errorest:.1e} true={true_err:.1e} "
                f"[{honest}] {res.status.value}"
            )
        print()


if __name__ == "__main__":
    main()
