#!/usr/bin/env python
"""Quickstart: integrate a function with PAGANI and compare to baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import integrate, integrate_many
from repro.integrands import Integrand


def main() -> None:
    # An integrand is a *batch* callable: it receives an (N, ndim) array of
    # points and returns the (N,) array of values.  Vectorised evaluation is
    # what the (simulated) GPU executes — never write per-point Python loops.
    def banana(x: np.ndarray) -> np.ndarray:
        """A curved ridge in 4-D: exp(-(x1 - x0^2)^2/0.05 - |x|^2)."""
        ridge = (x[:, 1] - x[:, 0] ** 2) ** 2 / 0.05
        return np.exp(-ridge - np.sum(x**2, axis=1))

    print("== PAGANI on a 4-D curved ridge ==")
    for tol in (1e-3, 1e-5, 1e-7):
        res = integrate(banana, ndim=4, rel_tol=tol)
        print(
            f"  rel_tol={tol:.0e}: estimate={res.estimate:.10f} "
            f"± {res.errorest:.2e}  ({res.iterations} iterations, "
            f"{res.nregions} regions, converged={res.converged})"
        )

    # Wrapping the function in an Integrand attaches metadata: a reference
    # value enables true-error reporting, flops_per_eval feeds the device
    # cost model, and sign_definite drives the §3.5.1 filtering flag.
    def product_cosine(x: np.ndarray) -> np.ndarray:
        return np.prod(np.cos(x), axis=1)

    truth = float(np.sin(1.0) ** 5)  # ∫ cos = sin(1) per axis
    f = Integrand(
        fn=product_cosine,
        ndim=5,
        name="5D prod-cos",
        reference=truth,
        flops_per_eval=30.0,
        sign_definite=True,
    )

    print("\n== All methods on 5-D prod(cos(x_i)) (truth known) ==")
    for method in ("pagani", "two_phase", "cuhre", "qmc"):
        res = integrate(f, ndim=5, rel_tol=1e-6, method=method, max_eval=20_000_000)
        true_err = res.true_rel_error()
        print(
            f"  {method:<10s}: {res.estimate:.12f}  est.rel.err={res.rel_errorest:.1e}"
            f"  true.rel.err={true_err:.1e}  sim={res.sim_seconds * 1e3:7.3f} ms"
        )

    # The hot path runs on a pluggable array backend: "numpy" (default),
    # "threaded"/"threaded:<N>" for multi-core hosts, "process"/"process:<N>"
    # for GIL-free multi-core (catalogue integrands ship to worker
    # processes; closures like `banana` run in-process), "cupy" on a real
    # GPU.  Host backends are bit-identical to the reference — only
    # wall-clock changes.
    print("\n== Backend selection (identical results, different substrate) ==")
    for backend in ("numpy", "threaded", "process:2"):
        res = integrate(banana, ndim=4, rel_tol=1e-5, backend=backend)
        print(
            f"  backend={backend:<10s}: estimate={res.estimate:.12f}  "
            f"wall={res.wall_seconds * 1e3:7.1f} ms"
        )

    # Many independent integrals run as one batched workload: each live
    # integral gets one iteration per round (round-robin), their evaluation
    # chunks are fused into single backend submissions, and converged
    # members exit early, freeing their region memory.  On "numpy" the
    # results are bit-identical to sequential integrate() calls; "threaded"
    # trades that for throughput (see docs/batch.md).
    from repro.integrands.genz import make_genz

    batch = [make_genz("gaussian", d, seed=s) for s, d in enumerate((2, 3, 4))]
    batch.append(f)  # mixed workloads are fine — any ndim per member
    print("\n== Batched execution of 4 integrals (integrate_many) ==")
    results, stats = integrate_many(
        batch, rel_tol=1e-6, backend="threaded", return_stats=True
    )
    for g, res in zip(batch, results):
        print(
            f"  {g.name:<28s}: estimate={res.estimate:.10f}  "
            f"true.rel.err={res.true_rel_error():.1e}  "
            f"iters={res.iterations}"
        )
    print(
        f"  scheduler: {stats.rounds} rounds, {stats.chunks_submitted} "
        f"fused chunks, peak {stats.peak_live} live members"
    )

    # A *stream* of requests goes through the service layer: a priority
    # queue feeds up to max_concurrent jobs into a weighted rotation
    # (higher priority => served more iterations per round), and a
    # content-addressed LRU cache replays repeated requests bit-for-bit
    # instead of recomputing them (see docs/service.md).
    from repro.service import IntegrationService

    print("\n== Service mode: priorities + result cache (2 shards) ==")
    with IntegrationService(max_concurrent=4, shards=2) as svc:
        urgent = svc.submit("4D-genz-gaussian", rel_tol=1e-6, priority=4)
        background = svc.submit("3D-f4", rel_tol=1e-5, priority=1)
        repeat = svc.submit("4D-genz-gaussian", rel_tol=1e-6)  # duplicate
        for label, handle in (
            ("urgent (prio 4)", urgent),
            ("background    ", background),
            ("repeat        ", repeat),
        ):
            res = handle.result()
            hit = "cache hit" if handle.cache_hit else "computed "
            print(
                f"  {label}: estimate={res.estimate:.10f}  {hit}  "
                f"finished #{handle.stats.completion_index}"
            )
        cache = svc.stats()["cache"]
        print(
            f"  service: {svc.stats()['rounds']} rotation rounds, "
            f"{cache['hits']} cache hits, "
            f"{svc.stats()['coalesced']} coalesced"
        )

    # The same service is reachable over the network: serve_http() binds
    # an HTTP/JSON API (stdlib server, no extra dependency) and any HTTP
    # client — here a dependency-free asyncio one — drives the full
    # submit → poll → result → shutdown round trip.  Passing
    # cache_dir= would additionally persist results to SQLite so
    # duplicates replay bit-for-bit even across server restarts.
    import asyncio

    from repro import serve_http

    print("\n== HTTP server: asyncio client round trip ==")

    async def http_json(method: str, host: str, port: int, path: str,
                        body: dict = None):
        """Minimal HTTP/1.1 JSON request on raw asyncio streams."""
        import json

        payload = b"" if body is None else json.dumps(body).encode()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body_bytes = raw.partition(b"\r\n\r\n")
        status = int(head.split(None, 2)[1])
        return status, json.loads(body_bytes)

    async def http_round_trip() -> None:
        with serve_http(port=0) as server:  # port 0: pick a free port
            host, port = server.host, server.port
            code, sub = await http_json(
                "POST", host, port, "/v1/jobs",
                {"integrand": "3D-f4", "rel_tol": 1e-3, "priority": 2},
            )
            job = sub["job_id"]
            print(f"  POST /v1/jobs -> {code} (job {job})")
            while True:  # poll until terminal
                _, status = await http_json(
                    "GET", host, port, f"/v1/jobs/{job}"
                )
                if status["status"] in ("done", "failed", "cancelled"):
                    break
                await asyncio.sleep(0.05)
            code, res = await http_json(
                "GET", host, port, f"/v1/jobs/{job}/result"
            )
            print(
                f"  GET /v1/jobs/{job}/result -> {code}: "
                f"estimate={res['result']['estimate']:.10f} "
                f"({res['result']['status']})"
            )
            _, metrics = await http_json("GET", host, port, "/metrics")
            print(
                f"  GET /metrics -> queue={metrics['service']['queued']}, "
                f"submitted={metrics['service']['submitted']}"
            )
        print("  server shut down cleanly")

    asyncio.run(http_round_trip())


if __name__ == "__main__":
    main()
