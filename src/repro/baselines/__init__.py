"""Comparison methods from the paper's evaluation.

* :mod:`~repro.baselines.cuhre` — sequential Cuhre (Cuba 4.0 semantics):
  priority-queue driven, one split per step, same Genz–Malik rules and
  two-level error as PAGANI, charged to a CPU cost model.
* :mod:`~repro.baselines.two_phase` — the two-phase GPU method of Arumugam
  et al. [12][15]: breadth-first phase I (relative-error filtering only, no
  two-level refinement), then per-block sequential Cuhre in phase II with a
  fixed region budget per block, scheduled onto SM slots.
* :mod:`~repro.baselines.qmc` — randomized quasi-Monte Carlo (scrambled
  Sobol / rotated Halton) with a statistical error estimate, standing in
  for the GPU QMC integrator of Borowka et al. [27].
"""

from repro.baselines.cuhre import CuhreConfig, CuhreIntegrator
from repro.baselines.two_phase import TwoPhaseConfig, TwoPhaseIntegrator
from repro.baselines.qmc import QmcConfig, QmcIntegrator
from repro.baselines.vegas import VegasConfig, VegasIntegrator

__all__ = [
    "CuhreConfig",
    "CuhreIntegrator",
    "TwoPhaseConfig",
    "TwoPhaseIntegrator",
    "QmcConfig",
    "QmcIntegrator",
    "VegasConfig",
    "VegasIntegrator",
]
