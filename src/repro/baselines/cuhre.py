"""Sequential Cuhre (the Cuba-library baseline).

Classic globally-adaptive cubature following Algorithm 1 of the paper with
Cuhre's choices: the region with the largest error estimate is extracted
each step (a binary heap), split in two halves along its fourth-difference
axis, both children are evaluated with the Genz–Malik rule set, refined with
the two-level error scheme, and pushed back.  Termination is the global
check ``e/|v| <= τ_rel`` or ``e <= τ_abs`` or the ``max_eval`` cap
(the paper ran Cuba with ``final=1`` and ``max_eval = 1e9``).

The per-step work is charged to a :class:`~repro.gpu.device.CpuSpec` cost
model — sequential Cuhre is scalar CPU code; this provides the deterministic
time axis for the Fig. 5/6 speedup reproductions.  Region counts (Fig. 9)
are cost-model independent.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.result import IntegrationResult, Status
from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule
from repro.cubature.two_level import two_level_errors
from repro.errors import ConfigurationError
from repro.gpu.device import CpuSpec


@dataclass
class CuhreConfig:
    """Cuhre knobs (defaults mirror the paper's Cuba 4.0 runs)."""

    rel_tol: float = 1e-3
    abs_tol: float = 1e-20
    #: function-evaluation budget; the paper used 1e9.  Python wall-clock
    #: makes that impractical for quick benchmark runs, which pass smaller
    #: caps and report DNF — the same way the paper reports methods that
    #: fail to converge.
    max_eval: int = 1_000_000_000
    #: safety cap on stored regions (Cuba grows its region list without
    #: bound; we keep a cap so pathological runs fail loudly)
    max_regions: int = 20_000_000
    error_model: str = "cascade"
    two_level: bool = True

    def validate(self) -> None:
        if not (0.0 < self.rel_tol < 1.0):
            raise ConfigurationError(f"rel_tol must be in (0, 1), got {self.rel_tol}")
        if self.max_eval < 1:
            raise ConfigurationError("max_eval must be positive")


class CuhreIntegrator:
    """Heap-driven sequential adaptive cubature."""

    def __init__(
        self,
        config: Optional[CuhreConfig] = None,
        cpu: Optional[CpuSpec] = None,
    ):
        self.config = config or CuhreConfig()
        self.config.validate()
        self.cpu = cpu or CpuSpec()

    def integrate(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
        max_eval: Optional[int] = None,
    ) -> IntegrationResult:
        """Integrate over an axis-aligned box (unit cube by default)."""
        cfg = self.config
        tau_rel = cfg.rel_tol if rel_tol is None else float(rel_tol)
        tau_abs = cfg.abs_tol if abs_tol is None else float(abs_tol)
        budget = cfg.max_eval if max_eval is None else int(max_eval)
        if bounds is None:
            bounds = [(0.0, 1.0)] * ndim
        b = np.asarray(bounds, dtype=np.float64)
        if b.shape != (ndim, 2):
            raise ConfigurationError(f"bounds must have shape ({ndim}, 2)")

        rule = get_rule(ndim)
        flops_per_eval = float(getattr(integrand, "flops_per_eval", 50.0))
        flops_region = rule.flops_per_region(flops_per_eval)
        sec_region = self.cpu.seconds_for_flops(flops_region)
        sec_heap = self.cpu.heap_op_ns * 1e-9

        t0 = time.perf_counter()

        # Growable SoA buffers for region data; the heap stores
        # (-error, seq, slot) so the largest error pops first.
        cap = 4096
        centers = np.empty((cap, ndim))
        halfw = np.empty((cap, ndim))
        vals = np.empty(cap)
        errs = np.empty(cap)
        axes = np.empty(cap, dtype=np.int64)

        def grow(n_needed: int) -> None:
            nonlocal cap, centers, halfw, vals, errs, axes
            if n_needed <= cap:
                return
            new_cap = max(n_needed, cap * 2)
            centers = np.resize(centers, (new_cap, ndim))
            halfw = np.resize(halfw, (new_cap, ndim))
            vals = np.resize(vals, new_cap)
            errs = np.resize(errs, new_cap)
            axes = np.resize(axes, new_cap)
            cap = new_cap

        # Root region: the full box.
        centers[0] = 0.5 * (b[:, 0] + b[:, 1])
        halfw[0] = 0.5 * (b[:, 1] - b[:, 0])
        ev = evaluate_regions(
            rule, centers[:1], halfw[:1], integrand, error_model=cfg.error_model
        )
        vals[0] = ev.estimate[0]
        errs[0] = ev.error[0]
        axes[0] = ev.split_axis[0]
        n_slots = 1
        neval = ev.neval
        sim_seconds = sec_region + sec_heap
        total_regions = 1

        v_glob = float(vals[0])
        e_glob = float(errs[0])
        heap: list = [(-errs[0], 0, 0)]
        seq = 1

        status = Status.MAX_EVALUATIONS
        child_centers = np.empty((2, ndim))
        child_halfw = np.empty((2, ndim))

        while True:
            if e_glob <= tau_abs:
                status = Status.CONVERGED_ABS
                break
            if v_glob != 0.0 and e_glob <= tau_rel * abs(v_glob):
                status = Status.CONVERGED_REL
                break
            if neval + 2 * rule.npoints > budget:
                status = Status.MAX_EVALUATIONS
                break
            if not heap:
                # Every region has zero error; nothing left to refine.
                status = Status.CONVERGED_ABS if e_glob <= tau_abs else Status.NO_ACTIVE_REGIONS
                break
            if n_slots >= cfg.max_regions:
                status = Status.MEMORY_EXHAUSTED
                break

            _, _, slot = heapq.heappop(heap)
            axis = axes[slot]
            parent_v = vals[slot]
            parent_e = errs[slot]

            # Split in two equal halves along the stored axis.
            new_h = halfw[slot].copy()
            new_h[axis] *= 0.5
            child_centers[0] = centers[slot]
            child_centers[0, axis] -= new_h[axis]
            child_centers[1] = centers[slot]
            child_centers[1, axis] += new_h[axis]
            child_halfw[0] = new_h
            child_halfw[1] = new_h

            ev = evaluate_regions(
                rule, child_centers, child_halfw, integrand,
                error_model=cfg.error_model,
            )
            neval += ev.neval
            total_regions += 2
            if cfg.two_level:
                ref = two_level_errors(
                    ev.estimate, ev.error, np.array([parent_v])
                )
            else:
                ref = ev.error

            # Parent slot is recycled for child 0; child 1 gets a new slot.
            slot2 = n_slots
            grow(n_slots + 1)
            n_slots += 1
            for s, i in ((slot, 0), (slot2, 1)):
                centers[s] = child_centers[i]
                halfw[s] = child_halfw[i]
                vals[s] = ev.estimate[i]
                errs[s] = ref[i]
                axes[s] = ev.split_axis[i]
                heapq.heappush(heap, (-ref[i], seq, s))
                seq += 1

            v_glob += float(ev.estimate.sum()) - parent_v
            e_glob += float(ref.sum()) - parent_e
            sim_seconds += 2 * sec_region + 3 * sec_heap

        wall = time.perf_counter() - t0
        return IntegrationResult(
            estimate=v_glob,
            errorest=e_glob,
            status=status,
            neval=neval,
            nregions=total_regions,
            iterations=total_regions // 2,
            method="cuhre",
            sim_seconds=sim_seconds,
            wall_seconds=wall,
        )
