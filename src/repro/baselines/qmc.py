"""Randomized quasi-Monte Carlo integrator (the Fig. 7 comparator).

Stands in for the GPU QMC library of Borowka et al. [27]: like that method
it targets a user relative tolerance and — unlike plain QMC — returns an
error estimate, obtained from independent randomisations of the point set
(Owen-scrambled Sobol' or rotated Halton replicas).

The sample budget escalates geometrically until the statistical error
estimate meets ``max(τ_rel |v|, τ_abs)`` or the evaluation cap is reached.
Device time is charged per batch through the same cost model as PAGANI's
evaluate kernel: QMC is embarrassingly parallel, so its simulated cost is
pure point throughput plus launch overheads — its convergence *rate* (≈
N^-1 for smooth integrands, worse with weak regularity) is what loses to
cubature in moderate dimensions, which is the paper's observed shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.baselines.sequences import make_sequence
from repro.core.result import IntegrationResult, Status
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice


@dataclass
class QmcConfig:
    rel_tol: float = 1e-3
    abs_tol: float = 1e-20
    #: independent randomisations used for the error estimate
    n_replicas: int = 8
    #: first batch size per replica (power of two keeps Sobol' balanced)
    n_initial: int = 4096
    #: growth factor of the per-replica sample count between rounds
    growth: int = 2
    #: total function-evaluation budget across replicas and rounds
    max_eval: int = 200_000_000
    sequence: str = "sobol"
    seed: int = 20211115  # SC'21 date; fixed for determinism

    def validate(self) -> None:
        if not (0.0 < self.rel_tol < 1.0):
            raise ConfigurationError(f"rel_tol must be in (0, 1), got {self.rel_tol}")
        if self.n_replicas < 2:
            raise ConfigurationError("need >= 2 replicas for an error estimate")
        if self.growth < 2:
            raise ConfigurationError("growth must be >= 2")


class QmcIntegrator:
    """Randomized QMC with geometric sample escalation."""

    def __init__(
        self,
        config: Optional[QmcConfig] = None,
        device: Optional[VirtualDevice] = None,
    ):
        self.config = config or QmcConfig()
        self.config.validate()
        self.device = device if device is not None else VirtualDevice(DeviceSpec.scaled())

    def integrate(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
        max_eval: Optional[int] = None,
    ) -> IntegrationResult:
        cfg = self.config
        tau_rel = cfg.rel_tol if rel_tol is None else float(rel_tol)
        tau_abs = cfg.abs_tol if abs_tol is None else float(abs_tol)
        budget = cfg.max_eval if max_eval is None else int(max_eval)
        if bounds is None:
            bounds = [(0.0, 1.0)] * ndim
        b = np.asarray(bounds, dtype=np.float64)
        if b.shape != (ndim, 2):
            raise ConfigurationError(f"bounds must have shape ({ndim}, 2)")
        lo = b[:, 0]
        span = b[:, 1] - lo
        volume = float(np.prod(span))

        dev = self.device
        dev.reset_clock()
        flops_per_eval = float(getattr(integrand, "flops_per_eval", 50.0))
        # point generation + integrand per sample
        flops_per_point = flops_per_eval + 6.0 * ndim

        sequences = [
            make_sequence(cfg.sequence, ndim, seed=cfg.seed + 7919 * r)
            for r in range(cfg.n_replicas)
        ]
        sums = np.zeros(cfg.n_replicas)
        counts = np.zeros(cfg.n_replicas, dtype=np.int64)

        t0 = time.perf_counter()
        neval = 0
        n_batch = cfg.n_initial
        estimate = 0.0
        errorest = float("inf")
        status = Status.MAX_EVALUATIONS
        rounds = 0

        while True:
            rounds += 1
            for r, seq in enumerate(sequences):
                pts = seq.random(n_batch)
                vals = integrand(lo[None, :] + pts * span[None, :])
                sums[r] += float(np.sum(vals))
                counts[r] += n_batch
            neval += n_batch * cfg.n_replicas
            dev.charge_kernel(
                "qmc_sample",
                work_items=n_batch * cfg.n_replicas,
                flops_per_item=flops_per_point,
            )

            means = volume * sums / counts
            estimate = float(np.mean(means))
            errorest = float(np.std(means, ddof=1) / np.sqrt(cfg.n_replicas))

            if errorest <= tau_abs:
                status = Status.CONVERGED_ABS
                break
            if estimate != 0.0 and errorest <= tau_rel * abs(estimate):
                status = Status.CONVERGED_REL
                break
            next_batch = n_batch * (cfg.growth - 1)
            if neval + next_batch * cfg.n_replicas > budget:
                status = Status.MAX_EVALUATIONS
                break
            # Escalate: add (growth-1)x the current count so the total per
            # replica reaches growth * previous.
            n_batch = next_batch

        wall = time.perf_counter() - t0
        return IntegrationResult(
            estimate=estimate,
            errorest=errorest,
            status=status,
            neval=neval,
            nregions=0,
            iterations=rounds,
            method=f"qmc-{cfg.sequence}",
            sim_seconds=dev.elapsed_seconds,
            wall_seconds=wall,
        )
