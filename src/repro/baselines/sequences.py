"""Low-discrepancy sequence generators for the QMC baseline.

Two engines are provided:

* :class:`HaltonSequence` — implemented from scratch: the radical-inverse
  (van der Corput) construction in the first ``ndim`` prime bases, with
  optional Cranley–Patterson rotation (a uniform random shift modulo 1)
  for randomisation.  Self-contained, any dimension.
* :class:`SobolSequence` — wraps SciPy's Sobol' engine (Joe–Kuo direction
  numbers) with Owen scrambling for randomisation.  SciPy is a declared
  runtime dependency; the Halton engine is the from-scratch fallback and
  the two are cross-validated in the test suite.

Randomisation is what turns a QMC rule into an integrator with an *error
estimate*: independent randomisations give independent estimates whose
spread is a statistically valid error measure — the property that makes the
method of Borowka et al. [27] comparable to PAGANI in the paper's Fig. 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.stats import qmc as _scipy_qmc


def first_primes(k: int) -> np.ndarray:
    """The first ``k`` primes (Halton bases)."""
    primes = []
    candidate = 2
    while len(primes) < k:
        for p in primes:
            if p * p > candidate:
                break
            if candidate % p == 0:
                break
        else:
            primes.append(candidate)
            candidate += 1
            continue
        if candidate % p == 0:  # type: ignore[possibly-undefined]
            candidate += 1
            continue
        primes.append(candidate)
        candidate += 1
    return np.array(primes[:k], dtype=np.int64)


def radical_inverse(indices: np.ndarray, base: int) -> np.ndarray:
    """Vectorised van der Corput radical inverse of ``indices`` in ``base``.

    Digit-reverses the index in the given base and places the digits after
    the radix point: the 1-D backbone of the Halton sequence.
    """
    idx = np.asarray(indices, dtype=np.int64).copy()
    out = np.zeros(idx.shape, dtype=np.float64)
    denom = np.ones(idx.shape, dtype=np.float64)
    while np.any(idx > 0):
        denom *= base
        out += (idx % base) / denom
        idx //= base
    return out


class HaltonSequence:
    """From-scratch Halton sequence with Cranley–Patterson rotation.

    Parameters
    ----------
    ndim:
        Point dimensionality.
    seed:
        When given, a uniform shift is drawn per dimension and added modulo
        one — the classic randomisation that preserves the low-discrepancy
        structure while making replicas independent.
    leap_zero:
        Skip the all-zeros first point (index starts at 1), avoiding the
        degenerate origin sample.
    """

    name = "halton"

    def __init__(self, ndim: int, seed: Optional[int] = None, leap_zero: bool = True):
        if ndim < 1:
            raise ValueError("ndim must be >= 1")
        self.ndim = ndim
        self.bases = first_primes(ndim)
        self._next = 1 if leap_zero else 0
        if seed is None:
            self.shift = None
        else:
            rng = np.random.default_rng(seed)
            self.shift = rng.random(ndim)

    def random(self, n: int) -> np.ndarray:
        """The next ``n`` points, shape ``(n, ndim)`` in the unit cube."""
        idx = np.arange(self._next, self._next + n, dtype=np.int64)
        self._next += n
        pts = np.empty((n, self.ndim))
        for d, base in enumerate(self.bases):
            pts[:, d] = radical_inverse(idx, int(base))
        if self.shift is not None:
            pts += self.shift[None, :]
            pts -= np.floor(pts)
        return pts


class SobolSequence:
    """Owen-scrambled Sobol' points via SciPy's Joe–Kuo implementation."""

    name = "sobol"

    def __init__(self, ndim: int, seed: Optional[int] = None):
        if ndim < 1:
            raise ValueError("ndim must be >= 1")
        self.ndim = ndim
        self._engine = _scipy_qmc.Sobol(d=ndim, scramble=seed is not None, seed=seed)

    def random(self, n: int) -> np.ndarray:
        return self._engine.random(n)


def make_sequence(kind: str, ndim: int, seed: Optional[int] = None):
    """Factory used by the QMC integrator configuration."""
    if kind == "halton":
        return HaltonSequence(ndim, seed=seed)
    if kind == "sobol":
        return SobolSequence(ndim, seed=seed)
    raise ValueError(f"unknown sequence kind {kind!r}")
