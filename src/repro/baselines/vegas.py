"""VEGAS-style adaptive importance-sampling Monte Carlo.

The paper's background cites the Cuba library's Monte Carlo methods (Vegas,
Suave, Divonne) and reports that deterministic Cuhre consistently beats them
at moderate dimension — this module provides the representative member so
that claim can be exercised inside the reproduction, too.

Classic VEGAS (Lepage 1980): a separable importance grid with ``n_bins``
bins per axis is adapted over several passes; each pass samples from the
grid, estimates the integral by importance weighting, and flattens/sharpens
the bin boundaries toward equal contribution.  The final estimate combines
passes by inverse-variance weighting; the error estimate is the combined
standard error (plus the χ² consistency diagnostic VEGAS is known for).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.result import IntegrationResult, Status
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice


@dataclass
class VegasConfig:
    rel_tol: float = 1e-3
    abs_tol: float = 1e-20
    n_bins: int = 64
    n_iterations: int = 12
    samples_per_iteration: int = 65536
    #: grid-damping exponent (Lepage's alpha; 0 disables adaptation)
    alpha: float = 1.5
    #: discard this many warm-up passes from the estimate
    n_warmup: int = 3
    max_eval: int = 100_000_000
    seed: int = 1980  # Lepage's VEGAS year

    def validate(self) -> None:
        if not (0.0 < self.rel_tol < 1.0):
            raise ConfigurationError(f"rel_tol must be in (0, 1), got {self.rel_tol}")
        if self.n_bins < 2:
            raise ConfigurationError("n_bins must be >= 2")
        if self.n_iterations <= self.n_warmup:
            raise ConfigurationError("need more iterations than warm-up passes")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")


class VegasIntegrator:
    """Separable-grid importance sampling with inverse-variance combining."""

    def __init__(
        self,
        config: Optional[VegasConfig] = None,
        device: Optional[VirtualDevice] = None,
    ):
        self.config = config or VegasConfig()
        self.config.validate()
        self.device = device if device is not None else VirtualDevice(DeviceSpec.scaled())

    # ------------------------------------------------------------------
    def integrate(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
        max_eval: Optional[int] = None,
    ) -> IntegrationResult:
        cfg = self.config
        tau_rel = cfg.rel_tol if rel_tol is None else float(rel_tol)
        tau_abs = cfg.abs_tol if abs_tol is None else float(abs_tol)
        budget = cfg.max_eval if max_eval is None else int(max_eval)
        if bounds is None:
            bounds = [(0.0, 1.0)] * ndim
        b = np.asarray(bounds, dtype=np.float64)
        if b.shape != (ndim, 2):
            raise ConfigurationError(f"bounds must have shape ({ndim}, 2)")
        lo = b[:, 0]
        span = b[:, 1] - lo
        volume = float(np.prod(span))

        dev = self.device
        dev.reset_clock()
        flops_per_eval = float(getattr(integrand, "flops_per_eval", 50.0))
        rng = np.random.default_rng(cfg.seed)

        # grid[d] holds n_bins+1 increasing knots in [0, 1] per axis
        nb = cfg.n_bins
        grid = np.tile(np.linspace(0.0, 1.0, nb + 1), (ndim, 1))

        t0 = time.perf_counter()
        neval = 0
        means: list[float] = []
        variances: list[float] = []
        status = Status.MAX_EVALUATIONS
        estimate = 0.0
        errorest = float("inf")
        it_done = 0

        for it in range(cfg.n_iterations):
            n = cfg.samples_per_iteration
            if neval + n > budget:
                status = Status.MAX_EVALUATIONS
                break
            # sample: pick a bin uniformly, then uniform inside the bin;
            # the density is then 1/(nb * bin_width) per axis
            bins = rng.integers(0, nb, size=(n, ndim))
            u = rng.random((n, ndim))
            widths = np.take_along_axis(np.diff(grid, axis=1).T, bins, axis=0)
            lefts = np.take_along_axis(grid[:, :-1].T, bins, axis=0)
            x01 = lefts + u * widths  # in [0,1]^n
            weight = np.prod(nb * widths, axis=1)  # 1/pdf
            vals = integrand(lo[None, :] + x01 * span[None, :])
            neval += n
            dev.charge_kernel(
                "vegas_sample", work_items=n,
                flops_per_item=flops_per_eval + 10.0 * ndim,
            )

            contrib = vals * weight * volume
            mean = float(np.mean(contrib))
            var = float(np.var(contrib) / n)
            it_done = it + 1

            # --- grid adaptation (Lepage damping) ------------------------
            if cfg.alpha > 0:
                f2 = (vals * weight * volume) ** 2
                for d in range(ndim):
                    d_acc = np.bincount(bins[:, d], weights=f2, minlength=nb)
                    if d_acc.sum() <= 0:
                        continue
                    d_acc /= d_acc.sum()
                    # smooth + damp
                    sm = np.convolve(d_acc, [0.25, 0.5, 0.25], mode="same")
                    sm /= sm.sum()
                    with np.errstate(divide="ignore", invalid="ignore"):
                        damp = np.where(
                            sm > 0,
                            ((1 - sm) / np.maximum(-np.log(sm), 1e-30)) ** cfg.alpha,
                            0.0,
                        )
                    if damp.sum() <= 0:
                        continue
                    damp /= damp.sum()
                    # rebuild knots so each new bin holds equal damped mass
                    cdf = np.concatenate(([0.0], np.cumsum(damp)))
                    cdf /= cdf[-1]
                    targets = np.linspace(0.0, 1.0, nb + 1)
                    grid[d] = np.interp(targets, cdf, grid[d])

            if it < cfg.n_warmup:
                continue  # adapt only; discard estimate
            means.append(mean)
            variances.append(max(var, 1e-300))

            w = 1.0 / np.asarray(variances)
            estimate = float(np.sum(w * np.asarray(means)) / np.sum(w))
            errorest = float(np.sqrt(1.0 / np.sum(w)))
            if errorest <= tau_abs:
                status = Status.CONVERGED_ABS
                break
            if estimate != 0.0 and errorest <= tau_rel * abs(estimate):
                status = Status.CONVERGED_REL
                break

        wall = time.perf_counter() - t0
        return IntegrationResult(
            estimate=estimate,
            errorest=errorest,
            status=status,
            neval=neval,
            nregions=0,
            iterations=it_done,
            method="vegas",
            sim_seconds=dev.elapsed_seconds,
            wall_seconds=wall,
        )

    def chi2_per_dof(self, means: Sequence[float], variances: Sequence[float]) -> float:
        """VEGAS' consistency diagnostic across kept passes."""
        m = np.asarray(means)
        v = np.asarray(variances)
        if m.size < 2:
            return 0.0
        w = 1.0 / v
        combined = float(np.sum(w * m) / np.sum(w))
        return float(np.sum((m - combined) ** 2 / v) / (m.size - 1))
