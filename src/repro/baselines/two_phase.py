"""The two-phase GPU method of Arumugam et al. [12][15].

Phase I expands the sub-region list breadth-first (like PAGANI, from which
it differs by using only relative-error filtering, *without* the two-level
error refinement — the paper explicitly notes phase I lacks it) until the
list is large enough for a 1-1 mapping with the launchable thread blocks.

Phase II then runs an independent *sequential* Cuhre inside each block over
its assigned sub-region, with a fixed per-block region budget (2048 on the
paper's 16 GB V100) and a purely local termination condition — the global
relative error is unknowable without synchronisation, which is exactly the
weakness PAGANI removes.  A block whose heap fills before its local
tolerance is met has exhausted its memory; when that happens and the global
tolerance is missed, the method fails (the paper's Figs. 4/5: failures
beyond ~5 digits on 5D f4 and 6D f6).

Implementation note: the per-block sequential Cuhre loops are advanced in
lock-step so the child evaluations of all live blocks form one batched
(vectorized) rule evaluation per step.  Blocks are independent, so lock-step
advancement is observationally identical to running them to completion one
by one — it only changes host wall-clock, not results.  Simulated phase-II
time is the makespan of the per-block durations on the device's SM slots.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.classify import rel_err_classify
from repro.core.regions import RegionStore, bytes_per_region
from repro.core.result import IntegrationResult, IterationRecord, Status
from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule
from repro.cubature.two_level import two_level_errors
from repro.errors import ConfigurationError
from repro.gpu import thrust
from repro.gpu.device import DeviceSpec, VirtualDevice, KERNEL_INEFFICIENCY
from repro.gpu.scheduler import BlockScheduler


@dataclass
class TwoPhaseConfig:
    """Two-phase method knobs.

    ``target_blocks`` is the 1-1 phase-I mapping limit (the paper's 2^15 —
    a grid/SM resource, not a memory one, so it does not scale with device
    memory).  ``block_region_budget`` is the paper's 2048-region memory
    space per phase-II block.  Device memory binds *globally*: phase-II
    blocks draw regions from the device pool as they refine, and when the
    pool is exhausted every still-unconverged block fails — this is the
    mechanism behind the paper's "early exhaustion of the allocated memory
    resources" failures, and on a memory-scaled device it appears at
    proportionally lower digit counts.
    """

    rel_tol: float = 1e-3
    abs_tol: float = 1e-20
    max_phase1_iterations: int = 60
    target_blocks: int = 32768
    block_region_budget: int = 2048
    init_target: int = 2048
    initial_splits: Optional[int] = None
    relerr_filtering: bool = True
    error_model: str = "cascade"
    #: two-level refinement in phase II only (paper: phase I lacks it)
    two_level_phase2: bool = True

    def validate(self) -> None:
        if not (0.0 < self.rel_tol < 1.0):
            raise ConfigurationError(f"rel_tol must be in (0, 1), got {self.rel_tol}")
        if self.target_blocks < 1:
            raise ConfigurationError("target_blocks must be >= 1")

    def splits_for(self, ndim: int) -> int:
        if self.initial_splits is not None:
            return self.initial_splits
        return max(2, math.ceil(self.init_target ** (1.0 / ndim)))


class _Block:
    """State of one phase-II block: a bounded local Cuhre."""

    __slots__ = ("heap", "centers", "halfw", "vals", "errs", "axes",
                 "v", "e", "n_regions", "evals", "done", "failed", "seq")

    def __init__(self, center, halfw, v, e, axis):
        self.centers: List[np.ndarray] = [center]
        self.halfw: List[np.ndarray] = [halfw]
        self.vals: List[float] = [v]
        self.errs: List[float] = [e]
        self.axes: List[int] = [axis]
        self.heap: list = [(-e, 0, 0)]
        self.v = v
        self.e = e
        self.n_regions = 1
        self.evals = 1  # region evaluations performed (for makespan)
        self.done = False
        self.failed = False
        self.seq = 1


class TwoPhaseIntegrator:
    """Two-phase adaptive cubature on the virtual device."""

    def __init__(
        self,
        config: Optional[TwoPhaseConfig] = None,
        device: Optional[VirtualDevice] = None,
    ):
        self.config = config or TwoPhaseConfig()
        self.config.validate()
        self.device = device if device is not None else VirtualDevice(DeviceSpec.scaled())

    # ------------------------------------------------------------------
    def integrate(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
    ) -> IntegrationResult:
        cfg = self.config
        tau_rel = cfg.rel_tol if rel_tol is None else float(rel_tol)
        tau_abs = cfg.abs_tol if abs_tol is None else float(abs_tol)
        if bounds is None:
            bounds = [(0.0, 1.0)] * ndim
        b = np.asarray(bounds, dtype=np.float64)
        if b.shape != (ndim, 2):
            raise ConfigurationError(f"bounds must have shape ({ndim}, 2)")

        rule = get_rule(ndim)
        dev = self.device
        dev.reset_clock()
        dev.memory.reset()
        flops_per_eval = float(getattr(integrand, "flops_per_eval", 50.0))
        flops_region = rule.flops_per_region(flops_per_eval)
        bpr = bytes_per_region(ndim)

        budget = int(cfg.block_region_budget)
        max_blocks = int(cfg.target_blocks)
        #: total regions the device pool can hold for phase II
        cap_regions = int(dev.memory.capacity // bpr)

        t0 = time.perf_counter()
        neval = 0
        total_regions = 0
        v_finished = 0.0
        e_finished = 0.0
        trace: list[IterationRecord] = []

        def record(it: int, m: int, n_active: int, v: float, e: float) -> None:
            trace.append(
                IterationRecord(
                    iteration=it, n_regions=m, n_active=n_active,
                    n_finished_relerr=m - n_active, n_finished_threshold=0,
                    estimate=v, errorest=e, finished_estimate=v_finished,
                    finished_errorest=e_finished, neval=neval,
                    sim_seconds=dev.elapsed_seconds,
                )
            )

        # ------------------------------------------------------------
        # Phase I: breadth-first expansion with rel-err filtering only.
        # ------------------------------------------------------------
        store = RegionStore.uniform_split(b, cfg.splits_for(ndim), device=dev)
        status: Optional[Status] = None
        v_global = 0.0
        e_global = float("inf")

        for it in range(cfg.max_phase1_iterations):
            m = store.size
            total_regions += m
            ev = evaluate_regions(
                rule, store.centers, store.halfwidths, integrand,
                error_model=cfg.error_model,
            )
            neval += ev.neval
            dev.charge_kernel("evaluate", work_items=m, flops_per_item=flops_region)
            store.estimate = ev.estimate
            store.error = ev.error  # no two-level refinement in phase I
            store.split_axis = ev.split_axis

            if cfg.relerr_filtering:
                active = rel_err_classify(ev.estimate, ev.error, tau_rel, device=dev)
            else:
                active = np.ones(m, dtype=bool)

            v_it = thrust.reduce_sum(dev, ev.estimate, name="thrust::reduce(V)")
            e_it = thrust.reduce_sum(dev, ev.error, name="thrust::reduce(E)")
            v_global = v_it + v_finished
            e_global = e_it + e_finished

            if e_global <= tau_abs:
                status = Status.CONVERGED_ABS
                break
            if v_global != 0.0 and e_global <= tau_rel * abs(v_global):
                status = Status.CONVERGED_REL
                break

            v_active = thrust.dot(dev, ev.estimate, active.astype(np.float64))
            e_active = thrust.dot(dev, ev.error, active.astype(np.float64))
            v_finished += v_it - v_active
            e_finished += e_it - e_active
            n_active = int(np.count_nonzero(active))
            record(it, m, n_active, v_global, e_global)
            if n_active == 0:
                v_global = v_finished
                e_global = e_finished
                status = (
                    Status.CONVERGED_REL
                    if v_global != 0.0 and e_global <= tau_rel * abs(v_global)
                    else Status.NO_ACTIVE_REGIONS
                )
                break

            store.filter(active)
            # Phase I runs "until reaching a maximum number of regions that
            # can satisfy a 1-1 mapping with the parallel blocks": stop
            # BEFORE a split would overshoot the block count, so every
            # surviving region gets a phase-II block.  Relative-error
            # filtering keeps the active list shrinking, which lets phase I
            # refine hot spots for many iterations before handing over.
            if 2 * store.size > max_blocks or not store.split_would_fit(store.size):
                status = None  # proceed to phase II
                break
            store.split()
        else:
            status = Status.MAX_ITERATIONS

        if status is not None:
            wall = time.perf_counter() - t0
            store.release()
            return IntegrationResult(
                estimate=v_global, errorest=e_global, status=status,
                neval=neval, nregions=total_regions, iterations=len(trace),
                method="two_phase", sim_seconds=dev.elapsed_seconds,
                wall_seconds=wall, trace=trace,
            )

        # ------------------------------------------------------------
        # Phase II: per-block sequential Cuhre, lock-step batched.
        # ------------------------------------------------------------
        n_blocks = min(store.size, max_blocks)
        blocks = [
            _Block(
                store.centers[i].copy(), store.halfwidths[i].copy(),
                float(store.estimate[i]), float(store.error[i]),
                int(store.split_axis[i]),
            )
            for i in range(n_blocks)
        ]
        # Regions beyond the block capacity stay un-refined; their phase-I
        # estimates are committed as-is (resource exhaustion).
        overflow_v = float(np.sum(store.estimate[n_blocks:]))
        overflow_e = float(np.sum(store.error[n_blocks:]))
        overflow = store.size - n_blocks
        store.release()

        # Local tolerance: each block refines until its own relative error
        # meets τ_rel (the only check a block can perform without global
        # synchronisation).
        live = []
        for blk in blocks:
            if blk.e > tau_rel * abs(blk.v) and budget > 1:
                live.append(blk)
            else:
                blk.done = True

        live_regions = len(blocks)  # regions resident in device memory
        pool_exhausted = False
        child_c = None
        child_h = None
        while live:
            if live_regions + len(live) > cap_regions:
                # Device memory exhausted: every still-running block fails
                # with its current (insufficient) estimates — the paper's
                # "early exhaustion of the allocated memory resources".
                pool_exhausted = True
                for blk in live:
                    blk.done = True
                    blk.failed = True
                break
            k = len(live)
            if child_c is None or child_c.shape[0] != 2 * k:
                child_c = np.empty((2 * k, ndim))
                child_h = np.empty((2 * k, ndim))
            parents = []
            for j, blk in enumerate(live):
                _, _, slot = heapq.heappop(blk.heap)
                axis = blk.axes[slot]
                nh = blk.halfw[slot].copy()
                nh[axis] *= 0.5
                c = blk.centers[slot]
                child_c[2 * j] = c
                child_c[2 * j, axis] = c[axis] - nh[axis]
                child_c[2 * j + 1] = c
                child_c[2 * j + 1, axis] = c[axis] + nh[axis]
                child_h[2 * j] = nh
                child_h[2 * j + 1] = nh
                parents.append((blk, slot))

            ev = evaluate_regions(
                rule, child_c, child_h, integrand, error_model=cfg.error_model
            )
            neval += ev.neval
            total_regions += 2 * k
            if cfg.two_level_phase2:
                parent_vals = np.array([blk.vals[slot] for blk, slot in parents])
                ref = two_level_errors(ev.estimate, ev.error, parent_vals)
            else:
                ref = ev.error

            next_live = []
            for j, (blk, slot) in enumerate(parents):
                pv, pe = blk.vals[slot], blk.errs[slot]
                for i, s in ((2 * j, slot), (2 * j + 1, None)):
                    if s is None:
                        s = len(blk.vals)
                        blk.centers.append(child_c[i].copy())
                        blk.halfw.append(child_h[i].copy())
                        blk.vals.append(float(ev.estimate[i]))
                        blk.errs.append(float(ref[i]))
                        blk.axes.append(int(ev.split_axis[i]))
                    else:
                        blk.centers[s] = child_c[i].copy()
                        blk.halfw[s] = child_h[i].copy()
                        blk.vals[s] = float(ev.estimate[i])
                        blk.errs[s] = float(ref[i])
                        blk.axes[s] = int(ev.split_axis[i])
                    heapq.heappush(blk.heap, (-blk.errs[s], blk.seq, s))
                    blk.seq += 1
                blk.v += float(ev.estimate[2 * j] + ev.estimate[2 * j + 1]) - pv
                blk.e += float(ref[2 * j] + ref[2 * j + 1]) - pe
                blk.n_regions += 1
                blk.evals += 2
                if blk.e <= tau_rel * abs(blk.v) or blk.e <= tau_abs / max(1, n_blocks):
                    blk.done = True
                elif blk.n_regions >= budget:
                    blk.done = True
                    blk.failed = True  # local 2048-region workspace full
                else:
                    next_live.append(blk)
            live_regions += k  # each step adds one region per live block
            live = next_live

        # Global accumulation and phase-II makespan.
        v_blocks = sum(blk.v for blk in blocks)
        e_blocks = sum(blk.e for blk in blocks)
        v_global = v_blocks + v_finished + overflow_v
        e_global = e_blocks + e_finished + overflow_e

        # A phase-II block is one 256-thread CUDA block owning 1/slots of
        # the device; it evaluates its regions sequentially.
        spec = dev.spec
        per_slot_rate = (
            spec.peak_gflops_fp64 * 1e9 * spec.eff_max * KERNEL_INEFFICIENCY
        ) / spec.parallel_slots
        sec_per_region = flops_region / per_slot_rate
        durations = [blk.evals * sec_per_region for blk in blocks]
        report = BlockScheduler(spec.parallel_slots).schedule(durations)
        dev.charge_makespan("phase2", report.makespan)
        self.last_phase2_report = report

        any_failed = any(blk.failed for blk in blocks) or overflow > 0 or pool_exhausted
        if e_global <= tau_abs:
            status = Status.CONVERGED_ABS
        elif v_global != 0.0 and e_global <= tau_rel * abs(v_global):
            status = Status.CONVERGED_REL
        elif any_failed:
            status = Status.MEMORY_EXHAUSTED
        else:
            status = Status.MAX_EVALUATIONS

        wall = time.perf_counter() - t0
        return IntegrationResult(
            estimate=v_global, errorest=e_global, status=status,
            neval=neval, nregions=total_regions, iterations=len(trace),
            method="two_phase", sim_seconds=dev.elapsed_seconds,
            wall_seconds=wall, trace=trace,
        )
