"""The batched multi-integrand scheduler.

PAGANI parallelises *one* integral across a device; production workloads
carry *many* independent integrals at once.  The scheduler interleaves any
number of :class:`~repro.core.pagani.PaganiRun` state machines over one
shared :class:`~repro.backends.base.ArrayBackend`:

* each scheduling **round** serves every live member exactly one
  breadth-first iteration — no member can be starved by construction, and
  the service order rotates round-robin so no member is systematically
  first (or last) in the fused submission either;
* the members' ``EVALUATE`` chunk thunks for the round are concatenated
  into **one** ``run_chunks`` submission, so a parallel backend sees one
  large uniform batch of independent chunks instead of N small
  per-integral sweeps (a thread pool gets chunk-level parallelism even
  when every member's sweep is a single chunk; a device backend amortises
  launch overhead);
* a member that reaches a terminal status **exits early**: its region
  store is released inside ``complete_iteration`` (device-memory
  accounting drops to zero, the arrays become collectable) while the
  stragglers keep iterating.

Numerics: a thunk only ever writes its own member's pre-allocated output
slices, so fusing changes nothing — each member computes exactly the bits
it would have computed alone on the same backend with the same chunk
decomposition.  The chunk decomposition itself is each member's
``chunk_budget``; :func:`repro.api.integrate_many` keeps the reference
budget on the numpy backend (bit-identical to sequential ``integrate``)
and switches parallel backends to a throughput-tuned grain (see
:data:`FUSED_CHUNK_BUDGET`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.backends import BackendLike, ThreadedNumpyBackend, get_backend
from repro.core.pagani import PaganiRun
from repro.core.result import IntegrationResult
from repro.errors import ConfigurationError

class BatchMemberError(RuntimeError):
    """One or more batch members' integrands raised during a fused round.

    Every offending member was abandoned (memory released, no result);
    the rest of the batch is intact and a subsequent
    ``run()``/``run_round()`` continues without them.  ``member`` is the
    first offender's index and its exception is chained as
    ``__cause__``; ``failures`` maps every offending member index of the
    round to its exception, so no failure is lost when several members
    die in the same fused submission.
    """

    def __init__(self, failures: "Dict[int, BaseException]"):
        members = sorted(failures)
        if len(members) == 1:
            label = f"batch member {members[0]} raised ", "was abandoned"
        else:
            label = f"batch members {members} raised ", "were abandoned"
        super().__init__(
            f"{label[0]}during evaluation and {label[1]}; the remaining "
            "members are intact — call run() again to continue without "
            "the dead ones"
        )
        self.member = members[0]
        self.failures = dict(failures)


#: The threaded backend's fused chunk grain (floats per chunk), re-exported
#: for documentation and tests.  Two effects motivate a grain far below the
#: sequential default of 16M: chunks sized to stay cache-resident make the
#: memory-bound evaluate sweep measurably faster even on one core, and many
#: small chunks give a thread pool enough independent work items to use
#: every core once the members' thunks are fused.  Each backend declares
#: its own policy via ``ArrayBackend.preferred_batch_chunk_budget``.
FUSED_CHUNK_BUDGET = ThreadedNumpyBackend.preferred_batch_chunk_budget


class _GuardedTask:
    """Per-member isolation wrapper around one evaluation chunk task.

    Captures ordinary exceptions into the scheduler's per-round failure
    map instead of letting them abort the fused submission
    (``Exception``, not ``BaseException``: a ``KeyboardInterrupt`` inside
    a thunk must interrupt the batch, not masquerade as an integrand
    bug).  The wrapper is transparent to the process backend's
    remote-chunk protocol: it forwards the wrapped task's ``remote_spec``
    and guards ``complete_remote`` the same way, so a remote integrand
    failure is isolated to its member exactly like a local one.
    """

    __slots__ = ("_task", "_member", "_failures", "remote_spec")

    def __init__(self, task, member: int, failures: "Dict[int, BaseException]"):
        self._task = task
        self._member = member
        self._failures = failures
        self.remote_spec = getattr(task, "remote_spec", None)

    def __call__(self) -> None:
        try:
            self._task()
        except Exception as exc:
            self._failures.setdefault(self._member, exc)

    def complete_remote(self, result=None, error=None) -> None:
        try:
            self._task.complete_remote(result=result, error=error)
        except Exception as exc:
            self._failures.setdefault(self._member, exc)


class _RetiredRun:
    """Tombstone for a retired member: finished, memoryless, resultless."""

    finished = True
    has_result = False

    def abandon(self) -> None:
        pass

    @property
    def result(self):
        raise RuntimeError("this batch member was retired; its result was "
                           "consumed and released")


_RETIRED = _RetiredRun()


@dataclass
class BatchStats:
    """Observable scheduler behaviour (tested for fairness guarantees)."""

    #: scheduling rounds executed (== max member iteration count)
    rounds: int = 0
    #: fused ``run_chunks`` submissions (one per round)
    fused_submissions: int = 0
    #: total chunk thunks submitted across all rounds
    chunks_submitted: int = 0
    #: peak number of simultaneously live members
    peak_live: int = 0
    #: iterations served per member index — fairness: while a member is
    #: live, its count equals the round number
    iterations_served: Dict[int, int] = field(default_factory=dict)
    #: member index -> round (1-based) in which it exited
    exit_round: Dict[int, int] = field(default_factory=dict)


class BatchScheduler:
    """Round-robin interleaver of PAGANI runs over one shared backend.

    Parameters
    ----------
    backend:
        The shared execution backend.  Every member run must have been
        built on this backend — fusing thunks across array libraries is a
        contradiction, and the scheduler refuses it.

    Usage::

        sched = BatchScheduler(backend="threaded")
        for run in runs:   # one PaganiIntegrator.start_run(...) each —
            sched.add(run)  # an integrator's device hosts one live run
        sched.run()
        results = [r.result for r in runs]
    """

    def __init__(self, backend: BackendLike = None):
        self.backend = get_backend(backend)
        self._runs: List[PaganiRun] = []
        self.stats = BatchStats()
        #: member index -> exception captured from its thunks this round
        self._thunk_failures: Dict[int, BaseException] = {}

    # ------------------------------------------------------------------
    def add(self, run: PaganiRun) -> int:
        """Register a run; returns its member index.

        Admission is **dynamic**: calling ``add`` between rounds splices
        the new member into the live rotation — the next ``run_round``
        serves it alongside the existing members.  (The service layer
        admits queued jobs this way as earlier jobs converge and free
        their ``max_concurrent`` slots.)  Adding *during* a round is not
        supported; rounds are atomic.
        """
        if run.backend is not self.backend:
            raise ConfigurationError(
                "batch member was built on a different backend instance "
                f"({run.backend!r}) than the scheduler's ({self.backend!r})"
            )
        if run.finished:
            raise ConfigurationError("cannot add an already-finished run")
        self._runs.append(run)
        idx = len(self._runs) - 1
        self.stats.iterations_served[idx] = 0
        return idx

    # ------------------------------------------------------------------
    @property
    def members(self) -> List[PaganiRun]:
        return list(self._runs)

    def member(self, index: int) -> PaganiRun:
        """The run at ``index`` without copying the member list."""
        return self._runs[index]

    @property
    def live(self) -> List[int]:
        """Indices of members that have not reached a terminal status."""
        return [i for i, r in enumerate(self._runs) if not r.finished]

    # ------------------------------------------------------------------
    def retire_member(self, index: int) -> None:
        """Release a finished member's run entirely (long-lived rotations).

        ``add`` only ever appends, so a scheduler hosting a stream of
        jobs would otherwise pin every finished run — with its result
        and trace — for its own lifetime.  Retiring replaces the run
        with a tombstone: the index keeps its slot (later members keep
        their indices), the member stays non-live, and :meth:`run`
        yields ``None`` for it.  Only finished members can be retired;
        the caller must have consumed the result first.
        """
        if not self._runs[index].finished:
            raise ConfigurationError("cannot retire a live member")
        self._runs[index] = _RETIRED

    # ------------------------------------------------------------------
    def abandon_member(self, index: int) -> None:
        """Cancel a live member: release its memory, record its exit.

        The member yields ``None`` in :meth:`run`'s result list, exactly
        like one abandoned after an integrand failure.  Abandoning an
        already-finished member is a no-op.  This is the in-flight
        cancellation hook of the service layer.
        """
        run = self._runs[index]
        if run.finished:
            return
        run.abandon()
        self.stats.exit_round[index] = self.stats.rounds

    # ------------------------------------------------------------------
    def run_round(self, only: Optional[Sequence[int]] = None) -> List[int]:
        """Serve one iteration to every live member; returns who exited.

        The round's evaluation thunks are fused into a single backend
        submission; completion then runs member-by-member in the round's
        service order.

        ``only`` restricts the round to a subset of member indices (the
        live members not listed simply sit the round out).  This is the
        weighted-rotation hook: a caller that serves high-priority
        members in more rounds than low-priority ones gets
        priority-proportional progress while each individual round keeps
        the fused-submission shape.  The default serves everyone —
        plain round-robin fairness, as the fairness tests assert.

        A member whose integrand raises is **isolated**: its run is
        abandoned (memory released, no result) and the exception
        re-raised after the round's healthy members complete their
        iteration, so the rest of the batch stays consistent and a
        subsequent :meth:`run`/:meth:`run_round` simply continues without
        the dead member.
        """
        live = self.live
        if only is not None:
            chosen = set(only)
            live = [i for i in live if i in chosen]
        if not live:
            return []
        # Rotate the service order by the round number: over the batch
        # lifetime every member spends equal time at the head of the fused
        # submission (first chunks scheduled) and at the tail.
        shift = self.stats.rounds % len(live)
        order = live[shift:] + live[:shift]

        tasks: List[Callable[[], None]] = []
        prepared: List[int] = []
        try:
            for i in order:
                for task in self._runs[i].prepare_evaluation():
                    tasks.append(self._guard(task, i))
                prepared.append(i)
        except BaseException:
            # Preparation itself failed: nothing was submitted, so the
            # already-prepared members just roll back and stay live.
            for i in prepared:
                self._runs[i].cancel_evaluation()
            raise

        # The guards capture thunk exceptions instead of letting them
        # abort the fused submission, so every healthy member's chunks
        # run to completion regardless of backend scheduling.  Anything
        # that still escapes (KeyboardInterrupt, a broken pool) aborts
        # the round: every member rolls back to re-preparable state —
        # re-preparing rebuilds and rewrites the output arrays, so
        # partially-executed thunks are harmless.
        self._thunk_failures.clear()
        try:
            self.backend.run_chunks(tasks)
        except BaseException:
            for i in prepared:
                self._runs[i].cancel_evaluation()
            raise
        failed = dict(self._thunk_failures)

        exited: List[int] = []
        self.stats.rounds += 1
        self.stats.fused_submissions += 1
        self.stats.chunks_submitted += len(tasks)
        self.stats.peak_live = max(self.stats.peak_live, len(live))
        for pos, i in enumerate(order):
            self.stats.iterations_served[i] += 1
            if i in failed:
                # Output arrays are indeterminate; the member is dead.
                self._runs[i].abandon()
                self.stats.exit_round[i] = self.stats.rounds
                exited.append(i)
                continue
            try:
                done = self._runs[i].complete_iteration()
            except BaseException:
                # Completion is not transactional: this member's state is
                # indeterminate, so it is abandoned; members later in the
                # service order roll back to re-preparable (their round's
                # work is redone, which is merely wasted, not wrong).
                self._runs[i].abandon()
                for j in order[pos + 1:]:
                    self._runs[j].cancel_evaluation()
                raise
            if done:
                self.stats.exit_round[i] = self.stats.rounds
                exited.append(i)
        if failed:
            raise BatchMemberError(failed) from next(iter(failed.values()))
        return exited

    # ------------------------------------------------------------------
    def _guard(self, task: Callable[[], None], member: int):
        return _GuardedTask(task, member, self._thunk_failures)

    # ------------------------------------------------------------------
    def run(self) -> List[Optional[IntegrationResult]]:
        """Drive every member to completion; results in member order.

        Members abandoned after an integrand exception (see
        :meth:`run_round`) yield ``None`` in the returned list.
        """
        while self.live:
            self.run_round()
        return [r.result if r.has_result else None for r in self._runs]
