"""Batched multi-integrand execution on one shared backend.

The paper's PAGANI accelerates a *single* integral; this package makes
*many concurrent integrals* a first-class workload.  The public entry
point is :func:`repro.api.integrate_many`, which builds one
:class:`~repro.core.pagani.PaganiRun` per integrand and hands them to a
:class:`BatchScheduler` that:

* round-robins every live run, one breadth-first iteration per round
  (fairness by construction — no member is ever starved);
* fuses all members' ``EVALUATE`` chunk thunks into a single backend
  submission per round, so parallel backends see one large uniform batch
  instead of N small sweeps;
* lets converged members exit early and free their region memory while
  stragglers keep iterating.

Rule construction is shared through the process-wide
:class:`~repro.cubature.rules.RuleCache`: the Genz–Malik tensors for each
``(backend, ndim)`` pair are materialised once per process, not once per
integral.  See ``docs/batch.md`` for the design discussion and measured
batched-vs-sequential numbers.
"""

from repro.batch.scheduler import (
    FUSED_CHUNK_BUDGET,
    BatchMemberError,
    BatchScheduler,
    BatchStats,
)
from repro.cubature.rules import RULE_CACHE, DeviceRule, RuleCache

__all__ = [
    "BatchScheduler",
    "BatchStats",
    "BatchMemberError",
    "FUSED_CHUNK_BUDGET",
    "RuleCache",
    "RULE_CACHE",
    "DeviceRule",
]
