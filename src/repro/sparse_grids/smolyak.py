"""Smolyak sparse-grid quadrature on nested Clenshaw–Curtis levels.

The Smolyak construction defeats the ``m^n`` tensor-product curse by
combining low-order tensor products:

    Q^d_q = Σ_{q-d+1 <= |k|_1 <= q}  (-1)^{q-|k|}  C(d-1, q-|k|)  ⊗_i Q_{k_i}

with nested 1-D rules ``Q_l`` (Clenshaw–Curtis with ``2^l + 1`` points, so
points of level l-1 are reused by level l).  For integrands with bounded
mixed derivatives the error decays almost like the 1-D rate with only
``O(2^q q^{d-1})`` points — but there is no reliable *local* error signal,
which is the paper's §2 reason to stay with adaptive cubature for its
error-estimate-critical applications.  The integrator below escalates the
level until the difference between consecutive Smolyak levels meets the
tolerance (the standard global heuristic).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import IntegrationResult, Status
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice


# ---------------------------------------------------------------------------
# 1-D Clenshaw–Curtis levels (nested)
# ---------------------------------------------------------------------------
@lru_cache(maxsize=32)
def clenshaw_curtis(level: int) -> Tuple[np.ndarray, np.ndarray]:
    """Nodes/weights of the level-``level`` CC rule on [-1, 1].

    Level 0 is the midpoint rule (1 point); level l has ``2^l + 1``
    Chebyshev-extrema nodes, nested across levels.  Weights are derived
    from the exact cosine-moment sums (the classic closed form).
    """
    if level < 0:
        raise ValueError("level must be >= 0")
    if level == 0:
        return np.zeros(1), np.full(1, 2.0)
    n = 2**level  # panels; n+1 nodes
    j = np.arange(n + 1)
    nodes = np.cos(np.pi * j / n)
    weights = np.empty(n + 1)
    ks = np.arange(1, n // 2 + 1)
    for i in j:
        # w_i = (c_i / n) [1 - Σ_k b_k cos(2k i π/n)/(4k²-1)]
        b = np.where(ks == n // 2, 1.0, 2.0)
        s = np.sum(b * np.cos(2.0 * ks * i * np.pi / n) / (4.0 * ks * ks - 1.0))
        ci = 1.0 if i in (0, n) else 2.0
        weights[i] = (ci / n) * (1.0 - s)
    return nodes[::-1].copy(), weights[::-1].copy()


def smolyak_points_count(ndim: int, level: int) -> int:
    """Number of distinct sparse-grid points at the given level."""
    return len(_smolyak_point_index(ndim, level)[0])


# ---------------------------------------------------------------------------
# Smolyak combination
# ---------------------------------------------------------------------------
def _multi_indices(ndim: int, total: int):
    """All k in N^d with |k|_1 == total, k_i >= 0."""
    if ndim == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _multi_indices(ndim - 1, total - first):
            yield (first,) + rest


@lru_cache(maxsize=64)
def _smolyak_terms(ndim: int, level: int):
    """Combination-technique terms: list of (coefficient, level-vector)."""
    terms = []
    for s in range(max(0, level - ndim + 1), level + 1):
        coeff = (-1) ** (level - s) * math.comb(ndim - 1, level - s)
        for k in _multi_indices(ndim, s):
            terms.append((coeff, k))
    return terms


@lru_cache(maxsize=32)
def _smolyak_point_index(ndim: int, level: int):
    """Distinct points and the per-term weight scatter for a Smolyak rule.

    Returns ``(points, weights)`` where ``points`` is an ``(N, d)`` array
    of distinct nodes on [-1,1]^d and ``weights`` the combined Smolyak
    weights (normalised to unit volume).  Nodes are deduplicated across
    combination terms via exact-key hashing (CC nodes are cosines of
    rational multiples of π, reproducible bit-for-bit from the cache).
    """
    index: Dict[Tuple[float, ...], int] = {}
    pts = []
    wts = []
    for coeff, kvec in _smolyak_terms(ndim, level):
        axes = [clenshaw_curtis(k) for k in kvec]
        node_grids = np.meshgrid(*[a[0] for a in axes], indexing="ij")
        weight_grids = np.meshgrid(*[a[1] for a in axes], indexing="ij")
        nodes = np.stack([g.ravel() for g in node_grids], axis=1)
        weights = coeff * np.prod(
            np.stack([g.ravel() for g in weight_grids], axis=1), axis=1
        )
        for row, w in zip(nodes, weights):
            key = tuple(row)
            slot = index.get(key)
            if slot is None:
                index[key] = len(pts)
                pts.append(row)
                wts.append(w)
            else:
                wts[slot] += w
    points = np.array(pts)
    weights = np.array(wts) / 2.0**ndim  # normalise to unit volume
    return points, weights


@dataclass
class SmolyakConfig:
    rel_tol: float = 1e-3
    abs_tol: float = 1e-20
    max_level: int = 10
    #: stop escalating when the point count would exceed this
    max_points: int = 5_000_000

    def validate(self) -> None:
        if not (0.0 < self.rel_tol < 1.0):
            raise ConfigurationError(f"rel_tol must be in (0, 1), got {self.rel_tol}")
        if self.max_level < 1:
            raise ConfigurationError("max_level must be >= 1")


class SmolyakIntegrator:
    """Level-escalating Smolyak quadrature with a difference error signal."""

    def __init__(
        self,
        config: Optional[SmolyakConfig] = None,
        device: Optional[VirtualDevice] = None,
    ):
        self.config = config or SmolyakConfig()
        self.config.validate()
        self.device = device if device is not None else VirtualDevice(DeviceSpec.scaled())

    def integrate(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
    ) -> IntegrationResult:
        cfg = self.config
        tau_rel = cfg.rel_tol if rel_tol is None else float(rel_tol)
        tau_abs = cfg.abs_tol if abs_tol is None else float(abs_tol)
        if bounds is None:
            bounds = [(0.0, 1.0)] * ndim
        b = np.asarray(bounds, dtype=np.float64)
        if b.shape != (ndim, 2):
            raise ConfigurationError(f"bounds must have shape ({ndim}, 2)")
        center = 0.5 * (b[:, 0] + b[:, 1])
        halfw = 0.5 * (b[:, 1] - b[:, 0])
        volume = float(np.prod(2.0 * halfw))

        dev = self.device
        dev.reset_clock()
        flops_per_eval = float(getattr(integrand, "flops_per_eval", 50.0))

        t0 = time.perf_counter()
        neval = 0
        prev: Optional[float] = None
        estimate = 0.0
        errorest = float("inf")
        status = Status.MAX_ITERATIONS
        level_reached = 0
        #: per-point value cache across levels (the grids are nested)
        cache: Dict[bytes, float] = {}

        for level in range(1, cfg.max_level + 1):
            pts, wts = _smolyak_point_index(ndim, level)
            if pts.shape[0] > cfg.max_points:
                status = Status.MEMORY_EXHAUSTED
                break
            level_reached = level
            world = center[None, :] + pts * halfw[None, :]
            # nested levels share points: only evaluate the new ones
            vals = np.empty(world.shape[0])
            new_rows = []
            for i, row in enumerate(world):
                key = row.tobytes()
                cached = cache.get(key)
                if cached is None:
                    new_rows.append(i)
                else:
                    vals[i] = cached
            if new_rows:
                fresh = integrand(world[new_rows])
                for i, v in zip(new_rows, fresh):
                    vals[i] = float(v)
                    cache[world[i].tobytes()] = float(v)
                neval += len(new_rows)
                dev.charge_kernel(
                    "smolyak_eval",
                    work_items=len(new_rows),
                    flops_per_item=flops_per_eval + 4.0 * ndim,
                )
            estimate = volume * float(wts @ vals)
            if prev is not None:
                errorest = abs(estimate - prev)
                if errorest <= tau_abs:
                    status = Status.CONVERGED_ABS
                    break
                if estimate != 0.0 and errorest <= tau_rel * abs(estimate):
                    status = Status.CONVERGED_REL
                    break
            prev = estimate
        else:
            status = Status.MAX_ITERATIONS

        return IntegrationResult(
            estimate=estimate,
            errorest=errorest,
            status=status,
            neval=neval,
            nregions=0,
            iterations=level_reached,
            method="smolyak-cc",
            sim_seconds=dev.elapsed_seconds,
            wall_seconds=time.perf_counter() - t0,
        )
