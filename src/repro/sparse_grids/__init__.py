"""Smolyak sparse-grid quadrature (related work of the paper's §2).

The paper cites sparse-grid methods as promising alternatives that lack
the error estimates its target applications need; this package provides a
working member of that family so the comparison can be run rather than
cited: nested Clenshaw–Curtis levels combined by the Smolyak/combination
technique, with a level-difference error estimate.
"""

from repro.sparse_grids.smolyak import (
    SmolyakConfig,
    SmolyakIntegrator,
    clenshaw_curtis,
    smolyak_points_count,
)

__all__ = [
    "SmolyakConfig",
    "SmolyakIntegrator",
    "clenshaw_curtis",
    "smolyak_points_count",
]
