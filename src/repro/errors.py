"""Exception hierarchy for the PAGANI reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Device-level failures (the simulated GPU) get their own
branch because the PAGANI algorithm *reacts* to them: memory exhaustion is an
expected, recoverable event that triggers the threshold-classification filter
rather than an abort.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or combination of parameters was supplied."""


class DimensionError(ConfigurationError):
    """The integrand dimensionality is unsupported (must be 2 <= n <= 20)."""


class DeviceError(ReproError):
    """Base class for simulated-device failures."""


class DeviceMemoryError(DeviceError, MemoryError):
    """The simulated device memory pool cannot satisfy an allocation.

    Carries the shortfall so schedulers/algorithms can decide how much to
    filter before retrying.
    """

    def __init__(self, requested: int, available: int, message: str | None = None):
        self.requested = int(requested)
        self.available = int(available)
        if message is None:
            message = (
                f"device allocation of {requested} bytes exceeds available "
                f"{available} bytes"
            )
        super().__init__(message)


class KernelError(DeviceError):
    """A kernel was launched with an invalid configuration."""


class IntegrationError(ReproError):
    """An integration run could not produce any estimate at all."""
