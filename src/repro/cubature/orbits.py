"""Fully-symmetric point orbits on the cube ``[-1, 1]^n``.

A fully-symmetric cubature rule assigns one weight per *orbit*: the set of
points generated from a generator vector by all coordinate permutations and
sign changes.  The Genz–Malik family uses five orbit shapes:

``center``        the origin (1 point)
``star(λ)``       ``(±λ, 0, …, 0)`` and permutations (2n points)
``pairs(λ)``      ``(±λ, ±λ, 0, …, 0)`` and permutations (2n(n−1) points)
``corners(λ)``    ``(±λ, …, ±λ)`` (2^n points)

Weights are obtained by *moment matching*: requiring the rule to integrate a
basis of even monomials exactly.  Solving the moment system at rule-build
time (instead of hard-coding the published constants) keeps the construction
honest — a wrong generator or a typo in an orbit produces a loud residual
failure rather than a silently inaccurate rule.  The published closed forms
are still checked against the solved weights in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DimensionError

#: Even-monomial exponent patterns (exponents of x_i^2) used as exactness
#: conditions, in increasing total degree: 1, x^2, x^4, x^2 y^2, x^6,
#: x^4 y^2, x^2 y^2 z^2.
MONOMIALS_BY_DEGREE = {
    0: [()],
    2: [(1,)],
    4: [(2,), (1, 1)],
    6: [(3,), (2, 1), (1, 1, 1)],
}


def monomials_up_to(degree: int, ndim: int) -> List[Tuple[int, ...]]:
    """Even-monomial patterns with total degree <= ``degree``.

    Patterns longer than ``ndim`` cannot occur in ``ndim`` dimensions and are
    dropped (e.g. ``x^2 y^2 z^2`` needs n >= 3).
    """
    out: List[Tuple[int, ...]] = []
    for deg in sorted(MONOMIALS_BY_DEGREE):
        if deg > degree:
            break
        for pat in MONOMIALS_BY_DEGREE[deg]:
            if len(pat) <= ndim:
                out.append(pat)
    return out


def cube_moment(pattern: Sequence[int]) -> float:
    """Normalised moment of ``prod x_i^(2 a_i)`` over [-1,1]^n.

    Normalised by the cube volume, so the result is ``prod 1/(2 a_i + 1)``
    independent of dimension.
    """
    m = 1.0
    for a in pattern:
        m /= 2 * a + 1
    return m


@dataclass(frozen=True)
class Orbit:
    """One fully-symmetric orbit: its kind, generator value and point count."""

    kind: str  # "center" | "star" | "pairs" | "corners"
    lam: float
    npoints: int

    def points(self, ndim: int) -> np.ndarray:
        """Materialise the orbit's points as an ``(npoints, ndim)`` array."""
        lam = self.lam
        if self.kind == "center":
            return np.zeros((1, ndim))
        if self.kind == "star":
            pts = np.zeros((2 * ndim, ndim))
            for i in range(ndim):
                pts[2 * i, i] = lam
                pts[2 * i + 1, i] = -lam
            return pts
        if self.kind == "pairs":
            rows = []
            for i, j in combinations(range(ndim), 2):
                for si in (lam, -lam):
                    for sj in (lam, -lam):
                        row = np.zeros(ndim)
                        row[i] = si
                        row[j] = sj
                        rows.append(row)
            return np.array(rows) if rows else np.zeros((0, ndim))
        if self.kind == "corners":
            # All sign patterns of (lam, ..., lam) via binary enumeration.
            k = np.arange(2**ndim, dtype=np.int64)
            bits = (k[:, None] >> np.arange(ndim)[None, :]) & 1
            return lam * np.where(bits == 1, 1.0, -1.0)
        raise ValueError(f"unknown orbit kind {self.kind!r}")

    def monomial_sum(self, pattern: Sequence[int], ndim: int) -> float:
        """Sum of ``prod x_i^(2 a_i)`` over the orbit's points, closed form.

        Closed forms avoid materialising the 2^n corner orbit during weight
        solving in high dimensions.
        """
        pat = [a for a in pattern if a > 0]
        k = len(pat)  # distinct variables carrying positive exponent
        total = sum(pat)
        lam2 = self.lam * self.lam
        if self.kind == "center":
            return 1.0 if k == 0 else 0.0
        if self.kind == "star":
            if k == 0:
                return float(2 * ndim)
            if k == 1:
                return 2.0 * lam2 ** pat[0]
            return 0.0
        if self.kind == "pairs":
            npairs = ndim * (ndim - 1)  # = 2 * C(n,2); each pair has 4 sign pts
            if k == 0:
                return float(2 * npairs)
            if k == 1:
                # the exponent-bearing axis participates in (n-1) pairs,
                # each contributing 4 sign points with value lam^(2a)
                return 4.0 * (ndim - 1) * lam2 ** pat[0]
            if k == 2:
                return 4.0 * lam2**total
            return 0.0
        if self.kind == "corners":
            return float(2**ndim) * lam2**total
        raise ValueError(f"unknown orbit kind {self.kind!r}")


def make_orbits(ndim: int, lam2: float, lam3: float, lam4: float, lam5: float) -> List[Orbit]:
    """The five Genz–Malik orbits for dimension ``ndim``."""
    if ndim < 2:
        raise DimensionError(
            f"fully-symmetric rules need ndim >= 2, got {ndim} "
            "(use a 1-D quadrature for one-dimensional problems)"
        )
    if ndim > 20:
        raise DimensionError(
            f"ndim={ndim} exceeds the supported limit of 20 "
            "(the corner orbit has 2^n points; deterministic cubature is "
            "impractical at this dimensionality — the paper targets moderate "
            "dimensions)"
        )
    return [
        Orbit("center", 0.0, 1),
        Orbit("star", lam2, 2 * ndim),
        Orbit("star", lam3, 2 * ndim),
        Orbit("pairs", lam4, 2 * ndim * (ndim - 1)),
        Orbit("corners", lam5, 2**ndim),
    ]


def solve_weights(
    orbits: Sequence[Orbit],
    ndim: int,
    degree: int,
    use: Sequence[int] | None = None,
    rtol: float = 1e-10,
) -> np.ndarray:
    """Solve orbit weights so the rule integrates monomials of total degree
    <= ``degree`` exactly (per unit volume).

    Parameters
    ----------
    orbits:
        Full orbit list; ``use`` selects which participate (others get
        weight zero) — this is how the embedded lower-degree companion rules
        are built on subsets of the degree-7 point set.
    degree:
        Polynomial exactness degree (odd monomials vanish by symmetry, so
        only even monomials up to ``degree-1``/``degree`` constrain).
    rtol:
        Maximum permitted least-squares residual, relative to the moment
        scale.  The Genz–Malik generators make the (overdetermined)
        degree-7 system consistent; a residual here means a broken orbit.

    Returns
    -------
    Per-orbit weights, length ``len(orbits)``.
    """
    if use is None:
        use = list(range(len(orbits)))
    monos = monomials_up_to(degree, ndim)
    amat = np.zeros((len(monos), len(use)))
    rhs = np.zeros(len(monos))
    for r, pat in enumerate(monos):
        rhs[r] = cube_moment(pat)
        for c, oi in enumerate(use):
            amat[r, c] = orbits[oi].monomial_sum(pat, ndim)
    sol, *_ = np.linalg.lstsq(amat, rhs, rcond=None)
    resid = amat @ sol - rhs
    if np.max(np.abs(resid)) > rtol * max(1.0, np.max(np.abs(rhs))):
        raise ValueError(
            f"moment system for degree-{degree} rule in {ndim}D is "
            f"inconsistent (residual {np.max(np.abs(resid)):.3e}); "
            "generator values do not admit this rule"
        )
    weights = np.zeros(len(orbits))
    for c, oi in enumerate(use):
        weights[oi] = sol[c]
    return weights
