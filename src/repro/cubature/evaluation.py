"""Vectorized batch region evaluation: the paper's ``EVALUATE`` kernel.

PAGANI's defining trait is that *all* live regions are evaluated in one
parallel sweep per iteration.  The sweep executes on a pluggable
:class:`~repro.backends.base.ArrayBackend` (NumPy by default): points for
a chunk of regions are materialised as one ``(chunk, p, n)`` tensor, the
integrand is applied to the flattened point list, and the five weighted
reductions plus the fourth-difference axis scan are computed with matrix
products and fancy-indexed gathers.  Chunking bounds peak memory (the
guides' "be easy on memory" rule) without changing results, and doubles
as the parallel decomposition: each chunk is an independent thunk the
backend may schedule on a thread pool or a device stream.

Returned per region:

* ``estimate``   — degree-7 integral estimate,
* ``error``      — raw error estimate (before two-level refinement),
* ``split_axis`` — axis with the largest fourth divided difference,
* companion-rule estimates when the ``four_difference`` error model is on.

Two hot-path hooks keep steady-state iterations allocation-free:

* callers may pass a :class:`SweepScratch` so the chunk temporaries (the
  point tensor, volumes, companion estimates, fourth-difference work
  arrays) are reused across chunks and iterations instead of reallocated —
  engaged only on backends that run chunks serially over host NumPy
  arrays, and written with ``out=`` ufunc forms that are bit-identical to
  the allocating expressions;
* a backend exposing ``fused_compute_chunk`` (the compiled Numba lane,
  :mod:`repro.backends.compiled`) replaces the whole per-chunk arithmetic
  with its fused kernel under the same ``(estimate, error, axis)``
  contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.backends import BackendLike, get_backend
from repro.cubature.rules import FOURTH_DIFF_RATIO, RULE_CACHE, GenzMalikRule

#: cap on floats materialised per chunk (regions * points * ndim)
_CHUNK_BUDGET = 16_000_000


@dataclass
class EvaluationResult:
    """Per-region outputs of one evaluate sweep."""

    estimate: np.ndarray  # (m,) degree-7 estimates
    error: np.ndarray  # (m,) raw error estimates
    split_axis: np.ndarray  # (m,) int axis of largest fourth difference
    neval: int  # total integrand evaluations performed


#: non-asymptotic detection threshold for the cascade error model: if a
#: higher-order difference is not at least this factor smaller than the next
#: lower-order one, the region is treated as non-smooth and gets the crude
#: (conservative) error.  DCUHRE uses comparable ratio tests on its null
#: rules.
CASCADE_RATIO_CRITICAL = 0.5


def _error_from_estimates(
    i7: np.ndarray,
    i5: np.ndarray,
    i3a: np.ndarray,
    i3b: np.ndarray,
    i1: np.ndarray,
    model: str,
) -> np.ndarray:
    """Combine embedded-rule estimates into a raw error estimate.

    ``cascade`` (default)
        The Berntsen–Espelid-style estimator Cuhre's rules were designed
        for, realised on our embedded family: form the difference cascade
        ``E1 = |I7−I5|``, ``E2 = |I5−I3a|``, ``E3 = |I3a−I1|``.  For a
        smooth integrand on a small region these decay geometrically
        (each difference is dominated by the lower rule's truncation
        error); when the decay is absent the region is non-asymptotic
        (kink, discontinuity, unresolved peak) and the *largest* difference
        is the honest error scale.  This protects PAGANI's per-region
        finished commitments from the classic |I7−I5| underestimation on
        non-smooth cells — a failure Cuhre tolerates (it never commits) but
        a filtering algorithm cannot.
    ``two_rule``
        The classical |I7 − I5| difference alone (ablation mode).
    ``four_difference``
        The paper's verbatim description: the largest difference between
        the degree-7 estimate and the four lower-degree companions.  Most
        conservative; kept as an ablation mode.
    """
    if model == "two_rule":
        return np.abs(i7 - i5)
    if model == "four_difference":
        return np.maximum.reduce(
            [np.abs(i7 - i5), np.abs(i7 - i3a), np.abs(i7 - i3b), np.abs(i7 - i1)]
        )
    if model == "cascade":
        e1 = np.abs(i7 - i5)
        e2 = np.abs(i5 - i3a)
        e3 = np.abs(i3a - i1)
        crude = np.maximum(np.maximum(e1, e2), e3)
        with np.errstate(divide="ignore", invalid="ignore"):
            r1 = np.where(e2 > 0.0, e1 / e2, np.where(e1 > 0.0, np.inf, 0.0))
            r2 = np.where(e3 > 0.0, e2 / e3, np.where(e2 > 0.0, np.inf, 0.0))
        asymptotic = np.maximum(r1, r2) < CASCADE_RATIO_CRITICAL
        return np.where(asymptotic, e1, crude)
    raise ValueError(f"unknown error model {model!r}")


class SweepScratch:
    """Reusable per-run scratch for the evaluate sweep's chunk temporaries.

    Owns the point tensor, volume vector, companion-estimate vectors and
    fourth-difference work arrays that :func:`compute_chunk` would
    otherwise allocate afresh per chunk, so steady-state iterations
    allocate O(1) new arrays.  Buffers are keyed by role and grow
    monotonically along axis 0 (the chunk length); a chunk borrows
    leading-row views, so a scratch serves exactly **one chunk at a
    time** — :func:`evaluate_regions` only engages it on backends that
    run chunks serially (``concurrent_chunks`` False) over host NumPy
    arrays.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: Dict[str, np.ndarray] = {}

    def take(
        self, name: str, shape: Tuple[int, ...], dtype: Any = np.float64
    ) -> np.ndarray:
        """A ``shape``-sized view of the named buffer (grown if needed)."""
        buf = self._bufs.get(name)
        if (
            buf is None
            or buf.dtype != dtype
            or buf.shape[1:] != shape[1:]
            or buf.shape[0] < shape[0]
        ):
            buf = np.empty(shape, dtype=dtype)
            self._bufs[name] = buf
        return buf[: shape[0]]


def compute_chunk(
    bk,
    dr,
    integrand: Callable[[np.ndarray], np.ndarray],
    c,
    h,
    error_model: str,
    scratch: Optional[SweepScratch] = None,
) -> Tuple[Any, Any, Any]:
    """Evaluate one chunk of regions; return ``(estimate, error, axis)``.

    This is the *entire* per-chunk arithmetic of the evaluate sweep, shared
    verbatim by the in-process chunk thunks and the process-backend
    workers: both paths call this one function on the same slices with the
    same backend-resident rule tensors, which is what makes the
    process backend's remotely-computed results bit-identical to the
    reference — not merely close.

    ``c`` / ``h`` are the chunk's ``(mc, n)`` center/halfwidth slices on
    ``bk``'s array type; ``dr`` is the matching
    :class:`~repro.cubature.rules.DeviceRule`.

    With a ``scratch``, every temporary is written into a reusable buffer
    through ``out=`` ufunc forms chosen to be **bit-identical** to the
    allocating expressions (commutative operand reorders and explicit
    two-step chains only — never a different reduction order), so the two
    modes produce the same bits and the golden/bit-identity suites hold
    for both.
    """
    mc, n = c.shape
    p = dr.points.shape[0]
    need_companions = error_model in ("four_difference", "cascade")

    if scratch is None:
        # (mc, p, n) = c + ref * h  (broadcast over the point axis)
        pts = c[:, None, :] + dr.points[None, :, :] * h[:, None, :]
    else:
        # Same arithmetic around the reusable buffer: (ref * h) + c —
        # float addition is commutative bit-for-bit.
        pts = scratch.take("pts", (mc, p, n))
        np.multiply(dr.points[None, :, :], h[:, None, :], out=pts)
        np.add(pts, c[:, None, :], out=pts)
    vals = bk.map_integrand(integrand, pts.reshape(-1, n))
    vals = vals.reshape(mc, p)
    if scratch is None:
        vol = np.prod(2.0 * h, axis=1)  # (mc,)
    else:
        h2 = scratch.take("h2", (mc, n))
        np.multiply(2.0, h, out=h2)
        vol = scratch.take("vol", (mc,))
        np.prod(h2, axis=1, out=vol)

    def contract(w: np.ndarray, name: str):
        # vol * (vals @ w), optionally into a scratch vector
        if scratch is None:
            return vol * (vals @ w)
        out = scratch.take(name, (mc,))
        np.matmul(vals, w, out=out)
        np.multiply(vol, out, out=out)
        return out

    i7 = contract(dr.w7, "i7")
    i5 = contract(dr.w5, "i5")
    if need_companions:
        i3a = contract(dr.w3a, "i3a")
        i3b = contract(dr.w3b, "i3b")
        i1 = contract(dr.w1, "i1")
        err = _error_from_estimates(i7, i5, i3a, i3b, i1, error_model)
    elif scratch is None:
        err = np.abs(i7 - i5)
    else:
        err = scratch.take("err", (mc,))
        np.subtract(i7, i5, out=err)
        np.abs(err, out=err)

    # Fourth divided differences per axis:
    #   D_i = |(f(+λ2 e_i) + f(−λ2 e_i) − 2 f(0))
    #          − (λ2²/λ3²) (f(+λ3 e_i) + f(−λ3 e_i) − 2 f(0))|
    f0 = vals[:, 0][:, None]  # (mc, 1)
    if scratch is None:
        d2 = vals[:, dr.idx2_plus] + vals[:, dr.idx2_minus] - 2.0 * f0
        d3 = vals[:, dr.idx3_plus] + vals[:, dr.idx3_minus] - 2.0 * f0
        fourth = np.abs(d2 - FOURTH_DIFF_RATIO * d3)  # (mc, n)
        axis = np.argmax(fourth, axis=1)
    else:
        f02 = scratch.take("f02", (mc, 1))
        np.multiply(2.0, f0, out=f02)
        d2 = scratch.take("d2", (mc, n))
        d3 = scratch.take("d3", (mc, n))
        tmp = scratch.take("dtmp", (mc, n))
        np.take(vals, dr.idx2_plus, axis=1, out=d2)
        np.take(vals, dr.idx2_minus, axis=1, out=tmp)
        np.add(d2, tmp, out=d2)
        np.subtract(d2, f02, out=d2)
        np.take(vals, dr.idx3_plus, axis=1, out=d3)
        np.take(vals, dr.idx3_minus, axis=1, out=tmp)
        np.add(d3, tmp, out=d3)
        np.subtract(d3, f02, out=d3)
        np.multiply(FOURTH_DIFF_RATIO, d3, out=d3)
        np.subtract(d2, d3, out=d2)
        np.abs(d2, out=d2)  # d2 is now the fourth-difference magnitude
        axis = scratch.take("axis", (mc,), dtype=np.intp)
        np.argmax(d2, axis=1, out=axis)
    return i7, err, axis


class ChunkTask:
    """One evaluate-sweep chunk: a locally-callable thunk, plus — when the
    integrand can be shipped to another process — a picklable remote spec.

    The chunk-execution contract of :meth:`ArrayBackend.run_chunks` is
    unchanged: calling the task runs the chunk in-process and writes its
    disjoint output slices.  Process backends additionally look for
    ``remote_spec`` (a picklable payload describing the chunk, or ``None``
    when the integrand is not shippable); after a worker computes the
    chunk's ``(estimate, error, axis)`` arrays, the backend stitches them
    through :meth:`complete_remote` in deterministic chunk order.
    """

    __slots__ = ("_work", "_write", "remote_spec")

    def __init__(
        self,
        work: Callable[[], None],
        write: Optional[Callable[[Tuple[Any, Any, Any]], None]] = None,
        remote_spec: Optional[Dict[str, Any]] = None,
    ):
        self._work = work
        self._write = write
        self.remote_spec = remote_spec if write is not None else None

    def __call__(self) -> None:
        self._work()

    def complete_remote(
        self,
        result: Optional[Tuple[Any, Any, Any]] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Stitch a worker-computed chunk result into the output arrays.

        ``error`` re-raises in the caller (the parent process), so a
        remote integrand failure propagates exactly like a local thunk
        raising — including through the batch scheduler's per-member
        isolation guard, which wraps this method.
        """
        if error is not None:
            raise error
        self._write(result)


def shippable_integrand(integrand: Callable) -> Optional[Tuple[str, Any]]:
    """A picklable reference to ``integrand`` for worker processes.

    Preference order: a catalogue *spec* string (``("spec", "8d-f7")`` —
    rebuilt per worker via ``named_integrand``, bit-identical by
    construction because named specs denote one deterministic integrand),
    else the pickled callable itself (``("pickle", bytes)`` — covers
    module-level functions and picklable callable objects).  Returns
    ``None`` for closures/lambdas, which process backends then evaluate
    in-process as a serial fallback.
    """
    spec = getattr(integrand, "spec", None)
    if isinstance(spec, str):
        return ("spec", spec)
    import pickle

    try:
        return ("pickle", pickle.dumps(integrand))
    except Exception:
        return None


#: names already warned about (one line per integrand per process — a
#: 60-iteration run must not emit 60 copies of the same degradation note)
_WARNED_UNSHIPPABLE: set = set()


def _warn_unshippable(integrand: Callable) -> None:
    """One-time note that a process backend degraded to in-process serial.

    Closures and lambdas cannot be pickled to worker processes, so the
    sweep silently loses its parallelism — silent is the wrong default
    for a user who picked ``backend="process:8"`` expecting a speedup.
    Catalogue/transform specs (``named_integrand``,
    ``semi_infinite(named, ...)``) ship fine; this fires only for
    anonymous callables and out-of-grammar transforms.
    """
    import warnings

    name = getattr(integrand, "name", None) or getattr(
        integrand, "__qualname__", None
    ) or type(integrand).__name__
    if name in _WARNED_UNSHIPPABLE:
        return
    _WARNED_UNSHIPPABLE.add(name)
    warnings.warn(
        f"integrand {name!r} cannot be shipped to worker processes "
        "(no catalogue spec and not picklable); the process backend "
        "will evaluate it in-process, serially. Use a catalogue or "
        "transform spec (see repro.integrands.catalog) to restore "
        "chunk parallelism.",
        RuntimeWarning,
        stacklevel=3,
    )


def evaluate_regions(
    rule: GenzMalikRule,
    centers: np.ndarray,
    halfwidths: np.ndarray,
    integrand: Callable[[np.ndarray], np.ndarray],
    error_model: str = "two_rule",
    chunk_budget: int = _CHUNK_BUDGET,
    out_estimate: Optional[np.ndarray] = None,
    out_error: Optional[np.ndarray] = None,
    out_axis: Optional[np.ndarray] = None,
    backend: BackendLike = None,
    scratch: Optional[SweepScratch] = None,
    defer: bool = False,
) -> EvaluationResult | Tuple[EvaluationResult, List[Callable[[], None]]]:
    """Evaluate a batch of axis-aligned regions with the Genz–Malik rule set.

    Parameters
    ----------
    centers, halfwidths:
        ``(m, n)`` float64 arrays describing the regions in the *user's*
        coordinate system (no unit-cube normalisation required).
    integrand:
        Batch callable mapping ``(N, n)`` points to ``(N,)`` values.
    error_model:
        See :func:`_error_from_estimates`.
    chunk_budget:
        Max floats materialised per chunk; tunes peak memory, and sets the
        grain of the backend's chunk-level parallelism.
    backend:
        Execution backend spec (``None`` = reference NumPy).  The chunk
        decomposition is backend-independent, and each chunk's arithmetic
        is identical across host backends, so results do not depend on
        the backend's schedule.  (The *size* of the chunks can shift
        results at ULP level through BLAS kernel selection, so callers
        that promise bit-identical output must keep ``chunk_budget``
        fixed.)
    scratch:
        Optional :class:`SweepScratch` reusing the chunk temporaries
        across chunks and calls (see :func:`compute_chunk`; bit-identical
        to the allocating path).  Silently disengaged on backends that
        run chunks concurrently or on non-NumPy array types, so callers
        may pass their scratch unconditionally.
    defer:
        When True, do **not** execute the sweep: return
        ``(result, tasks)`` where ``tasks`` is the list of chunk thunks
        and ``result``'s arrays are pre-allocated but unwritten.  The
        caller must run every thunk (in any order, on any schedule)
        before reading the result — this is the hook the batch scheduler
        uses to fuse many runs' sweeps into one backend submission.

    Notes
    -----
    The degree-7 weights are normalised per unit volume of the reference
    cube, so estimates are ``volume * (values @ w)`` with
    ``volume = prod(2 * halfwidth)``.
    """
    if error_model not in ("cascade", "two_rule", "four_difference"):
        raise ValueError(f"unknown error model {error_model!r}")
    bk = get_backend(backend)
    xp = bk.xp
    centers = bk.asarray(centers, dtype=np.float64)
    halfwidths = bk.asarray(halfwidths, dtype=np.float64)
    m, n = centers.shape
    if halfwidths.shape != (m, n):
        raise ValueError("centers/halfwidths shape mismatch")
    if n != rule.ndim:
        raise ValueError(f"rule is {rule.ndim}-D, regions are {n}-D")
    p = rule.npoints

    estimate = out_estimate if out_estimate is not None else xp.empty(m)
    error = out_error if out_error is not None else xp.empty(m)
    axis = out_axis if out_axis is not None else xp.empty(m, dtype=np.int64)

    chunk = max(1, int(chunk_budget // (p * n)))
    # Backend-resident rule tensors, built once per (backend, ndim) pair
    # and shared process-wide (see RuleCache): accelerator backends upload
    # the point set and weights a single time instead of per sweep.
    dr = RULE_CACHE.device_rule(rule, bk)

    # A scratch serves one chunk at a time over host NumPy arrays only.
    if scratch is not None and (bk.concurrent_chunks or bk.xp is not np):
        scratch = None
    # Compiled-lane hook: a backend exposing ``fused_compute_chunk``
    # replaces the per-chunk arithmetic with its fused kernel.
    fused = getattr(bk, "fused_compute_chunk", None)

    # Process backends execute chunks in worker processes when the
    # integrand can be shipped (catalogue spec or picklable callable);
    # workers rebuild the rule tensors from the ndim alone.
    wants_specs = getattr(bk, "wants_chunk_specs", False)
    integrand_ref = shippable_integrand(integrand) if wants_specs else None
    if wants_specs and integrand_ref is None:
        _warn_unshippable(integrand)

    def chunk_task(lo: int, hi: int) -> ChunkTask:
        def work() -> None:
            if fused is not None:
                i7, err, ax = fused(
                    dr, integrand, centers[lo:hi], halfwidths[lo:hi],
                    error_model,
                )
            else:
                i7, err, ax = compute_chunk(
                    bk, dr, integrand, centers[lo:hi], halfwidths[lo:hi],
                    error_model, scratch=scratch,
                )
            estimate[lo:hi] = i7
            error[lo:hi] = err
            axis[lo:hi] = ax

        if integrand_ref is None:
            return ChunkTask(work)

        def write(res: Tuple[Any, Any, Any]) -> None:
            i7, err, ax = res
            estimate[lo:hi] = i7
            error[lo:hi] = err
            axis[lo:hi] = ax

        remote_spec = {
            "integrand": integrand_ref,
            "ndim": n,
            "error_model": error_model,
            "centers": centers[lo:hi],
            "halfwidths": halfwidths[lo:hi],
        }
        return ChunkTask(work, write=write, remote_spec=remote_spec)

    tasks = [chunk_task(lo, min(lo + chunk, m)) for lo in range(0, m, chunk)]
    result = EvaluationResult(
        estimate=estimate, error=error, split_axis=axis, neval=m * p
    )
    if defer:
        return result, tasks
    bk.run_chunks(tasks)
    return result
