"""Vectorized batch region evaluation: the paper's ``EVALUATE`` kernel.

PAGANI's defining trait is that *all* live regions are evaluated in one
parallel sweep per iteration.  The sweep executes on a pluggable
:class:`~repro.backends.base.ArrayBackend` (NumPy by default): points for
a chunk of regions are materialised as one ``(chunk, p, n)`` tensor, the
integrand is applied to the flattened point list, and the five weighted
reductions plus the fourth-difference axis scan are computed with matrix
products and fancy-indexed gathers.  Chunking bounds peak memory (the
guides' "be easy on memory" rule) without changing results, and doubles
as the parallel decomposition: each chunk is an independent thunk the
backend may schedule on a thread pool or a device stream.

Returned per region:

* ``estimate``   — degree-7 integral estimate,
* ``error``      — raw error estimate (before two-level refinement),
* ``split_axis`` — axis with the largest fourth divided difference,
* companion-rule estimates when the ``four_difference`` error model is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.backends import BackendSpec, get_backend
from repro.cubature.rules import FOURTH_DIFF_RATIO, RULE_CACHE, GenzMalikRule

#: cap on floats materialised per chunk (regions * points * ndim)
_CHUNK_BUDGET = 16_000_000


@dataclass
class EvaluationResult:
    """Per-region outputs of one evaluate sweep."""

    estimate: np.ndarray  # (m,) degree-7 estimates
    error: np.ndarray  # (m,) raw error estimates
    split_axis: np.ndarray  # (m,) int axis of largest fourth difference
    neval: int  # total integrand evaluations performed


#: non-asymptotic detection threshold for the cascade error model: if a
#: higher-order difference is not at least this factor smaller than the next
#: lower-order one, the region is treated as non-smooth and gets the crude
#: (conservative) error.  DCUHRE uses comparable ratio tests on its null
#: rules.
CASCADE_RATIO_CRITICAL = 0.5


def _error_from_estimates(
    i7: np.ndarray,
    i5: np.ndarray,
    i3a: np.ndarray,
    i3b: np.ndarray,
    i1: np.ndarray,
    model: str,
) -> np.ndarray:
    """Combine embedded-rule estimates into a raw error estimate.

    ``cascade`` (default)
        The Berntsen–Espelid-style estimator Cuhre's rules were designed
        for, realised on our embedded family: form the difference cascade
        ``E1 = |I7−I5|``, ``E2 = |I5−I3a|``, ``E3 = |I3a−I1|``.  For a
        smooth integrand on a small region these decay geometrically
        (each difference is dominated by the lower rule's truncation
        error); when the decay is absent the region is non-asymptotic
        (kink, discontinuity, unresolved peak) and the *largest* difference
        is the honest error scale.  This protects PAGANI's per-region
        finished commitments from the classic |I7−I5| underestimation on
        non-smooth cells — a failure Cuhre tolerates (it never commits) but
        a filtering algorithm cannot.
    ``two_rule``
        The classical |I7 − I5| difference alone (ablation mode).
    ``four_difference``
        The paper's verbatim description: the largest difference between
        the degree-7 estimate and the four lower-degree companions.  Most
        conservative; kept as an ablation mode.
    """
    if model == "two_rule":
        return np.abs(i7 - i5)
    if model == "four_difference":
        return np.maximum.reduce(
            [np.abs(i7 - i5), np.abs(i7 - i3a), np.abs(i7 - i3b), np.abs(i7 - i1)]
        )
    if model == "cascade":
        e1 = np.abs(i7 - i5)
        e2 = np.abs(i5 - i3a)
        e3 = np.abs(i3a - i1)
        crude = np.maximum(np.maximum(e1, e2), e3)
        with np.errstate(divide="ignore", invalid="ignore"):
            r1 = np.where(e2 > 0.0, e1 / e2, np.where(e1 > 0.0, np.inf, 0.0))
            r2 = np.where(e3 > 0.0, e2 / e3, np.where(e2 > 0.0, np.inf, 0.0))
        asymptotic = np.maximum(r1, r2) < CASCADE_RATIO_CRITICAL
        return np.where(asymptotic, e1, crude)
    raise ValueError(f"unknown error model {model!r}")


def evaluate_regions(
    rule: GenzMalikRule,
    centers: np.ndarray,
    halfwidths: np.ndarray,
    integrand: Callable[[np.ndarray], np.ndarray],
    error_model: str = "two_rule",
    chunk_budget: int = _CHUNK_BUDGET,
    out_estimate: Optional[np.ndarray] = None,
    out_error: Optional[np.ndarray] = None,
    out_axis: Optional[np.ndarray] = None,
    backend: BackendSpec = None,
    defer: bool = False,
) -> EvaluationResult | Tuple[EvaluationResult, List[Callable[[], None]]]:
    """Evaluate a batch of axis-aligned regions with the Genz–Malik rule set.

    Parameters
    ----------
    centers, halfwidths:
        ``(m, n)`` float64 arrays describing the regions in the *user's*
        coordinate system (no unit-cube normalisation required).
    integrand:
        Batch callable mapping ``(N, n)`` points to ``(N,)`` values.
    error_model:
        See :func:`_error_from_estimates`.
    chunk_budget:
        Max floats materialised per chunk; tunes peak memory, and sets the
        grain of the backend's chunk-level parallelism.
    backend:
        Execution backend spec (``None`` = reference NumPy).  The chunk
        decomposition is backend-independent, and each chunk's arithmetic
        is identical across host backends, so results do not depend on
        the backend's schedule.  (The *size* of the chunks can shift
        results at ULP level through BLAS kernel selection, so callers
        that promise bit-identical output must keep ``chunk_budget``
        fixed.)
    defer:
        When True, do **not** execute the sweep: return
        ``(result, tasks)`` where ``tasks`` is the list of chunk thunks
        and ``result``'s arrays are pre-allocated but unwritten.  The
        caller must run every thunk (in any order, on any schedule)
        before reading the result — this is the hook the batch scheduler
        uses to fuse many runs' sweeps into one backend submission.

    Notes
    -----
    The degree-7 weights are normalised per unit volume of the reference
    cube, so estimates are ``volume * (values @ w)`` with
    ``volume = prod(2 * halfwidth)``.
    """
    if error_model not in ("cascade", "two_rule", "four_difference"):
        raise ValueError(f"unknown error model {error_model!r}")
    bk = get_backend(backend)
    xp = bk.xp
    centers = bk.asarray(centers, dtype=np.float64)
    halfwidths = bk.asarray(halfwidths, dtype=np.float64)
    m, n = centers.shape
    if halfwidths.shape != (m, n):
        raise ValueError("centers/halfwidths shape mismatch")
    if n != rule.ndim:
        raise ValueError(f"rule is {rule.ndim}-D, regions are {n}-D")
    p = rule.npoints

    estimate = out_estimate if out_estimate is not None else xp.empty(m)
    error = out_error if out_error is not None else xp.empty(m)
    axis = out_axis if out_axis is not None else xp.empty(m, dtype=np.int64)

    need_companions = error_model in ("four_difference", "cascade")
    chunk = max(1, int(chunk_budget // (p * n)))
    # Backend-resident rule tensors, built once per (backend, ndim) pair
    # and shared process-wide (see RuleCache): accelerator backends upload
    # the point set and weights a single time instead of per sweep.
    dr = RULE_CACHE.device_rule(rule, bk)
    pts_ref = dr.points  # (p, n)
    w7 = dr.w7
    w5 = dr.w5
    w3a = dr.w3a
    w3b = dr.w3b
    w1 = dr.w1
    idx2p = dr.idx2_plus
    idx2m = dr.idx2_minus
    idx3p = dr.idx3_plus
    idx3m = dr.idx3_minus

    def chunk_task(lo: int, hi: int):
        def work() -> None:
            c = centers[lo:hi]  # (mc, n)
            h = halfwidths[lo:hi]
            # (mc, p, n) = c + ref * h  (broadcast over the point axis)
            pts = c[:, None, :] + pts_ref[None, :, :] * h[:, None, :]
            vals = bk.map_integrand(integrand, pts.reshape(-1, n))
            vals = vals.reshape(hi - lo, p)
            vol = np.prod(2.0 * h, axis=1)  # (mc,)

            i7 = vol * (vals @ w7)
            i5 = vol * (vals @ w5)
            estimate[lo:hi] = i7
            if need_companions:
                i3a = vol * (vals @ w3a)
                i3b = vol * (vals @ w3b)
                i1 = vol * (vals @ w1)
                error[lo:hi] = _error_from_estimates(
                    i7, i5, i3a, i3b, i1, error_model
                )
            else:
                error[lo:hi] = np.abs(i7 - i5)

            # Fourth divided differences per axis:
            #   D_i = |(f(+λ2 e_i) + f(−λ2 e_i) − 2 f(0))
            #          − (λ2²/λ3²) (f(+λ3 e_i) + f(−λ3 e_i) − 2 f(0))|
            f0 = vals[:, 0][:, None]  # (mc, 1)
            d2 = vals[:, idx2p] + vals[:, idx2m] - 2.0 * f0
            d3 = vals[:, idx3p] + vals[:, idx3m] - 2.0 * f0
            fourth = np.abs(d2 - FOURTH_DIFF_RATIO * d3)  # (mc, n)
            axis[lo:hi] = np.argmax(fourth, axis=1)

        return work

    tasks = [chunk_task(lo, min(lo + chunk, m)) for lo in range(0, m, chunk)]
    result = EvaluationResult(
        estimate=estimate, error=error, split_axis=axis, neval=m * p
    )
    if defer:
        return result, tasks
    bk.run_chunks(tasks)
    return result
