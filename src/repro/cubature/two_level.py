"""Berntsen-style two-level error refinement.

The raw |I7 − I5| difference is a reliable but frequently *over*-estimated
error.  Berntsen (1989) improves it by consulting the previous tree level:
how well does the parent's integral estimate agree with the sum of its two
children?  Cuhre and PAGANI both apply this refinement; the paper notes that
skipping it (as the two-phase method's phase I does) risks over-stating the
achieved accuracy.

The scheme implemented here (documented substitution — the exact constants
of the Cuhre implementation are not spelled out in the paper):

Let ``δ = |v_parent − (v_a + v_b)|`` for sibling children a, b with raw
errors ``e_a, e_b``:

* **disagreement** (``δ > e_a + e_b``): the parent saw structure the
  children's own rules missed (the paper's example: a sharp peak straddling
  the cut).  Inflate: each child's error becomes
  ``max(e_child, δ · e_child/(e_a+e_b))``.
* **agreement** (``δ <= e_a + e_b``): the levels are consistent; the raw
  estimate is likely conservative.  Shrink toward the observed two-level
  difference, but never below ``SHRINK_FLOOR`` of the raw value:
  ``e_child · max(SHRINK_FLOOR, δ/(e_a+e_b))``.

Children are laid out pairwise: child ``2k`` and ``2k+1`` share parent ``k``.

The arithmetic is written entirely with NumPy ufuncs and dispatching array
functions, so it runs unchanged on any
:class:`~repro.backends.base.ArrayBackend` array type (NumPy, CuPy, …):
pass backend-owned arrays in, get a backend-owned array out.
"""

from __future__ import annotations

import numpy as np

#: Lower bound on the shrink factor applied when parent and children agree.
SHRINK_FLOOR = 0.25


def two_level_errors(
    child_estimates: np.ndarray,
    child_errors: np.ndarray,
    parent_estimates: np.ndarray,
    shrink_floor: float = SHRINK_FLOOR,
) -> np.ndarray:
    """Refine raw child error estimates with the two-level scheme.

    Parameters
    ----------
    child_estimates, child_errors:
        ``(2k,)`` arrays with siblings adjacent (``2i``, ``2i+1``).
    parent_estimates:
        ``(k,)`` integral estimates of the regions split at the previous
        iteration, in parent order.

    Returns
    -------
    Refined error array, same shape as ``child_errors``.
    """
    m = child_estimates.shape[0]
    if m % 2 != 0:
        raise ValueError("two-level refinement needs an even number of children")
    k = m // 2
    if parent_estimates.shape[0] != k:
        raise ValueError(
            f"expected {k} parent estimates for {m} children, "
            f"got {parent_estimates.shape[0]}"
        )
    va = child_estimates[0::2]
    vb = child_estimates[1::2]
    ea = child_errors[0::2]
    eb = child_errors[1::2]
    delta = np.abs(parent_estimates - (va + vb))  # (k,)
    esum = ea + eb
    # Avoid 0/0 where both children report zero error: treat as agreement
    # with an even share.
    safe = np.where(esum > 0.0, esum, 1.0)
    share_a = np.where(esum > 0.0, ea / safe, 0.5)
    share_b = 1.0 - share_a
    ratio = np.where(esum > 0.0, delta / safe, 0.0)

    disagree = delta > esum
    out = np.empty_like(child_errors)
    # Inflate on disagreement, shrink on agreement.
    out[0::2] = np.where(
        disagree,
        np.maximum(ea, delta * share_a),
        ea * np.maximum(shrink_floor, ratio),
    )
    out[1::2] = np.where(
        disagree,
        np.maximum(eb, delta * share_b),
        eb * np.maximum(shrink_floor, ratio),
    )
    # A zero-error child under an agreeing parent stays zero; under a
    # disagreeing parent it inherits half the discrepancy.
    zero_pair = esum == 0.0
    if np.any(zero_pair & disagree):
        idx = np.nonzero(zero_pair & disagree)[0]
        out[2 * idx] = delta[idx] * 0.5
        out[2 * idx + 1] = delta[idx] * 0.5
    return out
