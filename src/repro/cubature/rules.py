"""The Genz–Malik degree-7 rule with embedded companion rules.

Genz & Malik (1980, 1983) construct an imbedded family of fully-symmetric
rules on the cube.  Cuhre — and therefore PAGANI, which reuses Cuhre's
rules — evaluates the integrand once on the degree-7 point set and forms:

* the degree-7 integral estimate (the reported value),
* lower-degree estimates on subsets of the same points, whose differences
  from the degree-7 estimate drive the error estimate (the paper: "four
  additional rules provide four different estimates, with the largest
  difference of those four yielding an error value"),
* per-axis fourth divided differences that select the split axis.

Generators (squared): λ2² = 9/70, λ3² = λ4² = 9/10, λ5² = 9/19.  Weights are
solved from moment-exactness at construction; the published closed forms are
verified against them in ``tests/cubature/test_rules.py``.

Point count: ``1 + 4n + 2n(n−1) + 2^n``.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict

import numpy as np

from repro.cubature.orbits import make_orbits, solve_weights

#: Genz–Malik generator values.
LAMBDA2 = np.sqrt(9.0 / 70.0)
LAMBDA3 = np.sqrt(9.0 / 10.0)
LAMBDA4 = np.sqrt(9.0 / 10.0)
LAMBDA5 = np.sqrt(9.0 / 19.0)

#: ratio used by the fourth divided difference (Genz–Malik):
#: D_i = |Δ2_i − (λ2²/λ3²) Δ3_i| with Δk_i the central second difference
#: along axis i at offset λk.
FOURTH_DIFF_RATIO = float(LAMBDA2**2 / LAMBDA3**2)


def point_count(ndim: int) -> int:
    """Number of function evaluations per region in ``ndim`` dimensions."""
    return 1 + 4 * ndim + 2 * ndim * (ndim - 1) + 2**ndim


@dataclass(frozen=True)
class GenzMalikRule:
    """Precomputed rule data for one dimensionality.

    Attributes
    ----------
    ndim:
        Dimensionality (2..20).
    points:
        ``(npoints, ndim)`` offsets on the reference cube ``[-1,1]^n``.
    w7, w5, w3a, w3b, w1:
        Per-point weight vectors (normalised to unit volume) for the main
        degree-7 rule and the embedded degree-5 / two degree-3 / degree-1
        companion rules.
    idx2_plus, idx2_minus, idx3_plus, idx3_minus:
        ``(ndim,)`` indices into ``points`` of the ±λ2 / ±λ3 star points per
        axis, used for fourth-difference axis selection.
    """

    ndim: int
    points: np.ndarray
    w7: np.ndarray
    w5: np.ndarray
    w3a: np.ndarray
    w3b: np.ndarray
    w1: np.ndarray
    idx2_plus: np.ndarray
    idx2_minus: np.ndarray
    idx3_plus: np.ndarray
    idx3_minus: np.ndarray
    orbit_weights: Dict[str, np.ndarray] = field(repr=False, default=None)

    @property
    def npoints(self) -> int:
        return self.points.shape[0]

    def flops_per_region(self, integrand_flops: float = 50.0) -> float:
        """Algorithmic flop estimate for one region evaluation.

        Used by the device cost model: point generation (2 flops per
        coordinate), the integrand itself, five weighted reductions, and the
        fourth-difference scan.
        """
        p = self.npoints
        n = self.ndim
        return p * (2.0 * n + integrand_flops) + 5.0 * 2.0 * p + 12.0 * n


def _per_point_weights(orbits, orbit_w: np.ndarray) -> np.ndarray:
    """Expand per-orbit weights to per-point weights in point order."""
    parts = [np.full(o.npoints, orbit_w[i]) for i, o in enumerate(orbits)]
    return np.concatenate(parts)


@lru_cache(maxsize=None)
def get_rule(ndim: int) -> GenzMalikRule:
    """Build (and cache) the Genz–Malik rule set for ``ndim`` dimensions."""
    orbits = make_orbits(ndim, LAMBDA2, LAMBDA3, LAMBDA4, LAMBDA5)

    # Weight solves.  Orbit indices: 0=center, 1=star(λ2), 2=star(λ3),
    # 3=pairs(λ4), 4=corners(λ5).
    w7_orb = solve_weights(orbits, ndim, degree=7)
    w5_orb = solve_weights(orbits, ndim, degree=5, use=[0, 1, 2, 3])
    w3a_orb = solve_weights(orbits, ndim, degree=3, use=[0, 1])
    w3b_orb = solve_weights(orbits, ndim, degree=3, use=[0, 2])
    w1_orb = solve_weights(orbits, ndim, degree=1, use=[0])

    pts = np.concatenate([o.points(ndim) for o in orbits], axis=0)
    pts = np.ascontiguousarray(pts)

    # Star-point indices per axis: orbit 1 occupies points [1, 1+2n) in the
    # order (+e_0, -e_0, +e_1, -e_1, ...); orbit 2 follows immediately.
    base2 = 1
    base3 = 1 + 2 * ndim
    axes = np.arange(ndim)
    idx2_plus = base2 + 2 * axes
    idx2_minus = base2 + 2 * axes + 1
    idx3_plus = base3 + 2 * axes
    idx3_minus = base3 + 2 * axes + 1

    rule = GenzMalikRule(
        ndim=ndim,
        points=pts,
        w7=_per_point_weights(orbits, w7_orb),
        w5=_per_point_weights(orbits, w5_orb),
        w3a=_per_point_weights(orbits, w3a_orb),
        w3b=_per_point_weights(orbits, w3b_orb),
        w1=_per_point_weights(orbits, w1_orb),
        idx2_plus=idx2_plus,
        idx2_minus=idx2_minus,
        idx3_plus=idx3_plus,
        idx3_minus=idx3_minus,
        orbit_weights={
            "w7": w7_orb,
            "w5": w5_orb,
            "w3a": w3a_orb,
            "w3b": w3b_orb,
            "w1": w1_orb,
        },
    )
    return rule


@dataclass(frozen=True)
class DeviceRule:
    """A :class:`GenzMalikRule`'s tensors resident on one backend.

    The hot path only ever reads these ten arrays; materialising them once
    per ``(backend, ndim)`` pair means a real accelerator backend uploads
    the point set and weight vectors a single time per process instead of
    once per ``evaluate`` sweep (host backends pay nothing either way —
    ``asarray`` is a no-copy view for NumPy arrays).
    """

    ndim: int
    points: Any
    w7: Any
    w5: Any
    w3a: Any
    w3b: Any
    w1: Any
    idx2_plus: Any
    idx2_minus: Any
    idx3_plus: Any
    idx3_minus: Any


class RuleCache:
    """Process-wide cache of backend-resident rule tensors.

    Two caching layers exist for the Genz–Malik rules: :func:`get_rule`
    memoises the *host-side* construction (orbit generation and the moment
    solves) per dimensionality, and this cache memoises the *backend-side*
    tensors per ``(backend, ndim)`` pair.  Before the batched execution
    layer, every ``evaluate`` sweep re-coerced the ten rule arrays onto
    its backend; with many integrals in flight that rebuild multiplies, so
    the cache is keyed weakly by backend instance (a garbage-collected
    backend drops its tensors) and shared by every run in the process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._per_backend: (
            "weakref.WeakKeyDictionary[Any, Dict[int, DeviceRule]]"
        ) = weakref.WeakKeyDictionary()

    def device_rule(self, rule: GenzMalikRule, backend: Any) -> DeviceRule:
        """The backend-resident tensors for ``rule`` (built on first use)."""
        with self._lock:
            per = self._per_backend.get(backend)
            if per is None:
                per = {}
                self._per_backend[backend] = per
            dr = per.get(rule.ndim)
            if dr is None:
                dr = DeviceRule(
                    ndim=rule.ndim,
                    points=backend.asarray(rule.points),
                    w7=backend.asarray(rule.w7),
                    w5=backend.asarray(rule.w5),
                    w3a=backend.asarray(rule.w3a),
                    w3b=backend.asarray(rule.w3b),
                    w1=backend.asarray(rule.w1),
                    idx2_plus=backend.asarray(rule.idx2_plus),
                    idx2_minus=backend.asarray(rule.idx2_minus),
                    idx3_plus=backend.asarray(rule.idx3_plus),
                    idx3_minus=backend.asarray(rule.idx3_minus),
                )
                per[rule.ndim] = dr
            return dr

    def stats(self) -> Dict[str, int]:
        """Cache occupancy: live backends and resident rule sets."""
        with self._lock:
            return {
                "backends": len(self._per_backend),
                "rules": sum(len(v) for v in self._per_backend.values()),
            }

    def clear(self) -> None:
        with self._lock:
            self._per_backend = weakref.WeakKeyDictionary()


#: the process-wide instance shared by every evaluate sweep
RULE_CACHE = RuleCache()


def published_degree7_orbit_weights(ndim: int) -> np.ndarray:
    """The closed-form Genz–Malik degree-7 orbit weights (per unit volume).

    Kept as an independent statement of the literature values so the test
    suite can assert the moment solver reproduces them.
    """
    n = ndim
    return np.array(
        [
            (12824.0 - 9120.0 * n + 400.0 * n * n) / 19683.0,
            980.0 / 6561.0,
            (1820.0 - 400.0 * n) / 19683.0,
            200.0 / 19683.0,
            (6859.0 / 19683.0) / 2**n,
        ]
    )


def published_degree5_orbit_weights(ndim: int) -> np.ndarray:
    """Closed-form embedded degree-5 orbit weights (per unit volume)."""
    n = ndim
    return np.array(
        [
            (729.0 - 950.0 * n + 50.0 * n * n) / 729.0,
            245.0 / 486.0,
            (265.0 - 100.0 * n) / 1458.0,
            25.0 / 729.0,
            0.0,
        ]
    )
