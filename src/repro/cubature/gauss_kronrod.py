"""Tensor-product Gauss–Kronrod cubature (the paper's §2.1 comparison).

The paper motivates Genz–Malik by evaluation-count growth: "For an
n-dimensional region, these rules require 2^n + Θ(n³) function evaluations
whereas the Gauss-Kronrod method requires 15^n evaluations."  This module
builds that comparator from scratch so the claim can be *measured*:

* the G7 Gauss–Legendre nodes/weights from the Legendre Jacobi matrix
  (Golub–Welsch);
* the K15 Kronrod extension computed — not hard-coded — by constructing
  the degree-8 Stieltjes polynomial ``E₈`` (orthogonal to all lower
  degrees against the signed weight ``P₇(x) dx``) and adding its roots to
  the Gauss nodes; weights then follow from polynomial exactness;
* an n-dimensional tensor rule: the K15 tensor estimate with the embedded
  G7 tensor difference as error estimate, over arbitrary boxes, with the
  same batch-evaluation interface as the Genz–Malik sweep.

Evaluation count is ``15^n`` per region — usable to n ≈ 5-6, which is
precisely the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Tuple

import numpy as np

from repro.errors import DimensionError

GAUSS_N = 7  # G7/K15, the classic QUADPACK pair


def gauss_legendre(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Golub–Welsch: nodes/weights of the n-point Gauss–Legendre rule."""
    k = np.arange(1, n)
    beta = k / np.sqrt(4.0 * k * k - 1.0)
    jacobi = np.diag(beta, 1) + np.diag(beta, -1)
    nodes, vecs = np.linalg.eigh(jacobi)
    weights = 2.0 * vecs[0, :] ** 2
    return nodes, weights


def _legendre_values(x: np.ndarray, degree: int) -> np.ndarray:
    """P_0..P_degree evaluated at x, shape (degree+1, len(x))."""
    out = np.empty((degree + 1, x.size))
    out[0] = 1.0
    if degree >= 1:
        out[1] = x
    for k in range(1, degree):
        out[k + 1] = ((2 * k + 1) * x * out[k] - k * out[k - 1]) / (k + 1)
    return out


@lru_cache(maxsize=1)
def stieltjes_polynomial_roots() -> np.ndarray:
    """Roots of the Stieltjes polynomial E₈ extending G7 to K15.

    ``E₈`` is the monic-degree-8 polynomial with
    ``∫_{-1}^{1} P₇(x) E₈(x) x^j dx = 0`` for j = 0..7.  We expand
    ``E₈ = P₈ + Σ_{j<8} c_j P_j``, evaluate all integrals exactly with a
    40-point Gauss rule (integrands have degree <= 23), solve the 8×8
    linear system for ``c``, and extract the roots from the companion
    matrix of the monomial form.
    """
    gx, gw = gauss_legendre(40)
    P = _legendre_values(gx, 8)  # P_0..P_8 at quadrature nodes
    p7 = P[7]
    # moments M[j, k] = ∫ P7 * P_k * x^j dx  (j, k = 0..8)
    xj = np.vander(gx, 8, increasing=True).T  # x^0..x^7 rows
    M = np.einsum("q,jq,kq->jk", gw * p7, xj, P)  # (8 j) x (9 k)
    # solve Σ_k<8 c_k M[j,k] = -M[j,8]
    c = np.linalg.solve(M[:, :8], -M[:, 8])
    coeffs_legendre = np.concatenate([c, [1.0]])  # E8 in Legendre basis
    # convert to monomial coefficients via numpy's Legendre module
    from numpy.polynomial import legendre as npleg

    mono = npleg.leg2poly(coeffs_legendre)
    roots = np.roots(mono[::-1])
    roots = np.sort(roots.real[np.abs(roots.imag) < 1e-12])
    if roots.size != 8:
        raise RuntimeError("Stieltjes polynomial must have 8 real roots")
    return roots


@lru_cache(maxsize=1)
def kronrod_15() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(nodes, kronrod_weights, embedded_gauss_weights) of G7/K15.

    The 15 nodes are the union of the G7 nodes and the 8 Stieltjes roots;
    Kronrod weights come from requiring exactness on P_0..P_14 (a
    well-conditioned Legendre-Vandermonde solve).  The returned Gauss
    weight vector is zero-padded on the Stieltjes nodes so both estimates
    read off one evaluation vector.
    """
    gx, gw = gauss_legendre(GAUSS_N)
    sx = stieltjes_polynomial_roots()
    nodes = np.sort(np.concatenate([gx, sx]))
    # exactness system in the Legendre basis: Σ w_i P_k(x_i) = 2δ_{k0}
    P = _legendre_values(nodes, 14)
    rhs = np.zeros(15)
    rhs[0] = 2.0
    kweights = np.linalg.solve(P, rhs)
    gweights = np.zeros(15)
    for x, w in zip(gx, gw):
        idx = int(np.argmin(np.abs(nodes - x)))
        gweights[idx] = w
    return nodes, kweights, gweights


def point_count(ndim: int) -> int:
    """Tensor K15 evaluations per region: 15^n (the paper's growth rate)."""
    return 15**ndim


@dataclass(frozen=True)
class TensorGKRule:
    """Precomputed tensor Gauss–Kronrod data for one dimensionality."""

    ndim: int
    points: np.ndarray  # (15^n, n) reference offsets in [-1, 1]^n
    w_kronrod: np.ndarray  # (15^n,) normalised to unit volume
    w_gauss: np.ndarray  # (15^n,)

    @property
    def npoints(self) -> int:
        return self.points.shape[0]


@lru_cache(maxsize=None)
def get_tensor_rule(ndim: int) -> TensorGKRule:
    """Build (and cache) the tensor G7/K15 rule for ``ndim`` dimensions."""
    if ndim < 1:
        raise DimensionError("ndim must be >= 1")
    if ndim > 6:
        raise DimensionError(
            f"tensor Gauss–Kronrod needs 15^{ndim} = {15**ndim} evaluations "
            "per region; refusing ndim > 6 (this growth is the paper's §2.1 "
            "argument for Genz–Malik)"
        )
    nodes, kw, gw = kronrod_15()
    grids = np.meshgrid(*[nodes] * ndim, indexing="ij")
    points = np.stack([g.ravel() for g in grids], axis=1)
    wk = np.ones(points.shape[0])
    wg = np.ones(points.shape[0])
    for d in range(ndim):
        idx = np.meshgrid(*[np.arange(15)] * ndim, indexing="ij")[d].ravel()
        wk *= kw[idx]
        wg *= gw[idx]
    # normalise to unit volume (1-D weights sum to 2 per axis)
    return TensorGKRule(
        ndim=ndim,
        points=points,
        w_kronrod=wk / 2.0**ndim,
        w_gauss=wg / 2.0**ndim,
    )


def evaluate_regions_gk(
    rule: TensorGKRule,
    centers: np.ndarray,
    halfwidths: np.ndarray,
    integrand: Callable[[np.ndarray], np.ndarray],
    chunk_budget: int = 16_000_000,
):
    """Batch-evaluate regions with the tensor G7/K15 pair.

    Returns an object with ``estimate`` (K15), ``error`` (|K15 − G7|, the
    QUADPACK-style signal without its magnification heuristics) and
    ``neval`` — interface-compatible with the Genz–Malik sweep for
    downstream comparisons.
    """
    from repro.cubature.evaluation import EvaluationResult

    centers = np.asarray(centers, dtype=np.float64)
    halfwidths = np.asarray(halfwidths, dtype=np.float64)
    m, n = centers.shape
    if n != rule.ndim:
        raise ValueError(f"rule is {rule.ndim}-D, regions are {n}-D")
    p = rule.npoints
    estimate = np.empty(m)
    error = np.empty(m)
    chunk = max(1, int(chunk_budget // (p * n)))
    for lo in range(0, m, chunk):
        hi = min(lo + chunk, m)
        c = centers[lo:hi]
        h = halfwidths[lo:hi]
        pts = c[:, None, :] + rule.points[None, :, :] * h[:, None, :]
        vals = integrand(pts.reshape(-1, n)).reshape(hi - lo, p)
        vol = np.prod(2.0 * h, axis=1)
        ik = vol * (vals @ rule.w_kronrod)
        ig = vol * (vals @ rule.w_gauss)
        estimate[lo:hi] = ik
        error[lo:hi] = np.abs(ik - ig)
    return EvaluationResult(
        estimate=estimate,
        error=error,
        split_axis=np.zeros(m, dtype=np.int64),
        neval=m * p,
    )
