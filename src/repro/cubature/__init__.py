"""Fully-symmetric cubature rules (Genz–Malik) and batch region evaluation.

This package implements the quadrature substrate shared by PAGANI and every
baseline, mirroring what Cuhre builds on:

* :mod:`~repro.cubature.orbits` — fully-symmetric point-orbit machinery and a
  moment-matching solver that *derives* rule weights from exactness
  conditions instead of hard-coding constants (the published Genz–Malik
  closed forms are asserted against the solved weights in the test suite).
* :mod:`~repro.cubature.rules` — the degree-7 Genz–Malik rule with embedded
  degree-5/3/1 companion rules used for error estimation, cached per
  dimension.
* :mod:`~repro.cubature.evaluation` — vectorized evaluation of *batches* of
  regions (the paper's ``EVALUATE`` kernel): integral estimates, error
  estimates, and fourth-difference split-axis selection in one pass.
* :mod:`~repro.cubature.two_level` — Berntsen's two-level error refinement
  using parent and sibling estimates.
"""

from repro.cubature.rules import GenzMalikRule, get_rule
from repro.cubature.evaluation import EvaluationResult, evaluate_regions
from repro.cubature.two_level import two_level_errors

__all__ = [
    "GenzMalikRule",
    "get_rule",
    "EvaluationResult",
    "evaluate_regions",
    "two_level_errors",
]
