"""Simulated GPU substrate.

The paper's PAGANI implementation runs as CUDA kernels on a 16 GB V100.  This
package provides the substitute substrate used throughout the reproduction:

* :class:`~repro.gpu.device.DeviceSpec` / :class:`~repro.gpu.device.CpuSpec`
  describe hardware (peak FP64 throughput, bandwidth, launch overhead, SM
  count, memory capacity).
* :class:`~repro.gpu.device.VirtualDevice` executes "kernels" (vectorized
  NumPy array transforms) while charging a deterministic cost model and
  accounting memory against a capacity-limited pool.
* :mod:`~repro.gpu.thrust` supplies Thrust-style reductions/scans that route
  through the same accounting.
* :class:`~repro.gpu.scheduler.BlockScheduler` models the makespan of
  independent per-block workloads placed on SM slots — the load-imbalance
  mechanism that penalises the two-phase method's phase II.

Every figure reproduced from the paper uses the *simulated* time maintained
here, which makes the benchmark outputs deterministic and hardware
independent; wall-clock numbers are reported separately by pytest-benchmark.
"""

from repro.gpu.device import CpuSpec, DeviceSpec, KernelStats, VirtualDevice
from repro.gpu.memory import MemoryPool
from repro.gpu.scheduler import BlockScheduler
from repro.errors import DeviceMemoryError, KernelError

__all__ = [
    "CpuSpec",
    "DeviceSpec",
    "KernelStats",
    "VirtualDevice",
    "MemoryPool",
    "BlockScheduler",
    "DeviceMemoryError",
    "KernelError",
]
