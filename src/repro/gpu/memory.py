"""Capacity-limited device memory pool.

The pool does *bookkeeping only*: the actual array storage is ordinary host
NumPy memory.  What matters for reproducing the paper is the accounting —
PAGANI's threshold-classification filter is triggered when the next
breadth-first split would not fit in device memory, and the two-phase
baseline *fails* outright in that situation.  Both behaviours need a device
whose capacity is finite and observable.

Allocations are tracked by integer handles so double-frees and leaks are
detectable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import DeviceMemoryError


@dataclass
class MemoryPool:
    """Byte-accurate allocation tracker with a hard capacity.

    Parameters
    ----------
    capacity:
        Total pool size in bytes.  ``V100`` presets use 16 GiB; the scaled
        presets used by tests/benchmarks are much smaller so that memory
        exhaustion phenomena appear at laptop-friendly region counts.
    """

    capacity: int
    _in_use: int = 0
    _next_handle: int = 0
    _allocations: Dict[int, int] = field(default_factory=dict)
    peak_in_use: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("pool capacity must be positive")

    @property
    def in_use(self) -> int:
        """Bytes currently allocated."""
        return self._in_use

    @property
    def available(self) -> int:
        """Bytes that can still be allocated."""
        return self.capacity - self._in_use

    def can_fit(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would succeed right now."""
        return nbytes <= self.available

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes``; returns an opaque handle for :meth:`free`.

        Raises
        ------
        DeviceMemoryError
            If the pool cannot satisfy the request.  The exception carries
            the shortfall so the caller can size its filtering response.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.available:
            raise DeviceMemoryError(requested=nbytes, available=self.available)
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = nbytes
        self._in_use += nbytes
        if self._in_use > self.peak_in_use:
            self.peak_in_use = self._in_use
        return handle

    def free(self, handle: int) -> None:
        """Release a previous allocation.  Double frees raise ``KeyError``."""
        nbytes = self._allocations.pop(handle)
        self._in_use -= nbytes

    def resize(self, handle: int, nbytes: int) -> None:
        """Grow or shrink an existing allocation in place."""
        nbytes = int(nbytes)
        old = self._allocations[handle]
        delta = nbytes - old
        if delta > self.available:
            raise DeviceMemoryError(requested=delta, available=self.available)
        self._allocations[handle] = nbytes
        self._in_use += delta
        if self._in_use > self.peak_in_use:
            self.peak_in_use = self._in_use

    def reset(self) -> None:
        """Drop all allocations (used between independent integrations)."""
        self._allocations.clear()
        self._in_use = 0

    @property
    def n_allocations(self) -> int:
        return len(self._allocations)
