"""Virtual device: hardware specs, kernel launches, and the cost model.

The reproduction cannot run CUDA, so "kernels" are vectorized NumPy
transforms.  What this module preserves from the real system is the *cost
structure* of kernel execution, which is what the paper's evaluation
measures:

* every launch pays a fixed overhead (host-side launch latency);
* useful throughput is the device's peak FP64 rate times an efficiency
  factor that grows with the amount of exposed parallelism (the paper reports
  the evaluate kernel reaching 40–45 % of V100 peak only once >= 2^11
  sub-regions are in flight — small iterations under-utilise the device);
* memory-bound operations (classification, filtering, copying) are charged
  by bytes moved against the device bandwidth instead.

Simulated time is deterministic, so figure reproductions and their shape
assertions are stable across machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import KernelError
from repro.gpu.memory import MemoryPool

#: Calibration factor translating "algorithmic flops" into achieved device
#: work.  Real kernels spend instructions on index math, predication and
#: synchronisation that a flop count does not see; the paper's reported
#: region throughput (~1e6-1e7 regions/s in 8D on a V100) corresponds to
#: roughly a tenth of what a pure flop count against 45 % of peak predicts.
KERNEL_INEFFICIENCY = 0.12


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a (simulated) GPU.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"V100-16GB"``.
    peak_gflops_fp64:
        Peak double-precision rate in GFLOP/s.
    mem_bandwidth_gbs:
        HBM bandwidth in GB/s, used for memory-bound kernels.
    launch_overhead_us:
        Fixed per-kernel-launch latency in microseconds.
    n_sms:
        Number of streaming multiprocessors; together with
        ``blocks_per_sm`` this bounds concurrently resident blocks, which
        drives the two-phase method's phase-II makespan.
    blocks_per_sm:
        Resident blocks per SM for the 256-thread blocks both GPU methods
        use.
    mem_capacity:
        Device memory in bytes.
    eff_max:
        Peak fraction of ``peak_gflops_fp64`` a well-shaped compute kernel
        achieves (paper: ~0.45 for the evaluate kernel).
    eff_half_workload:
        Number of independent work items at which efficiency reaches half of
        ``eff_max`` (paper: needs ~2^11 regions for full efficiency).
    """

    name: str
    peak_gflops_fp64: float
    mem_bandwidth_gbs: float
    launch_overhead_us: float
    n_sms: int
    blocks_per_sm: int
    mem_capacity: int
    eff_max: float = 0.45
    eff_half_workload: float = 512.0

    @property
    def parallel_slots(self) -> int:
        """Blocks that can execute concurrently."""
        return self.n_sms * self.blocks_per_sm

    def efficiency(self, n_items: float) -> float:
        """Achieved fraction of peak for ``n_items`` independent work items.

        A saturating curve ``eff_max * n / (n + n_half)``: tiny workloads
        leave SMs idle; beyond a few thousand items the device saturates.
        """
        n = max(float(n_items), 0.0)
        return self.eff_max * n / (n + self.eff_half_workload)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def v100(cls) -> "DeviceSpec":
        """The paper's 16 GB V100 (7.834 TFLOP/s FP64, 80 SMs)."""
        return cls(
            name="V100-16GB",
            peak_gflops_fp64=7834.0,
            mem_bandwidth_gbs=900.0,
            launch_overhead_us=8.0,
            n_sms=80,
            blocks_per_sm=8,
            mem_capacity=16 * 1024**3,
        )

    @classmethod
    def a100(cls) -> "DeviceSpec":
        """A100-40GB preset (the paper's planned future target)."""
        return cls(
            name="A100-40GB",
            peak_gflops_fp64=9700.0,
            mem_bandwidth_gbs=1555.0,
            launch_overhead_us=7.0,
            n_sms=108,
            blocks_per_sm=8,
            mem_capacity=40 * 1024**3,
        )

    @classmethod
    def scaled(cls, mem_mb: int = 96, name: Optional[str] = None) -> "DeviceSpec":
        """A memory-scaled V100 used by tests and quick benchmarks.

        Shrinking only the memory capacity moves the paper's
        memory-exhaustion phenomena (two-phase failure, PAGANI threshold
        filtering) down to region counts a Python run can reach in seconds,
        while leaving the throughput model — and therefore all speedup
        *shapes* — untouched.
        """
        base = cls.v100()
        return cls(
            name=name or f"V100-scaled-{mem_mb}MB",
            peak_gflops_fp64=base.peak_gflops_fp64,
            mem_bandwidth_gbs=base.mem_bandwidth_gbs,
            launch_overhead_us=base.launch_overhead_us,
            n_sms=base.n_sms,
            blocks_per_sm=base.blocks_per_sm,
            mem_capacity=mem_mb * 1024**2,
        )


@dataclass(frozen=True)
class CpuSpec:
    """Cost model for the sequential CPU baseline (Cuhre).

    ``effective_gflops`` is deliberately far below peak: sequential Cuhre is
    scalar, branchy, pointer-chasing code.  ``heap_op_ns`` charges the
    priority-queue maintenance per push/pop.
    """

    name: str = "Xeon-Gold-6130"
    effective_gflops: float = 1.6
    heap_op_ns: float = 120.0

    def seconds_for_flops(self, flops: float) -> float:
        return flops / (self.effective_gflops * 1e9)


@dataclass
class KernelStats:
    """Accumulated per-kernel accounting on a :class:`VirtualDevice`."""

    launches: int = 0
    seconds: float = 0.0
    flops: float = 0.0
    bytes_moved: float = 0.0


class VirtualDevice:
    """Executes kernels, charges the cost model, owns the memory pool.

    Parameters
    ----------
    spec:
        Hardware description.  Defaults to a memory-scaled V100 suitable for
        laptop-scale runs; pass ``DeviceSpec.v100()`` for paper-scale
        accounting.
    """

    def __init__(self, spec: Optional[DeviceSpec] = None):
        self.spec = spec or DeviceSpec.scaled()
        self.memory = MemoryPool(self.spec.mem_capacity)
        self._stats: Dict[str, KernelStats] = {}
        self._time = 0.0

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------
    @property
    def elapsed_seconds(self) -> float:
        """Deterministic simulated time since construction/last reset."""
        return self._time

    def reset_clock(self) -> None:
        self._time = 0.0
        self._stats.clear()

    def stats(self) -> Dict[str, KernelStats]:
        """Per-kernel-name accounting (copy-safe view)."""
        return dict(self._stats)

    def _charge(self, name: str, seconds: float, flops: float, nbytes: float) -> None:
        st = self._stats.setdefault(name, KernelStats())
        st.launches += 1
        st.seconds += seconds
        st.flops += flops
        st.bytes_moved += nbytes
        self._time += seconds

    # ------------------------------------------------------------------
    # Kernel launch API
    # ------------------------------------------------------------------
    def launch(
        self,
        name: str,
        fn: Callable[..., object],
        *args: object,
        work_items: int,
        flops_per_item: float = 0.0,
        bytes_per_item: float = 0.0,
        **kwargs: object,
    ):
        """Run ``fn(*args, **kwargs)`` as a device kernel and charge its cost.

        ``work_items`` is the number of independent parallel units (regions
        for the evaluate kernel, list entries for classification kernels).
        Compute cost uses the occupancy-scaled FP64 rate; memory cost uses
        device bandwidth; the kernel is charged the *maximum* of the two
        (roofline style) plus launch overhead.
        """
        if work_items < 0:
            raise KernelError(f"kernel {name!r}: negative work_items")
        result = fn(*args, **kwargs)
        self.charge_kernel(
            name,
            work_items=work_items,
            flops_per_item=flops_per_item,
            bytes_per_item=bytes_per_item,
        )
        return result

    def charge_kernel(
        self,
        name: str,
        *,
        work_items: int,
        flops_per_item: float = 0.0,
        bytes_per_item: float = 0.0,
        launches: int = 1,
    ) -> float:
        """Charge cost without executing anything; returns seconds charged.

        Used where the "kernel body" is fused into another NumPy call or
        where cost must be accounted for work performed elsewhere.
        """
        total_flops = float(work_items) * flops_per_item
        total_bytes = float(work_items) * bytes_per_item
        eff = self.spec.efficiency(work_items)
        compute_s = 0.0
        if total_flops > 0.0 and eff > 0.0:
            achieved = self.spec.peak_gflops_fp64 * 1e9 * eff * KERNEL_INEFFICIENCY
            compute_s = total_flops / achieved
        mem_s = 0.0
        if total_bytes > 0.0:
            mem_s = total_bytes / (self.spec.mem_bandwidth_gbs * 1e9)
        seconds = max(compute_s, mem_s) + launches * self.spec.launch_overhead_us * 1e-6
        self._charge(name, seconds, total_flops, total_bytes)
        return seconds

    def charge_makespan(self, name: str, seconds: float) -> None:
        """Charge a precomputed duration (used by the block scheduler)."""
        if seconds < 0:
            raise KernelError(f"kernel {name!r}: negative makespan")
        self._charge(name, seconds, 0.0, 0.0)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def breakdown(self) -> List[tuple]:
        """(kernel, seconds, share) rows sorted by descending cost."""
        total = self._time or 1.0
        rows = [
            (name, st.seconds, st.seconds / total)
            for name, st in sorted(
                self._stats.items(), key=lambda kv: kv[1].seconds, reverse=True
            )
        ]
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualDevice({self.spec.name}, t={self._time:.6f}s, "
            f"mem={self.memory.in_use}/{self.memory.capacity}B)"
        )
