"""SM-slot block scheduler: the load-imbalance model.

The two-phase baseline's phase II runs an independent *sequential* Cuhre
inside every thread block.  A real GPU schedules those blocks greedily onto
SM residency slots; total runtime is the **makespan** of that schedule, so a
handful of long-running blocks (sub-regions sitting on a peak) stall the
whole device while every other SM idles — the phenomenon Figure 1 of the
paper illustrates and the root cause of the two-phase method's weak
high-precision behaviour.

The scheduler implements the natural greedy policy (each finishing slot pulls
the next pending block), which for identical-issue-order GPUs is the standard
list-scheduling model.  It also reports imbalance statistics used by the
Figure 1 reproduction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ScheduleReport:
    """Outcome of scheduling a batch of independent block workloads."""

    makespan: float
    total_work: float
    n_slots: int
    #: ratio of makespan to the perfectly balanced lower bound
    imbalance: float
    #: per-slot busy time, useful for imbalance plots
    slot_busy: np.ndarray

    @property
    def utilisation(self) -> float:
        """Fraction of slot-time doing useful work (1.0 = perfectly packed)."""
        denom = self.makespan * self.n_slots
        return self.total_work / denom if denom > 0 else 1.0


class BlockScheduler:
    """Greedy list scheduler for independent block durations.

    Parameters
    ----------
    n_slots:
        Concurrent block capacity (``DeviceSpec.parallel_slots``).
    """

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise ValueError("scheduler needs at least one slot")
        self.n_slots = int(n_slots)

    def schedule(self, durations: Sequence[float]) -> ScheduleReport:
        """Compute the makespan of running ``durations`` on the slots.

        Blocks are issued in the order given (GPUs dispatch blocks by index,
        they do not sort by predicted cost), each landing on the earliest
        free slot.
        """
        d = np.asarray(durations, dtype=np.float64)
        if d.size == 0:
            return ScheduleReport(0.0, 0.0, self.n_slots, 1.0, np.zeros(self.n_slots))
        if np.any(d < 0):
            raise ValueError("block durations must be non-negative")
        total = float(d.sum())
        if d.size <= self.n_slots:
            makespan = float(d.max())
            busy = np.zeros(self.n_slots)
            busy[: d.size] = d
        else:
            # Min-heap of (finish_time, slot); classic list scheduling.
            finish = [(0.0, i) for i in range(self.n_slots)]
            heapq.heapify(finish)
            busy = np.zeros(self.n_slots)
            for dur in d:
                t, slot = heapq.heappop(finish)
                busy[slot] += dur
                heapq.heappush(finish, (t + dur, slot))
            makespan = max(t for t, _ in finish)
        lower_bound = max(total / self.n_slots, float(d.max()))
        imbalance = makespan / lower_bound if lower_bound > 0 else 1.0
        return ScheduleReport(
            makespan=makespan,
            total_work=total,
            n_slots=self.n_slots,
            imbalance=imbalance,
            slot_busy=busy,
        )
