"""Thrust-style parallel primitives on the virtual device.

The paper's implementation leans on Thrust for reductions, dot products,
min/max and prefix scans in PAGANI's post-processing and threshold-search
steps.  Each wrapper here executes through a pluggable
:class:`~repro.backends.base.ArrayBackend` (NumPy when none is given) and
charges the device cost model as a memory-bound kernel (these primitives
stream the operand arrays once or twice through HBM, so bytes-moved is
the right roofline axis).

Passing a backend lets the same call sites run over CuPy device arrays or
any other registered substrate; the cost accounting is unchanged — the
virtual device models the paper's hardware regardless of what actually
executes the arithmetic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backends import get_backend
from repro.backends.base import ArrayBackend
from repro.gpu.device import VirtualDevice

_F8 = 8  # bytes per float64


def reduce_sum(
    device: Optional[VirtualDevice],
    values: np.ndarray,
    name: str = "thrust::reduce",
    backend: Optional[ArrayBackend] = None,
) -> float:
    """Sum-reduce a vector (PAGANI lines 13-14)."""
    out = get_backend(backend).reduce_sum(values)
    if device is not None:
        device.charge_kernel(name, work_items=values.size, bytes_per_item=_F8)
    return out


def dot(
    device: Optional[VirtualDevice],
    a: np.ndarray,
    b: np.ndarray,
    name: str = "thrust::inner_product",
    backend: Optional[ArrayBackend] = None,
) -> float:
    """Dot product, used for ``Sum(V . A)`` / ``Sum(E . A)`` (lines 18-19)."""
    out = get_backend(backend).dot(a, b)
    if device is not None:
        device.charge_kernel(name, work_items=a.size, bytes_per_item=2 * _F8)
    return out


def minmax(
    device: Optional[VirtualDevice],
    values: np.ndarray,
    name: str = "thrust::minmax_element",
    backend: Optional[ArrayBackend] = None,
) -> Tuple[float, float]:
    """Simultaneous min/max, used to bound the threshold search."""
    out = get_backend(backend).minmax(values)
    if device is not None:
        device.charge_kernel(name, work_items=values.size, bytes_per_item=_F8)
    return out


def exclusive_scan(
    device: Optional[VirtualDevice],
    flags: np.ndarray,
    name: str = "thrust::exclusive_scan",
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Exclusive prefix sum over 0/1 flags.

    This is the compaction index computation used by the filter kernel: the
    scan of the active flags gives each surviving region its output slot.
    """
    out = get_backend(backend).exclusive_scan(flags)
    if device is not None:
        device.charge_kernel(name, work_items=flags.size, bytes_per_item=2 * _F8)
    return out


def count_nonzero(
    device: Optional[VirtualDevice],
    flags: np.ndarray,
    name: str = "thrust::count",
    backend: Optional[ArrayBackend] = None,
) -> int:
    """Count set flags (number of active regions)."""
    out = get_backend(backend).count_nonzero(flags)
    if device is not None:
        device.charge_kernel(name, work_items=flags.size, bytes_per_item=_F8)
    return out
