"""Thrust-style parallel primitives on the virtual device.

The paper's implementation leans on Thrust for reductions, dot products,
min/max and prefix scans in PAGANI's post-processing and threshold-search
steps.  Each wrapper here executes with NumPy and charges the device cost
model as a memory-bound kernel (these primitives stream the operand arrays
once or twice through HBM, so bytes-moved is the right roofline axis).

All functions accept plain ``np.ndarray`` operands; keeping array storage on
the host is part of the substitution documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpu.device import VirtualDevice

_F8 = 8  # bytes per float64


def reduce_sum(device: Optional[VirtualDevice], values: np.ndarray, name: str = "thrust::reduce") -> float:
    """Sum-reduce a vector (PAGANI lines 13-14)."""
    out = float(np.sum(values))
    if device is not None:
        device.charge_kernel(name, work_items=values.size, bytes_per_item=_F8)
    return out


def dot(
    device: Optional[VirtualDevice],
    a: np.ndarray,
    b: np.ndarray,
    name: str = "thrust::inner_product",
) -> float:
    """Dot product, used for ``Sum(V . A)`` / ``Sum(E . A)`` (lines 18-19)."""
    out = float(np.dot(a, b))
    if device is not None:
        device.charge_kernel(name, work_items=a.size, bytes_per_item=2 * _F8)
    return out


def minmax(
    device: Optional[VirtualDevice], values: np.ndarray, name: str = "thrust::minmax_element"
) -> Tuple[float, float]:
    """Simultaneous min/max, used to bound the threshold search."""
    if values.size == 0:
        raise ValueError("minmax of empty array")
    out = (float(np.min(values)), float(np.max(values)))
    if device is not None:
        device.charge_kernel(name, work_items=values.size, bytes_per_item=_F8)
    return out


def exclusive_scan(
    device: Optional[VirtualDevice],
    flags: np.ndarray,
    name: str = "thrust::exclusive_scan",
) -> np.ndarray:
    """Exclusive prefix sum over 0/1 flags.

    This is the compaction index computation used by the filter kernel: the
    scan of the active flags gives each surviving region its output slot.
    """
    out = np.cumsum(flags, dtype=np.int64)
    out = np.concatenate(([0], out[:-1]))
    if device is not None:
        device.charge_kernel(name, work_items=flags.size, bytes_per_item=2 * _F8)
    return out


def count_nonzero(
    device: Optional[VirtualDevice], flags: np.ndarray, name: str = "thrust::count"
) -> int:
    """Count set flags (number of active regions)."""
    out = int(np.count_nonzero(flags))
    if device is not None:
        device.charge_kernel(name, work_items=flags.size, bytes_per_item=_F8)
    return out
