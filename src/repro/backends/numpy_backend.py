"""The reference backend: single-threaded vectorized NumPy.

This is the substrate the reproduction has always run on; every other
backend is validated against it (the conformance tests assert identical
estimates and errors).  All primitives are direct NumPy calls — the
virtual-device cost accounting stays in :mod:`repro.gpu.thrust`, which
charges kernels *around* these primitives.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

import numpy as np

from repro.backends.base import ArrayBackend


class NumpyBackend(ArrayBackend):
    """Default vectorized NumPy execution (one thread, host memory)."""

    name = "numpy"

    @property
    def xp(self) -> Any:
        return np

    def asarray(self, a: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(a, dtype=dtype)

    def to_numpy(self, a: Any) -> np.ndarray:
        return np.asarray(a)

    def map_integrand(self, fn: Callable[[Any], Any], points: Any) -> np.ndarray:
        vals = fn(points)
        vals = np.asarray(vals)
        if vals.dtype != np.float64:
            vals = vals.astype(np.float64)
        return vals

    def reduce_sum(self, values: Any) -> float:
        return float(np.sum(values))

    def dot(self, a: Any, b: Any) -> float:
        return float(np.dot(a, b))

    def minmax(self, values: Any) -> Tuple[float, float]:
        if values.size == 0:
            raise ValueError("minmax of empty array")
        return (float(np.min(values)), float(np.max(values)))

    def count_nonzero(self, flags: Any) -> int:
        return int(np.count_nonzero(flags))

    def exclusive_scan(self, flags: Any) -> np.ndarray:
        out = np.cumsum(flags, dtype=np.int64)
        if out.size == 0:
            return out
        out = np.concatenate(([0], out[:-1]))
        return out
