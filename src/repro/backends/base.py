"""The :class:`ArrayBackend` protocol — the execution substrate contract.

PAGANI's hot path is a handful of array-level operations repeated every
iteration: materialise the cubature points for a batch of regions, apply
the integrand, reduce with the rule weights, and run a few Thrust-style
primitives (sum, dot, min/max, count, exclusive scan, stream compaction).
A backend supplies exactly those operations over one array type; the
algorithm layers (``repro.core``, ``repro.cubature``) never name a
concrete array library.

Implementers subclass :class:`ArrayBackend` and provide:

``xp``
    The array namespace (``numpy``, ``cupy``, …).  All array *creation*
    in the hot path goes through ``xp`` (``xp.empty``, ``xp.zeros``,
    ``xp.arange``, ``xp.repeat``, …); elementwise math is written with
    ``numpy`` ufuncs, which dispatch to the owning library through
    ``__array_ufunc__`` / ``__array_function__``.
``map_integrand``
    Apply the user's batch integrand to an ``(N, ndim)`` point array and
    coerce the result to a float64 vector *of the backend's array type*.
``run_chunks``
    Execute a list of independent thunks, each writing a disjoint slice
    of pre-allocated output arrays.  This is the parallelism hook: the
    serial backends run the list in order, the threaded backend fans it
    out over a pool.  Because every thunk computes exactly the same
    numbers regardless of scheduling, results are bit-identical across
    backends that share an array library.
reductions / scan / compaction
    ``reduce_sum``, ``dot``, ``minmax``, ``count_nonzero`` return Python
    scalars (a device sync point on real accelerators);
    ``exclusive_scan`` and ``compress`` return backend arrays.

See ``repro/backends/__init__.py`` for the registry and the user-facing
selection API.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional, Sequence, Tuple

import numpy as np


class BackendUnavailableError(ImportError):
    """The requested backend's array library (or device) is not usable.

    Subclasses :class:`ImportError` so ``pytest.importorskip``-style
    guards and plain ``except ImportError`` both catch it.
    """


class ArrayBackend(abc.ABC):
    """Abstract execution backend for the PAGANI hot path.

    Concrete backends are cheap, stateless handles (a thread pool at
    most); one instance can serve any number of concurrent integrations.
    """

    #: registry name, e.g. ``"numpy"``; set by subclasses
    name: str = "abstract"

    #: chunk budget (floats per chunk) the batch layer should use when
    #: fusing many runs' sweeps onto this backend; ``None`` keeps each
    #: run's reference budget (required for bit-identity with sequential
    #: execution — see ``repro.batch``).  Parallel backends that benefit
    #: from many small cache-sized chunks declare their tuned grain here.
    preferred_batch_chunk_budget: Optional[int] = None

    #: backends that execute chunks in *other processes* set this True;
    #: the evaluate sweep then attaches a picklable chunk spec to every
    #: task whose integrand can be shipped (see
    #: :func:`repro.cubature.evaluation.shippable_integrand`), alongside
    #: the ordinary in-process thunk.  Host/thread/device backends leave
    #: it False and pay nothing.
    wants_chunk_specs: bool = False

    #: backends that may execute the chunk thunks *concurrently* set this
    #: True; the evaluate sweep then skips the shared per-run scratch
    #: buffers, which assume chunks run one at a time.  Serial backends
    #: (the default ``run_chunks``) leave it False and get allocation-free
    #: steady-state sweeps.
    concurrent_chunks: bool = False

    # -- array namespace & movement ------------------------------------
    @property
    @abc.abstractmethod
    def xp(self) -> Any:
        """The array-creation namespace (``numpy``, ``cupy``, …)."""

    @abc.abstractmethod
    def asarray(self, a: Any, dtype: Any = None) -> Any:
        """Coerce ``a`` to this backend's array type (no copy if possible)."""

    @abc.abstractmethod
    def to_numpy(self, a: Any) -> np.ndarray:
        """Copy/viewify a backend array back to host NumPy."""

    # -- hot-path execution --------------------------------------------
    @abc.abstractmethod
    def map_integrand(self, fn: Callable[[Any], Any], points: Any) -> Any:
        """Apply batch integrand ``fn`` to ``(N, ndim)`` ``points``.

        Returns a float64 ``(N,)`` array of this backend's type.  The
        integrand contract is unchanged from the NumPy path: it must be
        a vectorised batch callable; backends never loop per point.
        """

    def run_chunks(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Execute independent chunk thunks (default: serially, in order).

        Each thunk writes a disjoint, pre-allocated output slice, so any
        schedule is valid and all schedules produce identical bits.
        """
        for task in tasks:
            task()

    def synchronize(self) -> None:
        """Block until device work completes (no-op for host backends)."""

    # -- Thrust-style primitives ---------------------------------------
    @abc.abstractmethod
    def reduce_sum(self, values: Any) -> float:
        """Sum-reduce to a Python float (``thrust::reduce``)."""

    @abc.abstractmethod
    def dot(self, a: Any, b: Any) -> float:
        """Inner product to a Python float (``thrust::inner_product``)."""

    @abc.abstractmethod
    def minmax(self, values: Any) -> Tuple[float, float]:
        """Simultaneous min/max (``thrust::minmax_element``)."""

    @abc.abstractmethod
    def count_nonzero(self, flags: Any) -> int:
        """Count set flags (``thrust::count``)."""

    @abc.abstractmethod
    def exclusive_scan(self, flags: Any) -> Any:
        """Exclusive prefix sum (``thrust::exclusive_scan``)."""

    def compress(self, mask: Any, array: Any) -> Any:
        """Stream compaction: rows of ``array`` where ``mask`` is set.

        The scan-plus-gather idiom of the CUDA filter kernel; boolean
        fancy indexing is the host realisation.
        """
        return array[mask]

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


def resolve_workers(num_threads: Optional[int]) -> int:
    """Clamp a worker-count request to [1, 32], defaulting to the host CPUs."""
    import os

    if num_threads is None:
        num_threads = os.cpu_count() or 1
    return max(1, min(32, int(num_threads)))
