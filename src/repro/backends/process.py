"""Multi-process chunked NumPy backend: real multi-core without the GIL.

The ``threaded`` backend relies on NumPy releasing the GIL inside large
ufunc/matmul calls; with the small cache-sized chunks the batch layer
prefers, a meaningful share of each chunk is pure-Python glue that still
serialises, capping the speedup well below the core count.  This backend
executes the evaluate-sweep chunks in a persistent pool of **worker
processes** instead, so every chunk's Python glue runs concurrently too.

How a chunk travels
-------------------
Chunk thunks are closures over backend arrays and the integrand — not
picklable.  The evaluate sweep therefore attaches a *picklable chunk
spec* to every task when this backend is active (see
:class:`~repro.cubature.evaluation.ChunkTask`): the integrand reference
(a catalogue spec string like ``"8d-f7"``, or the pickled callable), the
dimensionality, the error model, and the chunk's center/halfwidth
slices.  A worker rebuilds the integrand and the Genz–Malik rule tensors
once per process (both cached — ``named_integrand`` + ``get_rule`` /
``RULE_CACHE``), evaluates the chunk with the **same**
:func:`~repro.cubature.evaluation.compute_chunk` arithmetic the
in-process path uses, and returns the chunk's ``(estimate, error,
axis)`` arrays.  The parent stitches results in deterministic chunk
order, so results are **bit-identical** to the NumPy reference on the
same chunk decomposition — the conformance suite asserts it.

Fallbacks and failure
---------------------
* An integrand that cannot be shipped (a lambda/closure without a
  catalogue spec) degrades gracefully: its chunks run in-process,
  serially, with unchanged numerics.
* A worker that *raises* propagates the exception to the caller exactly
  like a serial thunk would (the batch scheduler's per-member isolation
  applies unchanged).
* A worker that *dies* (segfault, ``os._exit``) breaks the pool;
  the backend discards the broken pool — the next submission builds a
  fresh one — and surfaces :class:`WorkerCrashError` for the affected
  chunks.  One crashing job cannot poison the backend for subsequent
  integrations.
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.backends.base import BackendUnavailableError, resolve_workers
from repro.backends.numpy_backend import NumpyBackend


class WorkerCrashError(RuntimeError):
    """A pool worker died mid-chunk (crash, not an ordinary exception).

    The backend has already discarded the broken pool; retrying the
    integration builds a fresh one.  The original executor error is
    chained as ``__cause__``.
    """


# ---------------------------------------------------------------------------
# Worker-process side.  Everything below runs inside pool workers; the
# per-process caches persist across chunks, so an integrand / rule set is
# rebuilt once per worker, not once per chunk.
# ---------------------------------------------------------------------------
_worker_numpy_backend: Optional[NumpyBackend] = None
_worker_integrands: Dict[Any, Callable] = {}


def _worker_backend() -> NumpyBackend:
    global _worker_numpy_backend
    if _worker_numpy_backend is None:
        _worker_numpy_backend = NumpyBackend()
    return _worker_numpy_backend


def _resolve_worker_integrand(ref: Tuple[str, Any]) -> Callable:
    kind, value = ref
    key = (kind, value if kind == "spec" else hashlib.sha256(value).digest())
    fn = _worker_integrands.get(key)
    if fn is None:
        if kind == "spec":
            from repro.integrands.catalog import named_integrand

            fn = named_integrand(value)
        else:
            fn = pickle.loads(value)
        _worker_integrands[key] = fn
    return fn


def _eval_chunk_in_worker(spec: Dict[str, Any]):
    """Evaluate one shipped chunk spec; returns ``(estimate, error, axis)``."""
    from repro.cubature.evaluation import compute_chunk
    from repro.cubature.rules import RULE_CACHE, get_rule

    bk = _worker_backend()
    integrand = _resolve_worker_integrand(spec["integrand"])
    dr = RULE_CACHE.device_rule(get_rule(spec["ndim"]), bk)
    return compute_chunk(
        bk, dr, integrand, spec["centers"], spec["halfwidths"],
        spec["error_model"],
    )


def process_pool_available() -> bool:
    """Whether this host can build a process pool (needs working
    semaphores — some sandboxes disable them)."""
    try:
        import multiprocessing.synchronize  # noqa: F401
    except ImportError:
        return False
    return True


# ---------------------------------------------------------------------------
# Parent-process side: the backend.
# ---------------------------------------------------------------------------
class ProcessNumpyBackend(NumpyBackend):
    """Chunk-parallel NumPy execution on a persistent process pool.

    Parameters
    ----------
    num_workers:
        Pool width; ``None`` means one worker per host CPU (capped at
        32).  Selectable from the string spec ``"process:<N>"``.

    The pool is built lazily on the first parallel submission and reused
    for the backend's lifetime (workers keep their integrand/rule caches
    warm); :meth:`close` shuts it down explicitly.
    """

    name = "process"

    #: the batch layer's fused grain for this backend.  Larger than the
    #: threaded backend's cache-sized 128 Ki floats: each chunk pays a
    #: pickle round-trip (points out, three result vectors back), so the
    #: grain must amortise IPC while still yielding enough independent
    #: chunks per fused submission to fill every worker.
    preferred_batch_chunk_budget = 1_048_576

    #: ask the evaluate sweep to attach picklable chunk specs
    wants_chunk_specs = True

    def __init__(self, num_workers: Optional[int] = None):
        if not process_pool_available():
            raise BackendUnavailableError(
                "process backend unavailable: this host cannot create "
                "multiprocessing primitives"
            )
        self.num_workers = resolve_workers(num_workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.num_workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool without waiting; next use builds a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def run_chunks(self, tasks: Sequence[Callable[[], None]]) -> None:
        remote = [t for t in tasks if getattr(t, "remote_spec", None)]
        if len(remote) <= 1 or self.num_workers == 1:
            # Nothing to parallelise across processes (unshippable
            # integrand, single chunk, or width-1 pool): the in-process
            # thunks compute the same bits serially.
            for task in tasks:
                task()
            return

        pool = self._ensure_pool()
        try:
            futures = [
                (t, pool.submit(_eval_chunk_in_worker, t.remote_spec))
                for t in remote
            ]
        except RuntimeError as exc:
            # Pool already shut down under us (close() raced a submit).
            self._discard_pool()
            raise WorkerCrashError("process pool unusable") from exc

        # Overlap: the parent evaluates the unshippable chunks while the
        # workers chew on the shipped ones.
        errs: List[BaseException] = []
        for task in tasks:
            if getattr(task, "remote_spec", None):
                continue
            try:
                task()
            except Exception as exc:
                errs.append(exc)

        # Stitch in deterministic chunk order (the submission order).  A
        # worker exception is delivered through the task's
        # complete_remote hook so it propagates — or is recorded by the
        # batch scheduler's per-member guard — exactly like a serial
        # thunk raising.
        broken = False
        for task, fut in futures:
            error = fut.exception()
            if isinstance(error, BrokenExecutor):
                broken = True
                error = WorkerCrashError(
                    "a process-backend worker died while evaluating a "
                    "chunk; the pool was reset"
                )
                error.__cause__ = fut.exception()
            try:
                if error is not None:
                    task.complete_remote(error=error)
                else:
                    task.complete_remote(result=fut.result())
            except Exception as exc:
                errs.append(exc)
        if broken:
            self._discard_pool()
        if errs:
            raise errs[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (tests/benchmark hygiene; optional)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ProcessNumpyBackend workers={self.num_workers}>"
