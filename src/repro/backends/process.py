"""Multi-process chunked NumPy backend: real multi-core without the GIL.

The ``threaded`` backend relies on NumPy releasing the GIL inside large
ufunc/matmul calls; with the small cache-sized chunks the batch layer
prefers, a meaningful share of each chunk is pure-Python glue that still
serialises, capping the speedup well below the core count.  This backend
executes the evaluate-sweep chunks in a persistent pool of **worker
processes** instead, so every chunk's Python glue runs concurrently too.

How a chunk travels
-------------------
Chunk thunks are closures over backend arrays and the integrand — not
picklable.  The evaluate sweep therefore attaches a *picklable chunk
spec* to every task when this backend is active (see
:class:`~repro.cubature.evaluation.ChunkTask`): the integrand reference
(a catalogue spec string like ``"8d-f7"``, or the pickled callable), the
dimensionality, the error model, and the chunk's center/halfwidth
slices.  A worker rebuilds the integrand and the Genz–Malik rule tensors
once per process (both cached — ``named_integrand`` + ``get_rule`` /
``RULE_CACHE``), evaluates the chunk with the **same**
:func:`~repro.cubature.evaluation.compute_chunk` arithmetic the
in-process path uses, and returns the chunk's ``(estimate, error,
axis)`` arrays.  The parent stitches results in deterministic chunk
order, so results are **bit-identical** to the NumPy reference on the
same chunk decomposition — the conformance suite asserts it.

The IPC transport
-----------------
Two transports ship the chunk payloads (``ipc=`` constructor knob):

* ``"shm"`` (default) — the parent packs every chunk's centers and
  halfwidths into a reusable ``multiprocessing.shared_memory`` input
  arena and reserves per-chunk slots in an output arena; the submitted
  header is a tiny tuple of (arena names, offsets, shape, error model,
  integrand ref).  Workers map the arenas once per arena name, compute
  straight out of the shared pages, and write the three result vectors
  back in place — no per-chunk serialisation of the float payload in
  either direction.  float64/int64 bits move by memcpy, so the transport
  cannot perturb a single ULP.  A pickled-callable integrand ships once
  per *worker* through its own content-addressed shared-memory block
  (workers cache by digest), not once per chunk.  Arenas grow
  geometrically and are reused across submissions (``run_chunks`` is
  synchronous, so a submission never overlaps the next); they are
  unlinked on :meth:`close` or garbage collection.
* ``"pickle"`` — the original transport: the full chunk spec (arrays
  included) pickles through the executor per chunk.  Kept as the
  fallback when shared memory is unavailable (some sandboxes mount no
  ``/dev/shm``) and as the measured comparison point for
  ``BENCH_routing.json``'s shm-vs-pickle row.

Fallbacks and failure
---------------------
* An integrand that cannot be shipped (a lambda/closure without a
  catalogue spec) degrades gracefully: its chunks run in-process,
  serially, with unchanged numerics.
* A worker that *raises* propagates the exception to the caller exactly
  like a serial thunk would (the batch scheduler's per-member isolation
  applies unchanged).
* A worker that *dies* (segfault, ``os._exit``) breaks the pool;
  the backend discards the broken pool — the next submission builds a
  fresh one — and surfaces :class:`WorkerCrashError` for the affected
  chunks.  One crashing job cannot poison the backend for subsequent
  integrations.
"""

from __future__ import annotations

import hashlib
import pickle
import weakref
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.backends.base import BackendUnavailableError, resolve_workers
from repro.backends.numpy_backend import NumpyBackend


class WorkerCrashError(RuntimeError):
    """A pool worker died mid-chunk (crash, not an ordinary exception).

    The backend has already discarded the broken pool; retrying the
    integration builds a fresh one.  The original executor error is
    chained as ``__cause__``.
    """


# ---------------------------------------------------------------------------
# Availability probes (cached).
# ---------------------------------------------------------------------------
_POOL_PROBE: Optional[Tuple[bool, Optional[str]]] = None
_SHM_PROBE: Optional[bool] = None


def _probe_process_pool() -> Tuple[bool, Optional[str]]:
    """(available, reason-if-not): can this host build mp primitives?

    An import probe is not enough — on semaphore-less sandboxes
    ``multiprocessing.synchronize`` imports fine and pool creation
    explodes later inside ``run_chunks``.  Actually allocating (and
    releasing) one OS-level primitive answers the real question; the
    verdict is cached so the cost is paid once per process.
    """
    global _POOL_PROBE
    if _POOL_PROBE is None:
        try:
            import multiprocessing

            lock = multiprocessing.get_context().Lock()
            del lock
        except Exception as exc:  # ImportError, OSError, PermissionError...
            _POOL_PROBE = (False, f"{type(exc).__name__}: {exc}")
        else:
            _POOL_PROBE = (True, None)
    return _POOL_PROBE


def process_pool_available() -> bool:
    """Whether this host can build a process pool (cached real probe)."""
    return _probe_process_pool()[0]


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` segments work here."""
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=16)
            _release_shm(seg)
        except Exception:
            _SHM_PROBE = False
        else:
            _SHM_PROBE = True
    return _SHM_PROBE


def _release_shm(shm) -> None:
    """Unlink + close a parent-owned segment, tolerating stragglers."""
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a view still alive; mapping
        pass  # dies with the process, the name is already unlinked


class _ShmArena:
    """A parent-owned shared-memory block, grown geometrically and reused.

    ``run_chunks`` is synchronous, so one submission's payload never
    overlaps the next — a single reusable arena per direction is enough
    (the "ring" degenerates to one slot).  Growth allocates a fresh
    segment under a fresh name; workers attach by name, so they pick up
    the new segment on the next chunk automatically.
    """

    def __init__(self) -> None:
        self.shm = None
        self.size = 0
        self._finalizer = None

    @property
    def name(self) -> str:
        return self.shm.name

    def ensure(self, nbytes: int) -> None:
        if self.shm is not None and self.size >= nbytes:
            return
        from multiprocessing import shared_memory

        self.release()
        size = max(4096, 1 << max(0, (int(nbytes) - 1)).bit_length())
        self.shm = shared_memory.SharedMemory(create=True, size=size)
        self.size = size
        self._finalizer = weakref.finalize(self, _release_shm, self.shm)

    def release(self) -> None:
        if self.shm is None:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _release_shm(self.shm)
        self.shm = None
        self.size = 0


# ---------------------------------------------------------------------------
# Worker-process side.  Everything below runs inside pool workers; the
# per-process caches persist across chunks, so an integrand / rule set /
# arena mapping is rebuilt once per worker, not once per chunk.
# ---------------------------------------------------------------------------
_worker_numpy_backend: Optional[NumpyBackend] = None
_worker_integrands: Dict[Any, Callable] = {}
_worker_segments: "OrderedDict[str, Any]" = OrderedDict()

#: arena names a worker keeps mapped; parents regrow arenas rarely
#: (geometric growth), so a handful of names covers a pool's lifetime
_WORKER_SEGMENT_CAP = 8


def _worker_backend() -> NumpyBackend:
    global _worker_numpy_backend
    if _worker_numpy_backend is None:
        _worker_numpy_backend = NumpyBackend()
    return _worker_numpy_backend


def _worker_attach_shm(name: str):
    """Map a parent arena by name, once per worker (LRU-capped cache)."""
    seg = _worker_segments.get(name)
    if seg is None:
        from multiprocessing import shared_memory

        # On 3.11 attaching registers with the resource tracker too
        # (no ``track=False`` knob yet).  Pool workers share the
        # parent's tracker on every start method, so the registration
        # dedupes into the parent's own create-time entry and the
        # parent's eventual ``unlink`` balances it — do NOT unregister
        # here, that would strip the parent's entry and the tracker
        # would log a KeyError on the real unlink.
        seg = shared_memory.SharedMemory(name=name)
        _worker_segments[name] = seg
        while len(_worker_segments) > _WORKER_SEGMENT_CAP:
            _, old = _worker_segments.popitem(last=False)
            try:
                old.close()
            except BufferError:  # pragma: no cover - chunk view alive
                pass
    else:
        _worker_segments.move_to_end(name)
    return seg


def _resolve_worker_integrand(ref: Tuple[str, Any]) -> Callable:
    kind, value = ref
    if kind == "spec":
        key = ("spec", value)
    elif kind == "shm":
        # content-addressed: same digest == same pickled callable,
        # whether it arrived through shared memory or inline bytes
        key = ("pickle", bytes.fromhex(value[2]))
    else:
        key = ("pickle", hashlib.sha256(value).digest())
    fn = _worker_integrands.get(key)
    if fn is None:
        if kind == "spec":
            from repro.integrands.catalog import named_integrand

            fn = named_integrand(value)
        elif kind == "shm":
            name, size, _digest = value
            seg = _worker_attach_shm(name)
            fn = pickle.loads(bytes(seg.buf[:size]))
        else:
            fn = pickle.loads(value)
        _worker_integrands[key] = fn
    return fn


def _eval_chunk_in_worker(spec: Dict[str, Any]):
    """Evaluate one pickled chunk spec; returns ``(estimate, error, axis)``."""
    from repro.cubature.evaluation import compute_chunk
    from repro.cubature.rules import RULE_CACHE, get_rule

    bk = _worker_backend()
    integrand = _resolve_worker_integrand(spec["integrand"])
    dr = RULE_CACHE.device_rule(get_rule(spec["ndim"]), bk)
    return compute_chunk(
        bk, dr, integrand, spec["centers"], spec["halfwidths"],
        spec["error_model"],
    )


def _eval_chunk_shm(header: Tuple) -> None:
    """Evaluate one shared-memory chunk header, results written in place.

    The header is (in_name, out_name, in_off, out_off, mc, ndim,
    error_model, integrand_ref).  Inputs are read as views straight into
    the input arena; the three result vectors are memcpy'd into the
    output arena slot — the parent reads them back after the future
    resolves, so nothing numeric crosses the executor's pickle channel.
    """
    import numpy as np

    from repro.cubature.evaluation import compute_chunk
    from repro.cubature.rules import RULE_CACHE, get_rule

    in_name, out_name, in_off, out_off, mc, ndim, error_model, ref = header
    bk = _worker_backend()
    integrand = _resolve_worker_integrand(ref)
    in_seg = _worker_attach_shm(in_name)
    out_seg = _worker_attach_shm(out_name)
    count = mc * ndim
    centers = np.frombuffer(
        in_seg.buf, np.float64, count, in_off
    ).reshape(mc, ndim)
    halfwidths = np.frombuffer(
        in_seg.buf, np.float64, count, in_off + count * 8
    ).reshape(mc, ndim)
    dr = RULE_CACHE.device_rule(get_rule(ndim), bk)
    est, err, axis = compute_chunk(
        bk, dr, integrand, centers, halfwidths, error_model
    )
    np.frombuffer(out_seg.buf, np.float64, mc, out_off)[:] = est
    np.frombuffer(out_seg.buf, np.float64, mc, out_off + mc * 8)[:] = err
    np.frombuffer(out_seg.buf, np.int64, mc, out_off + mc * 16)[:] = axis
    return None


# ---------------------------------------------------------------------------
# Parent-process side: the backend.
# ---------------------------------------------------------------------------

#: parent keeps at most this many pickled-callable integrand blocks live
_INTEGRAND_SHM_CAP = 32


class ProcessNumpyBackend(NumpyBackend):
    """Chunk-parallel NumPy execution on a persistent process pool.

    Parameters
    ----------
    num_workers:
        Pool width; ``None`` means one worker per host CPU (capped at
        32).  Selectable from the string spec ``"process:<N>"``.
    ipc:
        Chunk transport — ``"shm"`` (default; shared-memory arenas, see
        module docstring) or ``"pickle"`` (per-chunk pickling).  ``shm``
        silently degrades to ``pickle`` when the host cannot create
        shared-memory segments; :attr:`effective_ipc` reports the
        transport actually in use.

    The pool is built lazily on the first parallel submission and reused
    for the backend's lifetime (workers keep their integrand/rule/arena
    caches warm); :meth:`close` shuts it down explicitly.
    """

    name = "process"

    #: the batch layer's fused grain for this backend.  Larger than the
    #: threaded backend's cache-sized 128 Ki floats: each chunk pays an
    #: IPC round-trip (dispatch + result collection), so the grain must
    #: amortise it while still yielding enough independent chunks per
    #: fused submission to fill every worker.
    preferred_batch_chunk_budget = 1_048_576

    #: ask the evaluate sweep to attach picklable chunk specs
    wants_chunk_specs = True
    concurrent_chunks = True

    def __init__(self, num_workers: Optional[int] = None, ipc: str = "shm"):
        available, reason = _probe_process_pool()
        if not available:
            raise BackendUnavailableError(
                "process backend unavailable: this host cannot create "
                f"multiprocessing primitives ({reason})"
            )
        if ipc not in ("shm", "pickle"):
            raise ValueError(f"ipc must be 'shm' or 'pickle', got {ipc!r}")
        self.num_workers = resolve_workers(num_workers)
        self.ipc = ipc
        self._pool: Optional[ProcessPoolExecutor] = None
        self._in_arena = _ShmArena()
        self._out_arena = _ShmArena()
        self._integrand_shms: "OrderedDict[str, Any]" = OrderedDict()
        self._integrand_finalizers: Dict[str, Any] = {}

    @property
    def effective_ipc(self) -> str:
        """The transport submissions actually use on this host."""
        if self.ipc == "shm" and shared_memory_available():
            return "shm"
        return "pickle"

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.num_workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool without waiting; next use builds a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _ship_integrand(self, ref: Tuple[str, Any]) -> Tuple[str, Any]:
        """Rewrite a pickled-callable ref to ship through shared memory.

        Content-addressed by SHA-256: the bytes land in one segment per
        distinct callable, the per-chunk header carries only (name,
        size, digest), and workers read + unpickle once per worker.
        """
        kind, value = ref
        if kind != "pickle":
            return ref
        from multiprocessing import shared_memory

        digest = hashlib.sha256(value).hexdigest()
        seg = self._integrand_shms.get(digest)
        if seg is None:
            seg = shared_memory.SharedMemory(
                create=True, size=max(1, len(value))
            )
            seg.buf[: len(value)] = value
            self._integrand_shms[digest] = seg
            self._integrand_finalizers[digest] = weakref.finalize(
                self, _release_shm, seg
            )
            while len(self._integrand_shms) > _INTEGRAND_SHM_CAP:
                old_digest, old = self._integrand_shms.popitem(last=False)
                self._integrand_finalizers.pop(old_digest).detach()
                _release_shm(old)
        else:
            self._integrand_shms.move_to_end(digest)
        return ("shm", (seg.name, len(value), digest))

    def _submit_shm(self, pool: ProcessPoolExecutor, remote: Sequence) -> List:
        """Pack chunk payloads into the arenas and submit tiny headers.

        Returns ``(task, collect)`` pairs where ``collect()`` blocks on
        the worker and reads the chunk's result vectors out of the
        output arena.
        """
        import numpy as np

        specs = [t.remote_spec for t in remote]
        layout = []
        in_total = out_total = 0
        for spec in specs:
            mc, ndim = spec["centers"].shape
            layout.append((in_total, out_total, mc, ndim))
            in_total += 2 * mc * ndim * 8
            out_total += mc * 24  # estimate f8 + error f8 + axis i8
        self._in_arena.ensure(in_total)
        self._out_arena.ensure(out_total)
        in_buf = self._in_arena.shm.buf
        out_buf = self._out_arena.shm.buf
        submissions = []
        for task, spec, (in_off, out_off, mc, ndim) in zip(
            remote, specs, layout
        ):
            count = mc * ndim
            np.frombuffer(in_buf, np.float64, count, in_off).reshape(
                mc, ndim
            )[:] = spec["centers"]
            np.frombuffer(
                in_buf, np.float64, count, in_off + count * 8
            ).reshape(mc, ndim)[:] = spec["halfwidths"]
            header = (
                self._in_arena.name,
                self._out_arena.name,
                in_off,
                out_off,
                mc,
                ndim,
                spec["error_model"],
                self._ship_integrand(spec["integrand"]),
            )
            fut = pool.submit(_eval_chunk_shm, header)

            def collect(fut=fut, out_off=out_off, mc=mc):
                fut.result()  # raises the worker's exception, if any
                est = np.frombuffer(out_buf, np.float64, mc, out_off)
                err = np.frombuffer(out_buf, np.float64, mc, out_off + mc * 8)
                axis = np.frombuffer(out_buf, np.int64, mc, out_off + mc * 16)
                return est, err, axis

            submissions.append((task, fut, collect))
        return submissions

    # ------------------------------------------------------------------
    def run_chunks(self, tasks: Sequence[Callable[[], None]]) -> None:
        remote = [t for t in tasks if getattr(t, "remote_spec", None)]
        if len(remote) <= 1 or self.num_workers == 1:
            # Nothing to parallelise across processes (unshippable
            # integrand, single chunk, or width-1 pool): the in-process
            # thunks compute the same bits serially.
            for task in tasks:
                task()
            return

        pool = self._ensure_pool()
        try:
            if self.effective_ipc == "shm":
                submissions = self._submit_shm(pool, remote)
            else:
                submissions = [
                    (t, fut, fut.result)
                    for t in remote
                    for fut in (pool.submit(_eval_chunk_in_worker, t.remote_spec),)
                ]
        except RuntimeError as exc:
            # Pool already shut down under us (close() raced a submit).
            self._discard_pool()
            raise WorkerCrashError("process pool unusable") from exc

        # Overlap: the parent evaluates the unshippable chunks while the
        # workers chew on the shipped ones.
        errs: List[BaseException] = []
        for task in tasks:
            if getattr(task, "remote_spec", None):
                continue
            try:
                task()
            except Exception as exc:
                errs.append(exc)

        # Stitch in deterministic chunk order (the submission order).  A
        # worker exception is delivered through the task's
        # complete_remote hook so it propagates — or is recorded by the
        # batch scheduler's per-member guard — exactly like a serial
        # thunk raising.
        broken = False
        for task, fut, collect in submissions:
            error = fut.exception()
            if isinstance(error, BrokenExecutor):
                broken = True
                error = WorkerCrashError(
                    "a process-backend worker died while evaluating a "
                    "chunk; the pool was reset"
                )
                error.__cause__ = fut.exception()
            try:
                if error is not None:
                    task.complete_remote(error=error)
                else:
                    task.complete_remote(result=collect())
            except Exception as exc:
                errs.append(exc)
        if broken:
            self._discard_pool()
        if errs:
            raise errs[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down and release the shared-memory
        arenas (tests/benchmark hygiene; optional — GC finalizers cover
        a backend that is simply dropped)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._in_arena.release()
        self._out_arena.release()
        while self._integrand_shms:
            digest, seg = self._integrand_shms.popitem(last=False)
            self._integrand_finalizers.pop(digest).detach()
            _release_shm(seg)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ProcessNumpyBackend workers={self.num_workers} ipc={self.ipc}>"
        )
