"""Optional CuPy backend: the real-GPU realisation of the hot path.

Import-guarded — constructing :class:`CupyBackend` on a host without
CuPy (or without a visible CUDA device) raises
:class:`~repro.backends.base.BackendUnavailableError`, and the registry
simply omits ``"cupy"`` from :func:`repro.backends.available_backends`.
Nothing in the default code path imports ``cupy``.

Design notes
------------
* Region geometry, cubature points and weights live as device arrays;
  the integrand receives a CuPy ``(N, ndim)`` array.  Integrands written
  with ``numpy`` ufuncs (all of ``repro.integrands``) work unchanged
  because ufunc calls dispatch to CuPy via ``__array_ufunc__``.
* Scalar-returning reductions (``reduce_sum`` …) synchronise the device,
  exactly like the ``thrust::reduce`` calls in the paper's
  implementation.
* Simulated-time accounting is unchanged (the virtual device still
  charges kernels), so figure reproductions remain deterministic; only
  *wall-clock* reflects the real hardware.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.backends.base import ArrayBackend, BackendUnavailableError


def _import_cupy():
    try:
        import cupy  # type: ignore
    except Exception as exc:  # pragma: no cover - depends on host
        raise BackendUnavailableError(
            f"cupy backend requested but cupy is not importable: {exc}"
        ) from exc
    try:  # pragma: no cover - depends on host
        ndev = cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # pragma: no cover - depends on host
        raise BackendUnavailableError(
            f"cupy backend requested but no CUDA runtime is usable: {exc}"
        ) from exc
    if ndev < 1:  # pragma: no cover - depends on host
        raise BackendUnavailableError(
            "cupy backend requested but no CUDA device is visible"
        )
    return cupy


def cupy_available() -> bool:
    """Whether the cupy backend can be constructed on this host."""
    try:
        _import_cupy()
    except BackendUnavailableError:
        return False
    return True  # pragma: no cover - depends on host


class CupyBackend(ArrayBackend):  # pragma: no cover - exercised on GPU hosts
    """CUDA execution through CuPy (requires cupy + a visible device)."""

    name = "cupy"

    def __init__(self, device_id: Optional[int] = None):
        self._cp = _import_cupy()
        if device_id is not None:
            self._cp.cuda.Device(int(device_id)).use()

    @property
    def xp(self) -> Any:
        return self._cp

    def asarray(self, a: Any, dtype: Any = None) -> Any:
        return self._cp.asarray(a, dtype=dtype)

    def to_numpy(self, a: Any) -> np.ndarray:
        return self._cp.asnumpy(a)

    def map_integrand(self, fn: Callable[[Any], Any], points: Any) -> Any:
        vals = fn(points)
        vals = self._cp.asarray(vals)
        if vals.dtype != self._cp.float64:
            vals = vals.astype(self._cp.float64)
        return vals

    def synchronize(self) -> None:
        self._cp.cuda.get_current_stream().synchronize()

    def reduce_sum(self, values: Any) -> float:
        return float(self._cp.sum(values))

    def dot(self, a: Any, b: Any) -> float:
        return float(self._cp.dot(a, b))

    def minmax(self, values: Any) -> Tuple[float, float]:
        if values.size == 0:
            raise ValueError("minmax of empty array")
        return (float(values.min()), float(values.max()))

    def count_nonzero(self, flags: Any) -> int:
        return int(self._cp.count_nonzero(flags))

    def exclusive_scan(self, flags: Any) -> Any:
        cp = self._cp
        out = cp.cumsum(flags, dtype=cp.int64)
        if out.size == 0:
            return out
        out = cp.concatenate((cp.zeros(1, dtype=cp.int64), out[:-1]))
        return out
