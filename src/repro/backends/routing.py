"""Adaptive backend routing: pick the cheapest adequate backend per job.

The service and API historically pinned one execution backend for every
job, but jobs differ by orders of magnitude: a 100-region 2D probe
should not pay process-pool IPC, and a million-region 6D sweep should
not crawl on single-core numpy.  ``backend="auto"`` routes each job
instead:

1. **Score the job.**  The first breadth-first sweep dominates a run's
   shape: ``splits_for(ndim) ** ndim`` regions, each evaluated at the
   Genz–Malik rule's point count.  The router scores candidates on
   predicted first-sweep seconds = ``s/Meval × Mevals + per-sweep
   dispatch overhead``.
2. **Price the candidates.**  Host-backend ``s/Meval`` priors are seeded
   from the committed ``benchmarks/results/BENCH_backends.json`` rows
   (falling back to built-in constants when the file is not around,
   e.g. in an installed package) and refined online by observed sweep
   timings (EWMA — see :meth:`BackendRouter.observe`).  The cupy
   candidate is priced with the saturation-curve cost model from
   :mod:`repro.gpu.device`: small sweeps cannot fill a device, so its
   effective rate degrades by ``efficiency(n_regions)``.
3. **Dispatch.**  Cheapest predicted candidate wins: numpy for tiny
   jobs, ``process:N`` for big sweeps, cupy when present and saturated.
   Adequacy is never in question for host backends (they are
   bit-identical by the conformance contract); the decision only moves
   *where* the same bits are computed.

Escape hatches: a non-``auto`` override (per-job ``JobSpec.backend``,
or an explicit spec anywhere a backend is accepted) bypasses the policy
entirely, and :meth:`BackendRouter.autotune_width` lets a service probe
real pool widths at start-up instead of trusting ``os.cpu_count()``.

Cache identity stays honest: callers fingerprint the **resolved**
backend (its ``.name`` and its resolved chunk budget), never the string
``"auto"`` — two services with different routing outcomes must not
alias cache entries.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.backends.base import resolve_workers
from repro.backends.compiled import numba_available
from repro.backends.cupy_backend import cupy_available
from repro.backends.process import process_pool_available

#: spec string that selects routing instead of a concrete backend
AUTO_SPEC = "auto"

#: The rungs *below* every array backend in the routing hierarchy.
#: Routing moves a PAGANI job between bit-identical execution
#: substrates; when PAGANI itself cannot finish (``MEMORY_EXHAUSTED``,
#: iteration watchdog), no substrate helps — the last resort is a
#: different *algorithm*.  These baseline integrators are priced as the
#: final candidates in that order (cheapest adequate first, mirroring
#: the committed bench ordering) and are reachable only through the
#: escalation policy (:mod:`repro.service.escalation`), never by the
#: per-job backend router: an escalated result changes the numbers, so
#: it must change the fingerprint too — routing's contract is that it
#: never does.
BASELINE_LAST_RESORT = ("two_phase", "vegas", "qmc")

#: committed perf baseline the priors are seeded from (repo checkout);
#: installed packages fall back to the constants below
PRIORS_FILE = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "BENCH_backends.json"
)

#: measured medians from the committed BENCH_backends.json at the time
#: this module was written — used when the file itself is unavailable
FALLBACK_S_PER_MEVAL = {
    "numpy": 0.105,
    "threaded": 0.12,
    "process": 0.11,
    # fused nogil kernel, no per-chunk Python dispatch: the compiled
    # lane's steady-state rate once the JIT warm-up is paid
    "numba": 0.03,
}

#: committed batch baseline: the fused-grain gains are seeded from here
BATCH_PRIORS_FILE = PRIORS_FILE.with_name("BENCH_batch.json")

#: batched-throughput gain over batched numpy (measured ratios from the
#: committed BENCH_batch.json) — the *chunk-grain* effect: numpy keeps
#: the bit-identity reference decomposition (16M-float chunks) while
#: threaded/process batch at their throughput-tuned grains, which wins
#: even serially (cache locality), before any parallel speedup.
FALLBACK_BATCH_GAIN = {"numpy": 1.0, "threaded": 1.9, "process": 2.2}

#: fixed per-sweep dispatch cost (seconds) a backend pays before any
#: evaluation happens: pool hand-off, chunk submission, result stitch.
#: This is what routes tiny jobs to numpy even when a pool is idle.
SWEEP_OVERHEAD_S = {
    "numpy": 0.0,
    "threaded": 2e-3,
    "process": 2e-2,
    "cupy": 5e-3,
    # amortised share of the one-time JIT compile (cached after the
    # first sweep) plus the per-sweep kernel launch bookkeeping
    "numba": 1e-3,
}

#: fraction of ideal speedup a width-W pool retains (stitching and the
#: parent's serial share eat the rest); refined by observed timings
PROCESS_PARALLEL_EFFICIENCY = 0.75

#: saturated GPU evaluate rate (s/Meval) — paper-order-of-magnitude
#: prior; scaled down by the device-model efficiency curve on small
#: sweeps (no committed cupy rows exist to seed from)
CUPY_SATURATED_S_PER_MEVAL = 0.004

#: EWMA weight of each newly observed sweep rate
OBSERVATION_ALPHA = 0.3


def load_priors(path: Optional[Path] = None) -> Dict[str, float]:
    """Per-backend s/Meval medians from a committed backends bench file.

    Rows that did not converge or disagree with numpy are skipped;
    missing/corrupt files fall back to :data:`FALLBACK_S_PER_MEVAL`.
    """
    path = PRIORS_FILE if path is None else Path(path)
    rates: Dict[str, List[float]] = {}
    try:
        data = json.loads(path.read_text())
        for backend, rows in data.get("backends", {}).items():
            for row in rows.values() if isinstance(rows, dict) else rows:
                if not row.get("converged") or not row.get("neval"):
                    continue
                wall = float(row.get("wall_seconds", 0.0))
                neval = float(row["neval"])
                if wall > 0 and neval > 0:
                    rates.setdefault(backend, []).append(wall / (neval / 1e6))
    except (OSError, ValueError, KeyError, TypeError):
        rates = {}
    priors = dict(FALLBACK_S_PER_MEVAL)
    for backend, values in rates.items():
        values.sort()
        priors[backend] = values[len(values) // 2]
    return priors


def load_batch_gains(path: Optional[Path] = None) -> Dict[str, float]:
    """Per-backend batched-throughput gain over batched numpy.

    Read from the committed ``BENCH_batch.json`` (``batched_seconds``
    ratios); missing/corrupt files fall back to
    :data:`FALLBACK_BATCH_GAIN`.
    """
    path = BATCH_PRIORS_FILE if path is None else Path(path)
    gains = dict(FALLBACK_BATCH_GAIN)
    try:
        data = json.loads(path.read_text())
        rows = data.get("backends", {})
        numpy_s = float(rows["numpy"]["batched_seconds"])
        for backend, row in rows.items():
            batched = float(row["batched_seconds"])
            if numpy_s > 0 and batched > 0:
                gains[backend] = numpy_s / batched
    except (OSError, ValueError, KeyError, TypeError):
        pass
    return gains


def first_sweep_evals(ndim: int, initial_splits: Optional[int] = None) -> int:
    """Evaluations the first breadth-first sweep performs.

    Mirrors :meth:`repro.core.pagani.PaganiConfig.splits_for` ×
    the Genz–Malik point count — the quantity the routing score is
    built on (regions × points; each evaluation touches ``ndim``
    coordinates, which is folded into the measured s/Meval priors).
    """
    from repro.core.pagani import PaganiConfig
    from repro.cubature.rules import get_rule

    splits = PaganiConfig(initial_splits=initial_splits).splits_for(ndim)
    return (splits ** ndim) * get_rule(ndim).npoints


@dataclass
class RoutingDecision:
    """Outcome of one routing evaluation (also a debugging artifact)."""

    backend: str  #: resolved spec string, e.g. ``"numpy"``/``"process:4"``
    reason: str
    evals: float = 0.0  #: predicted first-sweep evaluations
    predicted_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def forced(self) -> bool:
        return self.reason == "override"


class BackendRouter:
    """Scores jobs against backend priors and picks the cheapest.

    Parameters
    ----------
    priors:
        s/Meval seed per backend family; default loads the committed
        bench baseline (see :func:`load_priors`).
    process_width:
        Pool width the ``process`` candidate is priced (and dispatched)
        at; default ``resolve_workers(None)`` — one worker per CPU.
        :meth:`autotune_width` replaces it with a measured choice.
    process / cupy:
        Availability overrides for tests; ``None`` probes the host.

    Thread-safe: decisions and observations may come from any service
    shard concurrently.
    """

    def __init__(
        self,
        priors: Optional[Dict[str, float]] = None,
        process_width: Optional[int] = None,
        process: Optional[bool] = None,
        cupy: Optional[bool] = None,
        batch_gains: Optional[Dict[str, float]] = None,
        numba: Optional[bool] = None,
    ):
        self.priors = load_priors() if priors is None else dict(priors)
        self.batch_gains = (
            load_batch_gains() if batch_gains is None else dict(batch_gains)
        )
        self.process_width = (
            resolve_workers(None) if process_width is None else int(process_width)
        )
        self._process = (
            process_pool_available() if process is None else bool(process)
        )
        self._cupy = cupy_available() if cupy is None else bool(cupy)
        self._numba = numba_available() if numba is None else bool(numba)
        self._lock = threading.Lock()
        self._observed: Dict[str, float] = {}
        self._observations = 0
        self._decisions: Dict[str, int] = {}
        self.autotune_report: Optional[Dict[str, float]] = None
        self.last_decision: Optional[RoutingDecision] = None

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def _rate(self, family: str) -> float:
        """Current s/Meval belief for a backend family."""
        with self._lock:
            observed = self._observed.get(family)
        if observed is not None:
            return observed
        return self.priors.get(family, FALLBACK_S_PER_MEVAL["numpy"])

    def _candidates(self, context: str = "plain") -> List[str]:
        out = ["numpy"]
        if self._process and (self.process_width > 1 or context == "batch"):
            # Even a width-1 process backend earns its place in *batch*
            # traffic: it never builds a pool there (the serial guard),
            # but its throughput-tuned fused chunk grain beats numpy's
            # reference decomposition on big sweeps.
            out.append(f"process:{self.process_width}")
        if self._numba:
            out.append("numba")
        if self._cupy:
            out.append("cupy")
        return out

    def predict_seconds(
        self, spec: str, evals: float, regions: float, context: str = "plain"
    ) -> float:
        """Predicted first-sweep seconds for one candidate spec.

        ``context`` is ``"plain"`` for a solo :func:`repro.api.integrate`
        run (every backend keeps the reference chunk decomposition) or
        ``"batch"`` for work executed through the batch scheduler
        (:func:`repro.api.integrate_many`, the service rotation), where
        threaded/process switch to their fused grains and gain
        :attr:`batch_gains` over numpy before any parallelism.
        """
        family = spec.partition(":")[0]
        mevals = evals / 1e6
        if family == "cupy":
            # Small sweeps cannot fill a device: scale the saturated
            # rate by the gpu/device.py occupancy curve.
            from repro.gpu.device import DeviceSpec

            dev = DeviceSpec.v100()
            occupancy = dev.efficiency(regions) / dev.eff_max
            rate = CUPY_SATURATED_S_PER_MEVAL / max(occupancy, 1e-6)
        elif family == "process":
            width = int(spec.partition(":")[2] or self.process_width)
            with self._lock:
                observed = self._observed.get("process")
            if observed is not None:
                # A real sweep timed on *this* host's pool beats any
                # model — without this, a crawling pool (oversubscribed
                # box, say) keeps winning on paper forever.
                rate = observed
            else:
                serial = self._rate("numpy")
                grain = (
                    self.batch_gains.get("process", 1.0)
                    if context == "batch"
                    else 1.0
                )
                pooled = self.priors.get(
                    "process", FALLBACK_S_PER_MEVAL["process"]
                ) / grain
                # The bench prior measured *some* pool; scale the serial
                # rate by the batch-grain gain (batch context only) and
                # this width's ideal speedup, degraded by the
                # stitch/serial share — take whichever is more
                # optimistic.
                rate = min(
                    serial
                    / grain
                    / max(1.0, width * PROCESS_PARALLEL_EFFICIENCY),
                    pooled,
                )
        else:
            rate = self._rate(family)
        return rate * mevals + SWEEP_OVERHEAD_S.get(family, 0.0)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(
        self,
        ndim: int,
        rel_tol: float = 1e-3,
        initial_splits: Optional[int] = None,
        override: Optional[str] = None,
        context: str = "plain",
    ) -> RoutingDecision:
        """Route one job; ``override`` (non-``auto``) short-circuits.

        ``context="batch"`` prices the job as batch-scheduler work (the
        service rotation): see :meth:`predict_seconds`.
        """
        return self.decide_batch(
            [ndim], rel_tol=rel_tol, initial_splits=initial_splits,
            override=override, context=context,
        )

    def decide_batch(
        self,
        ndims: Sequence[int],
        rel_tol: float = 1e-3,
        initial_splits: Optional[int] = None,
        override: Optional[str] = None,
        context: str = "batch",
    ) -> RoutingDecision:
        """Route a fused batch: one backend for the summed member work."""
        if context not in ("plain", "batch"):
            raise ValueError(f"context must be 'plain' or 'batch', got {context!r}")
        if override is not None and override != AUTO_SPEC:
            decision = RoutingDecision(backend=override, reason="override")
        else:
            from repro.core.pagani import PaganiConfig
            from repro.cubature.rules import get_rule

            evals = 0.0
            regions = 0.0
            for ndim in ndims:
                splits = PaganiConfig(
                    initial_splits=initial_splits
                ).splits_for(ndim)
                n_regions = float(splits**ndim)
                regions += n_regions
                evals += n_regions * get_rule(ndim).npoints
            predicted = {
                spec: self.predict_seconds(spec, evals, regions, context)
                for spec in self._candidates(context)
            }
            # stable min: ties go to the earliest candidate (numpy)
            best = min(predicted, key=lambda s: (predicted[s], s != "numpy"))
            decision = RoutingDecision(
                backend=best,
                reason=f"cheapest of {len(predicted)} candidates",
                evals=evals,
                predicted_seconds=predicted,
            )
        with self._lock:
            family = decision.backend.partition(":")[0]
            self._decisions[family] = self._decisions.get(family, 0) + 1
            self.last_decision = decision
        return decision

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def observe(self, backend_name: str, neval: float, seconds: float) -> None:
        """Fold an observed (neval, wall seconds) sample into the rates."""
        if neval <= 0 or seconds <= 0:
            return
        family = backend_name.partition(":")[0]
        rate = seconds / (neval / 1e6)
        with self._lock:
            prev = self._observed.get(family)
            if prev is None:
                prev = self.priors.get(family, rate)
            self._observed[family] = (
                (1.0 - OBSERVATION_ALPHA) * prev + OBSERVATION_ALPHA * rate
            )
            self._observations += 1

    def autotune_width(
        self,
        widths: Optional[Sequence[int]] = None,
        probe_spec: str = "3d-f4",
        probe_rel_tol: float = 1e-3,
    ) -> int:
        """Probe real pool widths once (service start) and keep the best.

        Runs one small catalogue integrand per candidate width through a
        fresh :class:`~repro.backends.process.ProcessNumpyBackend` (tiny
        chunk grain, so the pool actually fans out) and adopts the width
        with the best wall clock.  A host without usable process pools
        (or a single CPU) skips the probe and pins width 1, which also
        removes ``process`` from the candidate list.
        """
        host_width = resolve_workers(None)
        if not self._process or host_width <= 1:
            self.process_width = 1
            self.autotune_report = {}
            return 1
        if widths is None:
            widths = sorted({2, max(2, host_width // 2), host_width})
        import numpy as np

        from repro.backends.process import ProcessNumpyBackend
        from repro.core.pagani import PaganiConfig, PaganiIntegrator
        from repro.integrands.catalog import named_integrand

        fn = named_integrand(probe_spec)
        ndim = int(probe_spec.split("d")[0])
        bounds = np.array([[0.0, 1.0]] * ndim)
        report: Dict[str, float] = {}
        best_width, best_wall = self.process_width, float("inf")
        for width in widths:
            backend = ProcessNumpyBackend(num_workers=width)
            try:
                cfg = PaganiConfig(
                    rel_tol=probe_rel_tol, backend=backend,
                    chunk_budget=50_000,
                )
                t0 = time.perf_counter()
                result = PaganiIntegrator(cfg).integrate(fn, ndim, bounds)
                wall = time.perf_counter() - t0
            finally:
                backend.close()
            report[str(width)] = wall
            # The probe is deliberately tiny (fast service start), so
            # its s/Meval is dispatch-overhead-dominated — folding it
            # into the family rate would bias routing against the pool.
            # Widths are compared against each other only.
            if wall < best_wall:
                best_width, best_wall = width, wall
        self.process_width = best_width
        self.autotune_report = report
        return best_width

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Observability snapshot (service ``stats()['routing']``)."""
        with self._lock:
            return {
                "process_width": self.process_width,
                "candidates": self._candidates("batch"),
                "decisions": dict(self._decisions),
                "observations": self._observations,
                "observed_s_per_meval": dict(self._observed),
                "autotuned": self.autotune_report is not None,
            }


_shared_router: Optional[BackendRouter] = None
_shared_lock = threading.Lock()


def shared_router() -> BackendRouter:
    """Process-wide router used by the one-shot API surfaces — so
    observed timings from earlier ``integrate(backend="auto")`` calls
    refine later decisions."""
    global _shared_router
    with _shared_lock:
        if _shared_router is None:
            _shared_router = BackendRouter()
        return _shared_router


def is_auto(spec: object) -> bool:
    """Whether a backend spec requests routing."""
    return isinstance(spec, str) and spec == AUTO_SPEC
