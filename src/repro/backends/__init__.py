"""Pluggable array-backend execution layer for the PAGANI hot path.

Why this layer exists
---------------------
The paper's central performance claim is architectural: evaluating *all*
live regions in one parallel sweep per iteration is what lets PAGANI use
a device fully.  The algorithm does not care what executes that sweep —
a CUDA grid, a BLAS-backed NumPy pass, or a thread pool.  This package
makes the substrate a first-class, swappable component so real hardware
(and future sharding/batching work) plugs in without touching the
algorithm in ``repro.core``.

Built-in backends
-----------------
``"numpy"`` (default)
    Single-threaded vectorized NumPy — the reference implementation.
``"threaded"`` / ``"threaded:<N>"``
    Chunk-parallel NumPy on an ``N``-wide thread pool (default: one per
    host CPU).  Bit-identical to ``"numpy"``: the chunk decomposition
    and per-chunk arithmetic are unchanged; only the schedule differs.
``"process"`` / ``"process:<N>"``
    Chunk-parallel NumPy on an ``N``-wide **process** pool — real
    multi-core scaling with no GIL in the way.  Workers receive picklable
    chunk specs (catalogue integrand spec or pickled callable, bounds
    slices), rebuild the rule tensors once per worker, and return result
    arrays that the parent stitches in deterministic chunk order; on the
    same chunk decomposition results are bit-identical to ``"numpy"``.
    Unshippable integrands (closures) degrade to in-process serial
    execution with unchanged numerics.  See :mod:`repro.backends.process`.
``"numba"`` / ``"numba:<N>"``
    The compiled kernel lane: the per-chunk sweep arithmetic (point
    evaluation, the five weighted contractions, error combination,
    fourth-difference axis scan) runs as one fused, parallel,
    nogil-jitted Numba kernel on an ``N``-wide thread team.  Agrees with
    the reference to machine precision (ULP contract — per-region
    sequential sums vs. BLAS blocked sums), not bit-identically.
    Import-guarded like ``"cupy"``: the one-time probe compiles a trivial
    jitted function and caches the verdict.  See
    :mod:`repro.backends.compiled`.
``"cupy"``
    Real-GPU execution through CuPy.  Import-guarded: selecting it on a
    host without CuPy/CUDA raises
    :class:`~repro.backends.base.BackendUnavailableError` (an
    ``ImportError``), and :func:`available_backends` omits it.

Selecting a backend
-------------------
Every user surface takes a backend spec — a name string or an
:class:`ArrayBackend` instance::

    from repro import integrate
    res = integrate(f, ndim=5, backend="threaded")        # api keyword

    from repro.core import PaganiConfig, PaganiIntegrator
    cfg = PaganiConfig(backend="threaded:8")              # config field

    pagani-repro run --integrand 8D-f7 --backend threaded # CLI flag

Spec strings are parsed in exactly one place: :func:`resolve_backend`
turns ``"family[:width]"`` into a typed :class:`BackendSpec` (the API,
CLI, router and registry all consume it), so width-suffix syntax and its
error messages cannot drift between surfaces.

Writing a new backend
---------------------
Subclass :class:`~repro.backends.base.ArrayBackend` (its module
docstring specifies the full contract), then register a factory::

    from repro.backends import register_backend

    class MyBackend(ArrayBackend):
        name = "mine"
        ...

    register_backend("mine", MyBackend)

The factory receives no arguments (parse options from your spec string
by registering a closure).  A conforming backend must satisfy the
protocol-conformance suite in ``tests/backends/test_backends.py`` —
point the ``backend`` fixture at your implementation; the suite asserts
primitive semantics and end-to-end agreement with the NumPy reference
on the Genz integrand families.

Contract highlights for implementers:

* ``map_integrand`` feeds the user's batch callable arrays of *your*
  type; hot-path math is NumPy-ufunc based and dispatches through
  ``__array_ufunc__`` / ``__array_function__``.
* ``run_chunks`` receives thunks writing disjoint output slices — any
  execution order (or concurrency) is valid.
* Scalar reductions return Python floats/ints; they are the iteration's
  synchronisation points, exactly like the Thrust reductions in the
  paper's CUDA implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.backends.base import ArrayBackend, BackendUnavailableError
from repro.backends.compiled import NumbaBackend, numba_available
from repro.backends.cupy_backend import CupyBackend, cupy_available
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.process import (
    ProcessNumpyBackend,
    WorkerCrashError,
    process_pool_available,
)
from repro.backends.threaded import ThreadedNumpyBackend

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "ThreadedNumpyBackend",
    "ProcessNumpyBackend",
    "WorkerCrashError",
    "CupyBackend",
    "NumbaBackend",
    "numba_available",
    "BackendLike",
    "BackendSpec",
    "resolve_backend",
    "backend_spec_help",
    "register_backend",
    "get_backend",
    "new_backend",
    "available_backends",
]

#: anything accepted where a backend is expected (name string, instance,
#: or ``None`` for the reference backend)
BackendLike = Union[str, ArrayBackend, None]

_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_AVAILABILITY: Dict[str, Callable[[], bool]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}


@dataclass(frozen=True)
class BackendSpec:
    """The typed form of a backend spec string ``"family[:width]"``.

    ``family`` is the registry name (``"numpy"``, ``"process"``, …, or
    ``"auto"`` for the router); ``width`` is the optional worker-count
    suffix.  Produced by :func:`resolve_backend` — the single parser every
    surface (API, CLI, router, registry) goes through.
    """

    family: str
    width: Optional[int] = None

    @property
    def spec(self) -> str:
        """The canonical spec string this parses back from."""
        return (
            self.family if self.width is None
            else f"{self.family}:{self.width}"
        )


def resolve_backend(spec: BackendLike) -> BackendSpec:
    """Parse a backend spec into its typed :class:`BackendSpec` form.

    The one authoritative spec parser: accepts a ``"family[:width]"``
    string (including ``"auto"``), an :class:`ArrayBackend` instance
    (family = the instance's registry name), an already-parsed
    :class:`BackendSpec` (returned unchanged) or ``None`` (the reference
    backend).  Raises :class:`~repro.errors.ConfigurationError` for a
    malformed width suffix or a non-spec object.  Family names are *not*
    checked against the registry here — :func:`get_backend` owns the
    unknown-name error so probing specs stays cheap.
    """
    from repro.errors import ConfigurationError

    if spec is None:
        return BackendSpec("numpy")
    if isinstance(spec, BackendSpec):
        return spec
    if isinstance(spec, ArrayBackend):
        return BackendSpec(spec.name)
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"backend must be a name or ArrayBackend instance, got {spec!r}"
        )
    name, sep, arg = spec.partition(":")
    if not sep:
        return BackendSpec(name)
    try:
        width = int(arg)
    except ValueError:
        raise ConfigurationError(
            f"bad worker count in backend spec {spec!r}"
        ) from None
    return BackendSpec(name, width)


def register_backend(
    name: str,
    factory: Callable[[], ArrayBackend],
    available: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a backend factory under ``name``.

    ``available`` is an optional zero-argument probe used by
    :func:`available_backends`; backends whose probe returns False are
    still constructible explicitly (construction raises the precise
    error) but are not advertised.
    """
    _FACTORIES[name] = factory
    _AVAILABILITY[name] = available or (lambda: True)
    for key in [k for k in _INSTANCES if k == name or k.startswith(name + ":")]:
        _INSTANCES.pop(key)


#: pool backends accepting a ``<name>:<N>`` width suffix
_WIDTH_FACTORIES: Dict[str, Callable[[int], ArrayBackend]] = {
    "threaded": lambda width: ThreadedNumpyBackend(num_threads=width),
    "process": lambda width: ProcessNumpyBackend(num_workers=width),
    "numba": lambda width: NumbaBackend(num_threads=width),
}


def backend_spec_help() -> str:
    """Human-readable spec syntax for CLI ``--backend`` help text.

    Generated from the registry so the help can never drift from what
    :func:`get_backend` accepts: width-suffix backends render as
    ``name[:N]``.
    """
    return ", ".join(
        f"{name}[:N]" if name in _WIDTH_FACTORIES else name
        for name in sorted(_FACTORIES)
    )


def _build_backend(spec: str) -> ArrayBackend:
    """Construct a *fresh* backend instance from a name spec."""
    from repro.errors import ConfigurationError

    parsed = resolve_backend(spec)
    if parsed.family in _WIDTH_FACTORIES and parsed.width is not None:
        return _WIDTH_FACTORIES[parsed.family](parsed.width)
    if parsed.family not in _FACTORIES or parsed.width is not None:
        raise ConfigurationError(
            f"unknown backend {spec!r}; known backends: {sorted(_FACTORIES)}"
        )
    return _FACTORIES[parsed.family]()


def get_backend(spec: BackendLike = None) -> ArrayBackend:
    """Resolve a backend spec to a (shared) backend instance.

    ``None`` and ``"numpy"`` return the reference backend;
    ``"threaded:<N>"`` / ``"process:<N>"`` / ``"numba:<N>"`` build an
    ``N``-wide pool (cached per width so repeated resolutions share one
    executor); instances pass through untouched.  Unknown names raise
    :class:`~repro.errors.ConfigurationError`; known-but-unusable
    backends (e.g. ``"cupy"`` without CUDA, ``"numba"`` without Numba)
    raise :class:`BackendUnavailableError`.
    """
    from repro.errors import ConfigurationError

    if spec is None:
        spec = "numpy"
    if isinstance(spec, ArrayBackend):
        return spec
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"backend must be a name or ArrayBackend instance, got {spec!r}"
        )
    if spec not in _INSTANCES:
        _INSTANCES[spec] = _build_backend(spec)
    return _INSTANCES[spec]


def new_backend(spec: BackendLike = None) -> ArrayBackend:
    """Build a **fresh, unshared** backend instance from a spec.

    :func:`get_backend` shares one instance per spec string so casual
    resolutions reuse one executor; callers that need *isolated*
    instances — the sharded service pins one backend (and its pool) per
    shard — construct through this instead.  Instances pass through
    untouched, like :func:`get_backend`.
    """
    from repro.errors import ConfigurationError

    if spec is None:
        spec = "numpy"
    if isinstance(spec, ArrayBackend):
        return spec
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"backend must be a name or ArrayBackend instance, got {spec!r}"
        )
    return _build_backend(spec)


def available_backends() -> List[str]:
    """Names of the registered backends usable on this host."""
    return [name for name in sorted(_FACTORIES) if _AVAILABILITY[name]()]


register_backend("numpy", NumpyBackend)
register_backend("threaded", ThreadedNumpyBackend)
register_backend("process", ProcessNumpyBackend, available=process_pool_available)
register_backend("cupy", CupyBackend, available=cupy_available)
register_backend("numba", NumbaBackend, available=numba_available)
