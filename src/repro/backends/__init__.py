"""Pluggable array-backend execution layer for the PAGANI hot path.

Why this layer exists
---------------------
The paper's central performance claim is architectural: evaluating *all*
live regions in one parallel sweep per iteration is what lets PAGANI use
a device fully.  The algorithm does not care what executes that sweep —
a CUDA grid, a BLAS-backed NumPy pass, or a thread pool.  This package
makes the substrate a first-class, swappable component so real hardware
(and future sharding/batching work) plugs in without touching the
algorithm in ``repro.core``.

Built-in backends
-----------------
``"numpy"`` (default)
    Single-threaded vectorized NumPy — the reference implementation.
``"threaded"`` / ``"threaded:<N>"``
    Chunk-parallel NumPy on an ``N``-wide thread pool (default: one per
    host CPU).  Bit-identical to ``"numpy"``: the chunk decomposition
    and per-chunk arithmetic are unchanged; only the schedule differs.
``"cupy"``
    Real-GPU execution through CuPy.  Import-guarded: selecting it on a
    host without CuPy/CUDA raises
    :class:`~repro.backends.base.BackendUnavailableError` (an
    ``ImportError``), and :func:`available_backends` omits it.

Selecting a backend
-------------------
Every user surface takes a backend spec — a name string or an
:class:`ArrayBackend` instance::

    from repro import integrate
    res = integrate(f, ndim=5, backend="threaded")        # api keyword

    from repro.core import PaganiConfig, PaganiIntegrator
    cfg = PaganiConfig(backend="threaded:8")              # config field

    pagani-repro run --integrand 8D-f7 --backend threaded # CLI flag

Writing a new backend
---------------------
Subclass :class:`~repro.backends.base.ArrayBackend` (its module
docstring specifies the full contract), then register a factory::

    from repro.backends import register_backend

    class MyBackend(ArrayBackend):
        name = "mine"
        ...

    register_backend("mine", MyBackend)

The factory receives no arguments (parse options from your spec string
by registering a closure).  A conforming backend must satisfy the
protocol-conformance suite in ``tests/backends/test_backends.py`` —
point the ``backend`` fixture at your implementation; the suite asserts
primitive semantics and end-to-end agreement with the NumPy reference
on the Genz integrand families.

Contract highlights for implementers:

* ``map_integrand`` feeds the user's batch callable arrays of *your*
  type; hot-path math is NumPy-ufunc based and dispatches through
  ``__array_ufunc__`` / ``__array_function__``.
* ``run_chunks`` receives thunks writing disjoint output slices — any
  execution order (or concurrency) is valid.
* Scalar reductions return Python floats/ints; they are the iteration's
  synchronisation points, exactly like the Thrust reductions in the
  paper's CUDA implementation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.backends.base import ArrayBackend, BackendUnavailableError
from repro.backends.cupy_backend import CupyBackend, cupy_available
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.threaded import ThreadedNumpyBackend

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "ThreadedNumpyBackend",
    "CupyBackend",
    "BackendSpec",
    "register_backend",
    "get_backend",
    "available_backends",
]

#: anything accepted where a backend is expected
BackendSpec = Union[str, ArrayBackend, None]

_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_AVAILABILITY: Dict[str, Callable[[], bool]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], ArrayBackend],
    available: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a backend factory under ``name``.

    ``available`` is an optional zero-argument probe used by
    :func:`available_backends`; backends whose probe returns False are
    still constructible explicitly (construction raises the precise
    error) but are not advertised.
    """
    _FACTORIES[name] = factory
    _AVAILABILITY[name] = available or (lambda: True)
    for key in [k for k in _INSTANCES if k == name or k.startswith(name + ":")]:
        _INSTANCES.pop(key)


def get_backend(spec: BackendSpec = None) -> ArrayBackend:
    """Resolve a backend spec to a (shared) backend instance.

    ``None`` and ``"numpy"`` return the reference backend;
    ``"threaded:<N>"`` builds an ``N``-thread pool; instances pass
    through untouched.  Unknown names raise
    :class:`~repro.errors.ConfigurationError`; known-but-unusable
    backends (e.g. ``"cupy"`` without CUDA) raise
    :class:`BackendUnavailableError`.
    """
    from repro.errors import ConfigurationError

    if spec is None:
        spec = "numpy"
    if isinstance(spec, ArrayBackend):
        return spec
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"backend must be a name or ArrayBackend instance, got {spec!r}"
        )
    name, _, arg = spec.partition(":")
    if name == "threaded" and arg:
        try:
            width = int(arg)
        except ValueError:
            raise ConfigurationError(
                f"bad thread count in backend spec {spec!r}"
            ) from None
        # Cache per width so repeated resolutions share one thread pool
        # instead of leaking a fresh executor per integrator construction.
        if spec not in _INSTANCES:
            _INSTANCES[spec] = ThreadedNumpyBackend(num_threads=width)
        return _INSTANCES[spec]
    if name not in _FACTORIES or arg:
        raise ConfigurationError(
            f"unknown backend {spec!r}; known backends: {sorted(_FACTORIES)}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def available_backends() -> List[str]:
    """Names of the registered backends usable on this host."""
    return [name for name in sorted(_FACTORIES) if _AVAILABILITY[name]()]


register_backend("numpy", NumpyBackend)
register_backend("threaded", ThreadedNumpyBackend)
register_backend("cupy", CupyBackend, available=cupy_available)
