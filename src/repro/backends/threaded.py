"""Multi-threaded chunked NumPy backend for multi-core hosts.

The EVALUATE sweep dominates PAGANI wall time once region counts grow; it
is embarrassingly parallel over region chunks.  This backend keeps the
exact chunk decomposition of the NumPy path (the chunks are computed by
the caller from ``chunk_budget``) and dispatches the chunk thunks onto a
thread pool.  NumPy releases the GIL inside the large ufunc and matmul
calls each chunk performs, so real multi-core speedup is available
without any change to the numbers: every chunk computes exactly what the
serial backend computes, into a disjoint output slice, so results are
**bit-identical** to the NumPy reference by construction.

Reductions and scans stay single-threaded NumPy — they are a vanishing
fraction of the iteration and keeping them serial preserves the exact
left-to-right pairwise summation order of the reference backend.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

from repro.backends.base import resolve_workers
from repro.backends.numpy_backend import NumpyBackend


class ThreadedNumpyBackend(NumpyBackend):
    """Chunk-parallel NumPy execution on a shared thread pool.

    Parameters
    ----------
    num_threads:
        Pool width; ``None`` means one worker per host CPU (capped at 32).
        Selectable from the string spec ``"threaded:<N>"``.
    """

    name = "threaded"

    #: the batch layer's fused grain for this backend: ~1 MiB of points
    #: per chunk keeps each chunk's working set cache-resident and gives
    #: the pool many independent work items per fused submission (the
    #: sequential default of 16M floats yields one chunk per sweep —
    #: nothing to parallelise).  Trades bit-identity with the reference
    #: decomposition for throughput; see docs/batch.md.
    preferred_batch_chunk_budget = 131_072
    concurrent_chunks = True

    def __init__(self, num_threads: Optional[int] = None):
        self.num_threads = resolve_workers(num_threads)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_threads, thread_name_prefix="repro-backend"
            )
        return self._pool

    def run_chunks(self, tasks: Sequence[Callable[[], None]]) -> None:
        if len(tasks) <= 1 or self.num_threads == 1:
            for task in tasks:
                task()
            return
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        # Propagate the first worker exception (and always join the rest).
        errs = []
        for fut in futures:
            exc = fut.exception()
            if exc is not None:
                errs.append(exc)
        if errs:
            raise errs[0]

    def close(self) -> None:
        """Shut the pool down (tests/benchmark hygiene; optional)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ThreadedNumpyBackend threads={self.num_threads}>"
