"""Compiled kernel lane: a Numba-jitted fused evaluate sweep.

The reference evaluate sweep (:func:`repro.cubature.evaluation.compute_chunk`)
is a chain of BLAS/ufunc passes: materialise the ``(mc, p, n)`` point
tensor, apply the integrand, contract against the five embedded-rule weight
vectors, and scan the fourth divided differences for the split axis.  Each
pass streams the full chunk through memory.  This module collapses the
per-region arithmetic into **one fused, parallel, nogil-jitted kernel**: a
``numba.prange`` loop over regions in which each iteration computes that
region's points, the w7/w5/w3a/w3b/w1 contractions, the error-model
combination and the fourth-difference axis selection from registers, in a
single pass over the region's ``p`` integrand values.

The integrand itself stays a Python batch callable (the public integrand
contract), so the lane evaluates it once per chunk between two jitted
stages: a point-materialisation kernel and the fused contraction kernel.
Everything else — volumes, companion estimates, cascade/two-rule/
four-difference errors, axis scan — runs inside the compiled region loop.

Contracts
---------
* Same ``(estimate, error, axis)`` chunk contract as ``compute_chunk``.
* **Machine-precision (ULP) agreement** with the NumPy reference, not bit
  identity: the fused kernel sums the weighted contractions sequentially
  per region while BLAS uses blocked summation, so results can differ in
  the last bits.  The lane therefore joins the conformance suite under the
  same approximate contract the cupy backend uses.
* Import-guarded: Numba is probed once (a trivial ``njit`` compile) and
  the verdict cached, mirroring the process-pool and cupy probes.
  Constructing the backend without Numba raises
  :class:`~repro.backends.base.BackendUnavailableError`;
  :func:`repro.backends.available_backends` omits it.

Select with ``backend="numba"`` (thread count = host CPUs) or
``"numba:<N>"`` for an explicit parallel width.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backends.base import BackendUnavailableError, resolve_workers
from repro.backends.numpy_backend import NumpyBackend

#: cached (ok, reason) verdict of the one-time numba probe
_NUMBA_PROBE: Optional[Tuple[bool, Optional[str]]] = None

#: compiled kernels, built once per process on first backend construction
_KERNELS = None

#: error-model codes shared between the dispatcher and the jitted kernel
_MODEL_CODES = {"two_rule": 0, "four_difference": 1, "cascade": 2}


def _probe_numba() -> Tuple[bool, Optional[str]]:
    """One-time availability probe: import numba and compile a trivial
    jitted function (an import alone can succeed on a broken install where
    compilation fails).  The verdict is cached for the process lifetime,
    like the process-pool and cupy probes."""
    global _NUMBA_PROBE
    if _NUMBA_PROBE is not None:
        return _NUMBA_PROBE
    try:
        import numba

        @numba.njit(cache=False)
        def _touch(x):
            return x + 1.0

        if _touch(1.0) != 2.0:  # pragma: no cover - defensive
            raise RuntimeError("trivial jit returned wrong value")
        _NUMBA_PROBE = (True, None)
    except Exception as exc:  # ImportError or a broken toolchain
        _NUMBA_PROBE = (False, f"{type(exc).__name__}: {exc}")
    return _NUMBA_PROBE


def numba_available() -> bool:
    """Whether the compiled lane can run on this host (cached probe)."""
    return _probe_numba()[0]


def _build_kernels():
    """Compile the fused sweep kernels (once per process).

    Two stages, both ``parallel=True, nogil=True``:

    ``points_kernel``
        Fills the preallocated ``(mc, p, n)`` point buffer with
        ``c + ref * h`` — the Genz–Malik point evaluation.
    ``fused_kernel``
        One ``prange`` region loop doing volume, the five weighted
        contractions, the error-model combination and the
        fourth-difference axis scan in a single pass over the region's
        integrand values.
    """
    global _KERNELS
    if _KERNELS is not None:
        return _KERNELS
    import numba

    @numba.njit(parallel=True, nogil=True, cache=False)
    def points_kernel(c, h, ref, out):
        mc, n = c.shape
        p = ref.shape[0]
        for r in numba.prange(mc):
            for j in range(p):
                for k in range(n):
                    out[r, j, k] = c[r, k] + ref[j, k] * h[r, k]

    @numba.njit(parallel=True, nogil=True, cache=False)
    def fused_kernel(
        vals, h, w7, w5, w3a, w3b, w1,
        idx2p, idx2m, idx3p, idx3m,
        ratio, crit, model,
        out_est, out_err, out_axis,
    ):
        mc = vals.shape[0]
        p = vals.shape[1]
        n = h.shape[1]
        for r in numba.prange(mc):
            vol = 1.0
            for k in range(n):
                vol *= 2.0 * h[r, k]
            s7 = 0.0
            s5 = 0.0
            s3a = 0.0
            s3b = 0.0
            s1 = 0.0
            for j in range(p):
                v = vals[r, j]
                s7 += v * w7[j]
                s5 += v * w5[j]
                s3a += v * w3a[j]
                s3b += v * w3b[j]
                s1 += v * w1[j]
            i7 = vol * s7
            i5 = vol * s5
            i3a = vol * s3a
            i3b = vol * s3b
            i1 = vol * s1
            if model == 0:  # two_rule
                err = abs(i7 - i5)
            elif model == 1:  # four_difference
                err = abs(i7 - i5)
                if abs(i7 - i3a) > err:
                    err = abs(i7 - i3a)
                if abs(i7 - i3b) > err:
                    err = abs(i7 - i3b)
                if abs(i7 - i1) > err:
                    err = abs(i7 - i1)
            else:  # cascade
                e1 = abs(i7 - i5)
                e2 = abs(i5 - i3a)
                e3 = abs(i3a - i1)
                crude = max(e1, max(e2, e3))
                if e2 > 0.0:
                    r1 = e1 / e2
                elif e1 > 0.0:
                    r1 = np.inf
                else:
                    r1 = 0.0
                if e3 > 0.0:
                    r2 = e2 / e3
                elif e2 > 0.0:
                    r2 = np.inf
                else:
                    r2 = 0.0
                err = e1 if max(r1, r2) < crit else crude
            out_est[r] = i7
            out_err[r] = err

            f0 = vals[r, 0]
            best = -1.0
            axis = 0
            for k in range(n):
                d2 = vals[r, idx2p[k]] + vals[r, idx2m[k]] - 2.0 * f0
                d3 = vals[r, idx3p[k]] + vals[r, idx3m[k]] - 2.0 * f0
                fourth = abs(d2 - ratio * d3)
                if fourth > best:
                    best = fourth
                    axis = k
            out_axis[r] = axis

    _KERNELS = (points_kernel, fused_kernel)
    return _KERNELS


class NumbaBackend(NumpyBackend):
    """Compiled kernel lane: fused evaluate sweep on a Numba thread team.

    Inherits every array primitive from the NumPy reference (the arrays
    *are* NumPy arrays); only the per-chunk sweep arithmetic is replaced,
    through the :meth:`fused_compute_chunk` hook that
    :func:`repro.cubature.evaluation.evaluate_regions` dispatches to.
    """

    name = "numba"

    def __init__(self, num_threads: Optional[int] = None):
        ok, reason = _probe_numba()
        if not ok:
            raise BackendUnavailableError(
                f"numba backend unavailable: {reason}; install the "
                "'kernels' extra (pip install pagani-repro[kernels])"
            )
        self.num_threads = resolve_workers(num_threads)
        self._points_kernel, self._fused_kernel = _build_kernels()
        self._pts_buf: Optional[np.ndarray] = None

    def _points_buffer(self, mc: int, p: int, n: int) -> np.ndarray:
        """Per-backend reusable point buffer (chunks run serially)."""
        need = (mc, p, n)
        buf = self._pts_buf
        if buf is None or buf.shape[0] < mc or buf.shape[1:] != (p, n):
            buf = np.empty(need)
            self._pts_buf = buf
        return buf[:mc]

    def fused_compute_chunk(
        self, dr, integrand, c, h, error_model: str
    ):
        """Fused-lane replacement for ``compute_chunk``.

        Same signature contract: ``(mc, n)`` center/halfwidth slices and
        the backend-resident :class:`~repro.cubature.rules.DeviceRule`;
        returns ``(estimate, error, axis)``.
        """
        import numba

        mc, n = c.shape
        p = dr.points.shape[0]
        c = np.ascontiguousarray(c)
        h = np.ascontiguousarray(h)
        pts = self._points_buffer(mc, p, n)
        out_est = np.empty(mc)
        out_err = np.empty(mc)
        out_axis = np.empty(mc, dtype=np.int64)

        old_threads = numba.get_num_threads()
        numba.set_num_threads(self.num_threads)
        try:
            self._points_kernel(c, h, dr.points, pts)
            vals = self.map_integrand(integrand, pts.reshape(-1, n))
            vals = np.ascontiguousarray(vals.reshape(mc, p))
            from repro.cubature.evaluation import CASCADE_RATIO_CRITICAL
            from repro.cubature.rules import FOURTH_DIFF_RATIO

            self._fused_kernel(
                vals, h,
                dr.w7, dr.w5, dr.w3a, dr.w3b, dr.w1,
                dr.idx2_plus, dr.idx2_minus, dr.idx3_plus, dr.idx3_minus,
                FOURTH_DIFF_RATIO, CASCADE_RATIO_CRITICAL,
                _MODEL_CODES[error_model],
                out_est, out_err, out_axis,
            )
        finally:
            numba.set_num_threads(old_threads)
        return out_est, out_err, out_axis

    def close(self) -> None:  # pragma: no cover - symmetry with pools
        self._pts_buf = None
