"""pagani-repro: reproduction of *PAGANI: A Parallel Adaptive GPU Algorithm
for Numerical Integration* (Sakiotis et al., SC 2021) on a simulated GPU
substrate.

Quick start::

    import numpy as np
    from repro import integrate

    def f(x):                       # batch integrand: (N, ndim) -> (N,)
        return np.exp(-np.sum(x**2, axis=1))

    res = integrate(f, ndim=5, rel_tol=1e-6)
    print(res.estimate, res.errorest, res.converged)

Package map
-----------
``repro.core``        PAGANI itself (Algorithms 2 and 3)
``repro.cubature``    Genz–Malik rules, batch evaluation, two-level errors
``repro.batch``       batched multi-integrand scheduling (integrate_many)
``repro.service``     job queue + result cache service layer
                      (serve_jobs, serve_http, durable store)
``repro.backends``    pluggable array-execution backends (numpy/threaded/cupy)
``repro.gpu``         virtual device: cost model, memory pool, scheduler
``repro.baselines``   sequential Cuhre, two-phase GPU method, randomized QMC
``repro.integrands``  the paper's f1–f8 and the Genz families
``repro.reference``   semi-analytic reference values (box integrals)
``repro.diagnostics`` traces, tree statistics, load-imbalance reports
"""

from repro.api import (
    IntegrationRequest,
    integrate,
    integrate_many,
    integrate_request,
    integrate_sweep,
    serve_http,
    serve_jobs,
)
from repro.backends import ArrayBackend, available_backends, get_backend
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.core.result import IntegrationResult, Status
from repro.baselines.cuhre import CuhreConfig, CuhreIntegrator
from repro.baselines.two_phase import TwoPhaseConfig, TwoPhaseIntegrator
from repro.baselines.qmc import QmcConfig, QmcIntegrator
from repro.baselines.vegas import VegasConfig, VegasIntegrator
from repro.gpu.device import DeviceSpec, VirtualDevice
from repro.integrands.base import Integrand, ScalarIntegrand

__version__ = "1.0.0"

__all__ = [
    "integrate",
    "integrate_many",
    "integrate_request",
    "integrate_sweep",
    "IntegrationRequest",
    "serve_jobs",
    "serve_http",
    "IntegrationResult",
    "Status",
    "PaganiConfig",
    "PaganiIntegrator",
    "CuhreConfig",
    "CuhreIntegrator",
    "TwoPhaseConfig",
    "TwoPhaseIntegrator",
    "QmcConfig",
    "VegasConfig",
    "VegasIntegrator",
    "QmcIntegrator",
    "DeviceSpec",
    "VirtualDevice",
    "Integrand",
    "ScalarIntegrand",
    "ArrayBackend",
    "get_backend",
    "available_backends",
    "__version__",
]
