"""Work-load imbalance of naive spatial parallelisation (Figure 1).

The paper's first figure motivates PAGANI: partition the integration space
uniformly across P processors, let each run sequential adaptive integration,
and the processors covering "ill-behaved" territory perform orders of
magnitude more sub-divisions than the rest.  This module measures exactly
that: it partitions the domain, runs a budget-capped sequential Cuhre on
every partition, and reports the per-processor sub-division counts and the
resulting parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.baselines.cuhre import CuhreConfig, CuhreIntegrator
from repro.core.regions import RegionStore


@dataclass
class ImbalanceReport:
    """Per-processor adaptive workload after a uniform spatial partition."""

    subdivisions: np.ndarray  # (P,) regions generated per processor
    nevals: np.ndarray  # (P,) integrand evaluations per processor

    @property
    def n_processors(self) -> int:
        return self.subdivisions.shape[0]

    @property
    def max_over_mean(self) -> float:
        """Makespan penalty: max workload over mean workload (1.0 = balanced)."""
        mean = float(np.mean(self.subdivisions))
        return float(np.max(self.subdivisions)) / mean if mean > 0 else 1.0

    @property
    def parallel_efficiency(self) -> float:
        """Useful fraction of processor-time under a static assignment."""
        mx = float(np.max(self.subdivisions))
        if mx == 0:
            return 1.0
        return float(np.mean(self.subdivisions)) / mx

    def summary(self) -> str:
        rows = [
            f"P{i:<3d} subdivisions={int(s):>8d} evals={int(e):>10d}"
            for i, (s, e) in enumerate(zip(self.subdivisions, self.nevals))
        ]
        rows.append(
            f"imbalance (max/mean) = {self.max_over_mean:.2f}, "
            f"parallel efficiency = {self.parallel_efficiency:.1%}"
        )
        return "\n".join(rows)


def partition_imbalance(
    integrand: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    splits_per_axis: int,
    rel_tol: float = 1e-6,
    max_eval_per_processor: int = 2_000_000,
    bounds: Sequence[Sequence[float]] | None = None,
) -> ImbalanceReport:
    """Run independent sequential Cuhre on a uniform spatial partition.

    ``splits_per_axis**ndim`` processors each own one cell; their adaptive
    work is measured independently (no work stealing), reproducing the
    Figure 1 scenario.

    Each processor works toward an equal *absolute* share of the global
    tolerance, ``τ_rel · |I| / P`` (with ``|I|`` from a cheap pre-pass):
    the whole point of the figure is that contributions are unequal while
    static shares are equal — a processor owning flat territory meets its
    share immediately, the peak owner grinds.  (Running every cell to a
    *relative* τ would instead make all processors work hard on their own
    scale, which is not the scenario the paper illustrates.)
    """
    if bounds is None:
        bounds = [(0.0, 1.0)] * ndim
    bounds_arr = np.asarray(bounds, dtype=np.float64)

    # cheap global estimate for the absolute tolerance shares
    from repro.core.pagani import PaganiConfig, PaganiIntegrator

    rough = PaganiIntegrator(PaganiConfig(rel_tol=1e-2, max_iterations=10)).integrate(
        integrand, ndim, bounds=bounds_arr, collect_trace=False
    )
    store = RegionStore.uniform_split(bounds_arr, splits_per_axis)
    n_proc = store.size
    abs_share = rel_tol * abs(rough.estimate) / n_proc

    subdivisions = np.zeros(n_proc)
    nevals = np.zeros(n_proc)
    cuhre = CuhreIntegrator(
        CuhreConfig(rel_tol=rel_tol, max_eval=max_eval_per_processor)
    )
    for i in range(n_proc):
        c = store.centers[i]
        h = store.halfwidths[i]
        cell = np.stack([c - h, c + h], axis=1)
        res = cuhre.integrate(
            integrand, ndim, bounds=cell, rel_tol=rel_tol, abs_tol=abs_share
        )
        subdivisions[i] = res.nregions
        nevals[i] = res.neval
    return ImbalanceReport(subdivisions=subdivisions, nevals=nevals)
