"""Per-kernel cost breakdown (§4.3.2).

The paper reports that the ``evaluate`` kernel consistently dominates (>90 %
of execution time), followed by filtering/sub-division, then post-processing
and classification.  The virtual device records per-kernel launches and
simulated seconds; this module groups them into the paper's four categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.gpu.device import VirtualDevice

#: kernel-name → paper category mapping
CATEGORIES = {
    "evaluate": "evaluate",
    "two_level": "post-processing",
    "thrust::reduce(V)": "post-processing",
    "thrust::reduce(E)": "post-processing",
    "thrust::reduce(Eact)": "threshold-classification",
    "thrust::reduce(Erem)": "threshold-classification",
    "thrust::inner_product": "post-processing",
    "thrust::count": "post-processing",
    "thrust::minmax_element": "threshold-classification",
    "rel_err_classify": "post-processing",
    "threshold_classify": "threshold-classification",
    "thrust::exclusive_scan": "filter+split",
    "filter": "filter+split",
    "split": "filter+split",
    "uniform_split": "filter+split",
    "phase2": "phase2",
}


@dataclass
class KernelShare:
    category: str
    seconds: float
    share: float
    launches: int


def kernel_breakdown(device: VirtualDevice) -> List[KernelShare]:
    """Group the device's kernel accounting into the §4.3.2 categories."""
    agg: Dict[str, List[float]] = {}
    total = 0.0
    for name, st in device.stats().items():
        cat = CATEGORIES.get(name, "other")
        row = agg.setdefault(cat, [0.0, 0])
        row[0] += st.seconds
        row[1] += st.launches
        total += st.seconds
    total = total or 1.0
    out = [
        KernelShare(category=cat, seconds=sec, share=sec / total, launches=int(n))
        for cat, (sec, n) in agg.items()
    ]
    out.sort(key=lambda k: k.seconds, reverse=True)
    return out
