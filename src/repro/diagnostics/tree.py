"""Sub-region tree shape statistics (Figure 2).

PAGANI never materialises a tree, but its iteration trace *is* a
breadth-first levelling of one: iteration k processes the regions at depth
k (offset by the initial uniform split).  Cuhre's pop-split loop builds a
narrow, deep tree instead.  This module summarises both shapes so the
Figure 2 comparison — wide-and-shallow versus narrow-and-deep — can be
reported quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.result import IntegrationResult


@dataclass
class TreeShape:
    """Level-by-level width profile of a sub-region tree."""

    method: str
    level_widths: List[int]  # regions evaluated per depth level
    finished_per_level: List[int]  # regions classified finished per level

    @property
    def depth(self) -> int:
        return len(self.level_widths)

    @property
    def max_width(self) -> int:
        return max(self.level_widths) if self.level_widths else 0

    @property
    def total_regions(self) -> int:
        return int(sum(self.level_widths))

    def summary(self) -> str:
        rows = [f"{self.method}: depth={self.depth}, max width={self.max_width}"]
        for lvl, (w, fin) in enumerate(zip(self.level_widths, self.finished_per_level)):
            rows.append(f"  depth {lvl:>2d}: width={w:>9d} finished={fin:>9d}")
        return "\n".join(rows)


def tree_shape_from_trace(result: IntegrationResult) -> TreeShape:
    """Derive the level profile from a PAGANI/two-phase iteration trace."""
    widths = [rec.n_regions for rec in result.trace]
    finished = [
        rec.n_finished_relerr + rec.n_finished_threshold for rec in result.trace
    ]
    return TreeShape(
        method=result.method, level_widths=widths, finished_per_level=finished
    )


def cuhre_tree_shape(
    depths: Sequence[int], finished_depths: Sequence[int] | None = None
) -> TreeShape:
    """Build a :class:`TreeShape` from explicit per-region depths.

    Used by the Figure 2 harness, which runs an instrumented Cuhre that
    records the depth of every region it creates.
    """
    depths = np.asarray(depths, dtype=np.int64)
    max_d = int(depths.max()) if depths.size else 0
    widths = [int(np.sum(depths == d)) for d in range(max_d + 1)]
    if finished_depths is not None:
        fd = np.asarray(finished_depths, dtype=np.int64)
        finished = [int(np.sum(fd == d)) for d in range(max_d + 1)]
    else:
        finished = [0] * (max_d + 1)
    return TreeShape(method="cuhre", level_widths=widths, finished_per_level=finished)
