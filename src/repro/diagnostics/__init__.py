"""Diagnostics: traces, tree statistics, load-imbalance and cost breakdowns.

These utilities back the qualitative figures of the paper (Figs. 1-3) and
the §4.3.2 performance-breakdown analysis.
"""

from repro.diagnostics.imbalance import ImbalanceReport, partition_imbalance
from repro.diagnostics.tree import TreeShape, tree_shape_from_trace
from repro.diagnostics.breakdown import KernelShare, kernel_breakdown

__all__ = [
    "ImbalanceReport",
    "partition_imbalance",
    "TreeShape",
    "tree_shape_from_trace",
    "KernelShare",
    "kernel_breakdown",
]
