"""The named-integrand catalogue behind specs like ``"8D-f7"``.

A *spec* is the textual integrand identity used everywhere a human (or a
jobs file) names an integrand instead of passing a callable: the CLI
(``pagani-repro run --integrand 8D-f7``), service job files
(``{"integrand": "5D-f4", ...}``) and the result cache, whose content
fingerprint includes the canonical spec so equal jobs hash equally
regardless of spelling (``8d-f7`` ≡ ``8D-f7``).

Grammar::

    <n>D-<fk>              the paper's fixed-parameter f1..f8, e.g. 8D-f7
    <n>D-genz-<family>     a seeded Genz family member, e.g. 6D-genz-gaussian

Genz members drawn here always use the default seed, so a spec denotes
*one* deterministic integrand — the property the cache relies on.
"""

from __future__ import annotations

from repro.integrands.base import Integrand
from repro.integrands.genz import GenzFamily, make_genz
from repro.integrands.paper import (
    f1_oscillatory,
    f2_product_peak,
    f3_corner_peak,
    f4_gaussian,
    f5_c0,
    f6_discontinuous,
    f7_box11,
    f8_box15,
)

FACTORIES = {
    "f1": f1_oscillatory,
    "f2": f2_product_peak,
    "f3": f3_corner_peak,
    "f4": f4_gaussian,
    "f5": f5_c0,
    "f6": f6_discontinuous,
    "f7": f7_box11,
    "f8": f8_box15,
}


def canonical_spec(spec: str) -> str:
    """Normalise a spec string to its canonical lower-case form.

    Raises ``ValueError`` on anything :func:`named_integrand` would not
    accept, so a canonical spec is always resolvable.
    """
    parts = spec.strip().lower().split("-")
    if len(parts) < 2 or not parts[0].endswith("d"):
        raise ValueError(f"cannot parse integrand spec {spec!r} (want e.g. '8D-f7')")
    try:
        ndim = int(parts[0][:-1])
    except ValueError:
        raise ValueError(f"cannot parse integrand spec {spec!r} (want e.g. '8D-f7')") from None
    key = parts[1]
    if key == "genz":
        if len(parts) != 3:
            raise ValueError("genz spec is '<n>D-genz-<family>'")
        GenzFamily(parts[2])  # validates the family name
        return f"{ndim}d-genz-{parts[2]}"
    if key not in FACTORIES or len(parts) != 2:
        raise ValueError(f"unknown integrand {key!r}; options: {sorted(FACTORIES)}")
    return f"{ndim}d-{key}"


def named_integrand(spec: str) -> Integrand:
    """Resolve names like ``8D-f7``, ``5D-f4`` or ``6D-genz-gaussian``.

    The returned :class:`~repro.integrands.base.Integrand` carries the
    canonical spec in its ``spec`` attribute — the stable identity the
    result cache fingerprints and the process backend ships to worker
    processes (a spec denotes *one* deterministic integrand, so a worker
    rebuilding it computes identical bits).
    """
    canonical = canonical_spec(spec)
    parts = canonical.split("-")
    ndim = int(parts[0][:-1])
    if parts[1] == "genz":
        integrand = make_genz(GenzFamily(parts[2]), ndim)
    else:
        integrand = FACTORIES[parts[1]](ndim)
    integrand.spec = canonical
    return integrand
