"""The named-integrand catalogue behind specs like ``"8D-f7"``.

A *spec* is the textual integrand identity used everywhere a human (or a
jobs file) names an integrand instead of passing a callable: the CLI
(``pagani-repro run --integrand 8D-f7``), service job files
(``{"integrand": "5D-f4", ...}``) and the result cache, whose content
fingerprint includes the canonical spec so equal jobs hash equally
regardless of spelling (``8d-f7`` ≡ ``8D-f7``).

Grammar::

    <base>  := <n>D-<fk>              the paper's fixed-parameter f1..f8
             | <n>D-genz-<family>     a seeded Genz family member

    <spec>  := <base>
             | semi_infinite(<base>[, scale=<v>])
             | infinite(<base>[, scale=<v>])
             | gaussian_measure(<base>[, mean=<v>][, sigma=<v>])

    <v>     := <float>                scalar, broadcast over all axes
             | [<float>,...]          per-axis vector (length = ndim)

    <sweep> := sweep:<transform spec with exactly one parameter given
               as a ';'-separated value list>, e.g.
               sweep:semi_infinite(3D-f4, scale=0.5;1.0;2.0)

Genz members drawn here always use the default seed, so a spec denotes
*one* deterministic integrand — the property the cache relies on.  The
canonical form of a transform spec is byte-stable: lower-case base,
parameters in declaration order, floats rendered via ``repr(float(x))``
(shortest round-trip form), per-axis vectors collapsed to a scalar when
uniform, and parameters equal to their default omitted entirely.  Two
spellings of the same integrand therefore fingerprint identically in
``ResultCache``/``TieredResultCache``, and a worker process rebuilding
the spec computes bit-identical values.

Sweep specs are *plural*: :func:`expand_sweep` turns one into the list
of canonical member specs, which callers fuse through
``integrate_many``.  A sweep spec itself is not a job identity — each
member fingerprints individually, so partial sweeps share cache entries
with any other job naming the same member.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.integrands.base import Integrand
from repro.integrands.genz import GenzFamily, make_genz
from repro.integrands.paper import (
    f1_oscillatory,
    f2_product_peak,
    f3_corner_peak,
    f4_gaussian,
    f5_c0,
    f6_discontinuous,
    f7_box11,
    f8_box15,
)

FACTORIES = {
    "f1": f1_oscillatory,
    "f2": f2_product_peak,
    "f3": f3_corner_peak,
    "f4": f4_gaussian,
    "f5": f5_c0,
    "f6": f6_discontinuous,
    "f7": f7_box11,
    "f8": f8_box15,
}

#: transform families the spec grammar can name, with their keyword
#: parameters in canonical order and per-parameter defaults
TRANSFORM_PARAMS: Dict[str, Tuple[str, ...]] = {
    "semi_infinite": ("scale",),
    "infinite": ("scale",),
    "gaussian_measure": ("mean", "sigma"),
}
TRANSFORM_DEFAULTS: Dict[str, float] = {"scale": 1.0, "mean": 0.0, "sigma": 1.0}

#: prefix marking a plural (sweep) spec — see :func:`expand_sweep`
SWEEP_PREFIX = "sweep:"

ParamValue = Union[float, Tuple[float, ...]]


def _canonical_base(spec: str) -> str:
    parts = spec.strip().lower().split("-")
    if len(parts) < 2 or not parts[0].endswith("d"):
        raise ValueError(f"cannot parse integrand spec {spec!r} (want e.g. '8D-f7')")
    try:
        ndim = int(parts[0][:-1])
    except ValueError:
        raise ValueError(f"cannot parse integrand spec {spec!r} (want e.g. '8D-f7')") from None
    key = parts[1]
    if key == "genz":
        if len(parts) != 3:
            raise ValueError("genz spec is '<n>D-genz-<family>'")
        GenzFamily(parts[2])  # validates the family name
        return f"{ndim}d-genz-{parts[2]}"
    if key not in FACTORIES or len(parts) != 2:
        raise ValueError(f"unknown integrand {key!r}; options: {sorted(FACTORIES)}")
    return f"{ndim}d-{key}"


def _base_ndim(canonical_base: str) -> int:
    return int(canonical_base.split("-", 1)[0][:-1])


def _split_top_level(text: str, sep: str) -> List[str]:
    """Split on ``sep`` outside ``[...]`` brackets (param lists hold commas)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced ']' in spec fragment {text!r}")
        if ch == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ValueError(f"unbalanced '[' in spec fragment {text!r}")
    parts.append("".join(current))
    return parts


def _parse_number(text: str, spec: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"cannot parse number {text!r} in spec {spec!r}") from None
    if not np.isfinite(value):
        raise ValueError(f"non-finite parameter value {text!r} in spec {spec!r}")
    return value


def _parse_value(text: str, spec: str) -> ParamValue:
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            raise ValueError(f"empty parameter list in spec {spec!r}")
        return tuple(_parse_number(p.strip(), spec) for p in inner.split(","))
    return _parse_number(text, spec)


def _normalise_value(name: str, value: ParamValue, ndim: int, spec: str) -> ParamValue:
    """Collapse uniform vectors to scalars; validate lengths and signs."""
    if isinstance(value, tuple):
        if len(value) != ndim:
            raise ValueError(
                f"parameter {name}=... in spec {spec!r} has {len(value)} entries, "
                f"want {ndim} (one per axis) or a scalar"
            )
        if all(v == value[0] for v in value):
            value = value[0]
    positive = name in ("scale", "sigma")
    values = value if isinstance(value, tuple) else (value,)
    if positive and any(v <= 0.0 for v in values):
        raise ValueError(f"parameter {name} must be positive in spec {spec!r}")
    return value


def _format_value(value: ParamValue) -> str:
    if isinstance(value, tuple):
        return "[" + ",".join(repr(float(v)) for v in value) + "]"
    return repr(float(value))


class ParsedTransform:
    """A transform spec decomposed into (family, base, params)."""

    __slots__ = ("family", "base", "params")

    def __init__(self, family: str, base: str, params: Dict[str, ParamValue]):
        self.family = family
        self.base = base
        self.params = params

    @property
    def ndim(self) -> int:
        return _base_ndim(self.base)

    def canonical(self) -> str:
        parts = [self.base]
        for name in TRANSFORM_PARAMS[self.family]:
            if name in self.params:
                parts.append(f"{name}={_format_value(self.params[name])}")
        return f"{self.family}({', '.join(parts)})"


def parse_transform_spec(spec: str) -> Optional[ParsedTransform]:
    """Parse ``family(base, k=v, ...)``; ``None`` when ``spec`` has no call form.

    Parameters equal to their defaults are dropped and uniform per-axis
    vectors collapse to scalars, so :meth:`ParsedTransform.canonical` is
    the unique byte-stable spelling of the transformed integrand.
    """
    text = spec.strip()
    paren = text.find("(")
    if paren < 0:
        return None
    family = text[:paren].strip().lower()
    if family not in TRANSFORM_PARAMS:
        raise ValueError(
            f"unknown transform {family!r} in spec {spec!r}; "
            f"options: {sorted(TRANSFORM_PARAMS)}"
        )
    if not text.endswith(")"):
        raise ValueError(f"transform spec {spec!r} must end with ')'")
    inner = text[paren + 1 : -1]
    fields = [p.strip() for p in _split_top_level(inner, ",")]
    if not fields or not fields[0]:
        raise ValueError(f"transform spec {spec!r} needs a base integrand argument")
    if "=" in fields[0]:
        raise ValueError(f"first argument of {spec!r} must be the base integrand spec")
    base = _canonical_base(fields[0])
    ndim = _base_ndim(base)
    allowed = TRANSFORM_PARAMS[family]
    params: Dict[str, ParamValue] = {}
    for field in fields[1:]:
        if "=" not in field:
            raise ValueError(f"expected '<name>=<value>' got {field!r} in spec {spec!r}")
        name, _, raw = field.partition("=")
        name = name.strip().lower()
        if name not in allowed:
            raise ValueError(
                f"transform {family!r} takes parameters {allowed}, got {name!r}"
            )
        if name in params:
            raise ValueError(f"duplicate parameter {name!r} in spec {spec!r}")
        value = _normalise_value(name, _parse_value(raw, spec), ndim, spec)
        if not isinstance(value, tuple) and value == TRANSFORM_DEFAULTS[name]:
            continue  # default-valued scalars vanish from the canonical form
        params[name] = value
    return ParsedTransform(family, base, params)


def canonical_spec(spec: str) -> str:
    """Normalise a spec string to its canonical byte-stable form.

    Raises ``ValueError`` on anything :func:`named_integrand` would not
    accept, so a canonical spec is always resolvable.  Sweep specs are
    plural and rejected here — expand them with :func:`expand_sweep`.
    """
    if is_sweep_spec(spec):
        raise ValueError(
            f"{spec!r} is a sweep spec (N member jobs); expand it with "
            "expand_sweep() and submit the members individually"
        )
    parsed = parse_transform_spec(spec)
    if parsed is not None:
        return parsed.canonical()
    return _canonical_base(spec)


def _build_transform(parsed: ParsedTransform) -> Integrand:
    # local import: transforms lazily formats specs through this module
    from repro.integrands import transforms

    base = named_integrand(parsed.base)
    ndim = parsed.ndim
    if parsed.family == "semi_infinite":
        integrand = transforms.semi_infinite(
            base, ndim, scale=parsed.params.get("scale", TRANSFORM_DEFAULTS["scale"])
        )
    elif parsed.family == "infinite":
        integrand = transforms.infinite(
            base, ndim, scale=parsed.params.get("scale", TRANSFORM_DEFAULTS["scale"])
        )
    else:
        mean = parsed.params.get("mean", TRANSFORM_DEFAULTS["mean"])
        sigma = parsed.params.get("sigma", TRANSFORM_DEFAULTS["sigma"])
        mu = np.broadcast_to(np.asarray(mean, dtype=np.float64), (ndim,)).copy()
        sig = np.broadcast_to(np.asarray(sigma, dtype=np.float64), (ndim,)).copy()
        integrand = transforms.gaussian_measure(base, ndim, mean=mu, chol=np.diag(sig))
    return integrand


def named_integrand(spec: str) -> Integrand:
    """Resolve names like ``8D-f7`` or ``semi_infinite(3D-f4, scale=2.0)``.

    The returned :class:`~repro.integrands.base.Integrand` carries the
    canonical spec in its ``spec`` attribute — the stable identity the
    result cache fingerprints and the process backend ships to worker
    processes (a spec denotes *one* deterministic integrand, so a worker
    rebuilding it computes identical bits).  Transform specs resolve the
    base integrand first, then wrap it with the named transform; their
    ``reference`` is ``None`` because the base's unit-cube reference does
    not survive a change of domain.
    """
    canonical = canonical_spec(spec)
    parsed = parse_transform_spec(canonical)
    if parsed is not None:
        integrand = _build_transform(parsed)
    else:
        parts = canonical.split("-")
        ndim = int(parts[0][:-1])
        if parts[1] == "genz":
            integrand = make_genz(GenzFamily(parts[2]), ndim)
        else:
            integrand = FACTORIES[parts[1]](ndim)
    integrand.spec = canonical
    return integrand


def is_sweep_spec(spec: str) -> bool:
    """True when ``spec`` is plural — a ``sweep:`` template naming N jobs."""
    return spec.strip().lower().startswith(SWEEP_PREFIX)


def expand_sweep(spec: str) -> List[str]:
    """Expand ``sweep:family(base, p=v1;v2;...)`` into canonical member specs.

    Exactly one parameter must carry a ``;``-separated value list; every
    other parameter is held fixed across the members.  The members are
    ordinary transform specs — each resolvable by :func:`named_integrand`,
    each with its own cache fingerprint — which callers fuse through
    ``integrate_many`` for batched execution.
    """
    text = spec.strip()
    if not is_sweep_spec(text):
        raise ValueError(f"not a sweep spec (want '{SWEEP_PREFIX}...'): {spec!r}")
    template = text[len(SWEEP_PREFIX) :].strip()
    paren = template.find("(")
    if paren < 0 or not template.endswith(")"):
        raise ValueError(
            f"sweep template must be a transform spec, got {template!r} "
            "(e.g. 'sweep:semi_infinite(3D-f4, scale=0.5;1.0;2.0)')"
        )
    family = template[:paren].strip().lower()
    if family not in TRANSFORM_PARAMS:
        raise ValueError(
            f"unknown transform {family!r} in sweep {spec!r}; "
            f"options: {sorted(TRANSFORM_PARAMS)}"
        )
    fields = [p.strip() for p in _split_top_level(template[paren + 1 : -1], ",")]
    swept: Optional[Tuple[str, List[str]]] = None
    fixed: List[str] = []
    for field in fields:
        if "=" in field:
            name, _, raw = field.partition("=")
            values = [v.strip() for v in _split_top_level(raw.strip(), ";")]
            if len(values) > 1:
                if swept is not None:
                    raise ValueError(
                        f"sweep {spec!r} sweeps both {swept[0]!r} and "
                        f"{name.strip()!r}; exactly one parameter may vary"
                    )
                swept = (name.strip(), values)
                continue
        fixed.append(field)
    if swept is None:
        raise ValueError(
            f"sweep {spec!r} has no swept parameter "
            "(give one as '<name>=v1;v2;...')"
        )
    name, values = swept
    members = []
    for value in values:
        args = ", ".join(fixed + [f"{name}={value}"])
        members.append(canonical_spec(f"{family}({args})"))
    if len(set(members)) != len(members):
        raise ValueError(f"sweep {spec!r} repeats a member after canonicalisation")
    return members


def canonical_sweep_spec(spec: str) -> str:
    """The byte-stable spelling of a sweep spec (members canonicalised)."""
    members = expand_sweep(spec)
    # Re-derive the varying parameter by diffing the canonical members.
    parsed = [parse_transform_spec(m) for m in members]
    family = parsed[0].family
    swept_names = set()
    for name in TRANSFORM_PARAMS[family]:
        values = [p.params.get(name) for p in parsed]
        if any(v != values[0] for v in values):
            swept_names.add(name)
    if len(swept_names) != 1:
        raise ValueError(f"sweep {spec!r} does not vary exactly one parameter")
    swept_name = swept_names.pop()
    joined = ";".join(
        _format_value(p.params.get(swept_name, TRANSFORM_DEFAULTS[swept_name]))
        for p in parsed
    )
    parts = [parsed[0].base]
    for name in TRANSFORM_PARAMS[family]:
        if name == swept_name:
            parts.append(f"{name}={joined}")
        elif name in parsed[0].params:
            parts.append(f"{name}={_format_value(parsed[0].params[name])}")
    return f"{SWEEP_PREFIX}{family}({', '.join(parts)})"
