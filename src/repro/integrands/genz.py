"""The six Genz (1984) test-integrand families with randomized parameters.

Genz's standard methodology draws affective parameters ``a`` (difficulty)
and shift parameters ``u`` at random, then rescales ``a`` so that the total
difficulty ``Σ a_i`` hits a per-family constant.  Every family has a closed
form on the unit cube, so randomized instances still provide exact
references — this is the broader robustness suite complementing the fixed
f1–f8 of the paper (which are fixed-parameter members of these families).

Family catalogue (all on [0,1]^d):

====================  ====================================================
``oscillatory``       cos(2π u₁ + Σ a_i x_i)
``product_peak``      Π (a_i^{-2} + (x_i − u_i)²)^{-1}
``corner_peak``       (1 + Σ a_i x_i)^{-(d+1)}
``gaussian``          exp(−Σ a_i² (x_i − u_i)²)
``c0``                exp(−Σ a_i |x_i − u_i|)
``discontinuous``     exp(Σ a_i x_i) if x₁ ≤ u₁ and x₂ ≤ u₂, else 0
====================  ====================================================
"""

from __future__ import annotations

import enum
import math
from typing import Optional

import numpy as np
from scipy.special import erf as _erf

from repro.integrands.base import Integrand


class GenzFamily(str, enum.Enum):
    OSCILLATORY = "oscillatory"
    PRODUCT_PEAK = "product_peak"
    CORNER_PEAK = "corner_peak"
    GAUSSIAN = "gaussian"
    C0 = "c0"
    DISCONTINUOUS = "discontinuous"


#: Genz's standard per-family difficulty levels (Σ a_i after rescaling).
DEFAULT_DIFFICULTY = {
    GenzFamily.OSCILLATORY: 9.0,
    GenzFamily.PRODUCT_PEAK: 7.25,
    GenzFamily.CORNER_PEAK: 1.85,
    GenzFamily.GAUSSIAN: 7.03,
    GenzFamily.C0: 20.4,
    GenzFamily.DISCONTINUOUS: 4.3,
}


def _osc_reference(a: np.ndarray, phase: float) -> float:
    prod = complex(math.cos(phase), math.sin(phase))
    for ai in a:
        prod *= (np.exp(1j * ai) - 1.0) / (1j * ai)
    return float(prod.real)


def _corner_reference(a: np.ndarray) -> float:
    """Inclusion–exclusion for (1+Σ a_i x_i)^{-(d+1)} with float params.

    Terms are accumulated with ``math.fsum`` to limit cancellation; for the
    severely cancelling integer-parameter case the paper suite uses the
    exact rational path in :mod:`repro.integrands.paper` instead.
    """
    d = len(a)
    terms = []
    for mask in range(2**d):
        ssum = 0.0
        bits = mask
        sign = 1.0
        i = 0
        while bits:
            if bits & 1:
                ssum += a[i]
                sign = -sign
            bits >>= 1
            i += 1
        terms.append(sign / (1.0 + ssum))
    total = math.fsum(terms)
    denom = math.factorial(d) * float(np.prod(a))
    return total / denom


def make_genz(
    family: GenzFamily | str,
    ndim: int,
    seed: int = 0,
    difficulty: Optional[float] = None,
) -> Integrand:
    """Build a randomized Genz integrand with its exact reference value.

    Parameters
    ----------
    family:
        One of the six family identifiers.
    seed:
        Seeds the parameter draw; the same (family, ndim, seed, difficulty)
        tuple always yields the same instance.
    difficulty:
        Target ``Σ a_i`` (defaults to Genz's per-family constant).
    """
    family = GenzFamily(family)
    rng = np.random.default_rng(seed)
    diff = DEFAULT_DIFFICULTY[family] if difficulty is None else float(difficulty)
    a = rng.uniform(0.1, 1.0, size=ndim)
    a *= diff / a.sum()
    u = rng.uniform(0.0, 1.0, size=ndim)

    if family is GenzFamily.OSCILLATORY:
        phase = 2.0 * math.pi * u[0]

        def fn(x: np.ndarray) -> np.ndarray:
            return np.cos(phase + x @ a)

        ref = _osc_reference(a, phase)
        sign_definite = False
        flops = 2.0 * ndim + 20.0

    elif family is GenzFamily.PRODUCT_PEAK:

        def fn(x: np.ndarray) -> np.ndarray:
            return np.prod(1.0 / (1.0 / a[None, :] ** 2 + (x - u[None, :]) ** 2), axis=1)

        ref = float(
            np.prod([ai * (math.atan(ai * (1.0 - ui)) + math.atan(ai * ui)) for ai, ui in zip(a, u)])
        )
        sign_definite = True
        flops = 6.0 * ndim

    elif family is GenzFamily.CORNER_PEAK:
        power = -(ndim + 1.0)

        def fn(x: np.ndarray) -> np.ndarray:
            return np.power(1.0 + x @ a, power)

        ref = _corner_reference(a)
        sign_definite = True
        flops = 2.0 * ndim + 40.0

    elif family is GenzFamily.GAUSSIAN:

        def fn(x: np.ndarray) -> np.ndarray:
            return np.exp(-np.sum((a[None, :] * (x - u[None, :])) ** 2, axis=1))

        ref = float(
            np.prod(
                [
                    math.sqrt(math.pi) / (2.0 * ai) * (_erf(ai * (1.0 - ui)) + _erf(ai * ui))
                    for ai, ui in zip(a, u)
                ]
            )
        )
        sign_definite = True
        flops = 5.0 * ndim + 25.0

    elif family is GenzFamily.C0:

        def fn(x: np.ndarray) -> np.ndarray:
            return np.exp(-np.sum(a[None, :] * np.abs(x - u[None, :]), axis=1))

        ref = float(
            np.prod(
                [
                    (2.0 - math.exp(-ai * ui) - math.exp(-ai * (1.0 - ui))) / ai
                    for ai, ui in zip(a, u)
                ]
            )
        )
        sign_definite = True
        flops = 4.0 * ndim + 25.0

    elif family is GenzFamily.DISCONTINUOUS:

        def fn(x: np.ndarray) -> np.ndarray:
            inside = (x[:, 0] <= u[0]) & (x[:, 1] <= u[1]) if ndim >= 2 else x[:, 0] <= u[0]
            out = np.zeros(x.shape[0])
            if np.any(inside):
                out[inside] = np.exp(x[inside] @ a)
            return out

        ref = 1.0
        for i, ai in enumerate(a):
            hi = u[i] if i < 2 else 1.0
            ref *= (math.exp(ai * hi) - 1.0) / ai
        sign_definite = True
        flops = 3.0 * ndim + 25.0

    else:  # pragma: no cover - exhaustive enum
        raise ValueError(family)

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D genz-{family.value}(seed={seed})",
        reference=ref,
        flops_per_eval=flops,
        sign_definite=sign_definite,
    )
