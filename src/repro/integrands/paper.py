"""The paper's test integrands f1–f8 with fixed parameters (§4.1).

All are defined on the unit cube.  Reference values are closed-form where
possible; the cancellation-prone corner-peak sum (f3) and the even box
moment (f7) use exact rational arithmetic; the odd box integral (f8) uses
the semi-analytic convolution pipeline of :mod:`repro.reference.boxint`.

The paper evaluates f1, f3, f4, f5, f7, f8 in eight dimensions, f4 also in
five, f6 in six and f3 also in three — the factories below take ``ndim``
where the paper varies it.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import atan, erf, exp, pi, sqrt
from itertools import combinations
from typing import List

import numpy as np

from repro.integrands.base import Integrand
from repro.reference.boxint import box_integral, box_moment_exact


# ---------------------------------------------------------------------------
# f1: oscillatory, cos(Σ i x_i)
# ---------------------------------------------------------------------------
def _osc_reference(coeffs: np.ndarray, phase: float = 0.0) -> float:
    """Re[e^{i·phase} Π (e^{i a_k} − 1)/(i a_k)] — the exact cosine integral."""
    prod = complex(np.cos(phase), np.sin(phase))
    for a in coeffs:
        prod *= (np.exp(1j * a) - 1.0) / (1j * a)
    return float(prod.real)


def f1_oscillatory(ndim: int = 8) -> Integrand:
    """f1(x) = cos(Σ_{i=1..n} i·x_i).  Oscillates in sign (Lemma 3.1 fails),
    the case where §3.5.1 says relative-error filtering must be disabled."""
    coeffs = np.arange(1.0, ndim + 1.0)

    def fn(x: np.ndarray) -> np.ndarray:
        return np.cos(x @ coeffs)

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D f1",
        reference=_osc_reference(coeffs),
        flops_per_eval=2.0 * ndim + 20.0,
        sign_definite=False,
        notes="oscillatory; rel-err filtering must be off (paper §3.5.1)",
    )


# ---------------------------------------------------------------------------
# f2: product peak, Π (1/50² + (x_i − 1/2)²)^-1
# ---------------------------------------------------------------------------
def f2_product_peak(ndim: int = 6) -> Integrand:
    """f2(x) = Π_{i=1..n} (50^-2 + (x_i − 1/2)²)^-1."""
    a = 1.0 / 50.0
    factor_1d = (2.0 / a) * atan(0.5 / a)

    def fn(x: np.ndarray) -> np.ndarray:
        return np.prod(1.0 / (a * a + (x - 0.5) ** 2), axis=1)

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D f2",
        reference=factor_1d**ndim,
        flops_per_eval=5.0 * ndim,
        sign_definite=True,
    )


# ---------------------------------------------------------------------------
# f3: corner peak, (1 + Σ i x_i)^{-n-1}
# ---------------------------------------------------------------------------
@lru_cache(maxsize=None)
def _corner_reference_exact(ndim: int) -> float:
    """Exact (1/(n! Π a_i)) Σ_{S⊆[n]} (−1)^{|S|} / (1 + Σ_{i∈S} a_i).

    With a_i = i the alternating sum cancels catastrophically in floats for
    n = 8 (the result is ~1e-10 against O(1) terms), so it is evaluated in
    exact rational arithmetic.
    """
    coeffs = list(range(1, ndim + 1))
    total = Fraction(0)
    for r in range(ndim + 1):
        for subset in combinations(coeffs, r):
            total += Fraction((-1) ** r, 1 + sum(subset))
    denom = Fraction(1)
    for i in range(1, ndim + 1):
        denom *= Fraction(i)  # n!
    for a in coeffs:
        denom *= Fraction(a)  # Π a_i
    return float(total / denom)


def f3_corner_peak(ndim: int = 8) -> Integrand:
    """f3(x) = (1 + Σ_{i=1..n} i·x_i)^{-n-1}."""
    coeffs = np.arange(1.0, ndim + 1.0)
    power = -(ndim + 1.0)

    def fn(x: np.ndarray) -> np.ndarray:
        return np.power(1.0 + x @ coeffs, power)

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D f3",
        reference=_corner_reference_exact(ndim),
        flops_per_eval=2.0 * ndim + 40.0,
        sign_definite=True,
        notes="corner peak; reference via exact inclusion-exclusion",
    )


# ---------------------------------------------------------------------------
# f4: Gaussian, exp(−625 Σ (x_i − 1/2)²)
# ---------------------------------------------------------------------------
def f4_gaussian(ndim: int = 8) -> Integrand:
    """f4(x) = exp(−625 Σ (x_i − 1/2)²), an extremely narrow Gaussian."""
    factor_1d = sqrt(pi) / 25.0 * erf(12.5)

    def fn(x: np.ndarray) -> np.ndarray:
        return np.exp(-625.0 * np.sum((x - 0.5) ** 2, axis=1))

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D f4",
        reference=factor_1d**ndim,
        flops_per_eval=4.0 * ndim + 25.0,
        sign_definite=True,
    )


# ---------------------------------------------------------------------------
# f5: C0 kink, exp(−10 Σ |x_i − 1/2|)
# ---------------------------------------------------------------------------
def f5_c0(ndim: int = 8) -> Integrand:
    """f5(x) = exp(−10 Σ |x_i − 1/2|), non-differentiable along midplanes."""
    factor_1d = (1.0 - exp(-5.0)) / 5.0

    def fn(x: np.ndarray) -> np.ndarray:
        return np.exp(-10.0 * np.sum(np.abs(x - 0.5), axis=1))

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D f5",
        reference=factor_1d**ndim,
        flops_per_eval=4.0 * ndim + 25.0,
        sign_definite=True,
    )


# ---------------------------------------------------------------------------
# f6: discontinuous, exp(Σ (i+4) x_i) on Π [0, (3+i)/10), else 0
# ---------------------------------------------------------------------------
def f6_discontinuous(ndim: int = 6) -> Integrand:
    """f6(x) = exp(Σ_{i=1..n} (i+4)·x_i) if every x_i < (3+i)/10, else 0."""
    idx = np.arange(1.0, ndim + 1.0)
    rates = idx + 4.0
    cuts = (3.0 + idx) / 10.0
    ref = 1.0
    for i in range(ndim):
        ref *= (exp(rates[i] * cuts[i]) - 1.0) / rates[i]

    def fn(x: np.ndarray) -> np.ndarray:
        inside = np.all(x < cuts[None, :], axis=1)
        out = np.zeros(x.shape[0])
        if np.any(inside):
            out[inside] = np.exp(x[inside] @ rates)
        return out

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D f6",
        reference=ref,
        flops_per_eval=4.0 * ndim + 25.0,
        sign_definite=True,
        notes="discontinuous on an axis-aligned corner box",
    )


# ---------------------------------------------------------------------------
# f7/f8: box integrals (Σ x_i²)^{11} and (Σ x_i²)^{15/2}
# ---------------------------------------------------------------------------
def f7_box11(ndim: int = 8) -> Integrand:
    """f7(x) = (Σ x_i²)^{11}; reference is the exact rational moment."""

    def fn(x: np.ndarray) -> np.ndarray:
        return np.sum(x * x, axis=1) ** 11

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D f7",
        reference=float(box_moment_exact(ndim, 11)),
        flops_per_eval=2.0 * ndim + 10.0,
        sign_definite=True,
    )


@lru_cache(maxsize=None)
def _b15(ndim: int) -> float:
    return box_integral(ndim, 15, n_nodes=64)


def f8_box15(ndim: int = 8) -> Integrand:
    """f8(x) = (Σ x_i²)^{15/2}; reference via the convolution pipeline
    (validated against exact even moments to ~1e-12)."""
    if ndim not in (2, 4, 8):
        raise ValueError("f8 reference available for ndim in {2, 4, 8}")

    def fn(x: np.ndarray) -> np.ndarray:
        return np.sum(x * x, axis=1) ** 7.5

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"{ndim}D f8",
        reference=_b15(ndim),
        flops_per_eval=2.0 * ndim + 30.0,
        sign_definite=True,
        notes="odd box integral; semi-analytic reference (see repro.reference)",
    )


# ---------------------------------------------------------------------------
def paper_suite() -> List[Integrand]:
    """The integrand/dimension combinations the paper's plots use (§4.1):
    f1, f3, f4, f5, f7, f8 in 8D, f4 in 5D, f6 in 6D, f3 in 3D."""
    return [
        f1_oscillatory(8),
        f3_corner_peak(8),
        f4_gaussian(8),
        f5_c0(8),
        f7_box11(8),
        f8_box15(8),
        f4_gaussian(5),
        f6_discontinuous(6),
        f3_corner_peak(3),
    ]
