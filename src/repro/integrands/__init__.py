"""Test integrands: the paper's f1–f8 plus the Genz (1984) families.

The paper's accuracy methodology (§4.2) fixes the parameters of the Genz
test families so analytic values exist, enabling *true* relative-error
measurements rather than trusting the integrators' own error estimates.
This package provides exactly that:

* :mod:`~repro.integrands.base` — the :class:`Integrand` wrapper carrying
  the batch callable plus metadata (reference value, flop cost for the
  device model, sign-definiteness for the rel-err filtering flag).
* :mod:`~repro.integrands.paper` — f1–f8 with the paper's fixed parameters
  and closed-form (or semi-analytic, for the f8 box integral) references.
* :mod:`~repro.integrands.genz` — the six Genz families with randomized
  parameters and per-family difficulty normalisation, all with closed-form
  references, for broader testing.
"""

from repro.integrands.base import Integrand, ScalarIntegrand
from repro.integrands.paper import (
    f1_oscillatory,
    f2_product_peak,
    f3_corner_peak,
    f4_gaussian,
    f5_c0,
    f6_discontinuous,
    f7_box11,
    f8_box15,
    paper_suite,
)
from repro.integrands.genz import GenzFamily, make_genz
from repro.integrands.catalog import canonical_spec, named_integrand

__all__ = [
    "canonical_spec",
    "named_integrand",
    "Integrand",
    "ScalarIntegrand",
    "f1_oscillatory",
    "f2_product_peak",
    "f3_corner_peak",
    "f4_gaussian",
    "f5_c0",
    "f6_discontinuous",
    "f7_box11",
    "f8_box15",
    "paper_suite",
    "GenzFamily",
    "make_genz",
]
