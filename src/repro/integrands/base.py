"""Integrand wrapper types.

Integrators in this package accept any batch callable ``(N, n) -> (N,)``;
:class:`Integrand` adds the metadata the benchmark harnesses and the device
cost model consume.  :class:`ScalarIntegrand` adapts plain scalar functions
(convenient, but orders of magnitude slower — the vectorized path is the
first-class citizen, per the HPC guides).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np


@dataclass
class Integrand:
    """A batch integrand plus benchmark metadata.

    Attributes
    ----------
    fn:
        Batch callable mapping ``(N, ndim)`` float64 points to ``(N,)``
        values.
    ndim:
        Dimensionality the callable expects.
    name:
        Identifier used in benchmark tables (e.g. ``"8D f7"``).
    reference:
        Analytic (or semi-analytic) value of the integral over the unit
        cube, when known; enables true-relative-error reporting.
    flops_per_eval:
        Approximate floating-point work of one function evaluation, read by
        the device cost model.
    sign_definite:
        Whether the integrand keeps one sign over the domain — the
        precondition of Lemma 3.1.  Harnesses use it to set PAGANI's
        ``relerr_filtering`` flag the way §3.5.1 prescribes.
    """

    fn: Callable[[np.ndarray], np.ndarray]
    ndim: int
    name: str = ""
    reference: Optional[float] = None
    flops_per_eval: float = 50.0
    sign_definite: bool = True
    #: free-form notes (e.g. provenance of the reference value)
    notes: str = field(default="", repr=False)
    #: canonical catalogue spec (e.g. ``"8d-f7"``) when this integrand
    #: came from :func:`repro.integrands.catalog.named_integrand`.  The
    #: process backend ships this string to worker processes, which
    #: rebuild the (deterministic) integrand locally; integrands without
    #: a spec fall back to pickling the callable.
    spec: Optional[str] = field(default=None, repr=False)

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.fn(points)

    def with_name(self, name: str) -> "Integrand":
        return Integrand(
            fn=self.fn,
            ndim=self.ndim,
            name=name,
            reference=self.reference,
            flops_per_eval=self.flops_per_eval,
            sign_definite=self.sign_definite,
            notes=self.notes,
            spec=self.spec,
        )


class ScalarIntegrand:
    """Adapter exposing a scalar ``f(x_vec) -> float`` as a batch callable.

    Evaluation loops in Python; use only for convenience or correctness
    checks, never in benchmarks.
    """

    def __init__(self, fn: Callable[[np.ndarray], float], flops_per_eval: float = 50.0):
        self._fn = fn
        self.flops_per_eval = flops_per_eval

    def __call__(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(points)
        out = np.empty(points.shape[0])
        for i in range(points.shape[0]):
            out[i] = self._fn(points[i])
        return out
