"""Domain transforms: integrate beyond the finite box.

The cubature substrate works on axis-aligned boxes.  Real applications (the
paper's motivating finance/physics workloads included) integrate over
infinite or semi-infinite domains or against Gaussian measures.  These
helpers produce new batch integrands over the unit cube with the Jacobian
folded in, so every integrator in the package applies unchanged:

* :func:`semi_infinite` — ``[0, ∞)^n`` via ``x = t/(1−t)``;
* :func:`infinite` — ``(−∞, ∞)^n`` via ``x = (2t−1)/(t(1−t))``-style
  rational stretching (one of the classic choices; tails must decay);
* :func:`gaussian_measure` — ``E_{z~N(μ, LLᵀ)}[f(z)]`` via the
  inverse-normal map (the standard quasi-random finance construction).

Each transform returns an :class:`~repro.integrands.base.Integrand` whose
metadata carries the extra per-point flop cost so the device model stays
honest.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np
from scipy.special import ndtri

from repro.integrands.base import Integrand

#: clip points one ulp inside the open cube before singular maps
_EPS = 1e-15


def _as_integrand(f, ndim: int) -> Integrand:
    if isinstance(f, Integrand):
        return f
    return Integrand(fn=f, ndim=ndim)


def semi_infinite(
    f: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    scale: float | Sequence[float] = 1.0,
) -> Integrand:
    """Map ``∫_{[0,∞)^n} f`` onto the unit cube with ``x = s·t/(1−t)``.

    ``scale`` (per-axis or scalar) tunes where the map concentrates points;
    pick it near the integrand's characteristic length.
    """
    base = _as_integrand(f, ndim)
    s = np.broadcast_to(np.asarray(scale, dtype=np.float64), (ndim,)).copy()
    if np.any(s <= 0):
        raise ValueError("scale must be positive")

    def fn(t: np.ndarray) -> np.ndarray:
        t = np.clip(t, _EPS, 1.0 - _EPS)
        one_minus = 1.0 - t
        x = s[None, :] * t / one_minus
        jac = np.prod(s[None, :] / one_minus**2, axis=1)
        return base.fn(x) * jac

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"semi_infinite({base.name})" if base.name else "semi_infinite",
        reference=base.reference,
        flops_per_eval=base.flops_per_eval + 6.0 * ndim,
        sign_definite=base.sign_definite,
    )


def infinite(
    f: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    scale: float | Sequence[float] = 1.0,
) -> Integrand:
    """Map ``∫_{R^n} f`` onto the unit cube with ``x = s·(2t−1)/(t(1−t))``.

    Requires integrable tail decay (faster than ``|x|^{-2}`` per axis).
    """
    base = _as_integrand(f, ndim)
    s = np.broadcast_to(np.asarray(scale, dtype=np.float64), (ndim,)).copy()
    if np.any(s <= 0):
        raise ValueError("scale must be positive")

    def fn(t: np.ndarray) -> np.ndarray:
        t = np.clip(t, _EPS, 1.0 - _EPS)
        w = t * (1.0 - t)
        x = s[None, :] * (2.0 * t - 1.0) / w
        # dx/dt = s * (2w + (2t-1)^2) / w^2  (always positive)
        jac = np.prod(
            s[None, :] * (2.0 * w + (2.0 * t - 1.0) ** 2) / (w * w), axis=1
        )
        return base.fn(x) * jac

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"infinite({base.name})" if base.name else "infinite",
        reference=base.reference,
        flops_per_eval=base.flops_per_eval + 10.0 * ndim,
        sign_definite=base.sign_definite,
    )


def gaussian_measure(
    f: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    mean: Optional[Sequence[float]] = None,
    chol: Optional[np.ndarray] = None,
) -> Integrand:
    """Expectation against ``N(mean, L Lᵀ)`` as a unit-cube integral.

    ``∫ f(z) φ(z) dz = ∫_{[0,1]^n} f(mean + L·Φ⁻¹(u)) du`` — the standard
    inverse-CDF construction; ``chol`` defaults to the identity.
    """
    base = _as_integrand(f, ndim)
    mu = np.zeros(ndim) if mean is None else np.asarray(mean, dtype=np.float64)
    if mu.shape != (ndim,):
        raise ValueError(f"mean must have shape ({ndim},)")
    if chol is None:
        L = np.eye(ndim)
    else:
        L = np.asarray(chol, dtype=np.float64)
        if L.shape != (ndim, ndim):
            raise ValueError(f"chol must have shape ({ndim}, {ndim})")

    def fn(u: np.ndarray) -> np.ndarray:
        z = ndtri(np.clip(u, _EPS, 1.0 - _EPS))
        return base.fn(mu[None, :] + z @ L.T)

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"gaussian_measure({base.name})" if base.name else "gaussian_measure",
        reference=base.reference,
        flops_per_eval=base.flops_per_eval + 2.0 * ndim * ndim + 30.0 * ndim,
        sign_definite=base.sign_definite,
    )
