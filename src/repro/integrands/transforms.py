"""Domain transforms: integrate beyond the finite box.

The cubature substrate works on axis-aligned boxes.  Real applications (the
paper's motivating finance/physics workloads included) integrate over
infinite or semi-infinite domains or against Gaussian measures.  These
helpers produce new batch integrands over the unit cube with the Jacobian
folded in, so every integrator in the package applies unchanged:

* :func:`semi_infinite` — ``[0, ∞)^n`` via ``x = t/(1−t)``;
* :func:`infinite` — ``(−∞, ∞)^n`` via ``x = (2t−1)/(t(1−t))``-style
  rational stretching (one of the classic choices; tails must decay);
* :func:`gaussian_measure` — ``E_{z~N(μ, LLᵀ)}[f(z)]`` via the
  inverse-normal map (the standard quasi-random finance construction).

Each transform returns an :class:`~repro.integrands.base.Integrand` whose
metadata carries the extra per-point flop cost so the device model stays
honest.  When the wrapped integrand is itself a catalogue member (carries
a ``spec``) and the transform parameters are expressible in the spec
grammar, the result carries the canonical transform spec too — making it
cacheable in ``ResultCache``/``TieredResultCache`` and shippable to
process-backend workers exactly like a plain catalogue integrand.  A
transformed integrand's ``reference`` is ``None`` unless the caller
supplies one: the base's unit-cube reference does not survive a change
of domain.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np
from scipy.special import ndtri

from repro.integrands.base import Integrand

#: clip points one ulp inside the open cube before singular maps
_EPS = 1e-15

ParamLike = Union[float, Sequence[float], np.ndarray]


def _as_integrand(f, ndim: int) -> Integrand:
    if isinstance(f, Integrand):
        return f
    return Integrand(fn=f, ndim=ndim)


def _transform_spec(
    family: str, base: Integrand, params: Dict[str, ParamLike]
) -> Optional[str]:
    """The canonical spec of the transformed integrand, or ``None``.

    ``None`` when the base is an anonymous closure (no ``spec``) or the
    parameters fall outside the grammar (e.g. a non-diagonal Cholesky
    factor) — such integrands still work everywhere, but execute
    in-process and uncached.
    """
    if base.spec is None:
        return None
    from repro.integrands.catalog import canonical_spec  # lazy: avoid cycle

    args = [base.spec]
    for name, value in params.items():
        arr = np.atleast_1d(np.asarray(value, dtype=np.float64))
        rendered = (
            repr(float(arr[0]))
            if arr.size == 1
            else "[" + ",".join(repr(float(v)) for v in arr) + "]"
        )
        args.append(f"{name}={rendered}")
    try:
        return canonical_spec(f"{family}({', '.join(args)})")
    except ValueError:
        return None


def semi_infinite(
    f: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    scale: float | Sequence[float] = 1.0,
    reference: Optional[float] = None,
) -> Integrand:
    """Map ``∫_{[0,∞)^n} f`` onto the unit cube with ``x = s·t/(1−t)``.

    ``scale`` (per-axis or scalar) tunes where the map concentrates points;
    pick it near the integrand's characteristic length.
    """
    base = _as_integrand(f, ndim)
    s = np.broadcast_to(np.asarray(scale, dtype=np.float64), (ndim,)).copy()
    if np.any(s <= 0):
        raise ValueError("scale must be positive")

    def fn(t: np.ndarray) -> np.ndarray:
        t = np.clip(t, _EPS, 1.0 - _EPS)
        one_minus = 1.0 - t
        x = s[None, :] * t / one_minus
        jac = np.prod(s[None, :] / one_minus**2, axis=1)
        return base.fn(x) * jac

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"semi_infinite({base.name})" if base.name else "semi_infinite",
        reference=reference,
        flops_per_eval=base.flops_per_eval + 6.0 * ndim,
        sign_definite=base.sign_definite,
        spec=_transform_spec("semi_infinite", base, {"scale": s}),
    )


def infinite(
    f: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    scale: float | Sequence[float] = 1.0,
    reference: Optional[float] = None,
) -> Integrand:
    """Map ``∫_{R^n} f`` onto the unit cube with ``x = s·(2t−1)/(t(1−t))``.

    Requires integrable tail decay (faster than ``|x|^{-2}`` per axis).
    """
    base = _as_integrand(f, ndim)
    s = np.broadcast_to(np.asarray(scale, dtype=np.float64), (ndim,)).copy()
    if np.any(s <= 0):
        raise ValueError("scale must be positive")

    def fn(t: np.ndarray) -> np.ndarray:
        t = np.clip(t, _EPS, 1.0 - _EPS)
        w = t * (1.0 - t)
        x = s[None, :] * (2.0 * t - 1.0) / w
        # dx/dt = s * (2w + (2t-1)^2) / w^2  (always positive)
        jac = np.prod(
            s[None, :] * (2.0 * w + (2.0 * t - 1.0) ** 2) / (w * w), axis=1
        )
        return base.fn(x) * jac

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"infinite({base.name})" if base.name else "infinite",
        reference=reference,
        flops_per_eval=base.flops_per_eval + 10.0 * ndim,
        sign_definite=base.sign_definite,
        spec=_transform_spec("infinite", base, {"scale": s}),
    )


def gaussian_measure(
    f: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    mean: Optional[Sequence[float]] = None,
    chol: Optional[np.ndarray] = None,
    reference: Optional[float] = None,
) -> Integrand:
    """Expectation against ``N(mean, L Lᵀ)`` as a unit-cube integral.

    ``∫ f(z) φ(z) dz = ∫_{[0,1]^n} f(mean + L·Φ⁻¹(u)) du`` — the standard
    inverse-CDF construction; ``chol`` defaults to the identity.
    """
    base = _as_integrand(f, ndim)
    mu = np.zeros(ndim) if mean is None else np.asarray(mean, dtype=np.float64)
    if mu.shape != (ndim,):
        raise ValueError(f"mean must have shape ({ndim},)")
    if chol is None:
        L = np.eye(ndim)
    else:
        L = np.asarray(chol, dtype=np.float64)
        if L.shape != (ndim, ndim):
            raise ValueError(f"chol must have shape ({ndim}, {ndim})")

    def fn(u: np.ndarray) -> np.ndarray:
        z = ndtri(np.clip(u, _EPS, 1.0 - _EPS))
        return base.fn(mu[None, :] + z @ L.T)

    # only diagonal covariances are expressible in the spec grammar
    spec_params: Optional[Dict[str, ParamLike]] = {"mean": mu}
    if np.count_nonzero(L - np.diag(np.diagonal(L))) == 0:
        spec_params["sigma"] = np.diagonal(L)
    else:
        spec_params = None

    return Integrand(
        fn=fn,
        ndim=ndim,
        name=f"gaussian_measure({base.name})" if base.name else "gaussian_measure",
        reference=reference,
        flops_per_eval=base.flops_per_eval + 2.0 * ndim * ndim + 30.0 * ndim,
        sign_definite=base.sign_definite,
        spec=(
            _transform_spec("gaussian_measure", base, spec_params)
            if spec_params is not None
            else None
        ),
    )
