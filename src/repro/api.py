"""Top-level convenience API.

Most users want one call::

    from repro import integrate
    result = integrate(f, ndim=5, rel_tol=1e-6)            # PAGANI
    result = integrate(f, ndim=5, method="cuhre")          # baseline

Method-specific configuration objects remain available for full control
(:class:`~repro.core.PaganiConfig` etc.); keyword arguments here cover the
common knobs.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.backends import BackendSpec
from repro.baselines.cuhre import CuhreConfig, CuhreIntegrator
from repro.baselines.qmc import QmcConfig, QmcIntegrator
from repro.baselines.two_phase import TwoPhaseConfig, TwoPhaseIntegrator
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.core.result import IntegrationResult
from repro.errors import ConfigurationError
from repro.gpu.device import VirtualDevice

_METHODS = ("pagani", "cuhre", "two_phase", "qmc")


def integrate(
    integrand: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    bounds: Optional[Sequence[Sequence[float]]] = None,
    rel_tol: float = 1e-3,
    abs_tol: float = 1e-20,
    method: str = "pagani",
    device: Optional[VirtualDevice] = None,
    relerr_filtering: Optional[bool] = None,
    max_eval: Optional[int] = None,
    max_iterations: Optional[int] = None,
    backend: BackendSpec = None,
) -> IntegrationResult:
    """Integrate a batch callable over an axis-aligned box.

    Parameters
    ----------
    integrand:
        Batch callable ``(N, ndim) -> (N,)`` (wrap scalar functions with
        :class:`~repro.integrands.ScalarIntegrand`).
    ndim:
        Dimensionality, 2..20 for the cubature methods.
    bounds:
        ``(ndim, 2)`` low/high pairs; unit cube by default.
    rel_tol / abs_tol:
        Termination tolerances (paper defaults: τ_abs = 1e-20 so τ_rel
        governs).
    method:
        ``"pagani"`` (default), ``"cuhre"``, ``"two_phase"`` or ``"qmc"``.
    device:
        Virtual device for the GPU methods (memory-scaled V100 by default).
    relerr_filtering:
        The §3.5.1 user flag; set False for integrands that oscillate in
        sign.  When None, it is read from the integrand's ``sign_definite``
        attribute if present.
    max_eval:
        Evaluation budget for cuhre/qmc.
    max_iterations:
        Iteration cap for the breadth-first methods.
    backend:
        Execution backend for the PAGANI hot path: ``"numpy"`` (default),
        ``"threaded"`` / ``"threaded:<N>"``, ``"cupy"``, or an
        :class:`~repro.backends.base.ArrayBackend` instance.  Host
        backends produce results identical to the NumPy reference; see
        :mod:`repro.backends`.  Only ``method="pagani"`` accepts a
        non-default backend.

    Returns
    -------
    IntegrationResult
        With ``true_value`` filled in when the integrand carries a
        ``reference`` attribute.
    """
    if method not in _METHODS:
        raise ConfigurationError(f"unknown method {method!r}; pick one of {_METHODS}")
    if relerr_filtering is None:
        relerr_filtering = bool(getattr(integrand, "sign_definite", True))
    if backend is not None and backend != "numpy" and method != "pagani":
        raise ConfigurationError(
            f"backend selection applies to method='pagani' only (got "
            f"method={method!r}, backend={backend!r})"
        )

    if method == "pagani":
        cfg = PaganiConfig(
            rel_tol=rel_tol, abs_tol=abs_tol, relerr_filtering=relerr_filtering,
            backend=backend if backend is not None else "numpy",
        )
        if max_iterations is not None:
            cfg.max_iterations = max_iterations
        result = PaganiIntegrator(cfg, device=device).integrate(
            integrand, ndim, bounds=bounds
        )
    elif method == "cuhre":
        cfg = CuhreConfig(rel_tol=rel_tol, abs_tol=abs_tol)
        if max_eval is not None:
            cfg.max_eval = max_eval
        result = CuhreIntegrator(cfg).integrate(integrand, ndim, bounds=bounds)
    elif method == "two_phase":
        cfg = TwoPhaseConfig(
            rel_tol=rel_tol, abs_tol=abs_tol, relerr_filtering=relerr_filtering
        )
        if max_iterations is not None:
            cfg.max_phase1_iterations = max_iterations
        result = TwoPhaseIntegrator(cfg, device=device).integrate(
            integrand, ndim, bounds=bounds
        )
    else:  # qmc
        cfg = QmcConfig(rel_tol=rel_tol, abs_tol=abs_tol)
        if max_eval is not None:
            cfg.max_eval = max_eval
        result = QmcIntegrator(cfg, device=device).integrate(
            integrand, ndim, bounds=bounds
        )

    ref = getattr(integrand, "reference", None)
    if ref is not None:
        result.true_value = float(ref)
    return result
