"""Top-level convenience API.

Most users want one call::

    from repro import integrate
    result = integrate(f, ndim=5, rel_tol=1e-6)            # PAGANI
    result = integrate(f, ndim=5, method="cuhre")          # baseline

Many independent integrals go through the batched entry point, which
interleaves their PAGANI iterations over one shared backend::

    from repro import integrate_many
    results = integrate_many([f, g, h], rel_tol=1e-6, backend="threaded")

A *stream* of requests — with priorities, cancellation and a result
cache — goes through the service layer (:mod:`repro.service`); the
one-shot convenience for a fixed job list is :func:`serve_jobs`::

    from repro import serve_jobs
    from repro.service import JobSpec
    handles = serve_jobs([
        JobSpec("5D-f4", rel_tol=1e-4, priority=3),
        JobSpec("8D-f7", rel_tol=1e-3),
    ])
    results = [h.result() for h in handles]

Method-specific configuration objects remain available for full control
(:class:`~repro.core.PaganiConfig` etc.); keyword arguments here cover the
common knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import BackendLike, get_backend
from repro.baselines.cuhre import CuhreConfig, CuhreIntegrator
from repro.baselines.qmc import QmcConfig, QmcIntegrator
from repro.baselines.two_phase import TwoPhaseConfig, TwoPhaseIntegrator
from repro.baselines.vegas import VegasConfig, VegasIntegrator
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.core.result import IntegrationResult
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice

_METHODS = ("pagani", "cuhre", "two_phase", "qmc", "vegas")


@dataclass(frozen=True)
class IntegrationRequest:
    """The canonical options of one integration request.

    Every request surface reduces to (or is built from) this one frozen
    value: :func:`integrate` keyword arguments construct one internally,
    :func:`integrate_many` builds each member's configuration from one,
    and :class:`repro.service.JobSpec` converts to/from one
    (``JobSpec.from_request`` / ``JobSpec.to_request``) — so option
    names, defaults and validation cannot drift between the three
    surfaces, and a request that produced a given cache fingerprint via
    one surface produces the same fingerprint via any other.

    Fields
    ------
    bounds:
        ``(ndim, 2)`` low/high pairs (``None`` = unit cube), canonicalised
        to nested tuples so requests hash and compare as values.
    rel_tol / abs_tol:
        Termination tolerances (paper defaults: ``abs_tol = 1e-20`` so
        the relative condition governs).
    backend:
        Execution backend spec (``None`` = reference NumPy, ``"auto"`` =
        route per call); see :mod:`repro.backends`.
    max_iterations:
        Iteration cap for the breadth-first methods (``None`` keeps the
        method default).
    relerr_filtering:
        §3.5.1 flag; ``None`` reads the integrand's ``sign_definite``
        attribute at run time.
    method:
        ``"pagani"`` (default) or a baseline (``"cuhre"``,
        ``"two_phase"``, ``"qmc"``, ``"vegas"``).
    escalation:
        ``None`` (default) disables baseline escalation.  Anything else
        is parsed by
        :meth:`repro.service.escalation.EscalationPolicy.parse` — e.g.
        ``"default"`` or an explicit ladder ``"two_phase>vegas>qmc"`` —
        and canonicalised to the policy's descriptor string, so equal
        policies hash/compare equally.  When set (``method="pagani"``
        only), a run that ends in ``MEMORY_EXHAUSTED`` / the iteration
        watchdog is re-run down the ladder with the full per-stage
        history attached to the result (see ``result.escalation``).

    Examples
    --------
    >>> from repro.api import IntegrationRequest
    >>> req = IntegrationRequest(rel_tol=1e-4, backend="threaded")
    >>> req == IntegrationRequest(rel_tol=1e-4, backend="threaded")
    True
    >>> IntegrationRequest(bounds=[(0, 2), (0, 1)]).bounds
    ((0.0, 2.0), (0.0, 1.0))
    """

    bounds: Optional[Sequence[Sequence[float]]] = None
    rel_tol: float = 1e-3
    abs_tol: float = 1e-20
    backend: BackendLike = None
    max_iterations: Optional[int] = None
    relerr_filtering: Optional[bool] = None
    method: str = "pagani"
    escalation: Optional[str] = None

    def __post_init__(self) -> None:
        # Canonicalise the escalation field to the policy's descriptor
        # string (value semantics: two spellings of the same ladder
        # compare and fingerprint equally).  Malformed values raise here,
        # at construction, like a malformed ladder in validate() would.
        if self.escalation is not None:
            from repro.service.escalation import EscalationPolicy

            policy = EscalationPolicy.parse(self.escalation)
            object.__setattr__(
                self, "escalation", policy.describe() if policy else None
            )
        # Canonicalise well-formed bounds to nested float tuples (value
        # semantics for a frozen dataclass); malformed bounds are left
        # untouched so the integrator's shape check raises its usual
        # ConfigurationError with the ndim in hand.
        if self.bounds is not None:
            try:
                arr = np.asarray(self.bounds, dtype=np.float64)
            except (TypeError, ValueError):
                arr = None
            if arr is not None and arr.ndim == 2 and arr.shape[1] == 2:
                object.__setattr__(
                    self,
                    "bounds",
                    tuple((float(lo), float(hi)) for lo, hi in arr),
                )

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on bad options."""
        if self.method not in _METHODS:
            raise ConfigurationError(
                f"unknown method {self.method!r}; pick one of {_METHODS}"
            )
        if not (0.0 < self.rel_tol < 1.0):
            raise ConfigurationError(
                f"rel_tol must be in (0, 1), got {self.rel_tol}"
            )
        if self.abs_tol < 0.0:
            raise ConfigurationError("abs_tol must be non-negative")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if self.escalation is not None and self.method != "pagani":
            raise ConfigurationError(
                "escalation re-runs a failed PAGANI job on the baseline "
                f"ladder; it does not apply to method={self.method!r}"
            )

    # ------------------------------------------------------------------
    def resolve_filtering(self, integrand: Optional[Callable] = None) -> bool:
        """The effective §3.5.1 flag for ``integrand`` (see field doc)."""
        if self.relerr_filtering is None:
            return bool(getattr(integrand, "sign_definite", True))
        return bool(self.relerr_filtering)

    def to_pagani_config(
        self,
        integrand: Optional[Callable] = None,
        *,
        backend: BackendLike = None,
        chunk_budget: Optional[int] = None,
    ) -> PaganiConfig:
        """Materialise a :class:`~repro.core.PaganiConfig` for this request.

        ``backend`` overrides the request's backend (the routed/shared
        instance callers already resolved); ``chunk_budget`` overrides
        the reference evaluate grain (the batch/service layers pass the
        backend's preferred fused grain).
        """
        if backend is None:
            backend = self.backend if self.backend is not None else "numpy"
        cfg = PaganiConfig(
            rel_tol=self.rel_tol,
            abs_tol=self.abs_tol,
            relerr_filtering=self.resolve_filtering(integrand),
            backend=backend,
        )
        if chunk_budget is not None:
            cfg.chunk_budget = chunk_budget
        if self.max_iterations is not None:
            cfg.max_iterations = self.max_iterations
        return cfg


def integrate_request(
    integrand: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    request: IntegrationRequest,
    *,
    device: Optional[VirtualDevice] = None,
    max_eval: Optional[int] = None,
) -> IntegrationResult:
    """Integrate under the canonical :class:`IntegrationRequest` options.

    The unified core that :func:`integrate`'s keyword shim delegates to;
    ``device`` and ``max_eval`` stay out of the request because they are
    execution environment / baseline-budget concerns, not part of the
    cacheable request identity.
    """
    request.validate()
    method = request.method
    if (
        request.backend is not None
        and request.backend != "numpy"
        and method != "pagani"
    ):
        raise ConfigurationError(
            f"backend selection applies to method='pagani' only (got "
            f"method={method!r}, backend={request.backend!r})"
        )

    if method == "pagani":
        policy = None
        if request.escalation is not None:
            from repro.service.escalation import EscalationPolicy

            policy = EscalationPolicy.parse(request.escalation)
        router = None
        backend = request.backend
        if isinstance(backend, str) and backend == "auto":
            from repro.backends.routing import shared_router

            router = shared_router()
            backend = router.decide(
                ndim=ndim, rel_tol=request.rel_tol
            ).backend
        cfg = request.to_pagani_config(integrand, backend=backend)
        if policy is not None and request.max_iterations is None:
            # the stall watchdog: bound the PAGANI attempt so a
            # non-converging run reaches the ladder instead of burning
            # the full default iteration budget
            cfg.max_iterations = min(
                cfg.max_iterations, policy.watchdog_iterations
            )
        result = PaganiIntegrator(cfg, device=device).integrate(
            integrand, ndim, bounds=request.bounds
        )
        if router is not None:
            router.observe(
                backend, result.neval, getattr(result, "wall_seconds", 0.0) or 0.0
            )
        if policy is not None and policy.should_escalate(result):
            result = policy.apply(
                integrand, ndim, request, result, device=device
            )
    elif method == "cuhre":
        cfg = CuhreConfig(rel_tol=request.rel_tol, abs_tol=request.abs_tol)
        if max_eval is not None:
            cfg.max_eval = max_eval
        result = CuhreIntegrator(cfg).integrate(
            integrand, ndim, bounds=request.bounds
        )
    elif method == "two_phase":
        cfg = TwoPhaseConfig(
            rel_tol=request.rel_tol,
            abs_tol=request.abs_tol,
            relerr_filtering=request.resolve_filtering(integrand),
        )
        if request.max_iterations is not None:
            cfg.max_phase1_iterations = request.max_iterations
        result = TwoPhaseIntegrator(cfg, device=device).integrate(
            integrand, ndim, bounds=request.bounds
        )
    elif method == "vegas":
        cfg = VegasConfig(rel_tol=request.rel_tol, abs_tol=request.abs_tol)
        if max_eval is not None:
            cfg.max_eval = max_eval
        result = VegasIntegrator(cfg, device=device).integrate(
            integrand, ndim, bounds=request.bounds
        )
    else:  # qmc
        cfg = QmcConfig(rel_tol=request.rel_tol, abs_tol=request.abs_tol)
        if max_eval is not None:
            cfg.max_eval = max_eval
        result = QmcIntegrator(cfg, device=device).integrate(
            integrand, ndim, bounds=request.bounds
        )

    ref = getattr(integrand, "reference", None)
    if ref is not None:
        result.true_value = float(ref)
    return result


def integrate(
    integrand: Callable[[np.ndarray], np.ndarray],
    ndim: int,
    bounds: Optional[Sequence[Sequence[float]]] = None,
    rel_tol: float = 1e-3,
    abs_tol: float = 1e-20,
    method: str = "pagani",
    device: Optional[VirtualDevice] = None,
    relerr_filtering: Optional[bool] = None,
    max_eval: Optional[int] = None,
    max_iterations: Optional[int] = None,
    backend: BackendLike = None,
    escalation=None,
    request: Optional[IntegrationRequest] = None,
) -> IntegrationResult:
    """Integrate a batch callable over an axis-aligned box.

    A thin shim over :func:`integrate_request`: the keyword arguments
    below construct an :class:`IntegrationRequest` (pass ``request=`` to
    supply one directly, in which case it wins wholesale over the
    per-option keywords).

    Parameters
    ----------
    integrand:
        Batch callable ``(N, ndim) -> (N,)`` (wrap scalar functions with
        :class:`~repro.integrands.ScalarIntegrand`).
    ndim:
        Dimensionality, 2..20 for the cubature methods.
    bounds:
        ``(ndim, 2)`` low/high pairs; unit cube by default.
    rel_tol / abs_tol:
        Termination tolerances (paper defaults: τ_abs = 1e-20 so τ_rel
        governs).
    method:
        ``"pagani"`` (default), ``"cuhre"``, ``"two_phase"``, ``"qmc"``
        or ``"vegas"``.
    device:
        Virtual device for the GPU methods (memory-scaled V100 by default).
    relerr_filtering:
        The §3.5.1 user flag; set False for integrands that oscillate in
        sign.  When None, it is read from the integrand's ``sign_definite``
        attribute if present.
    max_eval:
        Evaluation budget for cuhre/qmc.
    max_iterations:
        Iteration cap for the breadth-first methods.
    backend:
        Execution backend for the PAGANI hot path: ``"numpy"`` (default),
        ``"threaded"`` / ``"threaded:<N>"``, ``"process"`` /
        ``"process:<N>"``, ``"cupy"``, or an
        :class:`~repro.backends.base.ArrayBackend` instance.  Host
        backends produce results identical to the NumPy reference; see
        :mod:`repro.backends`.  ``"auto"`` routes this call through the
        process-wide :class:`~repro.backends.routing.BackendRouter`
        (cheapest adequate backend for the job's predicted first-sweep
        cost; the observed timing refines later decisions).  Only
        ``method="pagani"`` accepts a non-default backend.
    escalation:
        Baseline escalation policy for failed PAGANI runs — ``None``
        (off, default), ``"default"``, an explicit ladder string like
        ``"two_phase>vegas>qmc"``, or an
        :class:`~repro.service.escalation.EscalationPolicy`.  See
        :class:`IntegrationRequest`.

    Returns
    -------
    IntegrationResult
        With ``true_value`` filled in when the integrand carries a
        ``reference`` attribute.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import integrate
    >>> res = integrate(
    ...     lambda x: np.exp(-np.sum(x**2, axis=1)), ndim=3, rel_tol=1e-4,
    ... )
    >>> res.converged
    True
    >>> bool(abs(res.estimate - 0.4165384) < 1e-4)
    True

    Host backends are bit-identical to the reference, so swapping the
    execution substrate never changes the numbers:

    >>> fast = integrate(
    ...     lambda x: np.exp(-np.sum(x**2, axis=1)), ndim=3, rel_tol=1e-4,
    ...     backend="threaded",
    ... )
    >>> fast.estimate == res.estimate
    True

    ``backend="auto"`` picks the backend per job (tiny sweeps stay on
    numpy; big ones go to a process pool when the host has cores):

    >>> routed = integrate(
    ...     lambda x: np.exp(-np.sum(x**2, axis=1)), ndim=3, rel_tol=1e-4,
    ...     backend="auto",
    ... )
    >>> routed.estimate == res.estimate
    True
    """
    if request is None:
        request = IntegrationRequest(
            bounds=bounds, rel_tol=rel_tol, abs_tol=abs_tol, backend=backend,
            max_iterations=max_iterations, relerr_filtering=relerr_filtering,
            method=method, escalation=escalation,
        )
    return integrate_request(
        integrand, ndim, request, device=device, max_eval=max_eval
    )


def integrate_sweep(
    spec: str,
    rel_tol: float = 1e-3,
    abs_tol: float = 1e-20,
    backend: BackendLike = None,
    relerr_filtering: Optional[bool] = None,
    max_iterations: Optional[int] = None,
    chunk_budget: Optional[int] = None,
    request: Optional[IntegrationRequest] = None,
) -> List[Tuple[str, IntegrationResult]]:
    """Run a ``sweep:`` spec as one fused :func:`integrate_many` batch.

    A sweep spec binds one catalogue integrand to N parameter sets, e.g.
    ``"sweep:semi_infinite(3D-f4, scale=0.5;1.0;2.0)"`` — see
    :func:`repro.integrands.catalog.expand_sweep` for the grammar.  The
    members execute as one batched workload on a shared backend (their
    PAGANI iterations interleave and their evaluation chunks fuse), and
    each member carries its canonical spec, so every (spec, result) pair
    is individually cacheable and process-shippable.

    Returns the list of ``(canonical member spec, result)`` pairs in
    sweep order.

    Examples
    --------
    >>> from repro import integrate_sweep
    >>> pairs = integrate_sweep(
    ...     "sweep:gaussian_measure(2D-f4, sigma=0.5;1.0)", rel_tol=1e-3,
    ... )
    >>> [spec for spec, _ in pairs]
    ['gaussian_measure(2d-f4, sigma=0.5)', 'gaussian_measure(2d-f4)']
    >>> all(r.converged for _, r in pairs)
    True
    """
    from repro.integrands.catalog import expand_sweep, named_integrand

    members = expand_sweep(spec)
    integrands = [named_integrand(m) for m in members]
    results = integrate_many(
        integrands, rel_tol=rel_tol, abs_tol=abs_tol, backend=backend,
        relerr_filtering=relerr_filtering, max_iterations=max_iterations,
        chunk_budget=chunk_budget, request=request,
    )
    return list(zip(members, results))


def _resolve_member_bounds(
    bounds, ndims: List[int]
) -> List[Optional[np.ndarray]]:
    """Resolve the ``bounds`` argument of :func:`integrate_many`.

    Accepts ``None`` (unit cubes), a per-member sequence (``None`` entries
    allowed), or — when every member shares one dimensionality — a single
    ``(ndim, 2)`` box applied to all.
    """
    n = len(ndims)
    if bounds is None:
        return [None] * n
    # Per-member sequence (list/tuple/array): right length and every
    # entry is None or (ndim_i, 2).
    if isinstance(bounds, (list, tuple, np.ndarray)) and len(bounds) == n:
        per_member: List[Optional[np.ndarray]] = []
        ok = True
        for b, d in zip(bounds, ndims):
            if b is None:
                per_member.append(None)
                continue
            arr = np.asarray(b, dtype=np.float64)
            if arr.shape != (d, 2):
                ok = False
                break
            per_member.append(arr)
        if ok:
            return per_member
    # Single shared box.  Ragged inputs make asarray itself raise; fold
    # that into the same configuration error as a wrong shape.
    try:
        arr = np.asarray(bounds, dtype=np.float64)
    except ValueError:
        arr = None
    if arr is not None and len(set(ndims)) == 1 and arr.shape == (ndims[0], 2):
        return [arr] * n
    raise ConfigurationError(
        "bounds must be None, one (ndim, 2) box shared by same-dimension "
        f"members, or a length-{n} per-member sequence"
    )


def integrate_many(
    integrands: Sequence[Callable[[np.ndarray], np.ndarray]],
    ndim: Union[int, Sequence[int], None] = None,
    bounds=None,
    rel_tol: float = 1e-3,
    abs_tol: float = 1e-20,
    backend: BackendLike = None,
    relerr_filtering: Optional[bool] = None,
    max_iterations: Optional[int] = None,
    chunk_budget: Optional[int] = None,
    device_spec: Optional[DeviceSpec] = None,
    collect_trace: bool = True,
    return_stats: bool = False,
    on_member_error: str = "raise",
    request: Optional[IntegrationRequest] = None,
):
    """Integrate many independent integrands as one batched workload.

    Like :func:`integrate`, the per-option keywords are a thin shim over
    :class:`IntegrationRequest`: each member's
    :class:`~repro.core.PaganiConfig` is constructed from one canonical
    request (pass ``request=`` to supply the shared options directly; it
    wins wholesale over the per-option keywords it covers).

    All members run the PAGANI breadth-first loop concurrently on one
    shared execution backend: each scheduling round gives every live
    member one iteration (round-robin — no member is starved) and fuses
    their region-evaluation chunks into a single backend submission, so a
    thread pool or device sees one large batch instead of N small sweeps.
    Members that converge exit early and free their region memory while
    the rest keep iterating.  See :mod:`repro.batch` and ``docs/batch.md``.

    Parameters
    ----------
    integrands:
        Batch callables ``(N, ndim_i) -> (N,)``.  Per-member metadata is
        read from the usual optional attributes (``ndim``,
        ``sign_definite``, ``reference``, ``flops_per_eval``).
    ndim:
        One dimensionality for all members, a per-member sequence, or
        ``None`` to read each integrand's ``ndim`` attribute.
    bounds:
        ``None`` (unit cubes), a single ``(ndim, 2)`` box shared by
        same-dimension members, or a per-member sequence of boxes
        (``None`` entries mean unit cube).
    rel_tol / abs_tol / max_iterations / relerr_filtering:
        As in :func:`integrate`, applied to every member
        (``relerr_filtering=None`` reads each member's ``sign_definite``).
    backend:
        The shared execution backend.  On ``"numpy"`` the members keep
        the reference chunk decomposition and every result is
        **bit-identical** to a sequential :func:`integrate` call.  The
        ``"threaded"`` backend switches to the throughput-tuned fused
        chunk grain (``FUSED_CHUNK_BUDGET``) and is therefore held to
        machine-precision agreement rather than bit-identity — the same
        contract the ``"cupy"`` backend always has; cupy itself keeps
        the large reference chunks (a device wants big launches).
        ``"auto"`` routes the whole batch through the process-wide
        :class:`~repro.backends.routing.BackendRouter` using the summed
        first-sweep cost of all members.
    chunk_budget:
        Override the per-member chunk budget (floats per chunk).  Default:
        the backend's ``preferred_batch_chunk_budget`` when it declares
        one (threaded does), else the reference budget (numpy/cupy).
    device_spec:
        Virtual-device spec for each member (memory-scaled V100 default —
        the same device a plain :func:`integrate` call builds).
    return_stats:
        When True, return ``(results, BatchStats)`` instead of just the
        result list (scheduler rounds, fused submissions, fairness
        counters).
    on_member_error:
        What to do when a member's *integrand raises* during evaluation.
        ``"raise"`` (default): abort the whole call by re-raising
        :class:`~repro.batch.BatchMemberError` (the original exception
        chained) — healthy members' partial work is discarded.
        ``"skip"``: abandon the offender, keep batching, and return
        ``None`` in its slot.

    Returns
    -------
    list[IntegrationResult]
        One result per integrand, in input order, with ``true_value``
        filled in from each integrand's ``reference`` attribute
        (``None`` entries for members skipped under
        ``on_member_error="skip"``).  A member's ``wall_seconds`` spans
        batch start to that member's exit — elapsed shared time, not the
        member's own compute cost (members interleave on one backend);
        per-member ``sim_seconds`` remains the isolated cost model.

    Examples
    --------
    >>> from repro import integrate_many
    >>> from repro.integrands.catalog import named_integrand
    >>> members = [named_integrand("3D-f4"), named_integrand("3D-f3")]
    >>> results = integrate_many(members, rel_tol=1e-3)
    >>> [r.converged for r in results]
    [True, True]

    On the numpy backend every member is bit-identical to a sequential
    :func:`integrate` call; parallel backends (``"threaded"``,
    ``"process"``, ``"process:<N>"``) trade that for throughput under
    the machine-precision contract:

    >>> from repro import integrate
    >>> seq = integrate(members[0], 3, rel_tol=1e-3)
    >>> results[0].estimate == seq.estimate
    True
    """
    from repro.batch import BatchMemberError, BatchScheduler

    if on_member_error not in ("raise", "skip"):
        raise ConfigurationError(
            f"on_member_error must be 'raise' or 'skip', got "
            f"{on_member_error!r}"
        )
    if request is None:
        request = IntegrationRequest(
            rel_tol=rel_tol, abs_tol=abs_tol, backend=backend,
            max_iterations=max_iterations, relerr_filtering=relerr_filtering,
        )
    elif request.method != "pagani":
        raise ConfigurationError(
            "integrate_many runs the PAGANI loop; got "
            f"method={request.method!r}"
        )
    request.validate()

    integrands = list(integrands)
    n = len(integrands)
    if ndim is None:
        ndims = []
        for f in integrands:
            d = getattr(f, "ndim", None)
            if d is None:
                raise ConfigurationError(
                    "ndim=None requires every integrand to carry an 'ndim' "
                    "attribute"
                )
            ndims.append(int(d))
    elif isinstance(ndim, int):
        ndims = [ndim] * n
    else:
        ndims = [int(d) for d in ndim]
        if len(ndims) != n:
            raise ConfigurationError(
                f"got {len(ndims)} ndim values for {n} integrands"
            )
    member_bounds = _resolve_member_bounds(
        bounds if bounds is not None else request.bounds, ndims
    )

    router = None
    backend = request.backend
    if isinstance(backend, str) and backend == "auto":
        from repro.backends.routing import shared_router

        router = shared_router()
        backend = router.decide_batch(ndims, rel_tol=request.rel_tol).backend

    bk = get_backend(backend)
    budget = PaganiConfig.resolve_chunk_budget(bk, chunk_budget)

    scheduler = BatchScheduler(backend=bk)
    if n == 0:
        return ([], scheduler.stats) if return_stats else []
    for f, d, b in zip(integrands, ndims, member_bounds):
        cfg = request.to_pagani_config(f, backend=bk, chunk_budget=budget)
        device = VirtualDevice(device_spec) if device_spec else None
        integrator = PaganiIntegrator(cfg, device=device)
        scheduler.add(
            integrator.start_run(f, d, bounds=b, collect_trace=collect_trace)
        )

    while True:
        try:
            results = scheduler.run()
            break
        except BatchMemberError:
            if on_member_error == "raise":
                raise
            # "skip": the scheduler already abandoned the offender and the
            # other members are intact — keep batching them.
    for f, res in zip(integrands, results):
        ref = getattr(f, "reference", None)
        if res is not None and ref is not None:
            res.true_value = float(ref)
    if router is not None:
        live = [r for r in results if r is not None]
        if live:
            router.observe(
                bk.name,
                sum(r.neval for r in live),
                max(getattr(r, "wall_seconds", 0.0) or 0.0 for r in live),
            )
    return (results, scheduler.stats) if return_stats else results


def serve_jobs(
    specs: Sequence,
    max_concurrent: int = 4,
    backend: BackendLike = None,
    cache: bool = True,
    cache_entries: int = 256,
    chunk_budget: Optional[int] = None,
    shards: int = 1,
    service=None,
):
    """Run a fixed job list through an :class:`~repro.service.IntegrationService`.

    The one-shot service surface used by ``pagani-repro serve`` and the
    benchmark harness: build a service, submit every spec, wait for all,
    shut the service down, and return the handles in submission order
    (inspect ``handle.result()`` / ``handle.status`` / ``handle.stats``).

    Parameters
    ----------
    specs:
        :class:`~repro.service.JobSpec` instances — or dicts in the
        jobs-file shape (``{"integrand": "5D-f4", "rel_tol": 1e-4,
        "priority": 3, ...}``).
    max_concurrent / backend / cache / cache_entries / chunk_budget / shards:
        Forwarded to :class:`~repro.service.IntegrationService`
        (``shards=K`` serves the queue with ``K`` independent worker
        rotations, each pinned to its own backend instance;
        ``backend="auto"`` routes each admitted job to the cheapest
        adequate backend and fingerprints record the *resolved* one).
    service:
        Use an existing service instead of building one.  The caller
        keeps ownership: the service is *not* shut down and may hold
        cache state across calls.

    Returns
    -------
    list[repro.service.JobHandle]
        One terminal handle per spec, in submission order.

    Examples
    --------
    >>> from repro import serve_jobs
    >>> from repro.service import JobSpec
    >>> handles = serve_jobs([
    ...     JobSpec("3D-f4", rel_tol=1e-3, priority=3),
    ...     JobSpec("3D-f4", rel_tol=1e-3),      # duplicate: cache/coalesce
    ... ])
    >>> [h.status.value for h in handles]
    ['done', 'done']
    >>> handles[0].result().estimate == handles[1].result().estimate
    True
    """
    from repro.service import IntegrationService, JobSpec

    parsed = [
        spec if isinstance(spec, JobSpec) else JobSpec.from_dict(dict(spec))
        for spec in specs
    ]
    own_service = service is None
    if own_service:
        service = IntegrationService(
            max_concurrent=max_concurrent, backend=backend, cache=cache,
            cache_entries=cache_entries, chunk_budget=chunk_budget,
            shards=shards,
        )
    try:
        handles = service.submit_many(parsed)
        for handle in handles:
            handle.wait()
    finally:
        if own_service:
            service.shutdown(wait=True)
    return handles


def serve_http(
    host: str = "127.0.0.1",
    port: int = 8053,
    *,
    max_concurrent: int = 4,
    backend: BackendLike = None,
    shards: int = 1,
    cache_entries: int = 256,
    cache_dir=None,
    max_queued: int = 64,
    history_limit: Optional[int] = 1024,
    collect_traces: bool = False,
    escalation=None,
):
    """Start the HTTP/JSON integration server; returns the running server.

    Builds an :class:`~repro.service.IntegrationService` (sharded,
    cached) and binds an
    :class:`~repro.service.http.HttpIntegrationServer` to it.  The
    returned server is already listening; call ``.close()`` (or use a
    ``with`` block) to stop it — the server owns the service and shuts
    it down too.  ``pagani-repro serve --http HOST:PORT`` is the CLI
    face of this function.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` picks a free port — read it back from
        ``server.port`` / ``server.url``.
    max_concurrent / backend / shards / cache_entries / collect_traces:
        Forwarded to :class:`~repro.service.IntegrationService`
        (``backend="auto"`` enables per-job adaptive routing).
    cache_dir:
        When given, results are also persisted to a SQLite store under
        this directory (:class:`~repro.service.TieredResultCache`):
        duplicate requests after a restart replay **bit-for-bit** from
        disk instead of recomputing.  ``None`` keeps the plain
        in-memory LRU.
    max_queued:
        Admission bound: ``POST /v1/jobs`` is rejected with ``429`` +
        ``Retry-After`` while this many jobs are already waiting.
    history_limit:
        Terminal-handle retention in the service (default 1024 — a
        network-facing server must bound its memory; the HTTP layer
        keeps its own handle map for job lookups).
    escalation:
        Service-wide baseline escalation default (a policy descriptor
        such as ``"two_phase>vegas>qmc"``, ``True`` for the stock
        ladder, ``None``/``"off"`` disabled).  Jobs may override per
        request via their ``escalation`` field.

    Examples
    --------
    >>> import json, urllib.request
    >>> from repro import serve_http
    >>> with serve_http(port=0) as server:        # port 0: pick a free port
    ...     with urllib.request.urlopen(server.url + "/healthz") as r:
    ...         ok = json.loads(r.read())["ok"]
    >>> ok
    True
    """
    from repro.service import IntegrationService, TieredResultCache
    from repro.service.http import HttpIntegrationServer

    cache: Union[bool, "TieredResultCache"] = True
    if cache_dir is not None:
        cache = TieredResultCache(cache_dir, max_entries=cache_entries)
    service = IntegrationService(
        max_concurrent=max_concurrent, backend=backend, cache=cache,
        cache_entries=cache_entries, shards=shards,
        history_limit=history_limit, collect_traces=collect_traces,
        escalation=escalation,
    )
    return HttpIntegrationServer(
        service, host=host, port=port, max_queued=max_queued,
        owns_service=True,
    )
