"""Multi-GPU PAGANI (the paper's §4.4 future work, implemented).

The paper's proposed strategy: "utilize multiple GPUs to evaluate different
partitions of the integration space independently", with redistribution
"beneficial either at the beginning of the algorithm, after a set-number of
sub-regions is generated, or when GPU memory is exhausted".  Dynamic
per-iteration redistribution through MPI is dismissed as infeasible.

This module implements the static variant the paper recommends:

1. a *seeding pass* evaluates a uniform ``d^n`` split once and scores each
   seed region by its error estimate;
2. seed regions are assigned to devices by greedy largest-first bin packing
   on those scores (the best static proxy for adaptive work, directly
   addressing the Figure 1 imbalance problem);
3. the global tolerance budget ``τ_rel·|V|`` is apportioned to the seed
   cells as absolute error shares proportional to their scores, and each
   cell runs an independent PAGANI against its share;
4. when a cell's run exhausts its device memory, the paper's third
   redistribution trigger applies — redistribution is "beneficial ...
   when GPU memory is exhausted" — so the cell is bisected per axis,
   re-scored, and the pieces are re-packed *across the fleet*; a single
   device has no peer to share with, so there exhaustion is final (which
   is §4.4's motivation for multiple GPUs in the first place);
5. results are summed; total simulated time is the *makespan* (devices run
   concurrently), and the per-device times quantify residual imbalance.

A partition that still exhausts memory after the redistribution budget
flags the combined result, exactly like single-device PAGANI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.core.regions import RegionStore
from repro.core.result import IntegrationResult, Status
from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice


@dataclass
class MultiGpuReport:
    """Per-device accounting of one multi-GPU run."""

    per_device_seconds: List[float]
    per_device_regions: List[int]
    per_device_status: List[Status]
    seed_errors: List[float] = field(repr=False, default_factory=list)

    @property
    def makespan(self) -> float:
        return max(self.per_device_seconds) if self.per_device_seconds else 0.0

    @property
    def imbalance(self) -> float:
        """Makespan over mean device time (1.0 = perfect balance)."""
        mean = float(np.mean(self.per_device_seconds)) if self.per_device_seconds else 0.0
        return self.makespan / mean if mean > 0 else 1.0


class MultiGpuPagani:
    """Static-partition multi-device PAGANI.

    Parameters
    ----------
    n_devices:
        Number of simulated GPUs.
    config:
        PAGANI configuration applied on every device.
    device_spec:
        Spec for each device (memory-scaled V100 by default).  Total fleet
        memory is ``n_devices * spec.mem_capacity`` — the robustness
        extension the paper's §4.4 is after.
    redistribution_rounds:
        How many times an exhausted partition may be bisected and re-packed
        across the fleet (§4.4: redistribution "when GPU memory is
        exhausted").  ``0`` disables redistribution; it is also inert with
        one device, which has no peer to redistribute to.
    """

    def __init__(
        self,
        n_devices: int = 2,
        config: Optional[PaganiConfig] = None,
        device_spec: Optional[DeviceSpec] = None,
        redistribution_rounds: int = 4,
    ):
        if n_devices < 1:
            raise ConfigurationError("n_devices must be >= 1")
        if redistribution_rounds < 0:
            raise ConfigurationError("redistribution_rounds must be >= 0")
        self.n_devices = int(n_devices)
        self.config = config or PaganiConfig()
        self.config.validate()
        self.spec = device_spec or DeviceSpec.scaled()
        self.redistribution_rounds = int(redistribution_rounds)
        self.last_report: Optional[MultiGpuReport] = None
        #: per-round redistribution diagnostics of the last run
        self.redistribution_log: List[dict] = []

    #: §4.4 rescue bisections halve at most this many (widest) axes at a
    #: time, bounding pieces per bisection at 2^4 = 16 for any ndim — a
    #: full per-axis bisection of a 10-D+ cell would spawn thousands of
    #: pieces and starve the budget before the rescue could engage.
    MAX_BISECT_AXES = 4

    # ------------------------------------------------------------------
    @staticmethod
    def _bisect(cell: np.ndarray, max_axes: int = MAX_BISECT_AXES):
        """Halve ``cell`` along its widest ``max_axes`` axes.

        Returns ``(centers, halfwidths)`` arrays of the ``2^k`` pieces.
        """
        lo = cell[:, 0]
        hi = cell[:, 1]
        axes = np.argsort(hi - lo)[::-1][: min(max_axes, cell.shape[0])]
        centers = [(lo + hi) / 2.0]
        halfwidths = [(hi - lo) / 2.0]
        for ax in axes:
            next_c = []
            next_h = []
            for c, h in zip(centers, halfwidths):
                h2 = h.copy()
                h2[ax] *= 0.5
                c_lo = c.copy()
                c_lo[ax] -= h2[ax]
                c_hi = c.copy()
                c_hi[ax] += h2[ax]
                next_c += [c_lo, c_hi]
                next_h += [h2, h2]
            centers, halfwidths = next_c, next_h
        return np.asarray(centers), np.asarray(halfwidths)

    # ------------------------------------------------------------------
    @staticmethod
    def _apportion(
        budget: float, scores: np.ndarray, abs_floor: float
    ) -> np.ndarray:
        """Split an absolute error budget across work items.

        Half the budget goes proportionally to the items' error scores
        (hard cells take most of it), half uniformly (quiet cells keep a
        reachable target instead of a crumb that only memory exhaustion
        can answer); the shares sum to exactly ``budget`` (before the
        floor).  The floor is the τ_abs share, kept for budget-less
        absolute-tolerance runs.
        """
        n = scores.shape[0]
        uniform = np.full(n, 0.5 * budget / n)
        total = float(np.sum(scores))
        if total > 0.0 and budget > 0.0:
            proportional = 0.5 * budget * scores / total
        else:
            proportional = uniform
        return np.maximum(proportional + uniform, abs_floor)

    # ------------------------------------------------------------------
    def integrate(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
        seed_splits: int = 4,
    ) -> IntegrationResult:
        """Integrate with the space statically partitioned across devices.

        ``seed_splits`` is the per-axis resolution of the seeding pass
        (``seed_splits^ndim`` seed regions are scored and packed).
        """
        cfg = self.config
        tau_rel = cfg.rel_tol if rel_tol is None else float(rel_tol)
        tau_abs = cfg.abs_tol if abs_tol is None else float(abs_tol)
        if bounds is None:
            bounds = [(0.0, 1.0)] * ndim
        b = np.asarray(bounds, dtype=np.float64)
        if b.shape != (ndim, 2):
            raise ConfigurationError(f"bounds must have shape ({ndim}, 2)")

        t0 = time.perf_counter()
        rule = get_rule(ndim)
        self.redistribution_log = []

        # --- seeding pass: score seed regions by error estimate ----------
        seeds = RegionStore.uniform_split(b, int(seed_splits))
        ev = evaluate_regions(rule, seeds.centers, seeds.halfwidths, integrand)
        neval = ev.neval
        scores = ev.error + 1e-300 * np.max(np.abs(ev.error))  # keep ordering stable

        # --- greedy largest-first packing onto devices --------------------
        order = np.argsort(scores)[::-1]
        loads = np.zeros(self.n_devices)
        assignment = np.zeros(seeds.size, dtype=np.int64)
        for idx in order:
            dev = int(np.argmin(loads))
            assignment[idx] = dev
            loads[dev] += scores[idx]

        # The global tolerance is apportioned to the seed cells as absolute
        # error shares.  Without this, a cell far from any integrand
        # feature must reach τ_rel *relative to its own near-zero
        # estimate* — arbitrarily harder than the global target, and the
        # way a partition memory-exhausts on work the user never asked
        # for.  The budget τ_rel·|V| (V from the seeding pass) is split
        # half proportionally to the cells' seed error scores (hard cells
        # get most of it) and half uniformly (a reserve so quiet cells are
        # not starved down to unreachable crumbs); shares sum to ≤ the
        # budget either way, and the final global re-check below decides
        # the verdict.
        # Cells may finish through either tolerance: relatively-converged
        # cells spend up to Σ cell_rel·|v_i| ≈ cell_rel·|V| of the global
        # budget and abs-share cells up to the apportioned total, so each
        # channel gets half of τ_rel·|V| to keep the sum within budget.
        v_seed_total = float(np.sum(ev.estimate))
        cell_rel = 0.5 * tau_rel
        abs_shares = self._apportion(
            0.5 * tau_rel * abs(v_seed_total), scores, tau_abs / seeds.size
        )

        # --- per-device PAGANI runs with §4.4 redistribution --------------
        v_total = 0.0
        e_total = 0.0
        statuses: List[Status] = [Status.CONVERGED_REL] * self.n_devices
        secs: List[float] = [0.0] * self.n_devices
        regions: List[int] = [0] * self.n_devices
        total_regions = 0
        worst = Status.CONVERGED_REL
        devices = [VirtualDevice(self.spec) for _ in range(self.n_devices)]

        # Per-cell runs start from a partition-scaled initial split: the
        # seeding pass already did the uniform decomposition, so seeding
        # every cell with the full single-integral init_target would
        # multiply the startup work by the cell count for nothing.
        if cfg.initial_splits is None:
            from dataclasses import replace as _replace

            cell_cfg = _replace(
                cfg, init_target=max(16, cfg.init_target // seeds.size)
            )
        else:
            cell_cfg = cfg

        #: total §4.4 redistribution capacity, in bisection pieces — it
        #: scales with the fleet (more devices, more rescue headroom)
        piece_budget = 256 * self.n_devices if self.n_devices > 1 else 0
        pieces_per_bisection = 2 ** min(ndim, self.MAX_BISECT_AXES)

        def cell_bounds(centers_row, halfwidths_row) -> np.ndarray:
            return np.stack(
                [centers_row - halfwidths_row, centers_row + halfwidths_row],
                axis=1,
            )

        # Work items: (device, bounds, abs error share).  Seed cells run
        # back-to-back on their owning device (a device processes its
        # partition sequentially), so device time accumulates across items.
        work: List[tuple] = [
            (
                int(assignment[idx]),
                cell_bounds(seeds.centers[idx], seeds.halfwidths[idx]),
                float(abs_shares[idx]),
            )
            for idx in range(seeds.size)
        ]

        for depth in range(self.redistribution_rounds + 1):
            failed: List[tuple] = []
            for d, cell, share in work:
                integrator = PaganiIntegrator(cell_cfg, device=devices[d])
                res = integrator.integrate(
                    integrand, ndim, bounds=cell,
                    rel_tol=cell_rel, abs_tol=share,
                    collect_trace=False,
                )
                secs[d] += res.sim_seconds
                regions[d] += res.nregions
                total_regions += res.nregions
                neval += res.neval
                if (
                    res.status
                    in (Status.MEMORY_EXHAUSTED, Status.NO_ACTIVE_REGIONS)
                    and depth < self.redistribution_rounds
                    and piece_budget >= pieces_per_bisection
                ):
                    # §4.4's third trigger: redistribute "when GPU memory
                    # is exhausted".  The failed partition's work (and its
                    # partial result) is discarded; its pieces are re-run
                    # across the fleet below.  A lone device has no peer
                    # to share with (piece_budget is zero), so there the
                    # exhaustion stands — the precise robustness gap a
                    # fleet closes.
                    failed.append((d, cell, share, res))
                    continue
                v_total += res.estimate
                e_total += res.errorest
                if not res.converged:
                    statuses[d] = res.status
                    worst = res.status
            if not failed:
                break

            # Worst partitions first: the redistribution capacity is a
            # bounded rescue, not an unbounded time-for-memory trade, so
            # spend it where the committed error would be largest.
            failed.sort(key=lambda t: t[3].errorest, reverse=True)
            self.redistribution_log.append(
                {
                    "round": depth,
                    "n_failed": len(failed),
                    "failed_errorests": [t[3].errorest for t in failed],
                    "failed_shares": [t[2] for t in failed],
                    "piece_budget_left": piece_budget,
                }
            )
            splittable: List[tuple] = []
            for item in failed:
                if piece_budget >= pieces_per_bisection:
                    piece_budget -= pieces_per_bisection
                    splittable.append(item)
                else:
                    d, _cell, _share, res = item
                    v_total += res.estimate
                    e_total += res.errorest
                    statuses[d] = res.status
                    worst = res.status
            if not splittable:
                break

            # Bisect every failed partition along its widest axes, score
            # the pieces with one rule evaluation (same scoring as the
            # seeding pass), and apportion the parent's error share among
            # them with the same half-proportional / half-uniform split
            # as the top level.  No extra τ_abs floor here: the parent's
            # share already contains its floor, and re-flooring every
            # piece would inflate the aggregate absolute allowance.
            pieces: List[tuple] = []
            piece_scores: List[float] = []
            for _, cell, share, _res in splittable:
                sub_c, sub_h = self._bisect(cell)
                sub_ev = evaluate_regions(rule, sub_c, sub_h, integrand)
                neval += sub_ev.neval
                sub_scores = sub_ev.error + 1e-300 * np.max(
                    np.abs(sub_ev.error)
                )
                sub_shares = self._apportion(share, sub_scores, 0.0)
                for j in range(sub_c.shape[0]):
                    pieces.append(
                        (
                            cell_bounds(sub_c[j], sub_h[j]),
                            float(sub_shares[j]),
                        )
                    )
                    piece_scores.append(float(sub_scores[j]))

            # Re-pack the pieces across the whole fleet, continuing the
            # greedy largest-first packing on the accumulated score loads.
            order = np.argsort(np.asarray(piece_scores))[::-1]
            work = []
            for k in order:
                d = int(np.argmin(loads))
                loads[d] += piece_scores[k]
                work.append((d, pieces[k][0], pieces[k][1]))

        self.last_report = MultiGpuReport(
            per_device_seconds=secs,
            per_device_regions=regions,
            per_device_status=statuses,
            seed_errors=list(map(float, scores)),
        )

        # Global verdict: per-partition relative convergence does not
        # automatically give the global relative tolerance (partitions can
        # have tiny |v| shares), so re-check the sums.
        if e_total <= tau_abs:
            status = Status.CONVERGED_ABS
        elif v_total != 0.0 and e_total <= tau_rel * abs(v_total):
            status = Status.CONVERGED_REL
        elif worst is not Status.CONVERGED_REL:
            status = worst
        else:
            status = Status.NO_ACTIVE_REGIONS

        return IntegrationResult(
            estimate=v_total,
            errorest=e_total,
            status=status,
            neval=neval,
            nregions=total_regions,
            iterations=0,
            method=f"pagani-x{self.n_devices}",
            sim_seconds=self.last_report.makespan,
            wall_seconds=time.perf_counter() - t0,
        )
