"""Multi-GPU PAGANI (the paper's §4.4 future work, implemented).

The paper's proposed strategy: "utilize multiple GPUs to evaluate different
partitions of the integration space independently", with redistribution
"beneficial either at the beginning of the algorithm, after a set-number of
sub-regions is generated, or when GPU memory is exhausted".  Dynamic
per-iteration redistribution through MPI is dismissed as infeasible.

This module implements the static variant the paper recommends:

1. a *seeding pass* evaluates a uniform ``d^n`` split once and scores each
   seed region by its error estimate;
2. seed regions are assigned to devices by greedy largest-first bin packing
   on those scores (the best static proxy for adaptive work, directly
   addressing the Figure 1 imbalance problem);
3. each device runs an independent PAGANI to a per-device error target
   (τ_rel applied to the global estimate, apportioned by error share);
4. results are summed; total simulated time is the *makespan* (devices run
   concurrently), and the per-device times quantify residual imbalance.

A device whose partition exhausts memory flags the combined result, exactly
like single-device PAGANI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.core.regions import RegionStore
from repro.core.result import IntegrationResult, Status
from repro.cubature.evaluation import evaluate_regions
from repro.cubature.rules import get_rule
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec, VirtualDevice


@dataclass
class MultiGpuReport:
    """Per-device accounting of one multi-GPU run."""

    per_device_seconds: List[float]
    per_device_regions: List[int]
    per_device_status: List[Status]
    seed_errors: List[float] = field(repr=False, default_factory=list)

    @property
    def makespan(self) -> float:
        return max(self.per_device_seconds) if self.per_device_seconds else 0.0

    @property
    def imbalance(self) -> float:
        """Makespan over mean device time (1.0 = perfect balance)."""
        mean = float(np.mean(self.per_device_seconds)) if self.per_device_seconds else 0.0
        return self.makespan / mean if mean > 0 else 1.0


class MultiGpuPagani:
    """Static-partition multi-device PAGANI.

    Parameters
    ----------
    n_devices:
        Number of simulated GPUs.
    config:
        PAGANI configuration applied on every device.
    device_spec:
        Spec for each device (memory-scaled V100 by default).  Total fleet
        memory is ``n_devices * spec.mem_capacity`` — the robustness
        extension the paper's §4.4 is after.
    """

    def __init__(
        self,
        n_devices: int = 2,
        config: Optional[PaganiConfig] = None,
        device_spec: Optional[DeviceSpec] = None,
    ):
        if n_devices < 1:
            raise ConfigurationError("n_devices must be >= 1")
        self.n_devices = int(n_devices)
        self.config = config or PaganiConfig()
        self.config.validate()
        self.spec = device_spec or DeviceSpec.scaled()
        self.last_report: Optional[MultiGpuReport] = None

    # ------------------------------------------------------------------
    def integrate(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
        seed_splits: int = 4,
    ) -> IntegrationResult:
        """Integrate with the space statically partitioned across devices.

        ``seed_splits`` is the per-axis resolution of the seeding pass
        (``seed_splits^ndim`` seed regions are scored and packed).
        """
        cfg = self.config
        tau_rel = cfg.rel_tol if rel_tol is None else float(rel_tol)
        tau_abs = cfg.abs_tol if abs_tol is None else float(abs_tol)
        if bounds is None:
            bounds = [(0.0, 1.0)] * ndim
        b = np.asarray(bounds, dtype=np.float64)
        if b.shape != (ndim, 2):
            raise ConfigurationError(f"bounds must have shape ({ndim}, 2)")

        t0 = time.perf_counter()
        rule = get_rule(ndim)

        # --- seeding pass: score seed regions by error estimate ----------
        seeds = RegionStore.uniform_split(b, int(seed_splits))
        ev = evaluate_regions(rule, seeds.centers, seeds.halfwidths, integrand)
        neval = ev.neval
        scores = ev.error + 1e-300 * np.max(np.abs(ev.error))  # keep ordering stable

        # --- greedy largest-first packing onto devices --------------------
        order = np.argsort(scores)[::-1]
        loads = np.zeros(self.n_devices)
        assignment = np.zeros(seeds.size, dtype=np.int64)
        for idx in order:
            dev = int(np.argmin(loads))
            assignment[idx] = dev
            loads[dev] += scores[idx]

        # error share per device apportions the relative tolerance: each
        # partition must reach the same relative accuracy on its share
        v_seed_total = float(np.sum(ev.estimate))

        # --- per-device PAGANI runs ---------------------------------------
        v_total = 0.0
        e_total = 0.0
        statuses: List[Status] = []
        secs: List[float] = []
        regions: List[int] = []
        total_regions = 0
        worst = Status.CONVERGED_REL

        for d in range(self.n_devices):
            mine = np.nonzero(assignment == d)[0]
            if mine.size == 0:
                secs.append(0.0)
                regions.append(0)
                statuses.append(Status.CONVERGED_REL)
                continue
            device = VirtualDevice(self.spec)
            dev_v = 0.0
            dev_e = 0.0
            dev_sec = 0.0
            dev_regions = 0
            dev_status = Status.CONVERGED_REL
            # each seed region is integrated on the owning device; they run
            # back-to-back on it (a single device processes its partition
            # sequentially), so device time accumulates
            for idx in mine:
                cell = np.stack(
                    [seeds.centers[idx] - seeds.halfwidths[idx],
                     seeds.centers[idx] + seeds.halfwidths[idx]],
                    axis=1,
                )
                integrator = PaganiIntegrator(cfg, device=device)
                res = integrator.integrate(
                    integrand, ndim, bounds=cell,
                    rel_tol=tau_rel, abs_tol=tau_abs / seeds.size,
                    collect_trace=False,
                )
                dev_v += res.estimate
                dev_e += res.errorest
                dev_sec += res.sim_seconds
                dev_regions += res.nregions
                neval += res.neval
                if not res.converged:
                    dev_status = res.status
            v_total += dev_v
            e_total += dev_e
            secs.append(dev_sec)
            regions.append(dev_regions)
            statuses.append(dev_status)
            total_regions += dev_regions
            if dev_status is not Status.CONVERGED_REL:
                worst = dev_status

        self.last_report = MultiGpuReport(
            per_device_seconds=secs,
            per_device_regions=regions,
            per_device_status=statuses,
            seed_errors=list(map(float, scores)),
        )

        # Global verdict: per-partition relative convergence does not
        # automatically give the global relative tolerance (partitions can
        # have tiny |v| shares), so re-check the sums.
        if e_total <= tau_abs:
            status = Status.CONVERGED_ABS
        elif v_total != 0.0 and e_total <= tau_rel * abs(v_total):
            status = Status.CONVERGED_REL
        elif worst is not Status.CONVERGED_REL:
            status = worst
        else:
            status = Status.NO_ACTIVE_REGIONS

        return IntegrationResult(
            estimate=v_total,
            errorest=e_total,
            status=status,
            neval=neval,
            nregions=total_regions,
            iterations=0,
            method=f"pagani-x{self.n_devices}",
            sim_seconds=self.last_report.makespan,
            wall_seconds=time.perf_counter() - t0,
        )
