"""Result and status types shared by every integrator in the package."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class Status(enum.Enum):
    """Why an integration run stopped.

    ``CONVERGED_REL`` / ``CONVERGED_ABS``
        The global termination condition of Algorithm 2 line 15 was met
        (relative or absolute tolerance branch).
    ``MAX_ITERATIONS``
        The iteration cap was reached first (PAGANI) — estimates are
        returned but flagged not converged, matching the paper's "flag
        pertaining to not achieving the user's accuracy requirements".
    ``MAX_EVALUATIONS``
        The function-evaluation budget was exhausted (Cuhre semantics).
    ``MEMORY_EXHAUSTED``
        Device memory could not hold the next iteration's region list and
        filtering could not free enough (PAGANI), or a phase-II block heap
        overflowed (two-phase).
    ``NO_ACTIVE_REGIONS``
        Every region was classified finished, yet the accumulated finished
        error still exceeds the tolerance; further refinement is impossible
        because finished contributions are committed.
    """

    CONVERGED_REL = "converged_rel"
    CONVERGED_ABS = "converged_abs"
    MAX_ITERATIONS = "max_iterations"
    MAX_EVALUATIONS = "max_evaluations"
    MEMORY_EXHAUSTED = "memory_exhausted"
    NO_ACTIVE_REGIONS = "no_active_regions"


@dataclass
class IterationRecord:
    """One row of the per-iteration trace (drives Figs. 3, 8, 9, §4.3.2)."""

    iteration: int
    n_regions: int
    n_active: int
    n_finished_relerr: int
    n_finished_threshold: int
    estimate: float
    errorest: float
    finished_estimate: float
    finished_errorest: float
    neval: int
    sim_seconds: float


@dataclass
class EscalationStage:
    """One attempt in an escalation ladder (see ``service/escalation.py``).

    The first stage is always the original PAGANI attempt with its honest
    failure status; subsequent stages record each baseline tried, in
    order, whether it succeeded or not.  ``error`` carries the exception
    text when a stage crashed outright rather than returning a result.
    """

    method: str
    status: Status
    estimate: float = 0.0
    errorest: float = 0.0
    neval: int = 0
    iterations: int = 0
    wall_seconds: float = 0.0
    error: Optional[str] = None


@dataclass
class IntegrationResult:
    """Outcome of one integration run.

    ``estimate``/``errorest`` are the global values of Algorithm 2 line 16
    (leaf contributions plus accumulated finished contributions).
    ``sim_seconds`` is deterministic simulated device/CPU time from the cost
    models; ``wall_seconds`` is measured host time.
    """

    estimate: float
    errorest: float
    status: Status
    neval: int = 0
    nregions: int = 0
    iterations: int = 0
    method: str = ""
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    trace: List[IterationRecord] = field(default_factory=list)
    #: populated when a reference value is known (benchmark harnesses)
    true_value: Optional[float] = None
    #: non-``None`` exactly when this result came out of a baseline
    #: escalation ladder: the full per-stage history, original PAGANI
    #: attempt first.  ``status``/``method`` are then the *final* stage's —
    #: an escalated result is never relabeled as a plain converged PAGANI
    #: run, and the provenance travels with the result through the cache,
    #: the durable store and the HTTP payloads.
    escalation: Optional[List[EscalationStage]] = None

    @property
    def converged(self) -> bool:
        return self.status in (Status.CONVERGED_REL, Status.CONVERGED_ABS)

    @property
    def escalated(self) -> bool:
        """True when this result was produced by a baseline escalation."""
        return bool(self.escalation)

    @property
    def rel_errorest(self) -> float:
        """Estimated relative error (inf when the estimate is zero)."""
        if self.estimate == 0.0:
            return float("inf") if self.errorest > 0.0 else 0.0
        return abs(self.errorest / self.estimate)

    def true_rel_error(self) -> Optional[float]:
        """|estimate − truth| / |truth| when a reference value is attached."""
        if self.true_value is None:
            return None
        if self.true_value == 0.0:
            return abs(self.estimate)
        return abs((self.estimate - self.true_value) / self.true_value)

    def __str__(self) -> str:
        ok = "converged" if self.converged else f"NOT converged ({self.status.value})"
        if self.escalated:
            ladder = "→".join(s.method for s in self.escalation)
            ok += f"; escalated {ladder}"
        return (
            f"{self.method or 'integration'}: {self.estimate:.12g} "
            f"± {self.errorest:.3g} [{ok}; {self.neval} evals, "
            f"{self.nregions} regions, sim {self.sim_seconds * 1e3:.3g} ms]"
        )
