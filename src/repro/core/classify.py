"""Region classification: REL-ERR-CLASSIFY and THRESHOLD-CLASSIFY.

These are the two adaptive measures of §3.5 that replace the error-sorted
priority queue of sequential methods:

* **Relative-error filtering** (Lemma 3.1): a region whose own relative
  error already satisfies ``e_i <= τ_rel |v_i|`` can be committed as
  finished — if *every* region met this bound, the global estimate would
  meet it too (for sign-definite integrands).  Disabled via configuration
  for integrands oscillating between signs, where the lemma's precondition
  fails (§3.5.1, and the 8D f1 case of Fig. 7).

* **Threshold classification** (Algorithm 3): a binary-search-like hunt for
  an error threshold ``t`` such that committing every active region with
  ``e_i <= t`` (a) frees at least half of the active list (memory
  requirement) and (b) consumes at most ``P_max`` of the remaining error
  budget ``e_b = e_tot − |v_tot| τ_rel`` (accuracy requirement).  ``P_max``
  starts at 25 % and is relaxed by 10 points per search-direction change up
  to 95 %.

The search keeps a trace of every probe so the Figure 3 reproduction can
print thresholds tried, fraction of regions removed and fraction of error
budget consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.backends.base import ArrayBackend
from repro.gpu import thrust
from repro.gpu.device import VirtualDevice


def rel_err_classify(
    estimate: np.ndarray,
    error: np.ndarray,
    tau_rel: float,
    device: Optional[VirtualDevice] = None,
    margin: float = 1.0,
    abs_share: float = 0.0,
) -> np.ndarray:
    """Return the active mask: True where the region still needs refining.

    A region is *finished* when its error estimate is within the relative
    tolerance of its own integral estimate.  ``margin < 1`` tightens the
    per-region test (finished iff ``e_i <= margin · τ_rel |v_i|``) so that
    the sum of relative-error commitments stays strictly below the global
    tolerance, leaving allowance for the threshold filter's commitments —
    without a margin the two mechanisms together can exhaust the budget and
    strand the run fractionally above τ_rel.

    ``abs_share`` is the per-region slice of the absolute tolerance (the
    caller apportions τ_abs over the live regions); it lets pure-τ_abs runs
    classify regions finished even when the relative test is unreachable.
    """
    active = error > np.maximum(margin * tau_rel * np.abs(estimate), abs_share)
    if device is not None:
        device.charge_kernel(
            "rel_err_classify", work_items=estimate.size, bytes_per_item=24.0
        )
    return active


@dataclass
class ThresholdProbe:
    """One threshold attempt inside the Algorithm 3 search."""

    threshold: float
    frac_removed: float
    frac_error_budget: float
    accepted: bool


@dataclass
class ThresholdTrace:
    """Full record of one THRESHOLD-CLASSIFY invocation (Fig. 3 data)."""

    min_error: float
    max_error: float
    initial_threshold: float
    error_budget: float
    probes: List[ThresholdProbe] = field(default_factory=list)
    success: bool = False
    direction_changes: int = 0
    final_pmax: float = 0.25


def threshold_classify(
    active: np.ndarray,
    error: np.ndarray,
    v_tot: float,
    e_tot: float,
    tau_rel: float,
    *,
    commit_allowance: Optional[float] = None,
    p_max: float = 0.25,
    p_max_step: float = 0.10,
    p_max_cap: float = 0.95,
    mem_fraction: float = 0.5,
    max_direction_changes: int = 10,
    max_probes: int = 60,
    device: Optional[VirtualDevice] = None,
    backend: Optional[ArrayBackend] = None,
) -> tuple[np.ndarray, ThresholdTrace]:
    """Algorithm 3: search for an error threshold and classify below it.

    Parameters
    ----------
    active:
        Current active mask (output of :func:`rel_err_classify`); regions
        already finished stay finished regardless of the search outcome.
    error:
        Two-level-refined error estimates for *all* in-memory regions.
    v_tot, e_tot:
        Global integral and error estimates *including* finished
        contributions (``v + v_f``, ``e + e_f``) — the budget is global.
    tau_rel:
        User relative tolerance.
    commit_allowance:
        Upper bound on error this and all future threshold commitments may
        still consume.  The paper observes that "if the finished
        error-estimate is larger than the error budget, then convergence is
        impossible" and that the threshold choice must avoid this; the
        caller (PAGANI) passes the share of ``τ_rel |v_tot|`` reserved for
        threshold commitments minus what it has already committed, so the
        lifetime sum of commitments stays below the tolerance (a geometric
        series under ``P_max < 1``).  ``None`` reproduces the paper's raw
        budget (excess error only) — used by the looser-budget ablation.
    p_max / p_max_step / p_max_cap:
        Error-budget fraction schedule (§3.5.3: 0.25, +0.10 per direction
        change, capped at 0.95).
    mem_fraction:
        Fraction of the *active* regions that must be discarded for the
        memory requirement (paper: at least 50 %).
    backend:
        Execution backend for the reductions inside the search
        (``None`` = reference NumPy).

    Returns
    -------
    (new_active_mask, trace)
        On an unsuccessful search the mask is returned unchanged and
        ``trace.success`` is False (the caller decides whether to proceed
        without filtering or to terminate with a memory flag).
    """
    trace_device = device  # all reductions below happen on device
    n_active = thrust.count_nonzero(trace_device, active, backend=backend)
    err_active = error[active]
    e_it = thrust.reduce_sum(
        trace_device, err_active, name="thrust::reduce(Eact)", backend=backend
    )
    # Excess error that must disappear for convergence, capped by the
    # commitment allowance still available under the tolerance.
    e_budget = e_tot - abs(v_tot) * tau_rel
    if commit_allowance is not None:
        e_budget = min(e_budget, commit_allowance)

    if n_active == 0 or e_budget <= 0.0:
        # Nothing to classify, or no budget left to commit: bail out with an
        # empty trace (convergence is impossible to accelerate here).
        t = ThresholdTrace(0.0, 0.0, 0.0, e_budget)
        return active, t

    e_min, e_max = thrust.minmax(trace_device, err_active, backend=backend)
    threshold = e_it / n_active  # initial probe: the average active error
    trace = ThresholdTrace(
        min_error=e_min,
        max_error=e_max,
        initial_threshold=threshold,
        error_budget=e_budget,
    )

    current_pmax = p_max
    direction: int = 0  # -1 moving toward min, +1 moving toward max
    changes = 0
    best: Optional[np.ndarray] = None

    for _ in range(max_probes):
        # APPLY-THRESHOLD: a finished-by-relerr region stays finished; an
        # active region is discarded when its error sits at/below t.
        discard = active & (error <= threshold)
        new_active = active & ~discard
        n_removed = thrust.count_nonzero(trace_device, discard, backend=backend)
        e_removed = thrust.reduce_sum(
            trace_device, error[discard], name="thrust::reduce(Erem)",
            backend=backend,
        )
        frac_removed = n_removed / n_active
        frac_budget = e_removed / e_budget
        mem_ok = frac_removed > mem_fraction
        acc_ok = e_removed <= current_pmax * e_budget
        trace.probes.append(
            ThresholdProbe(threshold, frac_removed, frac_budget, mem_ok and acc_ok)
        )
        if mem_ok and acc_ok:
            best = new_active
            trace.success = True
            break
        # UPDATE-THRESHOLD: move halfway toward the relevant extreme.  The
        # accuracy requirement dominates (committing too much error makes
        # convergence impossible), so it is corrected first.
        if not acc_ok:
            new_direction = -1
            threshold = threshold - (threshold - e_min) / 2.0
        else:  # memory requirement failed: discard more
            new_direction = +1
            threshold = threshold + (e_max - threshold) / 2.0
        if direction != 0 and new_direction != direction:
            changes += 1
            current_pmax = min(p_max_cap, current_pmax + p_max_step)
            if changes > max_direction_changes:
                break
        direction = new_direction

    trace.direction_changes = changes
    trace.final_pmax = current_pmax
    if device is not None:
        # The search is a handful of reductions per probe; charge one scan
        # per probe over the error list (memory-bound).
        device.charge_kernel(
            "threshold_classify",
            work_items=error.size,
            bytes_per_item=8.0,
            launches=max(1, len(trace.probes)),
        )
    if best is None:
        return active, trace
    return best, trace
