"""PAGANI core: the paper's primary contribution (Algorithms 2 and 3).

* :mod:`~repro.core.regions` — structure-of-arrays region storage with the
  uniform initial split, the filter (stream-compaction) kernel and the
  split kernel, all charged to the virtual device.
* :mod:`~repro.core.classify` — REL-ERR-CLASSIFY and the THRESHOLD-CLASSIFY
  search of Algorithm 3.
* :mod:`~repro.core.pagani` — the breadth-first main loop of Algorithm 2
  with its termination conditions, finished-estimate accounting and
  per-iteration trace.
* :mod:`~repro.core.result` — result/status dataclasses shared by all
  integrators in the package.
"""

from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.core.multi_gpu import MultiGpuPagani, MultiGpuReport
from repro.core.result import EscalationStage, IntegrationResult, Status
from repro.core.regions import RegionStore
from repro.core.classify import ThresholdTrace, rel_err_classify, threshold_classify

__all__ = [
    "PaganiConfig",
    "PaganiIntegrator",
    "MultiGpuPagani",
    "MultiGpuReport",
    "EscalationStage",
    "IntegrationResult",
    "Status",
    "RegionStore",
    "ThresholdTrace",
    "rel_err_classify",
    "threshold_classify",
]
