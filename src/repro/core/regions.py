"""Structure-of-arrays region storage plus the filter and split kernels.

PAGANI keeps every live sub-region in flat device arrays — there is no tree
data structure and no per-processor heap.  A region is a row across parallel
arrays:

``centers``/``halfwidths``  geometry (user coordinates),
``estimate``/``error``      current cubature estimates,
``split_axis``              axis chosen by the fourth-difference scan,
``parent_estimate``         the parent's integral estimate (two-level error).

The two structural kernels of Algorithm 2 are implemented here:

* :meth:`RegionStore.filter` — stream compaction of the active regions
  (exclusive-scan index computation + gather), removing finished regions
  from memory permanently;
* :meth:`RegionStore.split` — every surviving region splits into two halves
  along its chosen axis, doubling the list (line 22/23).

Storage strategy (preallocated SoA growth)
------------------------------------------
The store owns *reserved* column buffers that grow geometrically (capacity
doubling) and never shrink during a run.  ``filter`` and ``split`` write
into the reserved arrays of a ping-pong buffer pair instead of allocating
fresh full-size arrays every iteration, so steady-state iterations of the
breadth-first loop perform no new full-size allocations.  The compaction
gather and the pairwise child writes are value-for-value identical to the
previous allocate-per-iteration kernels, which is what keeps the bit-exact
volume-conservation and golden suites unchanged.

Device-memory accounting charges the **reserved capacity** (the high-water
region count), not the live size — exactly what a preallocated device
buffer pins on real hardware.  The staging half of the ping-pong pair is
structural-kernel workspace and is not charged, matching how the evaluate
sweep's point buffers and the thrust scan temporaries are treated.  Both
charging and the memory-exhaustion trigger (:meth:`split_would_fit`) are
therefore phrased in terms of capacity *growth*, which is how the
§3.5.2 memory trigger becomes observable.

The parallel arrays are owned by a pluggable
:class:`~repro.backends.base.ArrayBackend` (NumPy by default): the store's
arrays are whatever array type the backend produces, and the structural
kernels create/compact them through the backend's namespace and
primitives.  The cost accounting is backend-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.backends import BackendLike, NumpyBackend, get_backend
from repro.backends.base import ArrayBackend
from repro.errors import ConfigurationError, DeviceMemoryError
from repro.gpu import thrust
from repro.gpu.device import VirtualDevice

_F8 = 8


def bytes_per_region(ndim: int) -> int:
    """Device bytes one region occupies across all parallel arrays.

    2n geometry doubles + estimate, error, parent estimate, split axis and
    active flag (flags/axes stored as 64-bit on device for coalescing).
    """
    return (2 * ndim + 5) * _F8


@dataclass
class RegionStore:
    """Flat storage for the live region list."""

    ndim: int
    centers: np.ndarray  # (m, n)
    halfwidths: np.ndarray  # (m, n)
    estimate: np.ndarray  # (m,)
    error: np.ndarray  # (m,)
    split_axis: np.ndarray  # (m,) int64
    parent_estimate: Optional[np.ndarray]  # (m,) or None on iteration 0
    device: Optional[VirtualDevice] = None
    #: execution backend owning the arrays (NumPy when not specified)
    backend: ArrayBackend = field(default_factory=NumpyBackend)
    _mem_handle: Optional[int] = None
    #: reserved rows in the preallocated SoA buffers (0 = not yet reserved)
    _capacity: int = field(default=0, repr=False)
    _front: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)
    _back: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)
    _iota: Optional[np.ndarray] = field(default=None, repr=False)

    #: column name -> (has an ndim axis, dtype)
    _COLUMNS = (
        ("centers", True, np.float64),
        ("halfwidths", True, np.float64),
        ("estimate", False, np.float64),
        ("error", False, np.float64),
        ("split_axis", False, np.int64),
        ("parent_estimate", False, np.float64),
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def uniform_split(
        cls,
        bounds: np.ndarray,
        splits_per_axis: int,
        device: Optional[VirtualDevice] = None,
        backend: BackendLike = None,
    ) -> "RegionStore":
        """Partition the integration box into ``d^n`` equal sub-regions.

        This is Algorithm 2 line 4 (``Uniform-Split``): the pre-processing
        step that seeds the breadth-first expansion with enough parallelism
        to occupy the device from the first iteration.  The grid is built
        on the host and uploaded once through ``backend.asarray`` — the
        breadth-first loop never moves region arrays off the backend again.
        """
        bk = get_backend(backend)
        xp = bk.xp
        bounds = np.asarray(bounds, dtype=np.float64)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise ConfigurationError("bounds must have shape (ndim, 2)")
        ndim = bounds.shape[0]
        d = int(splits_per_axis)
        if d < 1:
            raise ConfigurationError("splits_per_axis must be >= 1")
        lo = bounds[:, 0]
        hi = bounds[:, 1]
        if np.any(hi <= lo):
            raise ConfigurationError("each bound must satisfy high > low")
        width = (hi - lo) / d
        m = d**ndim
        # Cartesian grid of cell indices, one row per region.
        grids = np.meshgrid(*[np.arange(d)] * ndim, indexing="ij")
        idx = np.stack([g.ravel() for g in grids], axis=1)  # (m, n)
        centers = lo[None, :] + (idx + 0.5) * width[None, :]
        halfwidths = np.broadcast_to(width / 2.0, (m, ndim)).copy()
        store = cls(
            ndim=ndim,
            centers=bk.asarray(np.ascontiguousarray(centers)),
            halfwidths=bk.asarray(halfwidths),
            estimate=xp.zeros(m),
            error=xp.zeros(m),
            split_axis=xp.zeros(m, dtype=np.int64),
            parent_estimate=None,
            device=device,
            backend=bk,
        )
        store._account_memory()
        if device is not None:
            device.charge_kernel(
                "uniform_split", work_items=m, bytes_per_item=2 * ndim * _F8
            )
        return store

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.centers.shape[0]

    @property
    def reserved(self) -> int:
        """Rows of preallocated SoA capacity backing the store."""
        return self._capacity if self._capacity else self.size

    @property
    def nbytes_device(self) -> int:
        return self.reserved * bytes_per_region(self.ndim)

    def _account_memory(self) -> None:
        if self.device is None:
            return
        pool = self.device.memory
        if self._mem_handle is None:
            self._mem_handle = pool.alloc(self.nbytes_device)
        else:
            pool.resize(self._mem_handle, self.nbytes_device)

    def release(self) -> None:
        """Free the store's device allocation (end of an integration)."""
        if self.device is not None and self._mem_handle is not None:
            self.device.memory.free(self._mem_handle)
            self._mem_handle = None

    def split_would_fit(self, n_active: int) -> bool:
        """Whether filtering to ``n_active`` regions and splitting them
        fits in device memory.

        Under the preallocated SoA scheme the cost of a split is the
        *capacity growth* it forces: the reserved buffers must cover the
        ``2 * n_active`` children, growing by capacity doubling from the
        current reservation.  A split whose children fit inside the
        existing reservation is free.
        """
        if self.device is None:
            return True
        new_cap = self._target_capacity(2 * n_active)
        already = self.nbytes_device if self._mem_handle is not None else 0
        extra = new_cap * bytes_per_region(self.ndim) - already
        return extra <= self.device.memory.available

    # ------------------------------------------------------------------
    # Reserved-capacity buffer management
    # ------------------------------------------------------------------
    def _target_capacity(self, nrows: int) -> int:
        """Reserved rows after growing (by doubling) to hold ``nrows``."""
        cap = self._capacity if self._capacity else max(self.size, 1)
        while cap < nrows:
            cap *= 2
        return cap

    def _alloc_columns(self, cap: int) -> Dict[str, np.ndarray]:
        xp = self.backend.xp
        n = self.ndim
        return {
            name: xp.empty((cap, n) if is2d else cap, dtype=dtype)
            for name, is2d, dtype in self._COLUMNS
        }

    def _reserve(self, nrows: int) -> None:
        """Ensure the SoA buffers hold ``>= nrows`` rows.

        Growth is geometric (capacity doubling), copies the live rows into
        the new reservation, and re-points the public column views.  The
        device charge moves with the reservation, so accounting always
        reflects reserved capacity.
        """
        if self._front is not None and nrows <= self._capacity:
            return
        cap = self._target_capacity(nrows)
        front = self._alloc_columns(cap)
        back = self._alloc_columns(cap)
        m = self.size
        for name, _, _ in self._COLUMNS:
            live = getattr(self, name)
            if live is None:
                continue
            front[name][:m] = live
            setattr(self, name, front[name][:m])
        self._front = front
        self._back = back
        self._iota = self.backend.xp.arange(cap)
        self._capacity = cap
        self._account_memory()

    def _publish(self, nrows: int, with_parent: bool) -> None:
        """Swap the ping-pong pair; expose ``[:nrows]`` views as live."""
        self._front, self._back = self._back, self._front
        f = self._front
        self.centers = f["centers"][:nrows]
        self.halfwidths = f["halfwidths"][:nrows]
        self.estimate = f["estimate"][:nrows]
        self.error = f["error"][:nrows]
        self.split_axis = f["split_axis"][:nrows]
        self.parent_estimate = (
            f["parent_estimate"][:nrows] if with_parent else None
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def filter(self, active: np.ndarray) -> int:
        """Remove finished regions from memory (Algorithm 2 line 20).

        Uses the exclusive-scan + gather compaction idiom of the CUDA
        implementation; returns the surviving count.  The gather writes
        the survivors into the reserved staging buffers (no fresh array
        allocation).  The removed regions' contributions must already have
        been accumulated into the finished totals by the caller — after
        this call they are unrecoverable, exactly as in the paper ("any
        regions that PAGANI filters out are permanently removed").
        """
        bk = self.backend
        xp = bk.xp
        active = bk.asarray(active).astype(bool)
        if active.shape[0] != self.size:
            raise ValueError("flag length mismatch")
        self._reserve(self.size)
        # Index computation is an exclusive scan on device; the gather
        # compacts the survivors into the reserved staging buffers.
        thrust.exclusive_scan(
            self.device, active.astype(np.int64), backend=bk
        )
        idx = xp.flatnonzero(active)
        k = int(idx.shape[0])
        has_parent = self.parent_estimate is not None
        back = self._back
        for name, _, _ in self._COLUMNS:
            src = getattr(self, name)
            if src is None:
                continue
            xp.take(src, idx, axis=0, out=back[name][:k])
        if self.device is not None:
            self.device.charge_kernel(
                "filter",
                work_items=int(active.shape[0]),
                bytes_per_item=float(bytes_per_region(self.ndim)),
            )
        self._publish(k, with_parent=has_parent)
        self._account_memory()
        return self.size

    def split(self) -> None:
        """Split every region in two along its chosen axis (line 22).

        Children are stored pairwise (2k, 2k+1 from parent k) and inherit
        the parent's integral estimate for the next two-level refinement.
        The children are written into the reserved staging buffers, which
        then become the live columns — growth only reallocates when the
        doubled list exceeds the current reservation.

        Raises
        ------
        DeviceMemoryError
            If the capacity growth forced by the doubled list does not fit
            on the device.  PAGANI's main loop prevents this by triggering
            threshold classification beforehand; the raise covers callers
            that skip that safeguard (the "no filtering" ablation of
            Fig. 8).
        """
        m = self.size
        n = self.ndim
        xp = self.backend.xp
        bpr = bytes_per_region(n)
        if self.device is not None:
            new_cap = self._target_capacity(2 * m)
            already = self.nbytes_device if self._mem_handle is not None else 0
            extra = new_cap * bpr - already
            if extra > 0 and not self.device.memory.can_fit(extra):
                raise DeviceMemoryError(
                    requested=extra, available=self.device.memory.available
                )
        self._reserve(2 * m)
        back = self._back
        axes = self.split_axis
        rows = self._iota[:m]

        half = back["halfwidths"]
        left_h = half[0 : 2 * m : 2]
        right_h = half[1 : 2 * m : 2]
        left_h[:] = self.halfwidths
        left_h[rows, axes] *= 0.5
        right_h[:] = left_h
        delta = left_h[rows, axes]

        cen = back["centers"]
        left_c = cen[0 : 2 * m : 2]
        right_c = cen[1 : 2 * m : 2]
        left_c[:] = self.centers
        right_c[:] = self.centers
        left_c[rows, axes] -= delta
        right_c[rows, axes] += delta

        pe = back["parent_estimate"]
        pe[0 : 2 * m : 2] = self.estimate
        pe[1 : 2 * m : 2] = self.estimate

        back["estimate"][: 2 * m] = 0.0
        back["error"][: 2 * m] = 0.0
        back["split_axis"][: 2 * m] = 0

        if self.device is not None:
            self.device.charge_kernel(
                "split",
                work_items=2 * m,
                bytes_per_item=float(bpr),
            )
        self._publish(2 * m, with_parent=True)
        self._account_memory()

    def volumes(self) -> np.ndarray:
        """Region volumes (testing/diagnostics)."""
        return np.prod(2.0 * self.halfwidths, axis=1)
