"""Structure-of-arrays region storage plus the filter and split kernels.

PAGANI keeps every live sub-region in flat device arrays — there is no tree
data structure and no per-processor heap.  A region is a row across parallel
arrays:

``centers``/``halfwidths``  geometry (user coordinates),
``estimate``/``error``      current cubature estimates,
``split_axis``              axis chosen by the fourth-difference scan,
``parent_estimate``         the parent's integral estimate (two-level error).

The two structural kernels of Algorithm 2 are implemented here:

* :meth:`RegionStore.filter` — stream compaction of the active regions
  (exclusive-scan index computation + gather), removing finished regions
  from memory permanently;
* :meth:`RegionStore.split` — every surviving region splits into two halves
  along its chosen axis, doubling the list (line 22/23).

Both charge the virtual device and account region bytes against the device
memory pool, which is how the memory-exhaustion trigger of §3.5.2 becomes
observable.

The parallel arrays are owned by a pluggable
:class:`~repro.backends.base.ArrayBackend` (NumPy by default): the store's
arrays are whatever array type the backend produces, and the structural
kernels create/compact them through the backend's namespace and
primitives.  The cost accounting is backend-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.backends import BackendSpec, NumpyBackend, get_backend
from repro.backends.base import ArrayBackend
from repro.errors import ConfigurationError, DeviceMemoryError
from repro.gpu import thrust
from repro.gpu.device import VirtualDevice

_F8 = 8


def bytes_per_region(ndim: int) -> int:
    """Device bytes one region occupies across all parallel arrays.

    2n geometry doubles + estimate, error, parent estimate, split axis and
    active flag (flags/axes stored as 64-bit on device for coalescing).
    """
    return (2 * ndim + 5) * _F8


@dataclass
class RegionStore:
    """Flat storage for the live region list."""

    ndim: int
    centers: np.ndarray  # (m, n)
    halfwidths: np.ndarray  # (m, n)
    estimate: np.ndarray  # (m,)
    error: np.ndarray  # (m,)
    split_axis: np.ndarray  # (m,) int64
    parent_estimate: Optional[np.ndarray]  # (m,) or None on iteration 0
    device: Optional[VirtualDevice] = None
    #: execution backend owning the arrays (NumPy when not specified)
    backend: ArrayBackend = field(default_factory=NumpyBackend)
    _mem_handle: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def uniform_split(
        cls,
        bounds: np.ndarray,
        splits_per_axis: int,
        device: Optional[VirtualDevice] = None,
        backend: BackendSpec = None,
    ) -> "RegionStore":
        """Partition the integration box into ``d^n`` equal sub-regions.

        This is Algorithm 2 line 4 (``Uniform-Split``): the pre-processing
        step that seeds the breadth-first expansion with enough parallelism
        to occupy the device from the first iteration.  The grid is built
        on the host and uploaded once through ``backend.asarray`` — the
        breadth-first loop never moves region arrays off the backend again.
        """
        bk = get_backend(backend)
        xp = bk.xp
        bounds = np.asarray(bounds, dtype=np.float64)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise ConfigurationError("bounds must have shape (ndim, 2)")
        ndim = bounds.shape[0]
        d = int(splits_per_axis)
        if d < 1:
            raise ConfigurationError("splits_per_axis must be >= 1")
        lo = bounds[:, 0]
        hi = bounds[:, 1]
        if np.any(hi <= lo):
            raise ConfigurationError("each bound must satisfy high > low")
        width = (hi - lo) / d
        m = d**ndim
        # Cartesian grid of cell indices, one row per region.
        grids = np.meshgrid(*[np.arange(d)] * ndim, indexing="ij")
        idx = np.stack([g.ravel() for g in grids], axis=1)  # (m, n)
        centers = lo[None, :] + (idx + 0.5) * width[None, :]
        halfwidths = np.broadcast_to(width / 2.0, (m, ndim)).copy()
        store = cls(
            ndim=ndim,
            centers=bk.asarray(np.ascontiguousarray(centers)),
            halfwidths=bk.asarray(halfwidths),
            estimate=xp.zeros(m),
            error=xp.zeros(m),
            split_axis=xp.zeros(m, dtype=np.int64),
            parent_estimate=None,
            device=device,
            backend=bk,
        )
        store._account_memory()
        if device is not None:
            device.charge_kernel(
                "uniform_split", work_items=m, bytes_per_item=2 * ndim * _F8
            )
        return store

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.centers.shape[0]

    @property
    def nbytes_device(self) -> int:
        return self.size * bytes_per_region(self.ndim)

    def _account_memory(self) -> None:
        if self.device is None:
            return
        pool = self.device.memory
        if self._mem_handle is None:
            self._mem_handle = pool.alloc(self.nbytes_device)
        else:
            pool.resize(self._mem_handle, self.nbytes_device)

    def release(self) -> None:
        """Free the store's device allocation (end of an integration)."""
        if self.device is not None and self._mem_handle is not None:
            self.device.memory.free(self._mem_handle)
            self._mem_handle = None

    def split_would_fit(self, n_active: int) -> bool:
        """Whether splitting ``n_active`` regions fits in device memory.

        During the split both the filtered parent list and the new child
        list are resident (the copy kernels read one and write the other),
        so the requirement is ``bytes(n_active) + bytes(2 n_active)`` beyond
        what is already freed by filtering.
        """
        if self.device is None:
            return True
        need = 3 * n_active * bytes_per_region(self.ndim)
        already = self.nbytes_device if self._mem_handle is not None else 0
        return need <= self.device.memory.available + already

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def filter(self, active: np.ndarray) -> int:
        """Remove finished regions from memory (Algorithm 2 line 20).

        Uses the exclusive-scan + gather compaction idiom of the CUDA
        implementation; returns the surviving count.  The removed regions'
        contributions must already have been accumulated into the finished
        totals by the caller — after this call they are unrecoverable,
        exactly as in the paper ("any regions that PAGANI filters out are
        permanently removed").
        """
        bk = self.backend
        active = bk.asarray(active).astype(bool)
        if active.shape[0] != self.size:
            raise ValueError("flag length mismatch")
        # Index computation is an exclusive scan on device; the gather is
        # the backend's stream-compaction primitive.
        thrust.exclusive_scan(
            self.device, active.astype(np.int64), backend=bk
        )
        self.centers = bk.compress(active, self.centers)
        self.halfwidths = bk.compress(active, self.halfwidths)
        self.estimate = bk.compress(active, self.estimate)
        self.error = bk.compress(active, self.error)
        self.split_axis = bk.compress(active, self.split_axis)
        if self.parent_estimate is not None:
            self.parent_estimate = bk.compress(active, self.parent_estimate)
        if self.device is not None:
            self.device.charge_kernel(
                "filter",
                work_items=int(active.shape[0]),
                bytes_per_item=float(bytes_per_region(self.ndim)),
            )
        self._account_memory()
        return self.size

    def split(self) -> None:
        """Split every region in two along its chosen axis (line 22).

        Children are stored pairwise (2k, 2k+1 from parent k) and inherit
        the parent's integral estimate for the next two-level refinement.

        Raises
        ------
        DeviceMemoryError
            If the doubled list does not fit on the device.  PAGANI's main
            loop prevents this by triggering threshold classification
            beforehand; the raise covers callers that skip that safeguard
            (the "no filtering" ablation of Fig. 8).
        """
        m = self.size
        n = self.ndim
        xp = self.backend.xp
        if self.device is not None:
            extra = 2 * m * bytes_per_region(n)
            if not self.device.memory.can_fit(extra):
                raise DeviceMemoryError(
                    requested=extra, available=self.device.memory.available
                )
        axes = self.split_axis
        rows = xp.arange(m)
        new_half = self.halfwidths.copy()
        new_half[rows, axes] *= 0.5
        offset = xp.zeros((m, n))
        offset[rows, axes] = new_half[rows, axes]

        centers = xp.empty((2 * m, n))
        halfwidths = xp.empty((2 * m, n))
        centers[0::2] = self.centers - offset
        centers[1::2] = self.centers + offset
        halfwidths[0::2] = new_half
        halfwidths[1::2] = new_half

        parent_estimate = xp.repeat(self.estimate, 2)

        self.centers = centers
        self.halfwidths = halfwidths
        self.parent_estimate = parent_estimate
        self.estimate = xp.zeros(2 * m)
        self.error = xp.zeros(2 * m)
        self.split_axis = xp.zeros(2 * m, dtype=np.int64)
        if self.device is not None:
            self.device.charge_kernel(
                "split",
                work_items=2 * m,
                bytes_per_item=float(bytes_per_region(n)),
            )
        self._account_memory()

    def volumes(self) -> np.ndarray:
        """Region volumes (testing/diagnostics)."""
        return np.prod(2.0 * self.halfwidths, axis=1)
